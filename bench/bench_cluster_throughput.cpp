/**
 * @file
 * Cluster throughput bench: routed search streams over 1/2/4-daemon
 * consistent-hash clusters, plus the failover warm hit.
 *
 * Builds each fleet in-process exactly like mse_serve wires a daemon
 * (MseService + ServiceServer + ReplicationAgent, hooks from one
 * shared ClusterConfig) and plays a stream of distinct GEMM layers
 * through ClusterClient from several client threads:
 *
 *   pass 1 (cold):  empty stores — the ring spreads the cold search
 *                   work across the daemons;
 *   pass 2 (warm):  every request must be an exact store hit on the
 *                   key's owner (warm-hit rate 1.0).
 *
 * Then, on the largest fleet, the replication payoff: after the ship
 * queues drain, the owner of the first key is stopped and the warm
 * pass replays against the full node list. Keys the dead daemon owned
 * must fail over to their ring successor and *still* hit exact — the
 * acknowledged record outlives its owner. Emits
 * BENCH_cluster_throughput.json.
 *
 * `bench_cluster_throughput smoke` (or MSE_BENCH_SMOKE=1) shrinks the
 * stream and budgets for CI.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster_client.hpp"
#include "cluster/replication.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "workload/workload_io.hpp"

using namespace mse;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** One request line of the bench stream. */
std::string
searchRequestLine(const Workload &wl, size_t samples)
{
    JsonValue req = JsonValue::object();
    req["type"] = "search";
    req["workload"] = serializeWorkload(wl);
    req["arch"] = "accel-A";
    req["max_samples"] = static_cast<uint64_t>(samples);
    return req.dump();
}

// ------------------------------------------------- in-process fleet

/** One daemon, wired exactly like mse_serve does it. */
struct DaemonNode
{
    // Destruction order is the reverse of declaration: server first
    // (no new requests), then service (executors may still call
    // on_improved), then the agent they call into.
    std::unique_ptr<ReplicationAgent> agent;
    std::unique_ptr<MseService> service;
    std::unique_ptr<ServiceServer> server;
    std::string addr;
    bool stopped = false;
};

/** An N-daemon loopback cluster sharing one ring. */
struct Fleet
{
    std::vector<std::unique_ptr<DaemonNode>> nodes;
    ClusterConfig cluster;

    bool
    build(size_t n, size_t replicas)
    {
        cluster = ClusterConfig{};
        cluster.replication = replicas;
        // Phase 1: listen everywhere on ephemeral ports to learn the
        // node list (nothing can reach a node before its address is
        // handed out, so wiring the hooks after start() is race-free).
        for (size_t i = 0; i < n; ++i) {
            auto node = std::make_unique<DaemonNode>();
            ServiceConfig scfg;
            // Several services in one process need the ScopedInline
            // executor path (ThreadPool one-top-level-caller
            // contract), i.e. executors >= 2.
            scfg.executors = 2;
            node->service = std::make_unique<MseService>(scfg);
            node->server = std::make_unique<ServiceServer>(
                *node->service, ServerConfig{});
            std::string err;
            if (!node->server->start(&err)) {
                std::fprintf(stderr, "server start failed: %s\n",
                             err.c_str());
                return false;
            }
            node->addr =
                "127.0.0.1:" + std::to_string(node->server->port());
            cluster.nodes.push_back(node->addr);
            nodes.push_back(std::move(node));
        }
        // Phase 2: every node gets the full ring + its agent.
        const ShardRing ring = cluster.ring();
        const size_t reps = cluster.replicationClamped();
        for (auto &node : nodes) {
            ClusterConfig mine = cluster;
            mine.self = node->addr;
            node->agent = std::make_unique<ReplicationAgent>(mine);
            MseService::ClusterHooks hooks;
            hooks.self = node->addr;
            const std::string self = node->addr;
            hooks.accepts_key = [ring, self,
                                 reps](const std::string &key) {
                return ring.isReplica(key, self, reps);
            };
            hooks.owner_of = [ring](const std::string &key) {
                return ring.ownerOf(key);
            };
            ReplicationAgent *agent = node->agent.get();
            hooks.on_improved = [agent](const StoreEntry &e) {
                agent->enqueue(e);
            };
            hooks.augment_stats = [agent](JsonValue &j) {
                j["replication"] = agent->statsJson();
            };
            node->service->setClusterHooks(std::move(hooks));
        }
        return true;
    }

    void
    stopNode(const std::string &addr)
    {
        for (auto &node : nodes) {
            if (node->addr != addr || node->stopped)
                continue;
            node->server->stop();
            node->agent->stop();
            node->stopped = true;
        }
    }

    /** True once every live agent's ship queue is empty. */
    bool
    replicationDrained() const
    {
        for (const auto &node : nodes)
            if (!node->stopped && node->agent->queueDepth() != 0)
                return false;
        return true;
    }

    void
    shutdown()
    {
        for (auto &node : nodes)
            stopNode(node->addr);
        nodes.clear();
    }
};

// ------------------------------------------------------ pass runner

/** Client-side measurements of one pass over the stream. */
struct PassResult
{
    std::vector<double> latencies_s; // per request, sorted afterwards
    double wall_seconds = 0.0;
    double sum_samples_to_incumbent = 0.0;
    size_t exact_hits = 0;
    size_t failures = 0;
    size_t redirects = 0;
    size_t failover_legs = 0; ///< Requests needing >1 node.
    std::set<std::string> servers;

    double qps() const
    {
        return wall_seconds > 0.0
            ? static_cast<double>(latencies_s.size()) / wall_seconds
            : 0.0;
    }

    double
    percentile(double p) const
    {
        if (latencies_s.empty())
            return 0.0;
        const double idx =
            p * static_cast<double>(latencies_s.size() - 1);
        const size_t lo = static_cast<size_t>(idx);
        const size_t hi = std::min(lo + 1, latencies_s.size() - 1);
        const double frac = idx - static_cast<double>(lo);
        return latencies_s[lo] * (1.0 - frac) + latencies_s[hi] * frac;
    }

    double warmHitRate() const
    {
        return latencies_s.empty()
            ? 0.0
            : static_cast<double>(exact_hits) /
                static_cast<double>(latencies_s.size());
    }
};

/**
 * Play the stream once through `n_threads` routing clients, each
 * owning an interleaved slice (slices are disjoint, so every key is
 * searched exactly once per pass).
 */
PassResult
runPass(const ClusterConfig &ccfg,
        const std::vector<std::string> &lines, size_t n_threads)
{
    PassResult out;
    std::mutex mu;
    const double t0 = nowSeconds();
    std::vector<std::thread> clients;
    clients.reserve(n_threads);
    for (size_t t = 0; t < n_threads; ++t) {
        clients.emplace_back([&, t] {
            ClusterClient client(ccfg);
            PassResult local;
            for (size_t i = t; i < lines.size(); i += n_threads) {
                const double r0 = nowSeconds();
                const auto res = client.request(lines[i]);
                const double lat = nowSeconds() - r0;
                const auto doc =
                    res.ok ? parseJson(res.reply) : nullptr;
                if (!doc || !doc->getBool("ok", false)) {
                    ++local.failures;
                    continue;
                }
                local.latencies_s.push_back(lat);
                local.sum_samples_to_incumbent += static_cast<double>(
                    doc->getInt("samples_to_incumbent", 0));
                if (doc->getString("store", "") == "exact")
                    ++local.exact_hits;
                if (res.redirected)
                    ++local.redirects;
                if (res.nodes_tried > 1)
                    ++local.failover_legs;
                if (!res.served_by.empty())
                    local.servers.insert(res.served_by);
            }
            std::lock_guard<std::mutex> lock(mu);
            out.latencies_s.insert(out.latencies_s.end(),
                                   local.latencies_s.begin(),
                                   local.latencies_s.end());
            out.sum_samples_to_incumbent +=
                local.sum_samples_to_incumbent;
            out.exact_hits += local.exact_hits;
            out.failures += local.failures;
            out.redirects += local.redirects;
            out.failover_legs += local.failover_legs;
            out.servers.insert(local.servers.begin(),
                               local.servers.end());
        });
    }
    for (auto &c : clients)
        c.join();
    out.wall_seconds = nowSeconds() - t0;
    std::sort(out.latencies_s.begin(), out.latencies_s.end());
    return out;
}

JsonValue
passJson(const PassResult &r)
{
    JsonValue j = JsonValue::object();
    const size_t n = r.latencies_s.size();
    j["requests_ok"] = static_cast<uint64_t>(n);
    j["failures"] = static_cast<uint64_t>(r.failures);
    j["qps"] = r.qps();
    j["p50_ms"] = r.percentile(0.50) * 1e3;
    j["p95_ms"] = r.percentile(0.95) * 1e3;
    j["p99_ms"] = r.percentile(0.99) * 1e3;
    j["warm_hit_rate"] = r.warmHitRate();
    j["mean_samples_to_incumbent"] =
        n ? r.sum_samples_to_incumbent / static_cast<double>(n) : 0.0;
    j["redirects"] = static_cast<uint64_t>(r.redirects);
    j["failover_legs"] = static_cast<uint64_t>(r.failover_legs);
    j["daemons_answering"] = static_cast<uint64_t>(r.servers.size());
    return j;
}

bool
waitFor(const Fleet &fleet, int timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (fleet.replicationDrained())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return fleet.replicationDrained();
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        (argc > 1 && std::strcmp(argv[1], "smoke") == 0) ||
        bench::envSize("MSE_BENCH_SMOKE", 0) != 0;
    bench::banner("Sharded cluster throughput",
                  "routed search streams over 1/2/4-daemon rings, "
                  "replication, and the failover warm hit");

    const size_t samples =
        bench::envSize("MSE_BENCH_SAMPLES", smoke ? 200 : 1000);
    const size_t layers =
        bench::envSize("MSE_BENCH_LAYERS", smoke ? 6 : 12);
    const size_t n_threads =
        bench::envSize("MSE_BENCH_CLIENTS", smoke ? 2 : 4);
    const size_t replicas = 2;

    // Distinct M per layer = distinct store keys, so the ring spreads
    // them across the fleet.
    std::vector<std::string> lines;
    for (size_t i = 0; i < layers; ++i)
        lines.push_back(searchRequestLine(
            makeGemm("L" + std::to_string(i), 4,
                     32 + 16 * static_cast<int>(i), 64, 64),
            samples));
    std::printf("stream: %zu layers, %zu samples each, %zu client "
                "threads, replication factor %zu\n\n",
                layers, samples, n_threads, replicas);

    struct FleetNumbers
    {
        size_t daemons = 0;
        PassResult cold, warm;
    };
    std::vector<FleetNumbers> fleets;
    bool build_failed = false;

    for (const size_t n : {size_t(1), size_t(2), size_t(4)}) {
        Fleet fleet;
        if (!fleet.build(n, replicas)) {
            build_failed = true;
            break;
        }
        FleetNumbers fn;
        fn.daemons = n;
        fn.cold = runPass(fleet.cluster, lines, n_threads);
        fn.warm = runPass(fleet.cluster, lines, n_threads);
        fleet.shutdown();
        std::printf("fleet %zu: cold qps %6.2f (p95 %7.2f ms, %zu "
                    "daemons answered)   warm qps %7.2f (p95 %6.2f "
                    "ms, hit rate %.2f)\n",
                    n, fn.cold.qps(), fn.cold.percentile(0.95) * 1e3,
                    fn.cold.servers.size(), fn.warm.qps(),
                    fn.warm.percentile(0.95) * 1e3,
                    fn.warm.warmHitRate());
        fleets.push_back(std::move(fn));
    }

    // Failover: rebuild the largest fleet, warm it, let replication
    // drain, stop the owner of the first key, and replay the warm
    // pass. Keys the dead daemon owned must fail over to their ring
    // successor and still hit exact.
    PassResult fo;
    std::string victim;
    bool drained = false;
    if (!build_failed) {
        Fleet fleet;
        if (fleet.build(4, replicas)) {
            (void)runPass(fleet.cluster, lines, n_threads);
            drained = waitFor(fleet, 30000);
            ClusterClient router(fleet.cluster);
            const auto route = router.routeOf(lines[0]);
            victim = route.empty() ? fleet.nodes[0]->addr : route[0];
            fleet.stopNode(victim);
            fo = runPass(fleet.cluster, lines, n_threads);
            fleet.shutdown();
            std::printf("\nfailover: stopped %s; warm replay qps "
                        "%6.2f, hit rate %.2f, %zu/%zu requests took "
                        "a failover hop\n",
                        victim.c_str(), fo.qps(), fo.warmHitRate(),
                        fo.failover_legs, fo.latencies_s.size());
        } else {
            build_failed = true;
        }
    }

    JsonValue doc = JsonValue::object();
    doc["samples_per_request"] = static_cast<uint64_t>(samples);
    doc["layers"] = static_cast<uint64_t>(layers);
    doc["client_threads"] = static_cast<uint64_t>(n_threads);
    doc["replication_factor"] = static_cast<uint64_t>(replicas);
    JsonValue &fleets_json = doc["fleets"];
    fleets_json = JsonValue::array();
    const double base_cold_qps =
        fleets.empty() ? 0.0 : fleets[0].cold.qps();
    for (const FleetNumbers &fn : fleets) {
        JsonValue j = JsonValue::object();
        j["daemons"] = static_cast<uint64_t>(fn.daemons);
        j["cold"] = passJson(fn.cold);
        j["warm"] = passJson(fn.warm);
        j["cold_qps_vs_one_daemon"] = base_cold_qps > 0.0
            ? fn.cold.qps() / base_cold_qps
            : 0.0;
        fleets_json.push(j);
    }
    JsonValue &fo_json = doc["failover"];
    fo_json["killed_node"] = victim;
    fo_json["replication_drained"] = drained;
    fo_json["warm_replay"] = passJson(fo);
    bench::writeBenchJson("BENCH_cluster_throughput.json", doc);

    bool ok = !build_failed && drained && !fleets.empty();
    for (const FleetNumbers &fn : fleets) {
        ok = ok && fn.cold.failures == 0 && fn.warm.failures == 0 &&
            !fn.warm.latencies_s.empty() &&
            fn.warm.exact_hits == fn.warm.latencies_s.size();
    }
    // The failover replay must lose nothing: every request answered,
    // every one warm, and at least one actually took the failover hop
    // (the victim owned the first key, so its keys are in the
    // stream).
    ok = ok && fo.failures == 0 && !fo.latencies_s.empty() &&
        fo.exact_hits == fo.latencies_s.size() &&
        fo.failover_legs >= 1;
    if (!ok)
        std::fprintf(stderr, "FAIL: cluster bench contract violated "
                             "(see pass numbers above)\n");
    return ok ? 0 : 1;
}

/**
 * @file
 * Shared scaffolding for the experiment reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper. Run
 * them with default (scaled-down) budgets via the build tree, or at
 * paper scale by setting environment variables:
 *   MSE_BENCH_SAMPLES  sample budget per search (default varies)
 *   MSE_BENCH_SECONDS  wall-clock budget for iso-time studies
 *   MSE_BENCH_OUTDIR   directory for CSV dumps (default: skip CSVs)
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace mse::bench {

/** Integer knob from the environment with a default. */
inline size_t
envSize(const char *name, size_t def)
{
    const char *v = std::getenv(name);
    return v ? static_cast<size_t>(std::strtoull(v, nullptr, 10)) : def;
}

/** Floating-point knob from the environment with a default. */
inline double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    return v ? std::strtod(v, nullptr) : def;
}

/** CSV output directory; empty means "don't write CSVs". */
inline std::string
csvDir()
{
    const char *v = std::getenv("MSE_BENCH_OUTDIR");
    return v ? std::string(v) : std::string();
}

/** Print a banner naming the experiment being reproduced. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("=====================================================\n");
    std::printf("%s\n%s\n", experiment, description);
    std::printf("=====================================================\n");
}

/**
 * Emit one BENCH_*.json result document through the shared JSON layer
 * (escaped strings, round-tripping numbers), warning on I/O failure.
 */
inline bool
writeBenchJson(const std::string &path, const JsonValue &doc)
{
    if (!writeJsonFile(path, doc)) {
        std::fprintf(stderr, "WARN: cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
}

/** Print one row of right-aligned scientific-notation cells. */
inline void
sciRow(const std::string &label, const std::vector<double> &cells)
{
    std::printf("%-28s", label.c_str());
    for (double c : cells)
        std::printf(" %11.3e", c);
    std::printf("\n");
}

} // namespace mse::bench

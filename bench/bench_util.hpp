/**
 * @file
 * Shared scaffolding for the experiment reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper. Run
 * them with default (scaled-down) budgets via the build tree, or at
 * paper scale by setting environment variables:
 *   MSE_BENCH_SAMPLES  sample budget per search (default varies)
 *   MSE_BENCH_SECONDS  wall-clock budget for iso-time studies
 *   MSE_BENCH_OUTDIR   directory for CSV dumps (default: skip CSVs)
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace mse::bench {

/** Integer knob from the environment with a default. */
inline size_t
envSize(const char *name, size_t def)
{
    const char *v = std::getenv(name);
    return v ? static_cast<size_t>(std::strtoull(v, nullptr, 10)) : def;
}

/** Floating-point knob from the environment with a default. */
inline double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    return v ? std::strtod(v, nullptr) : def;
}

/** CSV output directory; empty means "don't write CSVs". */
inline std::string
csvDir()
{
    const char *v = std::getenv("MSE_BENCH_OUTDIR");
    return v ? std::string(v) : std::string();
}

/** Print a banner naming the experiment being reproduced. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("=====================================================\n");
    std::printf("%s\n%s\n", experiment, description);
    std::printf("=====================================================\n");
}

// Toolchain identity of this binary, injected by bench/CMakeLists.txt.
// The "unknown" fallbacks keep standalone compiles (clang-tidy, IDE
// stubs) building; real bench binaries always get the definitions.
#ifndef MSE_BUILD_COMPILER_ID
#define MSE_BUILD_COMPILER_ID "unknown"
#endif
#ifndef MSE_BUILD_COMPILER_VERSION
#define MSE_BUILD_COMPILER_VERSION "unknown"
#endif
#ifndef MSE_BUILD_TYPE
#define MSE_BUILD_TYPE "unknown"
#endif
#ifndef MSE_BUILD_CXX_FLAGS
#define MSE_BUILD_CXX_FLAGS "unknown"
#endif

/**
 * The compiler id/version/flags this bench binary was built with.
 * Attached to every BENCH_*.json so throughput numbers always carry the
 * toolchain that produced them — a perf comparison across differing
 * "build" blocks is not like-for-like.
 */
inline JsonValue
buildInfo()
{
    JsonValue b = JsonValue::object();
    b["compiler_id"] = MSE_BUILD_COMPILER_ID;
    b["compiler_version"] = MSE_BUILD_COMPILER_VERSION;
    b["build_type"] = MSE_BUILD_TYPE;
    b["cxx_flags"] = MSE_BUILD_CXX_FLAGS;
    return b;
}

/**
 * Emit one BENCH_*.json result document through the shared JSON layer
 * (escaped strings, round-tripping numbers), warning on I/O failure.
 * Stamps the toolchain block (see buildInfo) under "build" unless the
 * caller already provided one.
 */
inline bool
writeBenchJson(const std::string &path, const JsonValue &doc)
{
    JsonValue stamped = doc;
    if (!stamped.find("build"))
        stamped["build"] = buildInfo();
    if (!writeJsonFile(path, stamped)) {
        std::fprintf(stderr, "WARN: cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
}

/** Print one row of right-aligned scientific-notation cells. */
inline void
sciRow(const std::string &label, const std::vector<double> &cells)
{
    std::printf("%-28s", label.c_str());
    for (double c : cells)
        std::printf(" %11.3e", c);
    std::printf("\n");
}

} // namespace mse::bench

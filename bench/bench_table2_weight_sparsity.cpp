/**
 * @file
 * Table 2 reproduction: MSE for workloads with weight sparsity. For
 * each workload and each weight density in {1.0, 0.5, 0.1, 0.01}, Gamma
 * searches an optimized mapping with the Sparseloop-style cost model;
 * every found mapping is then cross-tested at all four densities. The
 * paper's finding: the diagonal (mapping tailored to the tested
 * density) is the best cell of each row — dense mappings do not port to
 * sparse workloads and vice versa.
 */
#include "bench_util.hpp"
#include "mappers/gamma.hpp"
#include "sparse/sparse_model.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

int
main()
{
    bench::banner("Table 2 — weight-sparsity cross-test",
                  "mappings optimized per weight density, tested across "
                  "densities (EDP, cycles*uJ)");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 6000);
    const std::vector<double> densities = {1.0, 0.5, 0.1, 0.01};
    const ArchConfig arch = accelB();
    const SparseCostModel model;

    size_t diagonal_wins = 0, rows_total = 0;
    for (const Workload &base :
         {resnetConv3(), resnetConv4(), inceptionConv2()}) {
        std::printf("\n%s\n", base.toString().c_str());
        std::printf("%-14s", "tested\\found");
        for (double d : densities)
            std::printf(" %11.2f", d);
        std::printf("\n");

        // Search one mapping per (column) density; best of two seeds to
        // damp GA run-to-run noise.
        std::vector<Mapping> found;
        for (size_t i = 0; i < densities.size(); ++i) {
            Workload wl = base;
            applyDensities(wl, densities[i], 1.0);
            MapSpace space(wl, arch);
            EvalFn eval = [&wl, &arch, &model](const Mapping &m) {
                return model.evaluate(wl, arch, m);
            };
            Mapping best;
            double best_edp = std::numeric_limits<double>::infinity();
            for (uint64_t seed : {31 + i, 131 + i, 231 + i, 331 + i, 431 + i}) {
                // GAMMA's genome has no bypass axis; stay faithful.
                GammaConfig cfg;
                cfg.enable_bypass = false;
                cfg.random_immigrant_prob = 0.0;
                GammaMapper gamma(cfg);
                SearchBudget budget;
                budget.max_samples = samples;
                Rng rng(seed);
                const SearchResult r =
                    gamma.search(space, eval, budget, rng);
                if (r.best_cost.edp < best_edp) {
                    best_edp = r.best_cost.edp;
                    best = r.best_mapping;
                }
            }
            found.push_back(best);
        }

        // Cross-test: rows = tested density, cols = mapping's density.
        for (double tested : densities) {
            Workload wl = base;
            applyDensities(wl, tested, 1.0);
            std::vector<double> row;
            for (const auto &m : found)
                row.push_back(model.evaluate(wl, arch, m).edp);
            std::printf("%-14.2f", tested);
            double best = row[0];
            size_t best_i = 0;
            for (size_t i = 0; i < row.size(); ++i) {
                if (row[i] < best) {
                    best = row[i];
                    best_i = i;
                }
            }
            for (size_t i = 0; i < row.size(); ++i)
                std::printf(" %10.3e%s", row[i], i == best_i ? "*" : " ");
            std::printf("\n");
            ++rows_total;
            // Diagonal cell = the column whose density equals `tested`.
            size_t diag = 0;
            while (densities[diag] != tested)
                ++diag;
            if (best_i == diag ||
                row[diag] <= best * 1.05) { // within 5% of the winner
                ++diagonal_wins;
            }
        }
    }
    std::printf("\nDiagonal best (or within 5%%) in %zu / %zu rows "
                "(paper: all rows)\n",
                diagonal_wins, rows_total);
    std::printf("'*' marks the best cell of each row.\n");
    return 0;
}

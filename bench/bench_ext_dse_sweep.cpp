/**
 * @file
 * Extension experiment: MSE inside a hardware design-space exploration
 * loop (the DSE use-case of Sec. 3, Fig. 2: "MSE may be run ... at
 * design-time in conjunction with DSE"). Sweeps PE count and buffer
 * sizing at iso-ALU-budget, runs a full Gamma MSE per design point, and
 * reports the mapping-optimized EDP of each — showing why DSE
 * conclusions are unreliable without per-point MSE (the best naive-
 * mapping design differs from the best optimized-mapping design).
 */
#include "bench_util.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

int
main()
{
    bench::banner("Extension — DSE x MSE co-exploration",
                  "hardware sweep at 1024 ALUs; per-point mapping "
                  "search vs a fixed naive mapping");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 2500);
    const Workload wl = resnetConv4();

    struct Design { int64_t pes, alus, l2_kb, l1_b; };
    const std::vector<Design> designs = {
        {64, 16, 128, 1024}, {128, 8, 96, 512}, {256, 4, 64, 256},
        {512, 2, 48, 128},   {1024, 1, 32, 64},
    };

    std::printf("%-28s %13s %13s %8s\n", "design (PEs x ALUs, L2, L1)",
                "optimized EDP", "naive EDP", "util%");
    double best_opt = std::numeric_limits<double>::infinity();
    double best_naive = std::numeric_limits<double>::infinity();
    std::string best_opt_name, best_naive_name;
    for (const auto &d : designs) {
        const ArchConfig arch =
            makeNpu("dse", d.l2_kb * 1024, d.l1_b, d.pes, d.alus);
        MapSpace space(wl, arch);
        EvalFn eval = [&](const Mapping &m) {
            return CostModel::evaluate(wl, arch, m);
        };

        GammaMapper gamma;
        SearchBudget budget;
        budget.max_samples = samples;
        Rng rng(3);
        const SearchResult opt = gamma.search(space, eval, budget, rng);

        // Naive mapping: first legal random sample (what a DSE without
        // MSE would implicitly evaluate).
        Rng nrng(4);
        const CostResult naive =
            CostModel::evaluate(wl, arch, space.randomMapping(nrng));

        char name[64];
        std::snprintf(name, sizeof(name), "%lldx%lld, %lldKB, %lldB",
                      static_cast<long long>(d.pes),
                      static_cast<long long>(d.alus),
                      static_cast<long long>(d.l2_kb),
                      static_cast<long long>(d.l1_b));
        std::printf("%-28s %13.3e %13.3e %7.1f%%\n", name,
                    opt.best_cost.edp, naive.edp,
                    100.0 * opt.best_cost.utilization);
        if (opt.best_cost.edp < best_opt) {
            best_opt = opt.best_cost.edp;
            best_opt_name = name;
        }
        if (naive.edp < best_naive) {
            best_naive = naive.edp;
            best_naive_name = name;
        }
    }
    std::printf("\nBest design with per-point MSE:   %s\n",
                best_opt_name.c_str());
    std::printf("Best design judged by naive maps: %s\n",
                best_naive_name.c_str());
    std::printf("When the two differ, DSE without MSE picks the wrong "
                "hardware.\n");
    return 0;
}

/**
 * @file
 * Sec. 4.2 reproduction: size of the map space. Prints the analytic
 * tile / order / parallelism sub-space sizes and their product for the
 * Table-1 workloads on the 3-level hierarchy. Paper: O(10^21) for the
 * CONV workloads discussed in Sec. 4.1.
 */
#include "bench_util.hpp"
#include "mapping/map_space.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

int
main()
{
    bench::banner("Sec. 4.2 — map-space size",
                  "analytic log10 sizes of the tile/order/parallelism "
                  "sub-spaces");
    const std::vector<Workload> workloads = {
        resnetConv3(), resnetConv4(), inceptionConv2(), bertKqv(),
        bertAttn(),    bertFc(),
    };
    std::printf("%-24s %10s %10s %10s %10s\n", "workload", "tile",
                "order", "parallel", "total");
    for (const auto &wl : workloads) {
        for (const ArchConfig &arch : {accelA(), accelB()}) {
            MapSpace space(wl, arch);
            const auto sz = space.size();
            std::printf("%-24s %9.1f %9.1f %9.1f %9.1f   (%s)\n",
                        wl.name().c_str(), sz.log10_tile, sz.log10_order,
                        sz.log10_parallel, sz.log10_total,
                        arch.name.c_str());
        }
    }
    std::printf("\nShape check: CONV workloads on the 3-level hierarchy "
                "should land around 10^21-10^24.\n");
    return 0;
}

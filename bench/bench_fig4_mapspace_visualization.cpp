/**
 * @file
 * Fig. 4 reproduction: visualize how each mapper navigates the map
 * space. A broad random sample of (ResNet Conv_4, Accel-A) mappings is
 * PCA-projected to 3-D; then each mapper's actually-sampled points are
 * projected into the same basis. Writes CSVs (point cloud + per-mapper
 * traces) when MSE_BENCH_OUTDIR is set and prints summary statistics:
 * where each mapper's samples sit in the performance landscape and the
 * quality of the best region it reached.
 */
#include <cmath>
#include <memory>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/pca.hpp"
#include "common/stats.hpp"
#include "mapping/encoding.hpp"
#include "mappers/gamma.hpp"
#include "mappers/mind_mappings.hpp"
#include "mappers/random_pruned.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

struct TracedSample
{
    std::vector<double> enc;
    double edp;
};

/** Wrap an evaluator to record every sampled mapping's encoding. */
EvalFn
tracingEval(const MapSpace &space, std::vector<TracedSample> &out)
{
    return [&space, &out](const Mapping &m) {
        const CostResult c =
            CostModel::evaluate(space.workload(), space.arch(), m);
        if (c.valid)
            out.push_back({encodeMapping(space, m), c.edp});
        return c;
    };
}

} // namespace

int
main()
{
    bench::banner("Fig. 4 — map-space visualization",
                  "PCA projection of the (ResNet Conv_4, Accel-A) map "
                  "space and of each mapper's sampled points");
    const size_t budget = bench::envSize("MSE_BENCH_SAMPLES", 5000);
    const size_t cloud_n = bench::envSize("MSE_BENCH_CLOUD", 8000);

    const Workload wl = resnetConv4();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);

    // (a) The landscape: a broad random sample standing in for the
    // paper's exhaustive sweep.
    Rng rng(1);
    std::vector<TracedSample> cloud;
    std::vector<std::vector<double>> feats;
    while (cloud.size() < cloud_n) {
        const Mapping m = space.randomMapping(rng);
        const CostResult c = CostModel::evaluate(wl, arch, m);
        if (!c.valid)
            continue;
        cloud.push_back({encodeMapping(space, m), c.edp});
        feats.push_back(cloud.back().enc);
    }
    const PcaModel pca = fitPca(feats, 3);
    std::printf("PCA explained variance: %.3f / %.3f / %.3f\n",
                pca.explained_variance[0], pca.explained_variance[1],
                pca.explained_variance[2]);

    std::vector<double> cloud_edps;
    for (const auto &s : cloud)
        cloud_edps.push_back(std::log10(s.edp));
    std::printf("Landscape log10(EDP): min %.2f / p10 %.2f / median %.2f "
                "/ p90 %.2f / max %.2f\n",
                minOf(cloud_edps), percentile(cloud_edps, 10),
                percentile(cloud_edps, 50), percentile(cloud_edps, 90),
                maxOf(cloud_edps));
    const double p10 = percentile(cloud_edps, 10);

    // (b) Each mapper's sampled points.
    struct Trace
    {
        std::string name;
        std::vector<TracedSample> samples;
    };
    std::vector<Trace> traces;
    {
        Trace t{"random-pruned", {}};
        RandomPrunedMapper m;
        SearchBudget b;
        b.max_samples = budget;
        Rng r(2);
        m.search(space, tracingEval(space, t.samples), b, r);
        traces.push_back(std::move(t));
    }
    {
        Trace t{"gamma", {}};
        GammaConfig gcfg;
        gcfg.enable_bypass = false; // paper-faithful three-axis space
        gcfg.random_immigrant_prob = 0.0;
        GammaMapper m(gcfg);
        SearchBudget b;
        b.max_samples = budget;
        Rng r(3);
        m.search(space, tracingEval(space, t.samples), b, r);
        traces.push_back(std::move(t));
    }
    {
        Trace t{"mind-mappings", {}};
        SurrogateConfig scfg;
        scfg.train_samples = 2000;
        Rng sr(4);
        auto sur = std::make_shared<const MindMappingsSurrogate>(
            arch, std::vector<Workload>{wl}, scfg, sr);
        MindMappingsMapper m(sur);
        SearchBudget b;
        b.max_samples = budget;
        Rng r(5);
        m.search(space, tracingEval(space, t.samples), b, r);
        traces.push_back(std::move(t));
    }

    std::printf("\n%-16s %8s %12s %12s %16s\n", "mapper", "samples",
                "best log10EDP", "mean log10EDP",
                "%% samples in top decile");
    for (const auto &t : traces) {
        std::vector<double> edps;
        size_t in_top = 0;
        for (const auto &s : t.samples) {
            edps.push_back(std::log10(s.edp));
            if (edps.back() <= p10)
                ++in_top;
        }
        std::printf("%-16s %8zu %12.2f %12.2f %15.1f%%\n",
                    t.name.c_str(), t.samples.size(), minOf(edps),
                    mean(edps),
                    100.0 * static_cast<double>(in_top) /
                        static_cast<double>(t.samples.size()));
    }
    std::printf("\nShape check: random-pruned's samples concentrate in "
                "the bulk (low %% in top decile);\ngamma explores widely "
                "and reaches a high-performance cluster; mind-mappings "
                "walks\na gradient path that can stall in a local "
                "optimum.\n");

    const std::string outdir = bench::csvDir();
    if (!outdir.empty()) {
        CsvWriter landscape(outdir + "/fig4_landscape.csv");
        landscape.writeRow(
            std::vector<std::string>{"pc1", "pc2", "pc3", "log10_edp"});
        for (const auto &s : cloud) {
            auto p = pca.project(s.enc);
            p.push_back(std::log10(s.edp));
            landscape.writeRow(p);
        }
        for (const auto &t : traces) {
            CsvWriter tw(outdir + "/fig4_" + t.name + ".csv");
            tw.writeRow(std::vector<std::string>{"pc1", "pc2", "pc3",
                                                 "log10_edp"});
            for (const auto &s : t.samples) {
                auto p = pca.project(s.enc);
                p.push_back(std::log10(s.edp));
                tw.writeRow(p);
            }
        }
        std::printf("CSV point clouds written to %s\n", outdir.c_str());
    }
    return 0;
}

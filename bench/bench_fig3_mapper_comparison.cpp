/**
 * @file
 * Fig. 3 reproduction: apples-to-apples comparison of the three mapper
 * families — Random-Pruned (random-based), Gamma (feedback-based) and
 * Mind-Mappings (gradient-based) — under (i) an iso-samples budget and
 * (ii) a tight iso-time budget, on the surrogate's training accelerator
 * (Accel-A, panels a/b) and on an unseen accelerator (Accel-B, panels
 * c/d).
 *
 * Expected shapes (paper Sec. 4.3):
 *  - iso-samples, Accel-A: gradient-based starts fastest, feedback-based
 *    wins by the end, random-based trails;
 *  - iso-samples, Accel-B: gradient-based degrades (surrogate does not
 *    generalize across accelerator configs);
 *  - iso-time: random-based is cost-effective because its per-sample
 *    wall cost is far lower than the learning-based mappers'.
 */
#include <memory>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "mappers/gamma.hpp"
#include "mappers/mind_mappings.hpp"
#include "mappers/random_pruned.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

struct MapperRun
{
    std::string name;
    SearchResult result;
};

std::vector<size_t>
checkpoints(size_t budget)
{
    std::vector<size_t> cps;
    for (size_t c : {10, 30, 100, 300, 1000, 3000, 10000, 30000}) {
        if (c < budget)
            cps.push_back(c);
    }
    cps.push_back(budget);
    return cps;
}

double
bestAt(const SearchLog &log, size_t sample)
{
    if (log.best_edp_per_sample.empty())
        return std::numeric_limits<double>::infinity();
    const size_t idx =
        std::min(sample, log.best_edp_per_sample.size()) - 1;
    return log.best_edp_per_sample[idx];
}

double
bestAtTime(const SearchLog &log, double seconds)
{
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < log.best_edp_per_sample.size(); ++i) {
        if (log.seconds_per_sample[i] <= seconds)
            best = log.best_edp_per_sample[i];
    }
    return best;
}

void
runPanel(const char *panel, const Workload &wl, const ArchConfig &arch,
         const std::shared_ptr<const MindMappingsSurrogate> &surrogate,
         size_t samples, double seconds)
{
    std::printf("\n--- Fig 3(%s): %s on %s ---\n", panel,
                wl.toString().c_str(), arch.name.c_str());
    MapSpace space(wl, arch);
    EvalFn eval = [&wl, &arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };

    std::vector<MapperRun> runs;
    {
        RandomPrunedMapper m;
        SearchBudget b;
        b.max_samples = samples;
        Rng rng(1);
        runs.push_back({m.name(), m.search(space, eval, b, rng)});
    }
    {
        // Paper-faithful three-axis map space: the bypass extension is
        // exercised separately in bench_ablation_design_choices.
        GammaConfig gcfg;
        gcfg.enable_bypass = false;
        gcfg.random_immigrant_prob = 0.0;
        GammaMapper m(gcfg);
        SearchBudget b;
        b.max_samples = samples;
        Rng rng(2);
        runs.push_back({m.name(), m.search(space, eval, b, rng)});
    }
    {
        MindMappingsMapper m(surrogate);
        SearchBudget b;
        b.max_samples = samples;
        Rng rng(3);
        runs.push_back({m.name(), m.search(space, eval, b, rng)});
    }

    std::printf("Iso-samples convergence (best EDP so far, cycles*uJ):\n");
    std::printf("%-28s", "samples");
    for (const auto &r : runs)
        std::printf(" %11s", r.name.c_str());
    std::printf("\n");
    for (size_t cp : checkpoints(samples)) {
        std::vector<double> row;
        for (const auto &r : runs)
            row.push_back(bestAt(r.result.log, cp));
        bench::sciRow(std::to_string(cp), row);
    }

    std::printf("Per-sample wall cost (us/sample):\n");
    for (const auto &r : runs) {
        const double total = r.result.log.seconds_per_sample.empty()
            ? 0.0 : r.result.log.seconds_per_sample.back();
        std::printf("  %-14s %8.2f us/sample over %zu samples\n",
                    r.name.c_str(),
                    1e6 * total /
                        static_cast<double>(r.result.log.samples),
                    r.result.log.samples);
    }

    // Iso-time: re-run with a wall-clock budget only.
    std::printf("Iso-time best EDP within %.3f s:\n", seconds);
    std::vector<MapperRun> truns;
    {
        RandomPrunedMapper m;
        SearchBudget b;
        b.max_samples = SIZE_MAX;
        b.max_seconds = seconds;
        Rng rng(4);
        truns.push_back({m.name(), m.search(space, eval, b, rng)});
    }
    {
        GammaConfig gcfg;
        gcfg.enable_bypass = false;
        gcfg.random_immigrant_prob = 0.0;
        GammaMapper m(gcfg);
        SearchBudget b;
        b.max_samples = SIZE_MAX;
        b.max_seconds = seconds;
        Rng rng(5);
        truns.push_back({m.name(), m.search(space, eval, b, rng)});
    }
    {
        MindMappingsMapper m(surrogate);
        SearchBudget b;
        b.max_samples = SIZE_MAX;
        b.max_seconds = seconds;
        Rng rng(6);
        truns.push_back({m.name(), m.search(space, eval, b, rng)});
    }
    for (double frac : {0.25, 0.5, 1.0}) {
        std::vector<double> row;
        for (const auto &r : truns)
            row.push_back(bestAtTime(r.result.log, seconds * frac));
        bench::sciRow("t=" + std::to_string(seconds * frac) + "s", row);
    }
    for (const auto &r : truns) {
        std::printf("  %-14s evaluated %zu samples in the time budget\n",
                    r.name.c_str(), r.result.log.samples);
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 3 — mapper comparison",
                  "Random-Pruned vs Gamma vs Mind-Mappings, iso-samples "
                  "and iso-time, trained (Accel-A) and unseen (Accel-B) "
                  "accelerators");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 5000);
    const double seconds = bench::envDouble("MSE_BENCH_SECONDS", 0.05);

    // Offline surrogate training on Accel-A only (the Fig. 3 protocol).
    std::printf("Training Mind-Mappings surrogate on %s...\n",
                accelA().name.c_str());
    SurrogateConfig scfg;
    scfg.train_samples = bench::envSize("MSE_BENCH_SURROGATE_SAMPLES",
                                        4000);
    Rng srng(99);
    const auto surrogate = std::make_shared<const MindMappingsSurrogate>(
        accelA(),
        std::vector<Workload>{resnetConv3(), resnetConv4(), bertKqv(),
                              bertAttn()},
        scfg, srng);
    std::printf("Surrogate training loss (normalized): %.3f\n",
                surrogate->trainingLoss());

    runPanel("a", resnetConv4(), accelA(), surrogate, samples, seconds);
    runPanel("b", bertKqv(), accelA(), surrogate, samples, seconds);
    runPanel("c", resnetConv4(), accelB(), surrogate, samples, seconds);
    runPanel("d", bertKqv(), accelB(), surrogate, samples, seconds);

    std::printf("\nPaper-shape checklist: gamma should reach the lowest "
                "EDP at the full sample budget;\nmind-mappings should "
                "lead at small sample counts on Accel-A but lose that "
                "edge on Accel-B;\nrandom-pruned should run the most "
                "samples within the iso-time budget.\n");
    return 0;
}

/**
 * @file
 * Service throughput bench: cold vs store-warmed request streams over
 * the real TCP front end.
 *
 * Starts mse_serve's stack in-process (MseService + ServiceServer on
 * an ephemeral loopback port), then plays the same layer stream twice
 * over line-delimited JSON:
 *
 *   pass 1 (cold):  empty mapping store — every request cold-starts;
 *   pass 2 (warm):  the store now holds pass 1's best mappings — every
 *                   request warm-starts from an exact store hit.
 *
 * Reports per-pass QPS and client-observed latency percentiles, plus
 * the warm-start win: mean samples-to-incumbent (how many cost-model
 * samples until the search matches the stored best's quality) must
 * collapse on the warm pass, mirroring the paper's Sec. 5.1 result at
 * service granularity. Emits BENCH_service_throughput.json.
 *
 * `bench_service_throughput smoke` (or MSE_BENCH_SMOKE=1) shrinks the
 * stream and budgets for CI.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "workload/workload_io.hpp"

using namespace mse;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** One request line of the bench stream. */
std::string
searchRequestLine(const Workload &wl, size_t samples)
{
    JsonValue req = JsonValue::object();
    req["type"] = "search";
    req["workload"] = serializeWorkload(wl);
    req["arch"] = "accel-A";
    req["max_samples"] = static_cast<uint64_t>(samples);
    return req.dump();
}

/** Client-side measurements of one pass over the stream. */
struct PassResult
{
    std::vector<double> latencies_s; // per request, sorted afterwards
    double wall_seconds = 0.0;
    double sum_samples_to_incumbent = 0.0;
    double sum_score = 0.0;
    size_t exact_hits = 0;
    size_t failures = 0;

    double qps() const
    {
        return wall_seconds > 0.0
            ? static_cast<double>(latencies_s.size()) / wall_seconds
            : 0.0;
    }

    double
    percentile(double p) const
    {
        if (latencies_s.empty())
            return 0.0;
        const double idx =
            p * static_cast<double>(latencies_s.size() - 1);
        const size_t lo = static_cast<size_t>(idx);
        const size_t hi = std::min(lo + 1, latencies_s.size() - 1);
        const double frac = idx - static_cast<double>(lo);
        return latencies_s[lo] * (1.0 - frac) + latencies_s[hi] * frac;
    }
};

/** Play the stream once over one TCP connection. */
PassResult
runPass(uint16_t port, const std::vector<std::string> &lines)
{
    PassResult out;
    std::string err;
    const int fd = connectTcp("127.0.0.1", port, &err);
    if (fd < 0) {
        std::fprintf(stderr, "connect failed: %s\n", err.c_str());
        out.failures = lines.size();
        return out;
    }
    LineReader reader(fd);
    const double t0 = nowSeconds();
    for (const auto &line : lines) {
        const double r0 = nowSeconds();
        std::string reply;
        if (!sendLine(fd, line) ||
            reader.readLine(&reply, 600000) !=
                LineReader::Status::Line) {
            ++out.failures;
            continue;
        }
        const double lat = nowSeconds() - r0;
        const auto doc = parseJson(reply);
        if (!doc || !doc->getBool("ok", false)) {
            ++out.failures;
            continue;
        }
        out.latencies_s.push_back(lat);
        out.sum_samples_to_incumbent += static_cast<double>(
            doc->getInt("samples_to_incumbent", 0));
        out.sum_score += doc->getDouble("score", 0.0);
        if (doc->getString("store", "") == "exact")
            ++out.exact_hits;
    }
    out.wall_seconds = nowSeconds() - t0;
    closeSocket(fd);
    std::sort(out.latencies_s.begin(), out.latencies_s.end());
    return out;
}

JsonValue
passJson(const PassResult &r)
{
    JsonValue j = JsonValue::object();
    const size_t n = r.latencies_s.size();
    j["requests_ok"] = static_cast<uint64_t>(n);
    j["failures"] = static_cast<uint64_t>(r.failures);
    j["qps"] = r.qps();
    j["p50_ms"] = r.percentile(0.50) * 1e3;
    j["p95_ms"] = r.percentile(0.95) * 1e3;
    j["p99_ms"] = r.percentile(0.99) * 1e3;
    j["store_exact_hits"] = static_cast<uint64_t>(r.exact_hits);
    j["mean_samples_to_incumbent"] =
        n ? r.sum_samples_to_incumbent / static_cast<double>(n) : 0.0;
    j["mean_score"] =
        n ? r.sum_score / static_cast<double>(n) : 0.0;
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        (argc > 1 && std::strcmp(argv[1], "smoke") == 0) ||
        bench::envSize("MSE_BENCH_SMOKE", 0) != 0;
    bench::banner("Mapping-search service throughput",
                  "cold vs store-warmed request streams over the "
                  "line-JSON TCP front end");

    const size_t samples =
        bench::envSize("MSE_BENCH_SAMPLES", smoke ? 300 : 1500);
    const size_t repeats =
        bench::envSize("MSE_BENCH_REPEATS", smoke ? 1 : 2);

    // Distinct layers = distinct store keys: a BERT-ish GEMM mix plus
    // two CONV layers so both workload shapes hit the wire codec.
    std::vector<Workload> stream = {
        makeGemm("g0", 16, 512, 512, 256),
        makeGemm("g1", 16, 256, 1024, 256),
        makeGemm("g2", 16, 1024, 256, 512),
        makeConv2d("c0", 8, 64, 64, 28, 28, 3, 3),
    };
    if (!smoke) {
        stream.push_back(makeGemm("g3", 16, 512, 256, 1024));
        stream.push_back(makeGemm("g4", 32, 512, 512, 512));
        stream.push_back(makeConv2d("c1", 8, 128, 128, 14, 14, 3, 3));
        stream.push_back(makeConv2d("c2", 8, 256, 64, 14, 14, 1, 1));
    }
    std::vector<std::string> lines;
    for (size_t rep = 0; rep < repeats; ++rep)
        for (const auto &wl : stream)
            lines.push_back(searchRequestLine(wl, samples));

    ServiceConfig svc_cfg; // in-memory store
    MseService service(svc_cfg);
    ServiceServer server(service);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "server start failed: %s\n", err.c_str());
        return 1;
    }

    std::printf("stream: %zu requests (%zu layers x %zu), %zu "
                "samples each, port %u\n\n",
                lines.size(), stream.size(), repeats, samples,
                server.port());

    const PassResult cold = runPass(server.port(), lines);
    const PassResult warm = runPass(server.port(), lines);

    const auto show = [](const char *name, const PassResult &r) {
        std::printf("%-5s qps %7.2f   p50 %8.2f ms   p95 %8.2f ms   "
                    "p99 %8.2f ms   exact-hits %zu/%zu   "
                    "samples-to-incumbent %8.1f\n",
                    name, r.qps(), r.percentile(0.5) * 1e3,
                    r.percentile(0.95) * 1e3, r.percentile(0.99) * 1e3,
                    r.exact_hits, r.latencies_s.size(),
                    r.latencies_s.empty()
                        ? 0.0
                        : r.sum_samples_to_incumbent /
                            static_cast<double>(r.latencies_s.size()));
    };
    show("cold", cold);
    show("warm", warm);

    const double cold_sti = cold.latencies_s.empty()
        ? 0.0
        : cold.sum_samples_to_incumbent /
            static_cast<double>(cold.latencies_s.size());
    const double warm_sti = warm.latencies_s.empty()
        ? 0.0
        : warm.sum_samples_to_incumbent /
            static_cast<double>(warm.latencies_s.size());
    std::printf("\nwarm-start win: samples-to-incumbent %.1f -> %.1f "
                "(%.1fx fewer)\n",
                cold_sti, warm_sti,
                warm_sti > 0.0 ? cold_sti / warm_sti : 0.0);

    // Grab the service's own metrics for the record.
    JsonValue stats; // null until the stats request succeeds
    {
        const int fd = connectTcp("127.0.0.1", server.port(), &err);
        if (fd >= 0) {
            JsonValue req = JsonValue::object();
            req["type"] = "stats";
            std::string reply;
            LineReader reader(fd);
            if (sendLine(fd, req.dump()) &&
                reader.readLine(&reply, 60000) ==
                    LineReader::Status::Line) {
                if (auto doc = parseJson(reply))
                    if (const JsonValue *s = doc->find("stats"))
                        stats = *s;
            }
            closeSocket(fd);
        }
    }
    server.stop();

    JsonValue doc = JsonValue::object();
    doc["samples_per_request"] = static_cast<uint64_t>(samples);
    doc["layers"] = static_cast<uint64_t>(stream.size());
    doc["repeats"] = static_cast<uint64_t>(repeats);
    doc["requests_per_pass"] = static_cast<uint64_t>(lines.size());
    JsonValue &passes = doc["passes"];
    passes["cold"] = passJson(cold);
    passes["warm"] = passJson(warm);
    JsonValue &win = doc["warm_vs_cold"];
    win["mean_samples_to_incumbent_cold"] = cold_sti;
    win["mean_samples_to_incumbent_warm"] = warm_sti;
    win["samples_to_incumbent_speedup"] =
        warm_sti > 0.0 ? cold_sti / warm_sti : 0.0;
    win["qps_ratio"] =
        cold.qps() > 0.0 ? warm.qps() / cold.qps() : 0.0;
    doc["service_stats"] = stats;
    bench::writeBenchJson("BENCH_service_throughput.json", doc);

    // A store that degraded mid-bench (or a run with faults armed)
    // invalidates the warm-pass numbers — fail loudly, don't publish.
    bool tainted = false;
    if (const JsonValue *st = stats.find("store"))
        tainted = st->getBool("degraded", false);
    tainted = tainted || stats.find("faults") != nullptr;

    const bool ok = cold.failures == 0 && warm.failures == 0 &&
        warm.exact_hits == warm.latencies_s.size() &&
        !warm.latencies_s.empty() && warm_sti <= cold_sti && !tainted;
    if (tainted)
        std::fprintf(stderr, "FAIL: store degraded or faults armed "
                             "during the bench\n");
    else if (!ok)
        std::fprintf(stderr, "FAIL: warm pass did not beat cold\n");
    return ok ? 0 : 1;
}

/**
 * @file
 * Service throughput bench: cold vs store-warmed request streams over
 * the real TCP front end.
 *
 * Starts mse_serve's stack in-process (MseService + ServiceServer on
 * an ephemeral loopback port), then plays the same layer stream twice
 * over line-delimited JSON:
 *
 *   pass 1 (cold):  empty mapping store — every request cold-starts;
 *   pass 2 (warm):  the store now holds pass 1's best mappings — every
 *                   request warm-starts from an exact store hit.
 *
 * Reports per-pass QPS and client-observed latency percentiles, plus
 * the warm-start win: mean samples-to-incumbent (how many cost-model
 * samples until the search matches the stored best's quality) must
 * collapse on the warm pass, mirroring the paper's Sec. 5.1 result at
 * service granularity. Emits BENCH_service_throughput.json.
 *
 * A second section sweeps the *front end* itself: ping streams over
 * 1/32/256 (full mode: +1024, event only) concurrent connections,
 * with and without request pipelining, against both server backends.
 * Pings cost the service nothing, so the sweep isolates what the
 * paper's service layer adds around the search: connection handling,
 * framing, and reply dispatch. The headline figure is the
 * event-vs-threaded QPS ratio at high connection counts.
 *
 * `bench_service_throughput smoke` (or MSE_BENCH_SMOKE=1) shrinks the
 * stream and budgets for CI.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "workload/workload_io.hpp"

using namespace mse;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** One request line of the bench stream. */
std::string
searchRequestLine(const Workload &wl, size_t samples)
{
    JsonValue req = JsonValue::object();
    req["type"] = "search";
    req["workload"] = serializeWorkload(wl);
    req["arch"] = "accel-A";
    req["max_samples"] = static_cast<uint64_t>(samples);
    return req.dump();
}

/** Client-side measurements of one pass over the stream. */
struct PassResult
{
    std::vector<double> latencies_s; // per request, sorted afterwards
    double wall_seconds = 0.0;
    double sum_samples_to_incumbent = 0.0;
    double sum_score = 0.0;
    size_t exact_hits = 0;
    size_t failures = 0;

    double qps() const
    {
        return wall_seconds > 0.0
            ? static_cast<double>(latencies_s.size()) / wall_seconds
            : 0.0;
    }

    double
    percentile(double p) const
    {
        if (latencies_s.empty())
            return 0.0;
        const double idx =
            p * static_cast<double>(latencies_s.size() - 1);
        const size_t lo = static_cast<size_t>(idx);
        const size_t hi = std::min(lo + 1, latencies_s.size() - 1);
        const double frac = idx - static_cast<double>(lo);
        return latencies_s[lo] * (1.0 - frac) + latencies_s[hi] * frac;
    }
};

/** Play the stream once over one TCP connection. */
PassResult
runPass(uint16_t port, const std::vector<std::string> &lines)
{
    PassResult out;
    std::string err;
    const int fd = connectTcp("127.0.0.1", port, &err);
    if (fd < 0) {
        std::fprintf(stderr, "connect failed: %s\n", err.c_str());
        out.failures = lines.size();
        return out;
    }
    LineReader reader(fd);
    const double t0 = nowSeconds();
    for (const auto &line : lines) {
        const double r0 = nowSeconds();
        std::string reply;
        if (!sendLine(fd, line) ||
            reader.readLine(&reply, 600000) !=
                LineReader::Status::Line) {
            ++out.failures;
            continue;
        }
        const double lat = nowSeconds() - r0;
        const auto doc = parseJson(reply);
        if (!doc || !doc->getBool("ok", false)) {
            ++out.failures;
            continue;
        }
        out.latencies_s.push_back(lat);
        out.sum_samples_to_incumbent += static_cast<double>(
            doc->getInt("samples_to_incumbent", 0));
        out.sum_score += doc->getDouble("score", 0.0);
        if (doc->getString("store", "") == "exact")
            ++out.exact_hits;
    }
    out.wall_seconds = nowSeconds() - t0;
    closeSocket(fd);
    std::sort(out.latencies_s.begin(), out.latencies_s.end());
    return out;
}

JsonValue
passJson(const PassResult &r)
{
    JsonValue j = JsonValue::object();
    const size_t n = r.latencies_s.size();
    j["requests_ok"] = static_cast<uint64_t>(n);
    j["failures"] = static_cast<uint64_t>(r.failures);
    j["qps"] = r.qps();
    j["p50_ms"] = r.percentile(0.50) * 1e3;
    j["p95_ms"] = r.percentile(0.95) * 1e3;
    j["p99_ms"] = r.percentile(0.99) * 1e3;
    j["store_exact_hits"] = static_cast<uint64_t>(r.exact_hits);
    j["mean_samples_to_incumbent"] =
        n ? r.sum_samples_to_incumbent / static_cast<double>(n) : 0.0;
    j["mean_score"] =
        n ? r.sum_score / static_cast<double>(n) : 0.0;
    return j;
}

// ------------------------------------------------- concurrency sweep

/** One cell of the front-end sweep. */
struct SweepCell
{
    const char *backend = "";
    size_t conns = 0;
    size_t pipeline = 0;
    size_t requests = 0;
    size_t failures = 0;
    double wall_seconds = 0.0;

    double qps() const
    {
        return wall_seconds > 0.0
            ? static_cast<double>(requests) / wall_seconds
            : 0.0;
    }
};

/**
 * Ping `conns` concurrent connections, `pipeline` requests per batch,
 * `batches` batches per connection, against a fresh server of the
 * given backend. Client side: min(8, conns) threads, each owning an
 * equal slice of the connections and playing batched
 * send-P-then-read-P rounds over every owned connection.
 */
SweepCell
runSweepCell(ServerConfig::Backend backend, size_t conns,
             size_t pipeline, size_t batches)
{
    SweepCell cell;
    cell.backend =
        backend == ServerConfig::Backend::Event ? "event" : "threaded";
    cell.conns = conns;
    cell.pipeline = pipeline;

    ServiceConfig scfg;
    MseService service(scfg);
    ServerConfig ncfg;
    ncfg.backend = backend;
    ncfg.max_connections = conns + 8;
    ServiceServer server(service, ncfg);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "sweep server start failed: %s\n",
                     err.c_str());
        cell.failures = conns * pipeline * batches;
        return cell;
    }

    JsonValue ping = JsonValue::object();
    ping["type"] = "ping";
    std::string payload;
    for (size_t i = 0; i < pipeline; ++i) {
        payload += ping.dump();
        payload += '\n';
    }

    const size_t n_threads = std::min<size_t>(8, conns);
    std::vector<std::vector<int>> owned(n_threads);
    std::atomic<size_t> failures{0};
    size_t connected = 0;
    for (size_t i = 0; i < conns; ++i) {
        const int fd = connectTcp("127.0.0.1", server.port(), &err);
        if (fd < 0) {
            failures += pipeline * batches;
            continue;
        }
        owned[i % n_threads].push_back(fd);
        ++connected;
    }

    const double t0 = nowSeconds();
    std::vector<std::thread> clients;
    clients.reserve(n_threads);
    for (size_t t = 0; t < n_threads; ++t) {
        clients.emplace_back([&, t] {
            std::vector<std::unique_ptr<LineReader>> readers;
            readers.reserve(owned[t].size());
            for (const int fd : owned[t])
                readers.push_back(std::make_unique<LineReader>(fd));
            for (size_t b = 0; b < batches; ++b) {
                // All owned connections keep `pipeline` requests in
                // flight at once: write every batch, then read every
                // batch, so the server sees the full concurrency.
                for (const int fd : owned[t])
                    if (!sendAll(fd, payload.data(), payload.size()))
                        failures += pipeline;
                for (size_t c = 0; c < owned[t].size(); ++c) {
                    for (size_t k = 0; k < pipeline; ++k) {
                        std::string reply;
                        if (readers[c]->readLine(&reply, 60000) !=
                            LineReader::Status::Line)
                            ++failures;
                    }
                }
            }
        });
    }
    for (auto &c : clients)
        c.join();
    cell.wall_seconds = nowSeconds() - t0;
    for (auto &fds : owned)
        for (const int fd : fds)
            closeSocket(fd);
    server.stop();

    const size_t attempted = connected * pipeline * batches;
    const size_t failed = failures.load();
    cell.requests = attempted > failed ? attempted - failed : 0;
    cell.failures = failed + (conns - connected) * pipeline * batches;
    return cell;
}

JsonValue
sweepCellJson(const SweepCell &c)
{
    JsonValue j = JsonValue::object();
    j["backend"] = c.backend;
    j["connections"] = static_cast<uint64_t>(c.conns);
    j["pipeline"] = static_cast<uint64_t>(c.pipeline);
    j["requests"] = static_cast<uint64_t>(c.requests);
    j["failures"] = static_cast<uint64_t>(c.failures);
    j["qps"] = c.qps();
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        (argc > 1 && std::strcmp(argv[1], "smoke") == 0) ||
        bench::envSize("MSE_BENCH_SMOKE", 0) != 0;
    bench::banner("Mapping-search service throughput",
                  "cold vs store-warmed request streams over the "
                  "line-JSON TCP front end");

    const size_t samples =
        bench::envSize("MSE_BENCH_SAMPLES", smoke ? 300 : 1500);
    const size_t repeats =
        bench::envSize("MSE_BENCH_REPEATS", smoke ? 1 : 2);

    // Distinct layers = distinct store keys: a BERT-ish GEMM mix plus
    // two CONV layers so both workload shapes hit the wire codec.
    std::vector<Workload> stream = {
        makeGemm("g0", 16, 512, 512, 256),
        makeGemm("g1", 16, 256, 1024, 256),
        makeGemm("g2", 16, 1024, 256, 512),
        makeConv2d("c0", 8, 64, 64, 28, 28, 3, 3),
    };
    if (!smoke) {
        stream.push_back(makeGemm("g3", 16, 512, 256, 1024));
        stream.push_back(makeGemm("g4", 32, 512, 512, 512));
        stream.push_back(makeConv2d("c1", 8, 128, 128, 14, 14, 3, 3));
        stream.push_back(makeConv2d("c2", 8, 256, 64, 14, 14, 1, 1));
    }
    std::vector<std::string> lines;
    for (size_t rep = 0; rep < repeats; ++rep)
        for (const auto &wl : stream)
            lines.push_back(searchRequestLine(wl, samples));

    ServiceConfig svc_cfg; // in-memory store
    MseService service(svc_cfg);
    ServiceServer server(service);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "server start failed: %s\n", err.c_str());
        return 1;
    }

    std::printf("stream: %zu requests (%zu layers x %zu), %zu "
                "samples each, port %u\n\n",
                lines.size(), stream.size(), repeats, samples,
                server.port());

    const PassResult cold = runPass(server.port(), lines);
    const PassResult warm = runPass(server.port(), lines);

    const auto show = [](const char *name, const PassResult &r) {
        std::printf("%-5s qps %7.2f   p50 %8.2f ms   p95 %8.2f ms   "
                    "p99 %8.2f ms   exact-hits %zu/%zu   "
                    "samples-to-incumbent %8.1f\n",
                    name, r.qps(), r.percentile(0.5) * 1e3,
                    r.percentile(0.95) * 1e3, r.percentile(0.99) * 1e3,
                    r.exact_hits, r.latencies_s.size(),
                    r.latencies_s.empty()
                        ? 0.0
                        : r.sum_samples_to_incumbent /
                            static_cast<double>(r.latencies_s.size()));
    };
    show("cold", cold);
    show("warm", warm);

    const double cold_sti = cold.latencies_s.empty()
        ? 0.0
        : cold.sum_samples_to_incumbent /
            static_cast<double>(cold.latencies_s.size());
    const double warm_sti = warm.latencies_s.empty()
        ? 0.0
        : warm.sum_samples_to_incumbent /
            static_cast<double>(warm.latencies_s.size());
    std::printf("\nwarm-start win: samples-to-incumbent %.1f -> %.1f "
                "(%.1fx fewer)\n",
                cold_sti, warm_sti,
                warm_sti > 0.0 ? cold_sti / warm_sti : 0.0);

    // Grab the service's own metrics for the record.
    JsonValue stats; // null until the stats request succeeds
    {
        const int fd = connectTcp("127.0.0.1", server.port(), &err);
        if (fd >= 0) {
            JsonValue req = JsonValue::object();
            req["type"] = "stats";
            std::string reply;
            LineReader reader(fd);
            if (sendLine(fd, req.dump()) &&
                reader.readLine(&reply, 60000) ==
                    LineReader::Status::Line) {
                if (auto doc = parseJson(reply))
                    if (const JsonValue *s = doc->find("stats"))
                        stats = *s;
            }
            closeSocket(fd);
        }
    }
    server.stop();

    // Front-end sweep: cheap pings isolate connection handling,
    // framing, and dispatch from search cost.
    std::printf("\nfront-end sweep (ping, batched):\n");
    const size_t batches =
        bench::envSize("MSE_BENCH_SWEEP_BATCHES", smoke ? 3 : 20);
    std::vector<size_t> conn_counts = {1, 32, 256};
    std::vector<size_t> pipelines = {1, 16};
    std::vector<SweepCell> cells;
    for (const size_t conns : conn_counts) {
        for (const size_t p : pipelines) {
            for (const auto backend :
                 {ServerConfig::Backend::Event,
                  ServerConfig::Backend::Threaded}) {
                const SweepCell cell =
                    runSweepCell(backend, conns, p, batches);
                std::printf("  %-8s conns %4zu  pipeline %2zu  qps "
                            "%9.0f  failures %zu\n",
                            cell.backend, cell.conns, cell.pipeline,
                            cell.qps(), cell.failures);
                cells.push_back(cell);
            }
        }
    }
    if (!smoke) {
        // 1024 connections: event loop only. A thread per connection
        // at that scale measures the scheduler, not the server.
        for (const size_t p : pipelines) {
            const SweepCell cell = runSweepCell(
                ServerConfig::Backend::Event, 1024, p, batches);
            std::printf("  %-8s conns %4zu  pipeline %2zu  qps "
                        "%9.0f  failures %zu\n",
                        cell.backend, cell.conns, cell.pipeline,
                        cell.qps(), cell.failures);
            cells.push_back(cell);
        }
        std::printf("  (threaded backend capped at 256 connections)\n");
    } else {
        std::printf("  (smoke mode: 1024-connection cells skipped)\n");
    }

    // Headline ratio: event vs threaded at the highest shared
    // connection count, pipelined.
    double event_qps_256 = 0.0, threaded_qps_256 = 0.0;
    for (const SweepCell &c : cells) {
        if (c.conns == 256 && c.pipeline == 16) {
            if (std::strcmp(c.backend, "event") == 0)
                event_qps_256 = c.qps();
            else
                threaded_qps_256 = c.qps();
        }
    }
    const double ratio_256 = threaded_qps_256 > 0.0
        ? event_qps_256 / threaded_qps_256
        : 0.0;
    std::printf("  event/threaded qps ratio @256 conns, pipeline 16: "
                "%.2fx\n",
                ratio_256);

    JsonValue doc = JsonValue::object();
    doc["samples_per_request"] = static_cast<uint64_t>(samples);
    doc["layers"] = static_cast<uint64_t>(stream.size());
    doc["repeats"] = static_cast<uint64_t>(repeats);
    doc["requests_per_pass"] = static_cast<uint64_t>(lines.size());
    JsonValue &passes = doc["passes"];
    passes["cold"] = passJson(cold);
    passes["warm"] = passJson(warm);
    JsonValue &win = doc["warm_vs_cold"];
    win["mean_samples_to_incumbent_cold"] = cold_sti;
    win["mean_samples_to_incumbent_warm"] = warm_sti;
    win["samples_to_incumbent_speedup"] =
        warm_sti > 0.0 ? cold_sti / warm_sti : 0.0;
    win["qps_ratio"] =
        cold.qps() > 0.0 ? warm.qps() / cold.qps() : 0.0;
    doc["service_stats"] = stats;
    JsonValue &sweep = doc["frontend_sweep"];
    sweep["batches_per_connection"] = static_cast<uint64_t>(batches);
    JsonValue &cells_json = sweep["cells"];
    cells_json = JsonValue::array();
    size_t sweep_failures = 0;
    for (const SweepCell &c : cells) {
        cells_json.push(sweepCellJson(c));
        sweep_failures += c.failures;
    }
    sweep["event_qps_at_256x16"] = event_qps_256;
    sweep["threaded_qps_at_256x16"] = threaded_qps_256;
    sweep["event_vs_threaded_qps_ratio_at_256x16"] = ratio_256;
    bench::writeBenchJson("BENCH_service_throughput.json", doc);

    // A store that degraded mid-bench (or a run with faults armed)
    // invalidates the warm-pass numbers — fail loudly, don't publish.
    bool tainted = false;
    if (const JsonValue *st = stats.find("store"))
        tainted = st->getBool("degraded", false);
    tainted = tainted || stats.find("faults") != nullptr;

    const bool ok = cold.failures == 0 && warm.failures == 0 &&
        warm.exact_hits == warm.latencies_s.size() &&
        !warm.latencies_s.empty() && warm_sti <= cold_sti &&
        sweep_failures == 0 && !tainted;
    if (sweep_failures != 0)
        std::fprintf(stderr, "FAIL: %zu front-end sweep failures\n",
                     sweep_failures);
    if (tainted)
        std::fprintf(stderr, "FAIL: store degraded or faults armed "
                             "during the bench\n");
    else if (!ok)
        std::fprintf(stderr, "FAIL: warm pass did not beat cold\n");
    return ok ? 0 : 1;
}

/**
 * @file
 * Table 3 reproduction: inner- vs outer-product style mappings on
 * sparse-dense BERT-large GEMMs. For each workload and density, the
 * loop order is fixed to one style (reduction innermost = inner
 * product, reduction outermost = outer product) and Gamma searches the
 * remaining axes (tile sizes + parallelism). Paper finding: inner
 * product wins at density >= 0.5, outer product wins at <= 0.1.
 */
#include "bench_util.hpp"
#include "mappers/gamma.hpp"
#include "sparse/sparse_model.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

double
searchWithStyle(const Workload &wl, const ArchConfig &arch, bool inner,
                size_t samples, uint64_t seed)
{
    MapSpace space(wl, arch);
    const SparseCostModel model;
    // The evaluator enforces the dataflow style: any candidate is
    // reordered to the fixed style before costing.
    EvalFn eval = [&](const Mapping &cand) {
        Mapping m = cand;
        if (inner)
            fixOrderInnerProduct(wl, m);
        else
            fixOrderOuterProduct(wl, m);
        return model.evaluate(wl, arch, m);
    };
    GammaConfig cfg;
    cfg.enable_order = false;  // order axis is fixed by the style
    cfg.enable_bypass = false; // GAMMA's genome has no bypass axis
    cfg.random_immigrant_prob = 0.0;
    double best = std::numeric_limits<double>::infinity();
    for (int restart = 0; restart < 3; ++restart) {
        GammaMapper gamma(cfg);
        // Seed with mappings whose reduction tiling sits entirely in the
        // shared buffer (partial sums merge on-chip before touching
        // DRAM) — the canonical starting point for both product styles.
        Rng seed_rng(seed + 500 * restart);
        std::vector<Mapping> seeds;
        for (int s = 0; s < 4; ++s) {
            Mapping m = space.randomMapping(seed_rng);
            const int l2 = 1;
            for (int d : wl.reductionDims()) {
                const int64_t total = m.totalFactor(d);
                for (int l = 0; l < m.numLevels(); ++l) {
                    m.level(l).temporal[d] = 1;
                    m.level(l).spatial[d] = 1;
                }
                m.level(l2).temporal[d] = total;
            }
            space.repair(m);
            seeds.push_back(m);
        }
        gamma.setInitialMappings(seeds);
        SearchBudget budget;
        budget.max_samples = samples;
        Rng rng(seed + 1000 * restart);
        best = std::min(
            best, gamma.search(space, eval, budget, rng).best_cost.edp);
    }
    return best;
}

} // namespace

int
main()
{
    bench::banner("Table 3 — inner vs outer product",
                  "optimized EDP of style-fixed mappings on BERT-large "
                  "GEMMs (cycles*uJ)");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 5000);
    const std::vector<double> densities = {1.0, 0.5, 0.1, 0.01};
    const ArchConfig arch = accelB();

    std::printf("%-10s", "density");
    for (const char *w : {"KQV", "Attn", "FC"}) {
        std::printf(" %11s-in %10s-out", w, w);
    }
    std::printf("\n");

    int inner_wins_dense = 0, outer_wins_sparse = 0;
    for (double d : densities) {
        std::printf("%-10.2f", d);
        int col = 0;
        for (const Workload &base : {bertKqv(), bertAttn(), bertFc()}) {
            Workload wl = base;
            applyDensities(wl, d, d);
            const double inner =
                searchWithStyle(wl, arch, true, samples, 11 + col);
            const double outer =
                searchWithStyle(wl, arch, false, samples, 23 + col);
            std::printf(" %13.3e %13.3e", inner, outer);
            if (d >= 0.5 && inner <= outer)
                ++inner_wins_dense;
            if (d <= 0.1 && outer <= inner)
                ++outer_wins_sparse;
            ++col;
        }
        std::printf("\n");
    }
    std::printf("\nInner product wins %d/6 dense cells (d >= 0.5); "
                "outer product wins %d/6 sparse cells (d <= 0.1).\n",
                inner_wins_dense, outer_wins_sparse);
    std::printf("Paper shape: inner consistently ahead at d >= 0.5, "
                "outer ahead at d <= 0.1.\n");
    return 0;
}

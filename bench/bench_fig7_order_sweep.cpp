/**
 * @file
 * Fig. 7 reproduction: exhaustive loop-order sweep. Starting from a
 * Gamma-optimized mapping of (ResNet Conv_4, Accel-B), sweep all
 * 7! = 5040 order permutations applied uniformly to every buffer level
 * (the paper's complexity-relaxation) and report the number of distinct
 * EDP groups and the best/worst ratio. Paper: 16 distinct EDP values,
 * 14.4x spread; the originally-found order falls in the best group.
 */
#include <algorithm>
#include <map>

#include "bench_util.hpp"
#include "common/permutation.hpp"
#include "mappers/gamma.hpp"
#include "mappers/order_sweep.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

int
main()
{
    bench::banner("Fig. 7 — loop-order sweep",
                  "all 5040 uniform order permutations of an optimized "
                  "(ResNet Conv_4, Accel-B) mapping");
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&wl, &arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };

    // Optimize a mapping first (the sweep perturbs only its order).
    GammaConfig gcfg;
    gcfg.enable_bypass = false; // paper-faithful three-axis space
    gcfg.random_immigrant_prob = 0.0;
    GammaMapper gamma(gcfg);
    SearchBudget budget;
    budget.max_samples = bench::envSize("MSE_BENCH_SAMPLES", 3000);
    Rng rng(1);
    const SearchResult opt = gamma.search(space, eval, budget, rng);
    std::printf("Optimized mapping: EDP %.3e (cycles*uJ), latency %.3e "
                "cycles, energy %.3e uJ\n",
                opt.best_cost.edp, opt.best_cost.latency_cycles,
                opt.best_cost.energy_uj);

    const auto pts = sweepUniformOrders(space, opt.best_mapping, eval);
    std::printf("Swept %zu permutations\n", pts.size());

    const auto groups = distinctEdps(pts, 1e-6);
    std::printf("Distinct EDP groups: %zu (paper: 16)\n", groups.size());
    std::printf("Best/worst EDP ratio: %.1fx (paper: 14.4x)\n",
                groups.back() / groups.front());

    // Population of each group and a representative order prefix.
    std::map<size_t, std::pair<size_t, std::string>> histogram;
    for (const auto &p : pts) {
        size_t g = 0;
        while (g + 1 < groups.size() &&
               p.edp > groups[g] * (1 + 1e-6)) {
            ++g;
        }
        auto &slot = histogram[g];
        ++slot.first;
        if (slot.second.empty()) {
            std::string prefix;
            for (int i = 0; i < 2; ++i)
                prefix += wl.dimNames()[p.order[static_cast<size_t>(i)]];
            slot.second = prefix + "..";
        }
    }
    std::printf("\n%-8s %12s %10s %14s\n", "group", "EDP", "count",
                "example order");
    for (const auto &[g, info] : histogram) {
        std::printf("%-8zu %12.3e %10zu %14s\n", g, groups[g],
                    info.first, info.second.c_str());
    }

    // Where does the optimizer's own order land?
    const double opt_edp = opt.best_cost.edp;
    size_t better = 0;
    for (double g : groups) {
        if (g < opt_edp * (1 - 1e-6))
            ++better;
    }
    std::printf("\nGamma's own order beats %zu of %zu groups "
                "(paper: falls in the best group)\n",
                groups.size() - better, groups.size());
    return 0;
}

/**
 * @file
 * Fig. 5 reproduction: mapping-axis sensitivity. Gamma is run with only
 * one mutation axis enabled at a time (tile / order / parallelism; no
 * crossover), against the full-featured mapper, on three workloads. The
 * paper's finding: exploring tile sizes alone recovers most of the EDP
 * improvement; order- or parallelism-only exploration trails by an
 * order of magnitude.
 */
#include "bench_util.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

GammaConfig
axisOnly(bool tile, bool order, bool parallel)
{
    // Only the mutation axes are masked. Crossover stays enabled (its
    // own ablation is Fig. 6), and the other axes remain diverse across
    // the randomly-initialized population, exactly as the paper notes
    // in Sec. 4.4.1.
    GammaConfig cfg;
    cfg.enable_tile = tile;
    cfg.enable_order = order;
    cfg.enable_parallel = parallel;
    cfg.enable_bypass = false; // paper-faithful three-axis space
    cfg.random_immigrant_prob = 0.0;
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Fig. 5 — mapping-axis sensitivity",
                  "Gamma restricted to one mutation axis (others fixed "
                  "at their random initialization)");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 4000);
    const size_t repeats = bench::envSize("MSE_BENCH_REPEATS", 5);

    const std::vector<Workload> workloads = {resnetConv4(), resnetConv3(),
                                             inceptionConv2()};
    const ArchConfig arch = accelB();

    struct Variant
    {
        const char *name;
        GammaConfig cfg;
    };
    const std::vector<Variant> variants = {
        {"tile-only", axisOnly(true, false, false)},
        {"order-only", axisOnly(false, true, false)},
        {"parallel-only", axisOnly(false, false, true)},
        {"full-gamma", axisOnly(true, true, true)},
    };

    std::printf("%-28s", "workload");
    for (const auto &v : variants)
        std::printf(" %13s", v.name);
    std::printf("\n");

    for (const auto &wl : workloads) {
        MapSpace space(wl, arch);
        EvalFn eval = [&wl, &arch](const Mapping &m) {
            return CostModel::evaluate(wl, arch, m);
        };
        std::vector<double> row;
        for (const auto &v : variants) {
            // Geometric mean over seeds to damp run-to-run noise.
            double log_sum = 0.0;
            for (size_t s = 0; s < repeats; ++s) {
                GammaMapper mapper(v.cfg);
                SearchBudget budget;
                budget.max_samples = samples;
                Rng rng(10 * s + 7);
                const SearchResult r =
                    mapper.search(space, eval, budget, rng);
                log_sum += std::log10(r.best_cost.edp);
            }
            row.push_back(
                std::pow(10.0, log_sum / static_cast<double>(repeats)));
        }
        std::printf("%-28s", wl.name().c_str());
        for (double v : row)
            std::printf(" %13.3e", v);
        std::printf("\n");
    }
    std::printf("\nShape check: tile-only should land closest to "
                "full-gamma; order-only and parallel-only should trail "
                "it.\n");
    return 0;
}

/**
 * @file
 * Micro-benchmarks (google-benchmark) for the methodology-critical
 * throughput numbers: the paper's MSE loop assumes an analytical cost
 * model that evaluates a mapping in ~ms or less; our implementation
 * targets microseconds. Also measures mapper sample-generation rates,
 * which drive the iso-time comparison of Fig. 3.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "mappers/gamma.hpp"
#include "mappers/random_pruned.hpp"
#include "model/eval_cache.hpp"
#include "sparse/sparse_model.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

void
BM_DenseCostModelConv(benchmark::State &state)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(1);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            CostModel::evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_DenseCostModelConv);

void
BM_DenseCostModelGemm(benchmark::State &state)
{
    const Workload wl = bertKqv();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    Rng rng(2);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            CostModel::evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_DenseCostModelGemm);

void
BM_SparseCostModel(benchmark::State &state)
{
    Workload wl = resnetConv4();
    applyDensities(wl, 0.5, 0.5);
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(3);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    const SparseCostModel model;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_SparseCostModel);

void
BM_RandomMappingGeneration(benchmark::State &state)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(space.randomMapping(rng));
}
BENCHMARK(BM_RandomMappingGeneration);

void
BM_GammaCrossoverMutateRepair(benchmark::State &state)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(5);
    const Mapping a = space.randomMapping(rng);
    const Mapping b = space.randomMapping(rng);
    for (auto _ : state) {
        Mapping child = GammaMapper::crossover(a, b, rng);
        GammaMapper::mutateTile(space, child, rng);
        space.repair(child);
        benchmark::DoNotOptimize(child);
    }
}
BENCHMARK(BM_GammaCrossoverMutateRepair);

void
BM_MappingCanonicalHash(benchmark::State &state)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(7);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(pool[i++ % pool.size()].hash());
}
BENCHMARK(BM_MappingCanonicalHash);

void
BM_EvalCacheHit(benchmark::State &state)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(8);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    EvalCache cache(16);
    CostEvalFn inner = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    for (const auto &m : pool)
        cache.getOrCompute(m, inner); // warm: everything memoized
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.getOrCompute(pool[i++ % pool.size()], inner));
    }
}
BENCHMARK(BM_EvalCacheHit);

void
BM_MappingValidation(benchmark::State &state)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(6);
    const Mapping m = space.randomMapping(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(validateMapping(wl, arch, m));
}
BENCHMARK(BM_MappingValidation);

void
BM_EndToEndGammaSearch(benchmark::State &state)
{
    // Whole-search throughput: samples/second at a 500-sample budget.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    uint64_t seed = 0;
    for (auto _ : state) {
        GammaMapper gamma;
        SearchBudget budget;
        budget.max_samples = 500;
        Rng rng(seed++);
        benchmark::DoNotOptimize(
            gamma.search(space, eval, budget, rng));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            500);
}
BENCHMARK(BM_EndToEndGammaSearch)->Unit(benchmark::kMillisecond);

/**
 * Batched-evaluation throughput sweep (the perf-trajectory artifact of
 * the parallel eval layer). Replays a GA-population-shaped candidate
 * stream — elites copied verbatim across generations plus offspring
 * that escape mutation — through SearchTracker::evaluateBatch at
 * 1/2/4/8 threads, with and without the memoizing eval cache, and
 * emits BENCH_eval_throughput.json so later PRs can track the numbers.
 */
struct ThroughputSample
{
    unsigned threads = 1;
    bool cache = false;
    double evals_per_sec = 0.0;
    double hit_rate = 0.0;
    double speedup = 1.0; ///< vs. 1 thread, no cache
};

std::vector<Mapping>
gaPopulationStream(const MapSpace &space, size_t generations,
                   size_t pop_size, size_t elites)
{
    // Elite genomes ride along unchanged each generation; offspring
    // clone a parent and mutate with probability < 1, so a realistic
    // fraction of the stream is exact duplicates — the structure the
    // eval cache exploits.
    Rng rng(0xbeef);
    std::vector<Mapping> pop;
    for (size_t i = 0; i < pop_size; ++i)
        pop.push_back(space.randomMapping(rng));
    std::vector<Mapping> stream(pop);
    for (size_t g = 1; g < generations; ++g) {
        std::vector<Mapping> next;
        next.reserve(pop_size);
        for (size_t e = 0; e < elites; ++e)
            next.push_back(pop[e]);
        while (next.size() < pop_size) {
            Mapping child = pop[rng.index(pop.size())];
            if (rng.chance(0.6)) {
                GammaMapper::mutateTile(space, child, rng);
                space.repair(child);
            }
            next.push_back(std::move(child));
        }
        pop.swap(next);
        stream.insert(stream.end(), pop.begin(), pop.end());
    }
    return stream;
}

ThroughputSample
measureThroughput(const std::vector<Mapping> &stream, const Workload &wl,
                  const ArchConfig &arch, unsigned threads, bool use_cache)
{
    ThreadPool::setGlobalThreads(threads);
    EvalFn base = [&wl, &arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    EvalCache cache(16);
    EvalFn eval = base;
    if (use_cache) {
        eval = [&cache, base](const Mapping &m) {
            return cache.getOrCompute(m, base);
        };
    }
    SearchBudget budget;
    budget.max_samples = stream.size();
    SearchTracker tracker(eval, budget);

    // Pre-split the stream so chunk copying stays outside the timing.
    const size_t batch = 64;
    std::vector<std::vector<Mapping>> chunks;
    for (size_t i = 0; i < stream.size(); i += batch) {
        chunks.emplace_back(stream.begin() + i,
                            stream.begin() +
                                std::min(stream.size(), i + batch));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto &chunk : chunks)
        tracker.evaluateBatch(chunk);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    ThroughputSample s;
    s.threads = threads;
    s.cache = use_cache;
    s.evals_per_sec =
        secs > 0.0 ? static_cast<double>(stream.size()) / secs : 0.0;
    s.hit_rate = use_cache ? cache.hitRate() : 0.0;
    return s;
}

void
runThroughputSweep()
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    const std::vector<Mapping> stream =
        gaPopulationStream(space, /*generations=*/128, /*pop_size=*/128,
                           /*elites=*/32);

    // Thread counts beyond the machine's real cores only oversubscribe
    // and report flat rows (a 1-core CI runner used to print four
    // identical "speedups"), so the sweep stops at the detected count.
    const unsigned detected_cores =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<unsigned> thread_counts;
    for (const unsigned t : {1u, 2u, 4u, 8u}) {
        if (t == 1u || t <= detected_cores)
            thread_counts.push_back(t);
    }

    std::vector<ThroughputSample> samples;
    for (const bool use_cache : {false, true}) {
        for (const unsigned threads : thread_counts) {
            // Warm-up pass to populate caches and park worker threads.
            measureThroughput(stream, wl, arch, threads, use_cache);
            samples.push_back(
                measureThroughput(stream, wl, arch, threads, use_cache));
        }
    }
    ThreadPool::setGlobalThreads(0); // back to auto

    const double baseline = samples.front().evals_per_sec;
    for (auto &s : samples)
        s.speedup = baseline > 0.0 ? s.evals_per_sec / baseline : 1.0;

    std::printf("\nEval throughput (GA-population stream, %zu "
                "candidates, batch 64, resnet_conv4 on accel-B, "
                "%u detected core%s)\n",
                stream.size(), detected_cores,
                detected_cores == 1 ? "" : "s");
    if (thread_counts.back() < 8u) {
        std::printf("(thread counts > %u skipped: wider rows would "
                    "only restate the %u-core ceiling)\n",
                    detected_cores, detected_cores);
    }
    std::printf("%8s %6s %14s %9s %9s\n", "threads", "cache",
                "evals/sec", "hit-rate", "speedup");
    for (const auto &s : samples) {
        std::printf("%8u %6s %14.0f %8.1f%% %8.2fx\n", s.threads,
                    s.cache ? "on" : "off", s.evals_per_sec,
                    100.0 * s.hit_rate, s.speedup);
    }

    JsonValue doc = JsonValue::object();
    doc["workload"] = "resnet_conv4";
    doc["arch"] = "accel-B";
    doc["candidates"] = static_cast<uint64_t>(stream.size());
    doc["batch_size"] = 64;
    doc["hardware_threads"] =
        static_cast<uint64_t>(ThreadPool::configuredThreads());
    doc["detected_cores"] = static_cast<uint64_t>(detected_cores);
    JsonValue &results = doc["results"];
    results = JsonValue::array();
    for (const auto &s : samples) {
        JsonValue row = JsonValue::object();
        row["threads"] = static_cast<uint64_t>(s.threads);
        row["cache"] = s.cache;
        row["evals_per_sec"] = s.evals_per_sec;
        row["hit_rate"] = s.hit_rate;
        row["speedup_vs_serial_uncached"] = s.speedup;
        results.push(std::move(row));
    }
    bench::writeBenchJson("BENCH_eval_throughput.json", doc);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    runThroughputSweep();
    return 0;
}

/**
 * @file
 * Micro-benchmarks (google-benchmark) for the methodology-critical
 * throughput numbers: the paper's MSE loop assumes an analytical cost
 * model that evaluates a mapping in ~ms or less; our implementation
 * targets microseconds. Also measures mapper sample-generation rates,
 * which drive the iso-time comparison of Fig. 3.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "mappers/gamma.hpp"
#include "mappers/random_pruned.hpp"
#include "model/batch_eval.hpp"
#include "model/eval_cache.hpp"
#include "model/eval_plan.hpp"
#include "sparse/sparse_model.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

void
BM_DenseCostModelConv(benchmark::State &state)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(1);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            CostModel::evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_DenseCostModelConv);

void
BM_DenseCostModelGemm(benchmark::State &state)
{
    const Workload wl = bertKqv();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    Rng rng(2);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            CostModel::evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_DenseCostModelGemm);

void
BM_SparseCostModel(benchmark::State &state)
{
    Workload wl = resnetConv4();
    applyDensities(wl, 0.5, 0.5);
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(3);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    const SparseCostModel model;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_SparseCostModel);

void
BM_RandomMappingGeneration(benchmark::State &state)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(space.randomMapping(rng));
}
BENCHMARK(BM_RandomMappingGeneration);

void
BM_GammaCrossoverMutateRepair(benchmark::State &state)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(5);
    const Mapping a = space.randomMapping(rng);
    const Mapping b = space.randomMapping(rng);
    for (auto _ : state) {
        Mapping child = GammaMapper::crossover(a, b, rng);
        GammaMapper::mutateTile(space, child, rng);
        space.repair(child);
        benchmark::DoNotOptimize(child);
    }
}
BENCHMARK(BM_GammaCrossoverMutateRepair);

void
BM_MappingCanonicalHash(benchmark::State &state)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(7);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(pool[i++ % pool.size()].hash());
}
BENCHMARK(BM_MappingCanonicalHash);

void
BM_EvalCacheHit(benchmark::State &state)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(8);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    EvalCache cache(16);
    CostEvalFn inner = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    for (const auto &m : pool)
        cache.getOrCompute(m, inner); // warm: everything memoized
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.getOrCompute(pool[i++ % pool.size()], inner));
    }
}
BENCHMARK(BM_EvalCacheHit);

void
BM_PlannedEvalConv(benchmark::State &state)
{
    // The scalar planned path: same analytical model as
    // BM_DenseCostModelConv, but with workload/arch constants folded
    // into an EvalPlan once and scratch reused across evaluations.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    const EvalPlan plan = EvalPlan::build(wl, arch);
    MapSpace space(wl, arch);
    Rng rng(1); // same stream as BM_DenseCostModelConv
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    EvalScratch scratch;
    CostResult out;
    size_t i = 0;
    for (auto _ : state) {
        evaluatePlanned(plan, pool[i++ % pool.size()], scratch, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_PlannedEvalConv);

void
BM_SoABatchEvalConv(benchmark::State &state)
{
    // The SoA kernel over a population-sized batch; the reported time
    // is per batch, items-per-second is per evaluation.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    const EvalPlan plan = EvalPlan::build(wl, arch);
    MapSpace space(wl, arch);
    Rng rng(1);
    std::vector<Mapping> pool;
    for (int i = 0; i < 128; ++i)
        pool.push_back(space.randomMapping(rng));
    std::vector<CostResult> out(pool.size());
    for (auto _ : state) {
        evaluateBatchSoA(plan, pool, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(pool.size()));
}
BENCHMARK(BM_SoABatchEvalConv);

void
BM_IncrementalEvalChild(benchmark::State &state)
{
    // Offspring re-evaluation against memoized parent rows: a pool of
    // mutateTile children, each re-costed from its parent's access
    // rows (with the provability check on the hot path; children whose
    // delta is not provable fall back to a full planned evaluation,
    // exactly as in the pipeline).
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    const EvalPlan plan = EvalPlan::build(wl, arch);
    MapSpace space(wl, arch);
    Rng rng(9);
    const Mapping parent = space.randomMapping(rng);
    EvalScratch scratch;
    CostResult out;
    std::vector<TensorLevelAccess> parent_rows;
    evaluatePlanned(plan, parent, scratch, out, &parent_rows);
    std::vector<Mapping> children;
    for (int i = 0; i < 64; ++i) {
        Mapping child = parent;
        GammaMapper::mutateTile(space, child, rng);
        space.repair(child);
        children.push_back(std::move(child));
    }
    size_t i = 0;
    for (auto _ : state) {
        const Mapping &child = children[i++ % children.size()];
        if (!evaluateIncremental(plan, child, parent,
                                 parent_rows.data(), scratch, out))
            evaluatePlanned(plan, child, scratch, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_IncrementalEvalChild);

void
BM_MappingValidation(benchmark::State &state)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(6);
    const Mapping m = space.randomMapping(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(validateMapping(wl, arch, m));
}
BENCHMARK(BM_MappingValidation);

void
BM_EndToEndGammaSearch(benchmark::State &state)
{
    // Whole-search throughput: samples/second at a 500-sample budget.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    uint64_t seed = 0;
    for (auto _ : state) {
        GammaMapper gamma;
        SearchBudget budget;
        budget.max_samples = 500;
        Rng rng(seed++);
        benchmark::DoNotOptimize(
            gamma.search(space, eval, budget, rng));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            500);
}
BENCHMARK(BM_EndToEndGammaSearch)->Unit(benchmark::kMillisecond);

/**
 * Batched-evaluation throughput sweep (the perf-trajectory artifact of
 * the parallel eval layer). Replays a GA-population-shaped candidate
 * stream — elites copied verbatim across generations plus offspring
 * that escape mutation — through SearchTracker::evaluateBatch at
 * 1/2/4/8 threads, with and without the memoizing eval cache, and
 * emits BENCH_eval_throughput.json so later PRs can track the numbers.
 */
struct ThroughputSample
{
    unsigned threads = 1;
    bool cache = false;
    bool plan = false; ///< pipelined (EvalPlan+SoA) vs. legacy per-mapping
    double evals_per_sec = 0.0;
    double hit_rate = 0.0;
    double speedup = 1.0; ///< vs. 1 thread, no cache, legacy
};

std::vector<Mapping>
gaPopulationStream(const MapSpace &space, size_t generations,
                   size_t pop_size, size_t elites)
{
    // Elite genomes ride along unchanged each generation; offspring
    // clone a parent and mutate with probability < 1, so a realistic
    // fraction of the stream is exact duplicates — the structure the
    // eval cache exploits.
    Rng rng(0xbeef);
    std::vector<Mapping> pop;
    for (size_t i = 0; i < pop_size; ++i)
        pop.push_back(space.randomMapping(rng));
    std::vector<Mapping> stream(pop);
    for (size_t g = 1; g < generations; ++g) {
        std::vector<Mapping> next;
        next.reserve(pop_size);
        for (size_t e = 0; e < elites; ++e)
            next.push_back(pop[e]);
        while (next.size() < pop_size) {
            Mapping child = pop[rng.index(pop.size())];
            if (rng.chance(0.6)) {
                GammaMapper::mutateTile(space, child, rng);
                space.repair(child);
            }
            next.push_back(std::move(child));
        }
        pop.swap(next);
        stream.insert(stream.end(), pop.begin(), pop.end());
    }
    return stream;
}

ThroughputSample
measureThroughput(const std::vector<Mapping> &stream, const Workload &wl,
                  const ArchConfig &arch, unsigned threads, bool use_cache,
                  bool use_plan)
{
    ThreadPool::setGlobalThreads(threads);
    EvalCache cache(16);
    BatchCostEvaluator::Options popts;
    popts.use_cache = use_cache;
    // The replayed stream carries no parent hints, so incremental
    // re-evaluation could never fire here; keep it off so the plan rows
    // measure the SoA+store pipeline without dead row-keeping work.
    popts.use_incremental = false;
    BatchCostEvaluator pipeline(wl, arch, popts);

    EvalFn eval;
    if (use_plan) {
        eval = BatchableEval{&pipeline};
    } else {
        EvalFn base = [&wl, &arch](const Mapping &m) {
            return CostModel::evaluate(wl, arch, m);
        };
        eval = base;
        if (use_cache) {
            eval = [&cache, base](const Mapping &m) {
                return cache.getOrCompute(m, base);
            };
        }
    }
    SearchBudget budget;
    budget.max_samples = stream.size();
    SearchTracker tracker(eval, budget);

    // Replay the stream generation-by-generation through one reusable
    // buffer, the way a real GA hands candidates to evaluateBatch:
    // freshly written by the search thread and therefore cache-hot.
    // (Walking a pre-materialized multi-megabyte stream instead would
    // charge both paths a cold-memory tax no actual search pays.) The
    // per-generation copy stands in for candidate construction and is
    // deliberately inside the timed region.
    const size_t batch = 128; // gaPopulationStream's pop_size
    std::vector<Mapping> gen;
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < stream.size(); i += batch) {
        const size_t n = std::min(batch, stream.size() - i);
        gen.assign(stream.begin() + i, stream.begin() + i + n);
        tracker.evaluateBatch(gen);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    ThroughputSample s;
    s.threads = threads;
    s.cache = use_cache;
    s.plan = use_plan;
    s.evals_per_sec =
        secs > 0.0 ? static_cast<double>(stream.size()) / secs : 0.0;
    if (use_cache)
        s.hit_rate = use_plan ? pipeline.cacheHitRate() : cache.hitRate();
    return s;
}

/**
 * Raw evaluator throughput: the cost kernel alone — no tracker, no
 * store, no search bookkeeping — evaluating one generation-sized
 * candidate buffer repeatedly. A steady-state GA's working set is its
 * population, rewritten in place each generation and therefore
 * cache-resident; repeated evaluation of a hot 128-candidate buffer is
 * that configuration, and isolates the number the eval-plan rewrite
 * targets. (The sweep rows above stream 16K distinct candidates and so
 * also pay the harness's cold-memory traffic, identically per path.)
 */
double
measureKernelRate(const std::vector<Mapping> &stream, const Workload &wl,
                  const ArchConfig &arch, bool soa)
{
    const EvalPlan plan = EvalPlan::build(wl, arch);
    const size_t n = std::min<size_t>(128, stream.size());
    // Mid-stream slice: generation 0 is uniformly random and mostly
    // invalid; later generations have been repaired, matching a
    // steady-state population.
    const size_t at = (stream.size() - n) / 2;
    const std::vector<Mapping> gen(stream.begin() + at,
                                   stream.begin() + at + n);
    std::vector<CostResult> out(n);
    const size_t passes = std::max<size_t>(1, stream.size() / n);
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t p = 0; p < passes; ++p) {
        if (soa) {
            evaluateBatchSoA(plan,
                             std::span<const Mapping>(gen.data(), n),
                             std::span<CostResult>(out.data(), n));
        } else {
            for (const Mapping &m : gen) {
                CostResult r = CostModel::evaluate(wl, arch, m);
                benchmark::DoNotOptimize(r);
            }
        }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return secs > 0.0
               ? static_cast<double>(passes * n) / secs
               : 0.0;
}

// Single-thread plan-path numbers of this run, consumed by the gate.
double g_plan_uncached = 0.0;
double g_plan_cached = 0.0;
// In-run legacy-vs-planned speedup ratios (machine-independent).
double g_speedup_uncached = 0.0;
double g_speedup_cached = 0.0;
// Raw scalar-vs-SoA kernel rates and their in-run ratio.
double g_kernel_scalar = 0.0;
double g_kernel_soa = 0.0;
double g_kernel_speedup = 0.0;

void
runThroughputSweep()
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    const std::vector<Mapping> stream =
        gaPopulationStream(space, /*generations=*/128, /*pop_size=*/128,
                           /*elites=*/32);

    // Thread counts beyond the machine's real cores only oversubscribe
    // and report flat rows (a 1-core CI runner used to print four
    // identical "speedups"), so the sweep stops at the detected count.
    const unsigned detected_cores =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<unsigned> thread_counts;
    for (const unsigned t : {1u, 2u, 4u, 8u}) {
        if (t == 1u || t <= detected_cores)
            thread_counts.push_back(t);
    }

    std::vector<ThroughputSample> samples;
    for (const bool use_plan : {false, true}) {
        for (const bool use_cache : {false, true}) {
            for (const unsigned threads : thread_counts) {
                // Warm-up pass to populate caches and park workers.
                measureThroughput(stream, wl, arch, threads, use_cache,
                                  use_plan);
                // Best-of-N: on a contended box a single pass can land
                // in a noisy scheduling window; the max over a few
                // passes is the closest observable to the machine's
                // actual capability, and taking it for every row keeps
                // the speedup ratios like-for-like.
                ThroughputSample best;
                for (size_t rep = 0;
                     rep < bench::envSize("MSE_BENCH_REPS", 3); ++rep) {
                    ThroughputSample cur = measureThroughput(
                        stream, wl, arch, threads, use_cache, use_plan);
                    if (cur.evals_per_sec > best.evals_per_sec)
                        best = cur;
                }
                samples.push_back(best);
            }
        }
    }
    ThreadPool::setGlobalThreads(0); // back to auto

    // Raw kernel pair, best-of-N like the sweep rows.
    double kernel_scalar = 0.0;
    double kernel_soa = 0.0;
    for (const bool soa : {false, true}) {
        measureKernelRate(stream, wl, arch, soa); // warm-up
        double best = 0.0;
        for (size_t rep = 0; rep < bench::envSize("MSE_BENCH_REPS", 3);
             ++rep)
            best = std::max(best,
                            measureKernelRate(stream, wl, arch, soa));
        (soa ? kernel_soa : kernel_scalar) = best;
    }

    const double baseline = samples.front().evals_per_sec;
    for (auto &s : samples)
        s.speedup = baseline > 0.0 ? s.evals_per_sec / baseline : 1.0;

    // Single-thread rows of each (plan, cache) corner, measured in this
    // very run — the speedup factors below always compare numbers from
    // the same binary on the same machine.
    auto single = [&](bool plan, bool cache) {
        for (const auto &s : samples) {
            if (s.threads == 1 && s.plan == plan && s.cache == cache)
                return s.evals_per_sec;
        }
        return 0.0;
    };
    const double legacy_uncached = single(false, false);
    const double legacy_cached = single(false, true);
    const double plan_uncached = single(true, false);
    const double plan_cached = single(true, true);

    std::printf("\nEval throughput (GA-population stream, %zu "
                "candidates, batch 128, resnet_conv4 on accel-B, "
                "%u detected core%s)\n",
                stream.size(), detected_cores,
                detected_cores == 1 ? "" : "s");
    if (thread_counts.back() < 8u) {
        std::printf("(thread counts > %u skipped: wider rows would "
                    "only restate the %u-core ceiling)\n",
                    detected_cores, detected_cores);
    }
    std::printf("%8s %6s %6s %14s %9s %9s\n", "path", "threads",
                "cache", "evals/sec", "hit-rate", "speedup");
    for (const auto &s : samples) {
        std::printf("%8s %6u %6s %14.0f %8.1f%% %8.2fx\n",
                    s.plan ? "plan" : "legacy", s.threads,
                    s.cache ? "on" : "off", s.evals_per_sec,
                    100.0 * s.hit_rate, s.speedup);
    }
    std::printf("single-thread plan speedup: %.2fx uncached, "
                "%.2fx cached\n",
                legacy_uncached > 0.0 ? plan_uncached / legacy_uncached
                                      : 0.0,
                legacy_cached > 0.0 ? plan_cached / legacy_cached : 0.0);
    std::printf("raw kernel (no tracker): scalar %.0f evals/s, SoA %.0f "
                "evals/s, speedup %.2fx\n",
                kernel_scalar, kernel_soa,
                kernel_scalar > 0.0 ? kernel_soa / kernel_scalar : 0.0);

    JsonValue doc = JsonValue::object();
    doc["workload"] = "resnet_conv4";
    doc["arch"] = "accel-B";
    doc["candidates"] = static_cast<uint64_t>(stream.size());
    doc["batch_size"] = 128;
    doc["hardware_threads"] =
        static_cast<uint64_t>(ThreadPool::configuredThreads());
    doc["detected_cores"] = static_cast<uint64_t>(detected_cores);
    JsonValue &st = doc["single_thread"];
    st = JsonValue::object();
    st["legacy_uncached_evals_per_sec"] = legacy_uncached;
    st["legacy_cached_evals_per_sec"] = legacy_cached;
    st["plan_uncached_evals_per_sec"] = plan_uncached;
    st["plan_cached_evals_per_sec"] = plan_cached;
    st["plan_speedup_uncached"] =
        legacy_uncached > 0.0 ? plan_uncached / legacy_uncached : 0.0;
    st["plan_speedup_cached"] =
        legacy_cached > 0.0 ? plan_cached / legacy_cached : 0.0;
    st["kernel_scalar_evals_per_sec"] = kernel_scalar;
    st["kernel_soa_evals_per_sec"] = kernel_soa;
    st["kernel_speedup"] =
        kernel_scalar > 0.0 ? kernel_soa / kernel_scalar : 0.0;
    JsonValue &results = doc["results"];
    results = JsonValue::array();
    for (const auto &s : samples) {
        JsonValue row = JsonValue::object();
        row["path"] = s.plan ? "plan" : "legacy";
        row["threads"] = static_cast<uint64_t>(s.threads);
        row["cache"] = s.cache;
        row["evals_per_sec"] = s.evals_per_sec;
        row["hit_rate"] = s.hit_rate;
        row["speedup_vs_serial_uncached"] = s.speedup;
        results.push(std::move(row));
    }
    bench::writeBenchJson("BENCH_eval_throughput.json", doc);

    g_plan_uncached = plan_uncached;
    g_plan_cached = plan_cached;
    g_speedup_uncached =
        legacy_uncached > 0.0 ? plan_uncached / legacy_uncached : 0.0;
    g_speedup_cached =
        legacy_cached > 0.0 ? plan_cached / legacy_cached : 0.0;
    g_kernel_scalar = kernel_scalar;
    g_kernel_soa = kernel_soa;
    g_kernel_speedup =
        kernel_scalar > 0.0 ? kernel_soa / kernel_scalar : 0.0;
}

/**
 * Perf-regression gate: compare this run's single-thread numbers
 * against the checked-in baseline
 * (bench/baselines/eval_throughput.json, overridable via
 * MSE_PERF_BASELINE). The primary checks are the in-run
 * legacy-vs-planned *speedup ratios*, which cancel machine speed and
 * load, so the gate is meaningful on CI boxes unlike the baseline
 * machine's absolute rates; set MSE_PERF_ABSOLUTE=1 to also gate the
 * absolute evals/s (same-machine tracking). A generous tolerance
 * (default 30%, override via MSE_PERF_TOLERANCE) absorbs residual
 * noise while still catching a real pipeline regression. Missing
 * baseline = skip (new machines and local runs shouldn't fail),
 * regression = nonzero exit so CI fails.
 */
int
perfRegressionGate()
{
    const char *env = std::getenv("MSE_PERF_BASELINE");
    const std::string path =
        env ? env : "bench/baselines/eval_throughput.json";
    std::ifstream in(path);
    if (!in) {
        std::printf("perf gate: no baseline at %s, skipping\n",
                    path.c_str());
        return 0;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto doc = parseJson(ss.str());
    if (!doc || !doc->isObject()) {
        std::fprintf(stderr, "perf gate: cannot parse %s\n",
                     path.c_str());
        return 1;
    }
    const JsonValue *st = doc->find("single_thread");
    const double tol = bench::envDouble("MSE_PERF_TOLERANCE", 0.30);
    const bool absolute = bench::envSize("MSE_PERF_ABSOLUTE", 0) != 0;
    int failures = 0;
    const struct
    {
        const char *key;
        double current;
        bool ratio; ///< machine-independent; always gated
    } checks[] = {
        {"kernel_speedup", g_kernel_speedup, true},
        {"plan_speedup_uncached", g_speedup_uncached, true},
        {"plan_speedup_cached", g_speedup_cached, true},
        {"plan_uncached_evals_per_sec", g_plan_uncached, false},
        {"plan_cached_evals_per_sec", g_plan_cached, false},
    };
    for (const auto &c : checks) {
        if (!c.ratio && !absolute)
            continue;
        const double base = st ? st->getDouble(c.key, 0.0) : 0.0;
        if (base <= 0.0)
            continue;
        const double floor = base * (1.0 - tol);
        const bool ok = c.current >= floor;
        std::printf("perf gate: %s %.3g vs baseline %.3g "
                    "(floor %.3g, tolerance %.0f%%) %s\n",
                    c.key, c.current, base, floor, 100.0 * tol,
                    ok ? "OK" : "REGRESSION");
        if (!ok)
            ++failures;
    }
    return failures > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    runThroughputSweep();
    return perfRegressionGate();
}

/**
 * @file
 * Micro-benchmarks (google-benchmark) for the methodology-critical
 * throughput numbers: the paper's MSE loop assumes an analytical cost
 * model that evaluates a mapping in ~ms or less; our implementation
 * targets microseconds. Also measures mapper sample-generation rates,
 * which drive the iso-time comparison of Fig. 3.
 */
#include <benchmark/benchmark.h>

#include "mappers/gamma.hpp"
#include "mappers/random_pruned.hpp"
#include "sparse/sparse_model.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

void
BM_DenseCostModelConv(benchmark::State &state)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(1);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            CostModel::evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_DenseCostModelConv);

void
BM_DenseCostModelGemm(benchmark::State &state)
{
    const Workload wl = bertKqv();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    Rng rng(2);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            CostModel::evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_DenseCostModelGemm);

void
BM_SparseCostModel(benchmark::State &state)
{
    Workload wl = resnetConv4();
    applyDensities(wl, 0.5, 0.5);
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(3);
    std::vector<Mapping> pool;
    for (int i = 0; i < 64; ++i)
        pool.push_back(space.randomMapping(rng));
    const SparseCostModel model;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(wl, arch, pool[i++ % pool.size()]));
    }
}
BENCHMARK(BM_SparseCostModel);

void
BM_RandomMappingGeneration(benchmark::State &state)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(space.randomMapping(rng));
}
BENCHMARK(BM_RandomMappingGeneration);

void
BM_GammaCrossoverMutateRepair(benchmark::State &state)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(5);
    const Mapping a = space.randomMapping(rng);
    const Mapping b = space.randomMapping(rng);
    for (auto _ : state) {
        Mapping child = GammaMapper::crossover(a, b, rng);
        GammaMapper::mutateTile(space, child, rng);
        space.repair(child);
        benchmark::DoNotOptimize(child);
    }
}
BENCHMARK(BM_GammaCrossoverMutateRepair);

void
BM_MappingValidation(benchmark::State &state)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(6);
    const Mapping m = space.randomMapping(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(validateMapping(wl, arch, m));
}
BENCHMARK(BM_MappingValidation);

void
BM_EndToEndGammaSearch(benchmark::State &state)
{
    // Whole-search throughput: samples/second at a 500-sample budget.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    uint64_t seed = 0;
    for (auto _ : state) {
        GammaMapper gamma;
        SearchBudget budget;
        budget.max_samples = 500;
        Rng rng(seed++);
        benchmark::DoNotOptimize(
            gamma.search(space, eval, budget, rng));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            500);
}
BENCHMARK(BM_EndToEndGammaSearch)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

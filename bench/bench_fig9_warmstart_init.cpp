/**
 * @file
 * Fig. 9 reproduction: quality of warm-start initialization. Layers of
 * VGG16 (regular, hand-designed) and MnasNet (irregular, NAS-found) are
 * optimized in order; for each layer we compare the EDP of
 *   - a random initial mapping,
 *   - warm-start by previous layer,
 *   - warm-start by similarity,
 * all normalized to the final optimized EDP of that layer. Paper
 * findings: both warm-starts beat random init (2.1x / 4.3x); similarity
 * matters on MnasNet (~2x better than by-previous) but not on VGG.
 */
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

void
runModel(const char *name, std::vector<Workload> layers,
         size_t samples, size_t max_layers, bool out_of_order = false)
{
    const ArchConfig arch = accelB();
    if (out_of_order) {
        // Sec. 5.1: layers can arrive out of order because of other
        // compiler decisions; this is where warm-start-by-similarity
        // pulls ahead of warm-start-by-previous-layer.
        Rng shuffle_rng(99);
        shuffle_rng.shuffle(layers);
    }
    MseEngine engine(arch);
    Rng rng(7);
    GammaMapper gamma;

    std::printf("\n%s (init EDP normalized to final optimized EDP; "
                "1.0 = already optimal)\n", name);
    std::printf("%-24s %12s %12s %12s\n", "layer", "random",
                "ws-previous", "ws-similar");

    std::vector<double> r_norm, p_norm, s_norm;
    size_t count = 0;
    for (const auto &wl : layers) {
        if (count >= max_layers)
            break;
        MapSpace space(wl, arch);
        EvalFn eval = [&wl, &arch](const Mapping &m) {
            return CostModel::evaluate(wl, arch, m);
        };

        // Initialization candidates (before any search).
        const double random_init =
            eval(space.randomMapping(rng)).edp;
        double prev_init = random_init, sim_init = random_init;
        if (!engine.replay().empty()) {
            const auto prev_seeds = warmStartSeeds(
                space, engine.replay(), WarmStartStrategy::ByPrevious, 1,
                rng);
            if (!prev_seeds.empty())
                prev_init = eval(prev_seeds[0]).edp;
            const auto sim_seeds = warmStartSeeds(
                space, engine.replay(), WarmStartStrategy::BySimilarity,
                1, rng);
            if (!sim_seeds.empty())
                sim_init = eval(sim_seeds[0]).edp;
        }

        // Full optimization (also fills the replay buffer).
        MseOptions opts;
        opts.budget.max_samples = samples;
        const MseOutcome out = engine.optimize(wl, gamma, opts, rng);
        const double final_edp = out.bestEdp();

        std::printf("%-24s %12.2f %12.2f %12.2f\n", wl.name().c_str(),
                    random_init / final_edp, prev_init / final_edp,
                    sim_init / final_edp);
        if (count > 0) { // first layer has no replay entries
            r_norm.push_back(random_init / final_edp);
            p_norm.push_back(prev_init / final_edp);
            s_norm.push_back(sim_init / final_edp);
        }
        ++count;
    }
    std::printf("geomean (layers 2+):      %12.2f %12.2f %12.2f\n",
                geomean(r_norm), geomean(p_norm), geomean(s_norm));
    std::printf("random-init / ws-similar ratio: %.2fx, "
                "ws-previous / ws-similar ratio: %.2fx\n",
                geomean(r_norm) / geomean(s_norm),
                geomean(p_norm) / geomean(s_norm));
}

} // namespace

int
main()
{
    bench::banner("Fig. 9 — warm-start initialization quality",
                  "random vs warm-start-by-previous vs warm-start-by-"
                  "similarity initial mappings");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 2000);
    const size_t max_layers = bench::envSize("MSE_BENCH_LAYERS", 10);
    runModel("VGG16", vgg16Layers(), samples, max_layers);
    runModel("MnasNet", mnasnetLayers(), samples, max_layers);
    runModel("MnasNet (out-of-order schedule)", mnasnetLayers(), samples,
             max_layers, /*out_of_order=*/true);
    std::printf("\nShape check: warm-start columns should sit well "
                "below the random column; on MnasNet, ws-similar should "
                "beat ws-previous.\n");
    return 0;
}

/**
 * @file
 * Full-model sweep bench: run the ModelSweep orchestrator over ResNet-18
 * and the BERT-large encoder GEMMs on both Table-1 accelerators and
 * emit BENCH_model_sweep.json.
 *
 * For every (model, arch) pair the sweep runs three times:
 *   1. warm, MSE_THREADS=1   — determinism reference
 *   2. warm, MSE_THREADS=4   — must be bit-identical to (1)
 *   3. cold (warm_start off) — sample-efficiency reference
 * and reports dedup savings (unique jobs vs. total layers), eval-cache
 * hit rates, and how many samples warm-started jobs needed to reach the
 * cold run's incumbent EDP (paper Figs. 10-11, at network scale).
 *
 * `bench_model_sweep smoke` (or MSE_BENCH_SMOKE=1) runs a tiny 3-layer
 * model on Accel-A only and exits non-zero if dedup, warm-start, or
 * determinism is broken — the CI smoke mode.
 */
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/convergence.hpp"
#include "core/model_sweep.hpp"
#include "mapping/mapping_io.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

/** Smoke model: duplicate shape (dedup) + near shape (warm-start). */
std::vector<Workload>
tinyThreeLayerModel()
{
    return {
        makeConv2d("smoke_conv1", 1, 8, 8, 7, 7, 3, 3),
        makeConv2d("smoke_conv2", 1, 8, 8, 7, 7, 3, 3),
        makeConv2d("smoke_conv3", 1, 16, 8, 7, 7, 3, 3),
    };
}

struct SweepConfig
{
    std::string model;
    std::vector<Workload> layers;
    std::string arch_name;
    ArchConfig arch;
};

/** Everything BENCH_model_sweep.json records per (model, arch). */
struct SweepReport
{
    std::string model;
    std::string arch_name;
    ModelSweepResult warm; ///< warm run (4 threads; == 1-thread run)
    bool deterministic = false;

    /** Warm-vs-cold sample efficiency over warm-started unique jobs. */
    size_t jobs_compared = 0;
    size_t reached_cold_quality = 0;
    double mean_samples_warm = 0.0; ///< to reach cold incumbent EDP
    double mean_samples_cold = 0.0; ///< cold's samples to its incumbent
    double warm_speedup = 1.0;      ///< cold / warm sample means
};

/** Bitwise comparison of two sweep results (determinism check). */
bool
identicalSweeps(const ModelSweepResult &a, const ModelSweepResult &b)
{
    if (a.layers.size() != b.layers.size() ||
        a.stats.samples_spent != b.stats.samples_spent ||
        a.stats.unique_jobs != b.stats.unique_jobs ||
        a.totalEdp() != b.totalEdp())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        if (a.layers[i].best_cost.edp != b.layers[i].best_cost.edp ||
            serializeMapping(a.layers[i].best_mapping) !=
                serializeMapping(b.layers[i].best_mapping))
            return false;
    }
    return true;
}

SweepReport
runConfig(const SweepConfig &cfg, size_t samples, uint64_t seed)
{
    ModelSweepOptions opts;
    opts.layer.budget.max_samples = samples;
    opts.seed = seed;

    ModelSweep sweep(cfg.arch);

    ThreadPool::setGlobalThreads(1);
    const ModelSweepResult serial =
        sweep.run(cfg.model, cfg.layers, opts);
    ThreadPool::setGlobalThreads(4);
    ModelSweepResult warm = sweep.run(cfg.model, cfg.layers, opts);

    ModelSweepOptions cold_opts = opts;
    cold_opts.warm_start = false;
    const ModelSweepResult cold =
        sweep.run(cfg.model, cfg.layers, cold_opts);

    SweepReport rep;
    rep.model = cfg.model;
    rep.arch_name = cfg.arch_name;
    rep.deterministic = identicalSweeps(serial, warm);

    // Sample efficiency: for each warm-started unique job, how many
    // samples the warm run needed to reach the cold run's incumbent
    // EDP, vs. how many the cold run itself needed. Job indices align
    // across runs because dedup order ignores the warm_start flag.
    double warm_sum = 0.0, cold_sum = 0.0;
    for (const auto &rec : warm.layers) {
        if (rec.deduped || !rec.warm_started)
            continue;
        const auto &wlog =
            warm.jobs[rec.job].search.log.best_edp_per_sample;
        const auto &clog =
            cold.jobs[rec.job].search.log.best_edp_per_sample;
        if (wlog.empty() || clog.empty())
            continue;
        // Quality bar: 99.5% of the cold run's total improvement (the
        // paper's Sec. 5.1.3 criterion, as in bench_fig11) — "how long
        // until each run matches default-MSE quality".
        const double cold_best = cold.jobs[rec.job].bestEdp();
        const double target =
            cold_best + 0.005 * (clog.front() - cold_best);
        const size_t w = indexToReach(wlog, target);
        const size_t c = indexToReach(clog, target);
        if (w < wlog.size())
            ++rep.reached_cold_quality;
        // Never-reached counts as the full budget (a fair penalty);
        // reached-at-start counts as one sample, as in bench_fig11.
        warm_sum += static_cast<double>(
            std::max<size_t>(std::min(w, wlog.size()), 1));
        cold_sum += static_cast<double>(
            std::max<size_t>(std::min(c, clog.size()), 1));
        ++rep.jobs_compared;
    }
    if (rep.jobs_compared > 0) {
        const double n = static_cast<double>(rep.jobs_compared);
        rep.mean_samples_warm = warm_sum / n;
        rep.mean_samples_cold = cold_sum / n;
        rep.warm_speedup = rep.mean_samples_cold / rep.mean_samples_warm;
    }

    const std::string dir = bench::csvDir();
    if (!dir.empty()) {
        const std::string base =
            dir + "/sweep_" + cfg.model + "_" + cfg.arch_name;
        writeSweepCsv(warm, base + ".csv");
        writeSweepJson(warm, base + ".json");
    }
    rep.warm = std::move(warm);
    return rep;
}

void
printReport(const SweepReport &r)
{
    const auto &st = r.warm.stats;
    std::printf("\n%s on %s: %zu layers -> %zu unique jobs "
                "(%zu deduped), %zu warm / %zu cold\n",
                r.model.c_str(), r.arch_name.c_str(), st.total_layers,
                st.unique_jobs, st.dedup_hits, st.warm_jobs,
                st.cold_jobs);
    std::printf("  samples: %zu spent vs %zu without dedup; "
                "eval-cache hit rate %.1f%%\n",
                st.samples_spent, st.samples_without_dedup,
                st.eval_cache_hits + st.eval_cache_misses > 0
                    ? 100.0 * static_cast<double>(st.eval_cache_hits) /
                        static_cast<double>(st.eval_cache_hits +
                                            st.eval_cache_misses)
                    : 0.0);
    std::printf("  model totals: EDP %.4e, energy %.4e uJ, "
                "latency %.4e cycles\n",
                r.warm.totalEdp(), r.warm.totalEnergyUj(),
                r.warm.totalLatencyCycles());
    if (r.jobs_compared > 0) {
        std::printf("  warm vs cold: %zu/%zu warm jobs reached cold "
                    "incumbent EDP; mean samples %.0f (warm) vs %.0f "
                    "(cold), speedup %.2fx\n",
                    r.reached_cold_quality, r.jobs_compared,
                    r.mean_samples_warm, r.mean_samples_cold,
                    r.warm_speedup);
    }
    std::printf("  deterministic across MSE_THREADS=1 and 4: %s\n",
                r.deterministic ? "yes" : "NO");
}

bool
writeJson(const std::vector<SweepReport> &reports, size_t samples,
          uint64_t seed)
{
    JsonValue doc = JsonValue::object();
    doc["detected_cores"] =
        static_cast<uint64_t>(std::thread::hardware_concurrency());
    doc["samples_per_layer"] = static_cast<uint64_t>(samples);
    doc["seed"] = seed;
    JsonValue &sweeps = doc["sweeps"];
    sweeps = JsonValue::array();
    for (const auto &r : reports) {
        const auto &st = r.warm.stats;
        JsonValue row = JsonValue::object();
        row["model"] = r.model;
        row["arch"] = r.arch_name;
        row["total_layers"] = static_cast<uint64_t>(st.total_layers);
        row["unique_jobs"] = static_cast<uint64_t>(st.unique_jobs);
        row["dedup_hits"] = static_cast<uint64_t>(st.dedup_hits);
        row["warm_jobs"] = static_cast<uint64_t>(st.warm_jobs);
        row["cold_jobs"] = static_cast<uint64_t>(st.cold_jobs);
        row["samples_spent"] = static_cast<uint64_t>(st.samples_spent);
        row["samples_without_dedup"] =
            static_cast<uint64_t>(st.samples_without_dedup);
        row["eval_cache_hits"] =
            static_cast<uint64_t>(st.eval_cache_hits);
        row["eval_cache_misses"] =
            static_cast<uint64_t>(st.eval_cache_misses);
        row["total_edp"] = r.warm.totalEdp();
        row["total_energy_uj"] = r.warm.totalEnergyUj();
        row["total_latency_cycles"] = r.warm.totalLatencyCycles();
        JsonValue &wc = row["warm_vs_cold"];
        wc["jobs_compared"] = static_cast<uint64_t>(r.jobs_compared);
        wc["reached_cold_quality"] =
            static_cast<uint64_t>(r.reached_cold_quality);
        wc["mean_samples_warm_to_cold_edp"] = r.mean_samples_warm;
        wc["mean_samples_cold_to_incumbent"] = r.mean_samples_cold;
        wc["sample_speedup"] = r.warm_speedup;
        row["deterministic_threads_1_vs_4"] = r.deterministic;
        row["wall_seconds"] = st.wall_seconds;
        sweeps.push(std::move(row));
    }
    std::printf("\n");
    return bench::writeBenchJson("BENCH_model_sweep.json", doc);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        (argc > 1 && std::strcmp(argv[1], "smoke") == 0) ||
        bench::envSize("MSE_BENCH_SMOKE", 0) != 0;
    bench::banner("Full-model map-space sweep",
                  smoke ? "CI smoke: 3-layer model on Accel-A"
                        : "ResNet-18 and BERT-large encoder on "
                          "Accel-A / Accel-B with layer dedup and "
                          "cross-layer warm-start");
    const size_t samples =
        bench::envSize("MSE_BENCH_SAMPLES", smoke ? 300 : 2000);
    const uint64_t seed = bench::envSize("MSE_BENCH_SEED", 0x5eed);

    std::vector<SweepConfig> configs;
    if (smoke) {
        configs.push_back(
            {"tiny3", tinyThreeLayerModel(), "accel-A", accelA()});
    } else {
        configs.push_back(
            {"resnet18", resnet18Layers(), "accel-A", accelA()});
        configs.push_back(
            {"resnet18", resnet18Layers(), "accel-B", accelB()});
        configs.push_back(
            {"bert-large", bertLargeLayers(), "accel-A", accelA()});
        configs.push_back(
            {"bert-large", bertLargeLayers(), "accel-B", accelB()});
    }

    std::vector<SweepReport> reports;
    for (const auto &cfg : configs) {
        reports.push_back(runConfig(cfg, samples, seed));
        printReport(reports.back());
    }
    ThreadPool::setGlobalThreads(0); // back to auto

    writeJson(reports, samples, seed);

    // Acceptance gates. In smoke mode they make the binary a real CI
    // check; in full mode a failure still flags the run.
    bool ok = true;
    for (const auto &r : reports) {
        if (!r.deterministic) {
            std::fprintf(stderr, "FAIL: %s/%s not deterministic\n",
                         r.model.c_str(), r.arch_name.c_str());
            ok = false;
        }
        if (r.warm.stats.unique_jobs >= r.warm.stats.total_layers &&
            r.warm.stats.total_layers > 1) {
            std::fprintf(stderr,
                         "FAIL: %s/%s dedup found no repeated layers\n",
                         r.model.c_str(), r.arch_name.c_str());
            ok = false;
        }
        for (const auto &layer : r.warm.layers) {
            if (!layer.best_cost.valid) {
                std::fprintf(stderr, "FAIL: %s/%s layer %zu unmapped\n",
                             r.model.c_str(), r.arch_name.c_str(),
                             layer.layer_index);
                ok = false;
            }
        }
    }
    std::printf("\n%s\n", ok ? "all sweep checks passed"
                             : "SWEEP CHECKS FAILED");
    return ok ? 0 : 1;
}

/**
 * @file
 * Fig. 11 reproduction: warm-start speedup across whole DNN models.
 * Every layer of four networks (VGG16, ResNet-18, MobileNetV2, MnasNet)
 * is optimized twice — default MSE and warm-start MSE — and we report,
 * per model, the geomean EDP ratio (expected ~1.0: no quality loss) and
 * the geomean speedup in generations-to-converge (paper: 3.3x-7.3x,
 * smallest on the NAS-found MnasNet).
 */
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

struct ModelReport
{
    std::string name;
    double edp_ratio;   ///< warm / cold (geomean over layers)
    double speedup;     ///< cold gens-to-converge / warm (geomean)
    size_t layers;
};

ModelReport
runModel(const std::string &name, const std::vector<Workload> &layers,
         size_t samples, size_t max_layers)
{
    const ArchConfig arch = accelB();
    MseEngine cold_engine(arch), warm_engine(arch);
    GammaMapper gamma;

    std::vector<double> edp_ratios, speedups;
    size_t count = 0;
    for (const auto &wl : layers) {
        if (count >= max_layers)
            break;
        // Only layers that actually get a warm-start seed count
        // toward the speedup statistics (the first layer of each
        // tensor shape has nothing to inherit).
        const bool has_seed =
            warm_engine.replay().mostSimilar(wl).has_value();

        MseOptions cold_opts;
        cold_opts.budget.max_samples = samples;
        Rng rng_c(1000 + count);
        const MseOutcome cold =
            cold_engine.optimize(wl, gamma, cold_opts, rng_c);

        MseOptions warm_opts = cold_opts;
        warm_opts.warm_start = WarmStartStrategy::BySimilarity;
        Rng rng_w(1000 + count);
        const MseOutcome warm =
            warm_engine.optimize(wl, gamma, warm_opts, rng_w);

        if (has_seed && cold.search.found() && warm.search.found()) {
            edp_ratios.push_back(warm.bestEdp() / cold.bestEdp());
            // Speedup = how much sooner warm-start reaches 99.5% of the
            // cold run's total improvement (the paper's criterion).
            const double start =
                cold.search.log.best_edp_per_generation.front();
            // Bar: 99.5% of the default (cold) run's improvement —
            // "how long until each run matches default MSE quality".
            const double bar = cold.bestEdp() +
                0.005 * (start - cold.bestEdp());
            const double cg = static_cast<double>(std::max<size_t>(
                indexToReach(cold.search.log.best_edp_per_generation,
                             bar),
                1));
            const double wg = static_cast<double>(std::max<size_t>(
                indexToReach(warm.search.log.best_edp_per_generation,
                             bar),
                1));
            speedups.push_back(cg / wg);
        }
        ++count;
    }
    return {name, geomean(edp_ratios), geomean(speedups), count};
}

} // namespace

int
main()
{
    bench::banner("Fig. 11 — warm-start speedup per model",
                  "EDP parity and generations-to-converge speedup of "
                  "warm-start MSE over default MSE");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 4000);
    const size_t max_layers = bench::envSize("MSE_BENCH_LAYERS", 18);

    const std::vector<ModelReport> reports = {
        runModel("VGG16", vgg16Layers(), samples, max_layers),
        runModel("ResNet-18", resnet18Layers(), samples, max_layers),
        runModel("MobileNetV2", mobilenetV2Layers(), samples,
                 max_layers),
        runModel("MnasNet", mnasnetLayers(), samples, max_layers),
    };

    std::printf("%-14s %8s %18s %22s\n", "model", "layers",
                "EDP ratio (warm/cold)", "convergence speedup");
    for (const auto &r : reports) {
        std::printf("%-14s %8zu %18.3f %19.2fx\n", r.name.c_str(),
                    r.layers, r.edp_ratio, r.speedup);
    }
    std::printf("\nShape check: EDP ratios ~1.0 (no quality loss); "
                "speedups > 1x across models (paper: 3.3x-7.3x, lowest "
                "for MnasNet).\n");
    return 0;
}

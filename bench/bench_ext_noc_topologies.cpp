/**
 * @file
 * Extension experiment: NoC topology trade-offs under MSE. The paper's
 * Sec. 2.2 notes that flexible accelerators rely on their on-chip
 * networks to distribute operands; this study attaches per-hop
 * distribution energy to the PE-array network (bus / tree / mesh) and
 * re-runs MSE per topology. Findings to look for: the optimizer trades
 * parallelism against distribution cost, so mesh designs (expensive
 * hops) settle for lower spatial utilization than tree designs.
 */
#include "bench_util.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

int
main()
{
    bench::banner("Extension — NoC topology study",
                  "per-hop distribution energy on the PE-array network; "
                  "MSE re-run per topology");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 4000);
    const double hop_pj = bench::envDouble("MSE_BENCH_HOP_PJ", 2.0);

    std::printf("%-24s %8s %13s %13s %8s\n", "workload", "noc", "EDP",
                "energy(uJ)", "util%");
    for (const Workload &wl : {resnetConv4(), bertKqv()}) {
        for (NocTopology t :
             {NocTopology::Bus, NocTopology::Tree, NocTopology::Mesh}) {
            ArchConfig arch = accelB();
            arch.levels[1].noc = t; // PE-array network
            arch.levels[1].noc_hop_energy_pj = hop_pj;
            arch.levels[0].noc = t; // intra-PE ALU network
            arch.levels[0].noc_hop_energy_pj = hop_pj / 4;
            MapSpace space(wl, arch);
            EvalFn eval = [&](const Mapping &m) {
                return CostModel::evaluate(wl, arch, m);
            };
            double best_edp = std::numeric_limits<double>::infinity();
            CostResult best;
            for (uint64_t seed = 0; seed < 3; ++seed) {
                GammaMapper gamma;
                SearchBudget budget;
                budget.max_samples = samples;
                Rng rng(10 + seed);
                const SearchResult r =
                    gamma.search(space, eval, budget, rng);
                if (r.best_cost.edp < best_edp) {
                    best_edp = r.best_cost.edp;
                    best = r.best_cost;
                }
            }
            std::printf("%-24s %8s %13.3e %13.3e %7.1f%%\n",
                        wl.name().c_str(), nocTopologyName(t), best.edp,
                        best.energy_uj, 100.0 * best.utilization);
        }
    }
    std::printf("\nExpected ordering at equal hop energy: bus <= tree "
                "<= mesh EDP; costlier networks may also push the "
                "optimizer toward lower spatial utilization.\n");
    return 0;
}

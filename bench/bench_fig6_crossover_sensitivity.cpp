/**
 * @file
 * Fig. 6 reproduction: crossover sensitivity. Compares full-fledged
 * Gamma, Gamma without crossover, crossover-only Gamma (no mutation)
 * and the Standard-GA baseline on three workloads. Paper findings:
 * disabling crossover hurts substantially; crossover alone is not
 * enough; full Gamma beats Standard-GA by about an order of magnitude.
 */
#include "bench_util.hpp"
#include "mappers/gamma.hpp"
#include "mappers/standard_ga.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

int
main()
{
    bench::banner("Fig. 6 — crossover sensitivity",
                  "full Gamma vs no-crossover vs crossover-only vs "
                  "Standard-GA");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 3000);
    const size_t repeats = bench::envSize("MSE_BENCH_REPEATS", 5);

    const std::vector<Workload> workloads = {resnetConv4(), resnetConv3(),
                                             inceptionConv2()};
    const ArchConfig arch = accelB();

    // Paper-faithful three-axis space: no bypass in any variant.
    GammaConfig full;
    full.enable_bypass = false;
    full.random_immigrant_prob = 0.0;
    GammaConfig no_crossover = full;
    no_crossover.enable_crossover = false;
    GammaConfig crossover_only = full;
    crossover_only.enable_tile = false;
    crossover_only.enable_order = false;
    crossover_only.enable_parallel = false;

    std::printf("%-28s %13s %13s %13s %13s\n", "workload", "full-gamma",
                "no-crossover", "crossover-only", "standard-ga");

    for (const auto &wl : workloads) {
        MapSpace space(wl, arch);
        EvalFn eval = [&wl, &arch](const Mapping &m) {
            return CostModel::evaluate(wl, arch, m);
        };
        auto geomeanEdp = [&](auto makeMapper) {
            double log_sum = 0.0;
            for (size_t s = 0; s < repeats; ++s) {
                auto mapper = makeMapper();
                SearchBudget budget;
                budget.max_samples = samples;
                Rng rng(1000 + 17 * s);
                log_sum += std::log10(
                    mapper->search(space, eval, budget, rng)
                        .best_cost.edp);
            }
            return std::pow(10.0,
                            log_sum / static_cast<double>(repeats));
        };

        const double full_edp = geomeanEdp([&] {
            return std::make_unique<GammaMapper>(full);
        });
        const double nox = geomeanEdp([&] {
            return std::make_unique<GammaMapper>(no_crossover);
        });
        const double xonly = geomeanEdp([&] {
            return std::make_unique<GammaMapper>(crossover_only);
        });
        const double std_ga = geomeanEdp([&] {
            return std::make_unique<StandardGaMapper>();
        });
        std::printf("%-28s %13.3e %13.3e %13.3e %13.3e\n",
                    wl.name().c_str(), full_edp, nox, xonly, std_ga);
    }
    std::printf("\nShape check: full-gamma lowest; standard-ga worst "
                "(about an order of magnitude behind).\n");
    return 0;
}

/**
 * @file
 * Extension experiment (the paper's stated future work, Sec. 4.3
 * footnote): port representative mappers from the "others" category to
 * the common cost model and compare them against the three families the
 * paper analyzed. Adds simulated annealing (MCMC-flavored, as in
 * FlexFlow) and hill climbing to the Fig. 3 protocol on two workloads.
 */
#include "bench_util.hpp"
#include "mappers/gamma.hpp"
#include "mappers/local_search.hpp"
#include "mappers/random_pruned.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

double
bestAt(const SearchLog &log, size_t sample)
{
    if (log.best_edp_per_sample.empty())
        return std::numeric_limits<double>::infinity();
    const size_t idx =
        std::min(sample, log.best_edp_per_sample.size()) - 1;
    return log.best_edp_per_sample[idx];
}

} // namespace

int
main()
{
    bench::banner("Extension — mappers from the 'others' category",
                  "simulated annealing and hill climbing vs the paper's "
                  "three families (iso-samples)");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 5000);
    const size_t repeats = bench::envSize("MSE_BENCH_REPEATS", 3);

    for (const Workload &wl : {resnetConv4(), bertKqv()}) {
        const ArchConfig arch = accelB();
        MapSpace space(wl, arch);
        EvalFn eval = [&wl, &arch](const Mapping &m) {
            return CostModel::evaluate(wl, arch, m);
        };

        struct Entry
        {
            std::string name;
            std::vector<SearchLog> logs;
        };
        std::vector<Entry> entries;
        auto runAll = [&](auto makeMapper) {
            Entry e;
            for (size_t s = 0; s < repeats; ++s) {
                auto mapper = makeMapper();
                SearchBudget budget;
                budget.max_samples = samples;
                Rng rng(31 + 7 * s);
                auto res = mapper->search(space, eval, budget, rng);
                e.name = mapper->name();
                e.logs.push_back(std::move(res.log));
            }
            entries.push_back(std::move(e));
        };
        runAll([] { return std::make_unique<RandomPrunedMapper>(); });
        runAll([] { return std::make_unique<GammaMapper>(); });
        runAll([] {
            return std::make_unique<SimulatedAnnealingMapper>();
        });
        runAll([] { return std::make_unique<HillClimbMapper>(); });

        std::printf("\n%s on %s — geomean best EDP over %zu seeds\n",
                    wl.toString().c_str(), arch.name.c_str(), repeats);
        std::printf("%-10s", "samples");
        for (const auto &e : entries)
            std::printf(" %13s", e.name.c_str());
        std::printf("\n");
        for (size_t cp : {100ul, 500ul, 2000ul, samples}) {
            std::printf("%-10zu", cp);
            for (const auto &e : entries) {
                double log_sum = 0;
                for (const auto &log : e.logs)
                    log_sum += std::log10(bestAt(log, cp));
                std::printf(" %13.3e",
                            std::pow(10.0, log_sum /
                                     static_cast<double>(
                                         e.logs.size())));
            }
            std::printf("\n");
        }
    }
    std::printf("\nFinding: local search armed with Gamma's domain "
                "operators is competitive with Gamma itself and far "
                "ahead of random — evidence that the per-axis operators, "
                "not the population machinery, carry most of the "
                "sampling efficiency (consistent with the operator "
                "emphasis of the paper's Figs. 5-6).\n");
    return 0;
}

/**
 * @file
 * Table 4 reproduction: sparsity-aware search vs static-density
 * heuristics under dynamic activation sparsity. Four searches per
 * workload — sparsity-aware (scores candidates at densities
 * {1.0, 0.8, 0.5, 0.2, 0.1}) and static-density {1.0, 0.5, 0.1} — and
 * every found mapping is tested across densities 1.0..0.05, several of
 * which were never seen at search time. Paper finding: one fixed
 * sparsity-aware mapping achieves ~99.7% (geomean) of the per-row best.
 */
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/sparsity_aware.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

Mapping
searchWith(const MapSpace &space, const EvalFn &eval, size_t samples,
           uint64_t seed, const std::vector<Mapping> &seeds = {})
{
    Mapping best;
    double best_edp = std::numeric_limits<double>::infinity();
    for (int restart = 0; restart < 8; ++restart) {
        // Scalar selection: all four strategies score candidates by a
        // single weighted-sum objective (the paper's protocol), so the
        // multi-objective Pareto ranking is switched off.
        GammaConfig cfg;
        cfg.multi_objective = false;
        cfg.enable_bypass = false; // GAMMA's genome has no bypass axis
        GammaMapper gamma(cfg);
        gamma.setInitialMappings(seeds);
        SearchBudget budget;
        budget.max_samples = samples;
        Rng rng(seed + 100 * restart);
        const SearchResult r = gamma.search(space, eval, budget, rng);
        if (r.best_cost.edp < best_edp) {
            best_edp = r.best_cost.edp;
            best = r.best_mapping;
        }
    }
    return best;
}

} // namespace

int
main()
{
    bench::banner("Table 4 — sparsity-aware vs static-density",
                  "EDP of one fixed mapping per strategy, tested across "
                  "activation densities 1.0-0.05 (cycles*uJ)");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 5000);
    const std::vector<double> test_densities = {
        1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05};
    const std::vector<double> static_densities = {1.0, 0.5, 0.1};
    const ArchConfig arch = accelB();
    const SparseCostModel model;

    for (const Workload &base : {resnetConv3(), inceptionConv2()}) {
        std::printf("\n%s on %s\n", base.toString().c_str(),
                    arch.name.c_str());
        MapSpace space(base, arch);

        // Search the three static strategies first...
        std::vector<Mapping> statics;
        for (size_t i = 0; i < static_densities.size(); ++i) {
            statics.push_back(searchWith(
                space,
                makeStaticDensityEvaluator(space, model,
                                           static_densities[i]),
                samples, 17 + i));
        }
        // ...then the sparsity-aware strategy, seeded with the static
        // winners (it still commits to ONE fixed mapping; the seeds
        // only help its search converge on the combined objective).
        SparsityAwareConfig aware_cfg; // {1.0, 0.8, 0.5, 0.2, 0.1}
        const Mapping aware = searchWith(
            space, makeSparsityAwareEvaluator(space, model, aware_cfg),
            samples, 5, statics);

        std::printf("%-10s %14s", "density", "sparsity-aware");
        for (double d : static_densities)
            std::printf("     static-%.1f", d);
        std::printf("\n");

        // Cross-test: rows = tested activation density.
        std::vector<double> aware_vs_best;
        for (double tested : test_densities) {
            const EvalFn at = makeStaticDensityEvaluator(space, model,
                                                         tested);
            std::vector<double> row;
            row.push_back(at(aware).edp);
            for (const auto &m : statics)
                row.push_back(at(m).edp);
            double best = row[0];
            size_t best_i = 0;
            for (size_t i = 0; i < row.size(); ++i) {
                if (row[i] < best) {
                    best = row[i];
                    best_i = i;
                }
            }
            std::printf("%-10.2f", tested);
            for (size_t i = 0; i < row.size(); ++i)
                std::printf(" %13.3e%s", row[i],
                            i == best_i ? "*" : " ");
            std::printf("\n");
            aware_vs_best.push_back(best / row[0]);
        }
        std::printf("Sparsity-aware achieves %.1f%% of the per-row best "
                    "EDP (geomean; paper: 99.7%%)\n",
                    100.0 * geomean(aware_vs_best));
    }
    std::printf("\n'*' marks the best cell of each row. Densities 0.9, "
                "0.7, ... were never seen at search time.\n");
    return 0;
}

/**
 * @file
 * Fig. 10 reproduction: convergence curves with and without warm-start
 * on VGG16's first layer (empty replay buffer: the curves coincide) and
 * a later layer (warm-start starts lower and converges sooner).
 */
#include "bench_util.hpp"
#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

/** Optimize the first `n` layers to populate a replay buffer. */
void
fillReplay(MseEngine &engine, const std::vector<Workload> &layers,
           size_t n, size_t samples, Rng &rng)
{
    GammaMapper gamma;
    MseOptions opts;
    opts.budget.max_samples = samples;
    opts.warm_start = WarmStartStrategy::BySimilarity;
    for (size_t i = 0; i < n && i < layers.size(); ++i)
        engine.optimize(layers[i], gamma, opts, rng);
}

void
printCurves(const char *title, const SearchLog &cold,
            const SearchLog &warm)
{
    std::printf("\n%s (best EDP per generation)\n", title);
    std::printf("%-12s %13s %13s\n", "generation", "random-init",
                "warm-start");
    const size_t n = std::max(cold.best_edp_per_generation.size(),
                              warm.best_edp_per_generation.size());
    for (size_t g = 0; g < n; ++g) {
        const auto at = [&](const SearchLog &log) {
            if (log.best_edp_per_generation.empty())
                return std::numeric_limits<double>::infinity();
            const size_t i =
                std::min(g, log.best_edp_per_generation.size() - 1);
            return log.best_edp_per_generation[i];
        };
        if (g < 6 || g % 10 == 0 || g + 1 == n) {
            std::printf("%-12zu %13.3e %13.3e\n", g, at(cold),
                        at(warm));
        }
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 10 — warm-start convergence curves",
                  "first layer vs a later layer of VGG16, with and "
                  "without warm-start");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 2500);
    const auto layers = vgg16Layers();
    const ArchConfig arch = accelB();

    // (a) First layer: replay buffer is empty, warm-start is a no-op.
    {
        MseEngine engine(arch);
        GammaMapper gamma;
        MseOptions cold_opts;
        cold_opts.budget.max_samples = samples;
        cold_opts.update_replay = false;
        Rng rng_c(3);
        const MseOutcome cold =
            engine.optimize(layers.front(), gamma, cold_opts, rng_c);
        MseOptions warm_opts = cold_opts;
        warm_opts.warm_start = WarmStartStrategy::BySimilarity;
        Rng rng_w(3);
        const MseOutcome warm =
            engine.optimize(layers.front(), gamma, warm_opts, rng_w);
        printCurves("(a) VGG conv1_1 (no previous solutions)",
                    cold.search.log, warm.search.log);
        std::printf("generations to converge: cold %zu, warm %zu "
                    "(expected: comparable)\n",
                    cold.generations_to_converge,
                    warm.generations_to_converge);
    }

    // (b) A later layer, with the replay buffer filled by layers 1..N-1.
    {
        const size_t target = layers.size() - 1; // VGG conv5_3
        MseEngine engine(arch);
        Rng rng(5);
        fillReplay(engine, layers, target, samples, rng);

        GammaMapper gamma;
        MseOptions cold_opts;
        cold_opts.budget.max_samples = samples;
        cold_opts.update_replay = false;
        Rng rng_c(7);
        const MseOutcome cold =
            engine.optimize(layers[target], gamma, cold_opts, rng_c);
        MseOptions warm_opts = cold_opts;
        warm_opts.warm_start = WarmStartStrategy::BySimilarity;
        Rng rng_w(7);
        const MseOutcome warm =
            engine.optimize(layers[target], gamma, warm_opts, rng_w);
        printCurves("(b) VGG conv5_3 (replay buffer populated)",
                    cold.search.log, warm.search.log);
        // The paper's 99.5% criterion on a shared scale: the bar is
        // 99.5% of the cold run's total improvement.
        const double start =
            cold.search.log.best_edp_per_generation.front();
        const double bar =
            cold.bestEdp() + 0.005 * (start - cold.bestEdp());
        const size_t cg = indexToReach(
            cold.search.log.best_edp_per_generation, bar);
        const size_t wg = indexToReach(
            warm.search.log.best_edp_per_generation, bar);
        std::printf("generations to reach EDP %.3e: cold %zu, warm %zu "
                    "-> %.1fx faster\n",
                    bar, cg, wg,
                    static_cast<double>(std::max<size_t>(cg, 1)) /
                        static_cast<double>(std::max<size_t>(wg, 1)));
        std::printf("final EDP: cold %.3e, warm %.3e (expected: "
                    "comparable)\n",
                    cold.bestEdp(), warm.bestEdp());
    }
    return 0;
}

/**
 * @file
 * Ablation studies for the design choices called out in DESIGN.md:
 *
 *  A. Bypass exploration — Gamma with and without the per-level tensor
 *     bypass axis (does the extra axis pay off?).
 *  B. Crossover legality — fraction of offspring that remain
 *     factor-legal under Gamma's per-axis column crossover vs a
 *     standard one-point genome crossover (why Gamma avoids the repair
 *     tax).
 *  C. Warm-start tile scaling — seed quality of the gcd re-scaling vs
 *     naively copying the old mapping vs random init.
 *  D. Sparsity-aware weighting — the paper's 1/density weights vs
 *     uniform weights in the multi-density score.
 */
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/sparsity_aware.hpp"
#include "core/warm_start.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

void
ablationBypass(size_t samples)
{
    std::printf("\n[A] Bypass axis (geomean best EDP over 3 seeds)\n");
    std::printf("%-24s %13s %13s\n", "workload", "with-bypass",
                "no-bypass");
    for (const Workload &wl : {resnetConv4(), bertKqv()}) {
        const ArchConfig arch = accelB();
        MapSpace space(wl, arch);
        EvalFn eval = [&](const Mapping &m) {
            return CostModel::evaluate(wl, arch, m);
        };
        auto geomeanEdp = [&](bool bypass) {
            double log_sum = 0;
            for (uint64_t s = 0; s < 3; ++s) {
                GammaConfig cfg;
                cfg.enable_bypass = bypass;
                GammaMapper gamma(cfg);
                SearchBudget budget;
                budget.max_samples = samples;
                Rng rng(41 + s);
                log_sum += std::log10(
                    gamma.search(space, eval, budget, rng)
                        .best_cost.edp) / 3.0;
            }
            return std::pow(10.0, log_sum);
        };
        std::printf("%-24s %13.3e %13.3e\n", wl.name().c_str(),
                    geomeanEdp(true), geomeanEdp(false));
    }
}

void
ablationCrossoverLegality()
{
    std::printf("\n[B] Offspring factor-legality by crossover style "
                "(10000 children each)\n");
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(7);

    size_t gamma_legal = 0, onepoint_legal = 0;
    const int n = 10000;
    const int L = arch.numLevels();
    for (int i = 0; i < n; ++i) {
        const Mapping a = space.randomMapping(rng);
        const Mapping b = space.randomMapping(rng);
        // Gamma: whole factor columns.
        Mapping ga = GammaMapper::crossover(a, b, rng);
        bool ok = true;
        for (int d = 0; d < wl.numDims(); ++d)
            ok = ok && ga.totalFactor(d) == wl.bound(d);
        gamma_legal += ok;
        // Standard: one-point cut across the flattened factor slots.
        Mapping op = a;
        const size_t genes = static_cast<size_t>(wl.numDims()) * 2 * L;
        const size_t cut = rng.index(genes);
        for (size_t g = cut; g < genes; ++g) {
            const int d = static_cast<int>(g / (2 * L));
            const int slot = static_cast<int>(g % (2 * L));
            const int l = slot / 2;
            if (slot % 2 == 0)
                op.level(l).temporal[d] = b.level(l).temporal[d];
            else
                op.level(l).spatial[d] = b.level(l).spatial[d];
        }
        ok = true;
        for (int d = 0; d < wl.numDims(); ++d)
            ok = ok && op.totalFactor(d) == wl.bound(d);
        onepoint_legal += ok;
    }
    std::printf("  gamma column crossover: %5.1f%% legal (by "
                "construction: 100%%)\n",
                100.0 * static_cast<double>(gamma_legal) / n);
    std::printf("  one-point crossover:    %5.1f%% legal\n",
                100.0 * static_cast<double>(onepoint_legal) / n);
}

void
ablationWarmStartScaling(size_t samples)
{
    std::printf("\n[C] Warm-start seed construction (init EDP on "
                "ResNet conv4 from a conv3 optimum, lower is better)\n");
    const ArchConfig arch = accelB();
    const Workload src = resnetConv3();
    const Workload dst = resnetConv4();
    MapSpace src_space(src, arch), dst_space(dst, arch);
    EvalFn src_eval = [&](const Mapping &m) {
        return CostModel::evaluate(src, arch, m);
    };
    EvalFn dst_eval = [&](const Mapping &m) {
        return CostModel::evaluate(dst, arch, m);
    };
    GammaMapper gamma;
    SearchBudget budget;
    budget.max_samples = samples;
    Rng rng(11);
    const SearchResult opt =
        gamma.search(src_space, src_eval, budget, rng);

    // gcd re-scaling (the library's warm start).
    const Mapping scaled =
        dst_space.scaleFrom(opt.best_mapping, src, rng);
    // Order-only variant: inherit orders but rebuild tiles trivially.
    Mapping naive(arch.numLevels(), dst.numDims());
    for (int l = 0; l < naive.numLevels(); ++l)
        naive.level(l) = opt.best_mapping.level(l);
    for (int d = 0; d < dst.numDims(); ++d) {
        // Blow away the factor column and put everything at DRAM while
        // keeping orders: "inherit order only".
        for (int l = 0; l < naive.numLevels(); ++l) {
            naive.level(l).temporal[d] = 1;
            naive.level(l).spatial[d] = 1;
        }
        naive.level(naive.numLevels() - 1).temporal[d] = dst.bound(d);
    }
    dst_space.repair(naive);

    const double random_edp =
        dst_eval(dst_space.randomMapping(rng)).edp;
    std::printf("  gcd-scaled seed:        %13.3e\n",
                dst_eval(scaled).edp);
    std::printf("  order-only seed:        %13.3e\n",
                dst_eval(naive).edp);
    std::printf("  random init:            %13.3e\n", random_edp);
}

void
ablationSparsityWeights(size_t samples)
{
    std::printf("\n[D] Sparsity-aware score weighting: robustness of "
                "the one fixed mapping relative to per-density tailored "
                "searches (geomean over the 1.0-0.05 sweep; higher is "
                "better)\n");
    const ArchConfig arch = accelB();
    const SparseCostModel model;
    const Workload wl = resnetConv3();
    MapSpace space(wl, arch);

    auto robustness = [&](const std::vector<double> &weights) {
        // Custom-weighted multi-density evaluator.
        const std::vector<double> densities = {1.0, 0.8, 0.5, 0.2, 0.1};
        std::vector<Workload> wls;
        for (double d : densities) {
            Workload w = wl;
            applyDensities(w, 1.0, d);
            wls.push_back(std::move(w));
        }
        EvalFn eval = [&, wls, weights](const Mapping &m) {
            CostResult combined;
            combined.valid = true;
            for (size_t i = 0; i < wls.size(); ++i) {
                const CostResult c = model.evaluate(wls[i], arch, m);
                if (!c.valid)
                    return c;
                combined.edp += c.edp * weights[i];
                combined.energy_uj += c.energy_uj * weights[i];
                combined.latency_cycles += c.latency_cycles * weights[i];
            }
            return combined;
        };
        Mapping best;
        double best_score = std::numeric_limits<double>::infinity();
        for (uint64_t s = 0; s < 3; ++s) {
            GammaConfig cfg;
            cfg.multi_objective = false;
            GammaMapper gamma(cfg);
            SearchBudget budget;
            budget.max_samples = samples;
            Rng rng(61 + s);
            const SearchResult r = gamma.search(space, eval, budget, rng);
            if (r.best_cost.edp < best_score) {
                best_score = r.best_cost.edp;
                best = r.best_mapping;
            }
        }
        // Robustness across the full test sweep vs a per-density search.
        std::vector<double> fracs;
        for (double d :
             {1.0, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05}) {
            const EvalFn at = makeStaticDensityEvaluator(space, model, d);
            GammaConfig cfg;
            cfg.multi_objective = false;
            GammaMapper gamma(cfg);
            SearchBudget budget;
            budget.max_samples = samples;
            Rng rng(71);
            const double tailored =
                gamma.search(space, at, budget, rng).best_cost.edp;
            fracs.push_back(tailored / at(best).edp);
        }
        return geomean(fracs);
    };

    const double inv_density =
        robustness({1.0, 1.25, 2.0, 5.0, 10.0}); // 1/d (paper)
    const double uniform = robustness({1, 1, 1, 1, 1});
    std::printf("  1/density weights (paper): %5.1f%%\n",
                100.0 * inv_density);
    std::printf("  uniform weights:           %5.1f%%\n",
                100.0 * uniform);
}

} // namespace

int
main()
{
    bench::banner("Ablations — design choices",
                  "bypass axis, crossover legality, warm-start scaling, "
                  "sparsity-aware weighting");
    const size_t samples = bench::envSize("MSE_BENCH_SAMPLES", 2500);
    ablationBypass(samples);
    ablationCrossoverLegality();
    ablationWarmStartScaling(samples);
    ablationSparsityWeights(samples);
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/test_mind_mappings.dir/test_mind_mappings.cpp.o"
  "CMakeFiles/test_mind_mappings.dir/test_mind_mappings.cpp.o.d"
  "test_mind_mappings"
  "test_mind_mappings.pdb"
  "test_mind_mappings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mind_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_mind_mappings.
# This may be replaced when dependencies are built.

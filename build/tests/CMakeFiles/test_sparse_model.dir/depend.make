# Empty dependencies file for test_sparse_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_model.dir/test_sparse_model.cpp.o"
  "CMakeFiles/test_sparse_model.dir/test_sparse_model.cpp.o.d"
  "test_sparse_model"
  "test_sparse_model.pdb"
  "test_sparse_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_mapping_io.dir/test_mapping_io.cpp.o"
  "CMakeFiles/test_mapping_io.dir/test_mapping_io.cpp.o.d"
  "test_mapping_io"
  "test_mapping_io.pdb"
  "test_mapping_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

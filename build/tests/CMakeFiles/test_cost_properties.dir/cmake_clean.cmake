file(REMOVE_RECURSE
  "CMakeFiles/test_cost_properties.dir/test_cost_properties.cpp.o"
  "CMakeFiles/test_cost_properties.dir/test_cost_properties.cpp.o.d"
  "test_cost_properties"
  "test_cost_properties.pdb"
  "test_cost_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

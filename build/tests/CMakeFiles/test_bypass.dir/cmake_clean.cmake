file(REMOVE_RECURSE
  "CMakeFiles/test_bypass.dir/test_bypass.cpp.o"
  "CMakeFiles/test_bypass.dir/test_bypass.cpp.o.d"
  "test_bypass"
  "test_bypass.pdb"
  "test_bypass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

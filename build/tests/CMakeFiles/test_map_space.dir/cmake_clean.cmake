file(REMOVE_RECURSE
  "CMakeFiles/test_map_space.dir/test_map_space.cpp.o"
  "CMakeFiles/test_map_space.dir/test_map_space.cpp.o.d"
  "test_map_space"
  "test_map_space.pdb"
  "test_map_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_map_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_map_space.
# This may be replaced when dependencies are built.

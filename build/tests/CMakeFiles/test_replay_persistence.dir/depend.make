# Empty dependencies file for test_replay_persistence.
# This may be replaced when dependencies are built.

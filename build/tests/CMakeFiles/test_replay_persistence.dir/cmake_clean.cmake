file(REMOVE_RECURSE
  "CMakeFiles/test_replay_persistence.dir/test_replay_persistence.cpp.o"
  "CMakeFiles/test_replay_persistence.dir/test_replay_persistence.cpp.o.d"
  "test_replay_persistence"
  "test_replay_persistence.pdb"
  "test_replay_persistence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

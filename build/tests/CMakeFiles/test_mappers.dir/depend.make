# Empty dependencies file for test_mappers.
# This may be replaced when dependencies are built.

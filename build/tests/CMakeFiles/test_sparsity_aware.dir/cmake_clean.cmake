file(REMOVE_RECURSE
  "CMakeFiles/test_sparsity_aware.dir/test_sparsity_aware.cpp.o"
  "CMakeFiles/test_sparsity_aware.dir/test_sparsity_aware.cpp.o.d"
  "test_sparsity_aware"
  "test_sparsity_aware.pdb"
  "test_sparsity_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparsity_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_sparsity_aware.
# This may be replaced when dependencies are built.

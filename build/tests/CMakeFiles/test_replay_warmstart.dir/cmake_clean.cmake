file(REMOVE_RECURSE
  "CMakeFiles/test_replay_warmstart.dir/test_replay_warmstart.cpp.o"
  "CMakeFiles/test_replay_warmstart.dir/test_replay_warmstart.cpp.o.d"
  "test_replay_warmstart"
  "test_replay_warmstart.pdb"
  "test_replay_warmstart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

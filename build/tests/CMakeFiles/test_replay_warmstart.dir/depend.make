# Empty dependencies file for test_replay_warmstart.
# This may be replaced when dependencies are built.

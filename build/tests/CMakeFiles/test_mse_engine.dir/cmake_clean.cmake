file(REMOVE_RECURSE
  "CMakeFiles/test_mse_engine.dir/test_mse_engine.cpp.o"
  "CMakeFiles/test_mse_engine.dir/test_mse_engine.cpp.o.d"
  "test_mse_engine"
  "test_mse_engine.pdb"
  "test_mse_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mse_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

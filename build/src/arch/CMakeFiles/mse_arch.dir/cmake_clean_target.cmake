file(REMOVE_RECURSE
  "libmse_arch.a"
)

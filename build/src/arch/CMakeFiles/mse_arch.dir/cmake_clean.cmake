file(REMOVE_RECURSE
  "CMakeFiles/mse_arch.dir/arch.cpp.o"
  "CMakeFiles/mse_arch.dir/arch.cpp.o.d"
  "libmse_arch.a"
  "libmse_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

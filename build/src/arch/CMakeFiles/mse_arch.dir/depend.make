# Empty dependencies file for mse_arch.
# This may be replaced when dependencies are built.

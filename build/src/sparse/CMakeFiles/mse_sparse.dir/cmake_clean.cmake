file(REMOVE_RECURSE
  "CMakeFiles/mse_sparse.dir/sparse_model.cpp.o"
  "CMakeFiles/mse_sparse.dir/sparse_model.cpp.o.d"
  "libmse_sparse.a"
  "libmse_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmse_sparse.a"
)

# Empty compiler generated dependencies file for mse_sparse.
# This may be replaced when dependencies are built.

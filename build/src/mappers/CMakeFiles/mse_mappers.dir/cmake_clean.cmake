file(REMOVE_RECURSE
  "CMakeFiles/mse_mappers.dir/gamma.cpp.o"
  "CMakeFiles/mse_mappers.dir/gamma.cpp.o.d"
  "CMakeFiles/mse_mappers.dir/local_search.cpp.o"
  "CMakeFiles/mse_mappers.dir/local_search.cpp.o.d"
  "CMakeFiles/mse_mappers.dir/mapper.cpp.o"
  "CMakeFiles/mse_mappers.dir/mapper.cpp.o.d"
  "CMakeFiles/mse_mappers.dir/mind_mappings.cpp.o"
  "CMakeFiles/mse_mappers.dir/mind_mappings.cpp.o.d"
  "CMakeFiles/mse_mappers.dir/order_sweep.cpp.o"
  "CMakeFiles/mse_mappers.dir/order_sweep.cpp.o.d"
  "CMakeFiles/mse_mappers.dir/random_pruned.cpp.o"
  "CMakeFiles/mse_mappers.dir/random_pruned.cpp.o.d"
  "CMakeFiles/mse_mappers.dir/standard_ga.cpp.o"
  "CMakeFiles/mse_mappers.dir/standard_ga.cpp.o.d"
  "libmse_mappers.a"
  "libmse_mappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_mappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mse_mappers.
# This may be replaced when dependencies are built.

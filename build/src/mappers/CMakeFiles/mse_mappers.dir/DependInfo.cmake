
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mappers/gamma.cpp" "src/mappers/CMakeFiles/mse_mappers.dir/gamma.cpp.o" "gcc" "src/mappers/CMakeFiles/mse_mappers.dir/gamma.cpp.o.d"
  "/root/repo/src/mappers/local_search.cpp" "src/mappers/CMakeFiles/mse_mappers.dir/local_search.cpp.o" "gcc" "src/mappers/CMakeFiles/mse_mappers.dir/local_search.cpp.o.d"
  "/root/repo/src/mappers/mapper.cpp" "src/mappers/CMakeFiles/mse_mappers.dir/mapper.cpp.o" "gcc" "src/mappers/CMakeFiles/mse_mappers.dir/mapper.cpp.o.d"
  "/root/repo/src/mappers/mind_mappings.cpp" "src/mappers/CMakeFiles/mse_mappers.dir/mind_mappings.cpp.o" "gcc" "src/mappers/CMakeFiles/mse_mappers.dir/mind_mappings.cpp.o.d"
  "/root/repo/src/mappers/order_sweep.cpp" "src/mappers/CMakeFiles/mse_mappers.dir/order_sweep.cpp.o" "gcc" "src/mappers/CMakeFiles/mse_mappers.dir/order_sweep.cpp.o.d"
  "/root/repo/src/mappers/random_pruned.cpp" "src/mappers/CMakeFiles/mse_mappers.dir/random_pruned.cpp.o" "gcc" "src/mappers/CMakeFiles/mse_mappers.dir/random_pruned.cpp.o.d"
  "/root/repo/src/mappers/standard_ga.cpp" "src/mappers/CMakeFiles/mse_mappers.dir/standard_ga.cpp.o" "gcc" "src/mappers/CMakeFiles/mse_mappers.dir/standard_ga.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mse_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/mse_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mse_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

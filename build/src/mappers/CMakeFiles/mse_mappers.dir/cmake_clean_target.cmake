file(REMOVE_RECURSE
  "libmse_mappers.a"
)

file(REMOVE_RECURSE
  "libmse_mapping.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mse_mapping.dir/encoding.cpp.o"
  "CMakeFiles/mse_mapping.dir/encoding.cpp.o.d"
  "CMakeFiles/mse_mapping.dir/map_space.cpp.o"
  "CMakeFiles/mse_mapping.dir/map_space.cpp.o.d"
  "CMakeFiles/mse_mapping.dir/mapping.cpp.o"
  "CMakeFiles/mse_mapping.dir/mapping.cpp.o.d"
  "CMakeFiles/mse_mapping.dir/mapping_io.cpp.o"
  "CMakeFiles/mse_mapping.dir/mapping_io.cpp.o.d"
  "libmse_mapping.a"
  "libmse_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mse_mapping.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/encoding.cpp" "src/mapping/CMakeFiles/mse_mapping.dir/encoding.cpp.o" "gcc" "src/mapping/CMakeFiles/mse_mapping.dir/encoding.cpp.o.d"
  "/root/repo/src/mapping/map_space.cpp" "src/mapping/CMakeFiles/mse_mapping.dir/map_space.cpp.o" "gcc" "src/mapping/CMakeFiles/mse_mapping.dir/map_space.cpp.o.d"
  "/root/repo/src/mapping/mapping.cpp" "src/mapping/CMakeFiles/mse_mapping.dir/mapping.cpp.o" "gcc" "src/mapping/CMakeFiles/mse_mapping.dir/mapping.cpp.o.d"
  "/root/repo/src/mapping/mapping_io.cpp" "src/mapping/CMakeFiles/mse_mapping.dir/mapping_io.cpp.o" "gcc" "src/mapping/CMakeFiles/mse_mapping.dir/mapping_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mse_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mse_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for mse_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmse_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mse_common.dir/csv.cpp.o"
  "CMakeFiles/mse_common.dir/csv.cpp.o.d"
  "CMakeFiles/mse_common.dir/math_util.cpp.o"
  "CMakeFiles/mse_common.dir/math_util.cpp.o.d"
  "CMakeFiles/mse_common.dir/pareto.cpp.o"
  "CMakeFiles/mse_common.dir/pareto.cpp.o.d"
  "CMakeFiles/mse_common.dir/pca.cpp.o"
  "CMakeFiles/mse_common.dir/pca.cpp.o.d"
  "CMakeFiles/mse_common.dir/permutation.cpp.o"
  "CMakeFiles/mse_common.dir/permutation.cpp.o.d"
  "CMakeFiles/mse_common.dir/stats.cpp.o"
  "CMakeFiles/mse_common.dir/stats.cpp.o.d"
  "libmse_common.a"
  "libmse_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmse_nn.a"
)

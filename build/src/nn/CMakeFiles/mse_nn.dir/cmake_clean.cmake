file(REMOVE_RECURSE
  "CMakeFiles/mse_nn.dir/mlp.cpp.o"
  "CMakeFiles/mse_nn.dir/mlp.cpp.o.d"
  "libmse_nn.a"
  "libmse_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

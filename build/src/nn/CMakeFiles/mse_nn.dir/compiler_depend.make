# Empty compiler generated dependencies file for mse_nn.
# This may be replaced when dependencies are built.

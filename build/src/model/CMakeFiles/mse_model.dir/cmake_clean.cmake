file(REMOVE_RECURSE
  "CMakeFiles/mse_model.dir/analysis.cpp.o"
  "CMakeFiles/mse_model.dir/analysis.cpp.o.d"
  "CMakeFiles/mse_model.dir/cost_model.cpp.o"
  "CMakeFiles/mse_model.dir/cost_model.cpp.o.d"
  "libmse_model.a"
  "libmse_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mse_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmse_model.a"
)

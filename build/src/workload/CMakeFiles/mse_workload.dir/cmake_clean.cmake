file(REMOVE_RECURSE
  "CMakeFiles/mse_workload.dir/model_zoo.cpp.o"
  "CMakeFiles/mse_workload.dir/model_zoo.cpp.o.d"
  "CMakeFiles/mse_workload.dir/workload.cpp.o"
  "CMakeFiles/mse_workload.dir/workload.cpp.o.d"
  "CMakeFiles/mse_workload.dir/workload_io.cpp.o"
  "CMakeFiles/mse_workload.dir/workload_io.cpp.o.d"
  "libmse_workload.a"
  "libmse_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

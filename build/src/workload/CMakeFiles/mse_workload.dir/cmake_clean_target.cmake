file(REMOVE_RECURSE
  "libmse_workload.a"
)

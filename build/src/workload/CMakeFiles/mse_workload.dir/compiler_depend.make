# Empty compiler generated dependencies file for mse_workload.
# This may be replaced when dependencies are built.

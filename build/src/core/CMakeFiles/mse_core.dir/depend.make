# Empty dependencies file for mse_core.
# This may be replaced when dependencies are built.

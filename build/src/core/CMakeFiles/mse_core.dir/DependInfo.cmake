
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/convergence.cpp" "src/core/CMakeFiles/mse_core.dir/convergence.cpp.o" "gcc" "src/core/CMakeFiles/mse_core.dir/convergence.cpp.o.d"
  "/root/repo/src/core/mse_engine.cpp" "src/core/CMakeFiles/mse_core.dir/mse_engine.cpp.o" "gcc" "src/core/CMakeFiles/mse_core.dir/mse_engine.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/mse_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/mse_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/replay_buffer.cpp" "src/core/CMakeFiles/mse_core.dir/replay_buffer.cpp.o" "gcc" "src/core/CMakeFiles/mse_core.dir/replay_buffer.cpp.o.d"
  "/root/repo/src/core/sparsity_aware.cpp" "src/core/CMakeFiles/mse_core.dir/sparsity_aware.cpp.o" "gcc" "src/core/CMakeFiles/mse_core.dir/sparsity_aware.cpp.o.d"
  "/root/repo/src/core/warm_start.cpp" "src/core/CMakeFiles/mse_core.dir/warm_start.cpp.o" "gcc" "src/core/CMakeFiles/mse_core.dir/warm_start.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mappers/CMakeFiles/mse_mappers.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/mse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mse_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/mse_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mse_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmse_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mse_core.dir/convergence.cpp.o"
  "CMakeFiles/mse_core.dir/convergence.cpp.o.d"
  "CMakeFiles/mse_core.dir/mse_engine.cpp.o"
  "CMakeFiles/mse_core.dir/mse_engine.cpp.o.d"
  "CMakeFiles/mse_core.dir/objective.cpp.o"
  "CMakeFiles/mse_core.dir/objective.cpp.o.d"
  "CMakeFiles/mse_core.dir/replay_buffer.cpp.o"
  "CMakeFiles/mse_core.dir/replay_buffer.cpp.o.d"
  "CMakeFiles/mse_core.dir/sparsity_aware.cpp.o"
  "CMakeFiles/mse_core.dir/sparsity_aware.cpp.o.d"
  "CMakeFiles/mse_core.dir/warm_start.cpp.o"
  "CMakeFiles/mse_core.dir/warm_start.cpp.o.d"
  "libmse_core.a"
  "libmse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sparse_bert.
# This may be replaced when dependencies are built.

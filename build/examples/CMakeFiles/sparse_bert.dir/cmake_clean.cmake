file(REMOVE_RECURSE
  "CMakeFiles/sparse_bert.dir/sparse_bert.cpp.o"
  "CMakeFiles/sparse_bert.dir/sparse_bert.cpp.o.d"
  "sparse_bert"
  "sparse_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table2_weight_sparsity.
# This may be replaced when dependencies are built.

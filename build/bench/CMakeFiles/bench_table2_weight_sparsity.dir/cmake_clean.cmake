file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_weight_sparsity.dir/bench_table2_weight_sparsity.cpp.o"
  "CMakeFiles/bench_table2_weight_sparsity.dir/bench_table2_weight_sparsity.cpp.o.d"
  "bench_table2_weight_sparsity"
  "bench_table2_weight_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_weight_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_mutation_sensitivity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_sparsity_aware.dir/bench_table4_sparsity_aware.cpp.o"
  "CMakeFiles/bench_table4_sparsity_aware.dir/bench_table4_sparsity_aware.cpp.o.d"
  "bench_table4_sparsity_aware"
  "bench_table4_sparsity_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sparsity_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

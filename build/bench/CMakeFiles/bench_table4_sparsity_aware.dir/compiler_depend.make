# Empty compiler generated dependencies file for bench_table4_sparsity_aware.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig9_warmstart_init.
# This may be replaced when dependencies are built.

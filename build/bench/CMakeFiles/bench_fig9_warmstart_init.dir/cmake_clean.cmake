file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_warmstart_init.dir/bench_fig9_warmstart_init.cpp.o"
  "CMakeFiles/bench_fig9_warmstart_init.dir/bench_fig9_warmstart_init.cpp.o.d"
  "bench_fig9_warmstart_init"
  "bench_fig9_warmstart_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_warmstart_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

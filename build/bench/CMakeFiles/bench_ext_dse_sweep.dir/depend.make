# Empty dependencies file for bench_ext_dse_sweep.
# This may be replaced when dependencies are built.

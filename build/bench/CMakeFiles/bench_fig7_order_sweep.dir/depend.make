# Empty dependencies file for bench_fig7_order_sweep.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_order_sweep.cpp" "bench/CMakeFiles/bench_fig7_order_sweep.dir/bench_fig7_order_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_order_sweep.dir/bench_fig7_order_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mappers/CMakeFiles/mse_mappers.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/mse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mse_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/mse_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mse_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

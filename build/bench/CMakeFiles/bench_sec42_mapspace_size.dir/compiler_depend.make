# Empty compiler generated dependencies file for bench_sec42_mapspace_size.
# This may be replaced when dependencies are built.

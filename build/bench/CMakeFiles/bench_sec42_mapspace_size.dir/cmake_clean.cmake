file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_mapspace_size.dir/bench_sec42_mapspace_size.cpp.o"
  "CMakeFiles/bench_sec42_mapspace_size.dir/bench_sec42_mapspace_size.cpp.o.d"
  "bench_sec42_mapspace_size"
  "bench_sec42_mapspace_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_mapspace_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_micro_costmodel.
# This may be replaced when dependencies are built.

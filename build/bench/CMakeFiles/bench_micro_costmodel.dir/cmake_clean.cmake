file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_costmodel.dir/bench_micro_costmodel.cpp.o"
  "CMakeFiles/bench_micro_costmodel.dir/bench_micro_costmodel.cpp.o.d"
  "bench_micro_costmodel"
  "bench_micro_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

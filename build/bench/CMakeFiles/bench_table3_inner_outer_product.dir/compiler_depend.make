# Empty compiler generated dependencies file for bench_table3_inner_outer_product.
# This may be replaced when dependencies are built.

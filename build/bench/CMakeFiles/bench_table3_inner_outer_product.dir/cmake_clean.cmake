file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_inner_outer_product.dir/bench_table3_inner_outer_product.cpp.o"
  "CMakeFiles/bench_table3_inner_outer_product.dir/bench_table3_inner_outer_product.cpp.o.d"
  "bench_table3_inner_outer_product"
  "bench_table3_inner_outer_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_inner_outer_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

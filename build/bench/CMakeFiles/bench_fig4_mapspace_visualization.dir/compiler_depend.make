# Empty compiler generated dependencies file for bench_fig4_mapspace_visualization.
# This may be replaced when dependencies are built.

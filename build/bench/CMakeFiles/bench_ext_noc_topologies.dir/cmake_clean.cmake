file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_noc_topologies.dir/bench_ext_noc_topologies.cpp.o"
  "CMakeFiles/bench_ext_noc_topologies.dir/bench_ext_noc_topologies.cpp.o.d"
  "bench_ext_noc_topologies"
  "bench_ext_noc_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_noc_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_noc_topologies.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_other_mappers.dir/bench_ext_other_mappers.cpp.o"
  "CMakeFiles/bench_ext_other_mappers.dir/bench_ext_other_mappers.cpp.o.d"
  "bench_ext_other_mappers"
  "bench_ext_other_mappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_other_mappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

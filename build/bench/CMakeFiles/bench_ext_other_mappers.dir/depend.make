# Empty dependencies file for bench_ext_other_mappers.
# This may be replaced when dependencies are built.

#!/usr/bin/env python3
"""mse_analyze: project-wide semantic analyzer for the MSE repo.

Where mse_lint checks one file at a time for style/idiom hazards, this
tool builds a whole-project model first and then enforces cross-file
contracts that no single-file check can see:

  registries   wire error codes, fault-injection sites, metrics key
               paths: declaration header vs construction sites vs
               tests vs docs vs client retry logic.
  locks        class-member Mutex census, thread-safety-annotation
               coverage, lock-order graph acyclicity.
  includes     module layering ranks over the include DAG + file-level
               include cycles.

Usage:
  mse_analyze.py [--root DIR] [--format text|github]
                 [--dump-registries json]

Exit status 1 when any unsuppressed finding is reported.  Suppress a
finding at its anchor line with `// mse-lint: allow(<rule>) reason`
(C++) or `<!-- mse-lint: allow(<rule>) -->` (markdown).

Rules:
  wire-code-undocumented   declared code missing from DESIGN.md Sec. 9
  wire-code-unknown        DESIGN.md row for an undeclared code
  wire-code-orphan         declared code never constructed in src/tools
  wire-code-untested       declared code never asserted in tests
  wire-code-retry-mismatch DESIGN.md retryable column vs isRetryable()
  fault-site-undocumented  declared site missing from README table
  fault-site-unknown       armed/documented site that is not declared
  fault-site-orphan        declared site never consulted in src/
  fault-site-unexercised   declared site no test or chaos phase arms
  metrics-key-undeclared   emitted stats key missing from header
  metrics-key-stale        declared stats key no emitter produces
  metrics-key-orphan       declared stats key nothing consumes
  dup-literal              registry string typed out instead of the
                           constant (error codes: src/service,
                           src/cluster, tools; fault sites: src/)
  mutex-unannotated        class-member Mutex invisible to
                           -Wthread-safety (nothing GUARDED_BY etc.)
  lock-order-cycle         cycle in declared+mined lock-order graph
  layering                 include reaching up/sideways in module ranks
  include-cycle            file-level include cycle
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analysis import includes as inc  # noqa: E402
from analysis import locks  # noqa: E402
from analysis import registries as regs  # noqa: E402
from analysis.report import (  # noqa: E402
    Finding,
    allowed_rules,
    allowed_rules_doc,
    emit,
)
from analysis.source import CPP_EXTS, SourceModel, collect_files  # noqa: E402

# ---------------------------------------------------------------- config

ERROR_HEADER = "src/service/error_codes.hpp"
FAULT_HEADER = "src/common/fault_sites.hpp"
METRIC_HEADER = "src/common/metric_names.hpp"
DESIGN_DOC = "DESIGN.md"
README_DOC = "README.md"

# Module layering: a module may include itself or strictly lower ranks.
MODULE_RANKS = {
    "common": 0,
    "workload": 0,
    "arch": 0,
    "nn": 1,
    "mapping": 1,
    "model": 2,
    "sparse": 3,
    "mappers": 3,
    "core": 4,
    "service": 5,
    "cluster": 6,
}

# The stats-reply JSON tree: which functions build it and where other
# builders' trees are mounted.
STATS_EMITTERS = [
    regs.Emitter(
        "src/common/metrics.cpp",
        r"ServiceMetrics::toJson\s*\(",
        "ServiceMetrics::toJson",
    ),
    regs.Emitter(
        "src/common/metrics.cpp",
        r"LatencyHistogram::toJson\s*\(",
        "LatencyHistogram::toJson",
    ),
    regs.Emitter(
        "src/service/service.cpp",
        r"MseService::statsJson\s*\(",
        "MseService::statsJson",
    ),
    regs.Emitter(
        "src/cluster/replication.cpp",
        r"ReplicationAgent::statsJson\s*\(",
        "ReplicationAgent::statsJson",
    ),
    regs.Emitter(
        "src/cluster/health.cpp",
        r"HealthMonitor::statsJson\s*\(",
        "HealthMonitor::statsJson",
    ),
]
ROOT_EMITTER = "MseService::statsJson"
SPLICE_TARGETS = {
    "metrics_": "ServiceMetrics::toJson",
    "search_latency_": "LatencyHistogram::toJson",
}
# Files scanned for out-of-emitter mounts (the augment_stats hook):
# `j["replication"] = agent->statsJson();` in the daemon main. The
# mount key names which emitter's tree lands there; a statsJson mount
# under any other key is a registry gap and is reported.
AUGMENT_FILES = ["tools/mse_serve.cpp"]
AUGMENT_TARGETS = {
    "replication": "ReplicationAgent::statsJson",
    "health": "HealthMonitor::statsJson",
}

_FAULT_SPEC_RE = re.compile(r"([a-z][a-z0-9_.]*)\s*:\s*(every|once|p)\s*:")
# Sites under this prefix are synthetic fixtures for the injector's own
# unit tests (documented in README); production code never consults
# them, so arming one is not a typo.
_TEST_SITE_PREFIX = "test."


class Analyzer:
    def __init__(self, root: str) -> None:
        self.root = root
        self.model = SourceModel()
        self.findings: List[Finding] = []
        self.registries: Dict[str, object] = {}

        def rel(paths: List[str]) -> List[str]:
            return [os.path.relpath(p, root) for p in paths]

        def collect(sub: str, exts=None) -> List[str]:
            d = os.path.join(root, sub)
            if not os.path.isdir(d):
                return []
            return rel(collect_files([d], exts))

        self.src_paths = collect("src")
        self.test_paths = collect("tests")
        self.tool_cpp_paths = collect("tools")
        self.bench_paths = collect("bench")
        self.script_paths = collect("tools", {".sh"}) + collect(
            "scripts", {".sh"}
        )
        self.files_scanned = (
            len(self.src_paths)
            + len(self.test_paths)
            + len(self.tool_cpp_paths)
            + len(self.bench_paths)
            + len(self.script_paths)
        )

    # -------------------------------------------------------- helpers

    def src(self, path: str):
        return self.model.get(
            os.path.join(self.root, path)
        ) if not os.path.isabs(path) else self.model.get(path)

    def srcs(self, paths: Sequence[str]):
        return [self.src(p) for p in paths]

    def read_text(self, path: str) -> Optional[str]:
        full = os.path.join(self.root, path)
        if not os.path.isfile(full):
            return None
        with open(full, "r", encoding="utf-8", errors="replace") as f:
            return f.read()

    def has(self, path: str) -> bool:
        return os.path.isfile(os.path.join(self.root, path))

    def _relpath_of(self, lexed_path: str) -> str:
        p = os.path.relpath(lexed_path, self.root)
        return p.replace(os.sep, "/")

    def report(self, path: str, line: int, rule: str, message: str) -> None:
        """Queue a finding unless an allow-comment suppresses it.

        `path` is root-relative; C++/shell files use the `//`/`#`
        comment form, markdown the HTML-comment form.
        """
        full = os.path.join(self.root, path)
        try:
            with open(full, "r", encoding="utf-8", errors="replace") as f:
                lines = f.read().split("\n")
        except OSError:
            lines = []
        is_doc = path.endswith((".md", ".sh", ".yml", ".yaml"))
        fn = allowed_rules_doc if is_doc else allowed_rules
        if rule in fn(lines, line - 1):
            return
        self.findings.append(Finding(path, line, rule, message))

    # -------------------------------------------------- error codes

    def analyze_error_codes(self) -> None:
        if not self.has(ERROR_HEADER):
            return
        header = self.src(ERROR_HEADER)
        non_test = [
            self.src(p)
            for p in self.src_paths + self.tool_cpp_paths
        ]
        tests = self.srcs(self.test_paths)
        design = self.read_text(DESIGN_DOC)
        reg = regs.extract_error_codes(header, non_test, tests, design)
        self.registries["wire_error_codes"] = {
            "declared": {c.name: c.value for c in reg.declared},
            "constructed": sorted(reg.constructed),
            "tested": sorted(reg.tested),
            "retryable": sorted(reg.retryable),
            "documented": sorted(reg.documented),
        }

        hdr_rel = ERROR_HEADER
        documented = reg.documented
        for c in reg.declared:
            if design is not None and c.value not in documented:
                self.report(
                    hdr_rel, c.line, "wire-code-undocumented",
                    f"wire error code \"{c.value}\" has no row in "
                    f"{DESIGN_DOC}'s taxonomy table",
                )
            if c.name not in reg.constructed:
                self.report(
                    hdr_rel, c.line, "wire-code-orphan",
                    f"wire error code \"{c.value}\" ({c.name}) is never "
                    "constructed or handled in src/ or tools/",
                )
            if c.name not in reg.tested:
                self.report(
                    hdr_rel, c.line, "wire-code-untested",
                    f"wire error code \"{c.value}\" is never asserted "
                    "in tests/",
                )
        by_value = reg.by_value()
        for value, (retry, line) in sorted(documented.items()):
            if value not in by_value:
                self.report(
                    DESIGN_DOC, line, "wire-code-unknown",
                    f"{DESIGN_DOC} documents error code \"{value}\" "
                    f"which {ERROR_HEADER} does not declare",
                )
            else:
                is_retry = value in reg.retryable
                if retry != is_retry:
                    self.report(
                        DESIGN_DOC, line, "wire-code-retry-mismatch",
                        f"\"{value}\": {DESIGN_DOC} says retryable="
                        f"{'yes' if retry else 'no'} but "
                        f"wire_errors::isRetryable says "
                        f"{'yes' if is_retry else 'no'}",
                    )

        # dup-literal: code literals belong in the header only.
        values = set(by_value)
        scope = [
            p
            for p in self.src_paths + self.tool_cpp_paths
            if p != ERROR_HEADER
            and (p.startswith(("src/service/", "src/cluster/", "tools/")))
        ]
        for p in scope:
            for lit in self.src(p).strings:
                if lit.value in values:
                    self.report(
                        p, lit.line, "dup-literal",
                        f"string \"{lit.value}\" duplicates wire error "
                        f"code wire_errors::{by_value[lit.value].name}; "
                        f"use the constant from {ERROR_HEADER}",
                    )

    # -------------------------------------------------- fault sites

    def analyze_fault_sites(self) -> None:
        if not self.has(FAULT_HEADER):
            return
        header = self.src(FAULT_HEADER)
        src_files = self.srcs(self.src_paths)
        tests = self.srcs(self.test_paths)
        scripts = {
            p: t
            for p in self.script_paths
            if (t := self.read_text(p)) is not None
        }
        readme = self.read_text(README_DOC)
        reg = regs.extract_fault_sites(
            header, src_files, tests, scripts, readme
        )
        self.registries["fault_sites"] = {
            "declared": {c.name: c.value for c in reg.declared},
            "consulted": sorted(reg.consulted),
            "exercised": sorted(reg.exercised),
            "documented": sorted(reg.documented),
        }

        declared_values = {c.value for c in reg.declared}
        for c in reg.declared:
            if c.name not in reg.consulted:
                self.report(
                    FAULT_HEADER, c.line, "fault-site-orphan",
                    f"fault site \"{c.value}\" ({c.name}) is never "
                    "consulted by any faultCheck/sys* call in src/",
                )
            if c.value not in reg.exercised:
                self.report(
                    FAULT_HEADER, c.line, "fault-site-unexercised",
                    f"fault site \"{c.value}\" is never armed by any "
                    "test or chaos phase (MSE_FAULTS)",
                )
            if readme is not None and c.value not in reg.documented:
                self.report(
                    FAULT_HEADER, c.line, "fault-site-undocumented",
                    f"fault site \"{c.value}\" has no row in "
                    f"{README_DOC}'s fault-site table",
                )
        for site, line in sorted(reg.documented.items()):
            if site not in declared_values:
                self.report(
                    README_DOC, line, "fault-site-unknown",
                    f"{README_DOC} documents fault site \"{site}\" "
                    f"which {FAULT_HEADER} does not declare",
                )
        # Armed specs naming unknown sites (typo in a test/chaos file).
        for f in tests:
            for lit in f.strings:
                for m in _FAULT_SPEC_RE.finditer(lit.value):
                    if m.group(1).startswith(_TEST_SITE_PREFIX):
                        continue
                    if m.group(1) not in declared_values:
                        self.report(
                            f"{self._relpath_of(f.path)}",
                            lit.line, "fault-site-unknown",
                            f"fault spec arms site \"{m.group(1)}\" "
                            f"which {FAULT_HEADER} does not declare",
                        )
        for p, text in scripts.items():
            for idx, ln in enumerate(text.split("\n")):
                if "MSE_FAULTS" not in ln:
                    continue
                for m in _FAULT_SPEC_RE.finditer(ln):
                    if m.group(1).startswith(_TEST_SITE_PREFIX):
                        continue
                    if m.group(1) not in declared_values:
                        self.report(
                            p, idx + 1, "fault-site-unknown",
                            f"fault spec arms site \"{m.group(1)}\" "
                            f"which {FAULT_HEADER} does not declare",
                        )
        # dup-literal: site literals belong in the header (and in the
        # user-facing MSE_FAULTS surface: tests/scripts are exempt).
        for p in self.src_paths:
            if p == FAULT_HEADER:
                continue
            for lit in self.src(p).strings:
                if lit.value in declared_values:
                    name = next(
                        c.name for c in reg.declared
                        if c.value == lit.value
                    )
                    self.report(
                        p, lit.line, "dup-literal",
                        f"string \"{lit.value}\" duplicates fault site "
                        f"fault_sites::{name}; use the constant from "
                        f"{FAULT_HEADER}",
                    )

    # -------------------------------------------------- metrics keys

    def analyze_metrics(self) -> None:
        if not self.has(METRIC_HEADER):
            return
        header = self.src(METRIC_HEADER)
        sources = {
            e.path: self.src(e.path)
            for e in STATS_EMITTERS
            if self.has(e.path)
        }
        extra: List[Tuple[Tuple[str, ...], str]] = []
        mount_re = re.compile(
            r'\w+\s*\[\s*"(\w+)"\s*\]\s*=\s*\w+\s*(?:->|\.)\s*statsJson\s*\('
        )
        for p in AUGMENT_FILES:
            if not self.has(p):
                continue
            for i, ln in enumerate(self.src(p).code_ws_lines):
                m = mount_re.search(ln)
                if not m:
                    continue
                target = AUGMENT_TARGETS.get(m.group(1))
                if target is None:
                    self.add(
                        p,
                        i + 1,
                        "metrics-key-undeclared",
                        f'statsJson tree mounted at "{m.group(1)}" has '
                        f"no emitter mapping in AUGMENT_TARGETS",
                    )
                    continue
                extra.append(((m.group(1),), target))
        emitted = regs.resolve_emitted_tree(
            sources, STATS_EMITTERS, SPLICE_TARGETS, ROOT_EMITTER, extra
        )
        consumers = self.srcs(
            self.test_paths + self.bench_paths + self.tool_cpp_paths
        )
        consumer_texts = {
            p: t
            for p in self.script_paths
            if (t := self.read_text(p)) is not None
        }
        reg = regs.extract_metrics(header, emitted, consumers, consumer_texts)
        self.registries["metrics_keys"] = {
            "declared": {c.name: c.value for c in reg.declared},
            "emitted": sorted({k.dotted for k in emitted}),
            "consumed": sorted(reg.consumed),
        }

        declared_values = {c.value: c for c in reg.declared}
        emitted_values = {k.dotted for k in emitted}
        for k in emitted:
            if k.dotted not in declared_values:
                self.report(
                    self._relpath_of(k.file), k.line,
                    "metrics-key-undeclared",
                    f"stats key \"{k.dotted}\" is emitted but not "
                    f"declared in {METRIC_HEADER}",
                )
        for c in reg.declared:
            if c.value not in emitted_values:
                self.report(
                    METRIC_HEADER, c.line, "metrics-key-stale",
                    f"stats key \"{c.value}\" is declared but no "
                    "emitter produces it",
                )
            if c.name not in reg.consumed:
                self.report(
                    METRIC_HEADER, c.line, "metrics-key-orphan",
                    f"stats key \"{c.value}\" is never read by any "
                    "test, bench, or harness",
                )

    # -------------------------------------------------- locks

    def analyze_locks(self) -> None:
        src_files = self.srcs(self.src_paths)
        model = locks.build_lock_model(src_files)
        self.registries["locks"] = {
            "mutexes": [
                {
                    "name": m.qualified,
                    "file": self._relpath_of(m.path),
                    "line": m.line,
                    "annotated": m.annotated,
                }
                for m in model.mutexes
            ],
            "declared_edges": [
                [a, b] for a, b, _p, _l in model.declared_edges
            ],
            "mined_edges": [
                [a, b] for a, b, _p, _l in model.mined_edges
            ],
        }
        for m in model.mutexes:
            if not m.annotated:
                self.report(
                    self._relpath_of(m.path), m.line, "mutex-unannotated",
                    f"Mutex {m.qualified} has no thread-safety "
                    "annotations referencing it (GUARDED_BY/REQUIRES/"
                    "ACQUIRE/EXCLUDES): invisible to -Wthread-safety",
                )
        edges = model.all_edges()
        edge_site = {(a, b): (p, l) for a, b, p, l in edges}
        for cyc in locks.find_cycles(edges):
            a, b = cyc[0], cyc[1]
            path, line = edge_site.get((a, b), (self.src_paths[0], 1))
            self.report(
                self._relpath_of(path)
                if os.path.isabs(path) else path,
                line, "lock-order-cycle",
                "lock-order cycle: " + " -> ".join(cyc),
            )

    # -------------------------------------------------- includes

    def analyze_includes(self) -> None:
        src_files = self.srcs(self.src_paths)
        graph = inc.IncludeGraph()
        for s in src_files:
            rel = self._relpath_of(s.path)
            built = inc.build_include_graph([s])
            (orig_path, edges), = built.files.items()
            graph.files[rel] = edges
        self.registries["include_graph"] = {
            "modules": MODULE_RANKS,
            "files": {p: [t for t, _ in e] for p, e in graph.files.items()},
        }
        for path, line, mod, tmod in inc.layering_violations(
            graph, MODULE_RANKS
        ):
            self.report(
                path, line, "layering",
                f"src/{mod} (rank {MODULE_RANKS[mod]}) must not include "
                f"src/{tmod} (rank {MODULE_RANKS[tmod]}): layering runs "
                "strictly downward",
            )
        for cyc in inc.include_cycles(graph):
            self.report(
                cyc[0], 1, "include-cycle",
                "include cycle: " + " -> ".join(cyc),
            )

    # -------------------------------------------------- driver

    def run(self) -> List[Finding]:
        self.analyze_error_codes()
        self.analyze_fault_sites()
        self.analyze_metrics()
        self.analyze_locks()
        self.analyze_includes()
        return self.findings


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        description="project-wide semantic analyzer"
    )
    ap.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    ap.add_argument(
        "--format", choices=("text", "github"), default="text"
    )
    ap.add_argument(
        "--dump-registries",
        choices=("json",),
        default=None,
        help="print the extracted registries to stdout and exit 0",
    )
    args = ap.parse_args(argv)

    analyzer = Analyzer(os.path.abspath(args.root))
    findings = analyzer.run()
    if args.dump_registries == "json":
        json.dump(analyzer.registries, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    return emit(
        findings,
        args.format,
        tool="mse_analyze",
        files_scanned=analyzer.files_scanned,
    )


if __name__ == "__main__":
    sys.exit(main())

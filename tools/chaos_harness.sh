#!/usr/bin/env bash
# Crash/chaos harness for the mapping-search service.
#
# Phase 1 (kill loop): repeatedly start mse_serve against one shared
# store file, throw a few distinct GEMM searches at it, and SIGKILL
# the daemon at a random-but-deterministic point mid-work. After every
# kill, store_check must certify the store file: every complete line
# is a valid record or an allowed torn prefix, no merged lines, and
# per-key scores never regress. One corrupted record fails the run.
#
# Phase 2 (clean recovery): start the battered store one more time,
# verify the daemon loads it, answers a warm search from it, and
# drains cleanly on SIGTERM.
#
# Phase 3 (degraded mode): start a fresh daemon with
# MSE_FAULTS="store.append:every:1:ENOSPC" so every store append
# fails. The daemon must stay up, keep answering search and stats,
# and stats must report the store degraded with the fault counter
# armed.
#
# Phase 4 (event-loop faults): arm faults at the event loop's own
# sys_io sites — EINTR storms on the readiness wait, a transient
# EAGAIN mid-reply, a failed accept — and require pipelined pings and
# a search to still succeed, then a clean drain.
#
# Usage: tools/chaos_harness.sh BUILD_DIR [CYCLES]
#
# CYCLES defaults to 30 (the CI acceptance floor). CHAOS_WAIT_S bounds
# every individual wait (default 30s) so a wedged daemon fails fast
# instead of hanging CI. The kill delays are derived from the cycle
# number, so a failing cycle replays with the same timing.
set -euo pipefail

BUILD_DIR="${1:-build}"
CYCLES="${2:-30}"
CHAOS_WAIT_S="${CHAOS_WAIT_S:-30}"
SERVE="$BUILD_DIR/tools/mse_serve"
CLIENT="$BUILD_DIR/tools/mse_client"
CHECK="$BUILD_DIR/tools/store_check"
WORK_DIR="$(mktemp -d)"
STORE="$WORK_DIR/mappings.jsonl"
SERVE_LOG="$WORK_DIR/serve.log"
SERVE_PID=""

fail() {
    echo "CHAOS FAIL: $*" >&2
    [ -f "$SERVE_LOG" ] && sed 's/^/  serve| /' "$SERVE_LOG" >&2
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
    exit 1
}

wait_until() {
    local what="$1"
    shift
    local deadline=$(($(date +%s) + CHAOS_WAIT_S))
    until "$@"; do
        if [ "$(date +%s)" -ge "$deadline" ]; then
            fail "timed out after ${CHAOS_WAIT_S}s waiting for $what"
        fi
        sleep 0.1
    done
}

[ -x "$SERVE" ] || fail "missing $SERVE (build first)"
[ -x "$CLIENT" ] || fail "missing $CLIENT (build first)"
[ -x "$CHECK" ] || fail "missing $CHECK (build first)"

port_reported() {
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon died on startup"
    grep -q '^LISTENING' "$SERVE_LOG" 2>/dev/null
}

start_serve() { # start_serve [extra serve args...]
    : >"$SERVE_LOG"
    "$SERVE" --store "$STORE" --samples 200 "$@" >"$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    wait_until "the daemon to report its port" port_reported
    PORT=$(awk '/^LISTENING/ {print $2; exit}' "$SERVE_LOG")
    [ -n "$PORT" ] && [ "$PORT" -gt 0 ] ||
        fail "daemon reported a bad port: '$PORT'"
}

trap '[ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$WORK_DIR"' EXIT

echo "chaos: $CYCLES SIGKILL cycles against $STORE"

for ((cycle = 1; cycle <= CYCLES; ++cycle)); do
    start_serve

    # Fire a burst of searches in the background. The M dimension
    # varies with the cycle so appends keep landing on fresh keys
    # (new keys = guaranteed store writes to kill in the middle of);
    # repeating a key from an earlier cycle exercises the
    # better-score-only append path instead.
    for i in 1 2 3; do
        M=$((32 + ((cycle * 3 + i) % 8) * 16))
        timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
            --gemm "4,$M,64,64" --samples 200 --retries 0 \
            >/dev/null 2>&1 &
    done

    # Deterministic kill point: 10-190 ms after launch, swept across
    # cycles so kills land before, during, and after the appends.
    DELAY_MS=$((10 + (cycle * 37) % 180))
    sleep "0.$(printf '%03d' "$DELAY_MS")"
    kill -9 "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
    wait # reap the client jobs (failures expected: their server died)

    REPORT=$("$CHECK" "$STORE") ||
        fail "cycle $cycle: store corrupted after SIGKILL: $REPORT"
done

VALID=$(echo "$REPORT" | sed -n 's/.*"valid_records":\([0-9]*\).*/\1/p')
TORN=$(echo "$REPORT" | sed -n 's/.*"torn_lines":\([0-9]*\).*/\1/p')
echo "chaos: $CYCLES cycles clean (${VALID:-0} records, ${TORN:-0} torn lines sealed)"
[ "${VALID:-0}" -gt 0 ] ||
    fail "no append ever survived a kill — the kill window never overlapped a write, harness proves nothing"

# --- Phase 2: the battered store must still load and serve warm. ---
start_serve
# Every cycle searched 4,M,64,64 shapes, so any surviving record gives
# this search at least a near (scaleFrom) warm start; which exact keys
# survived depends on where the kills landed.
WARM=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
    --gemm 4,96,64,64 --samples 200) ||
    fail "recovery search failed: $WARM"
echo "$WARM" | grep -Eq '"store":"(exact|near)"' ||
    fail "recovery search was not warm-started from the store: $WARM"
kill -TERM "$SERVE_PID"
daemon_gone() { ! kill -0 "$SERVE_PID" 2>/dev/null; }
wait_until "the daemon to drain after SIGTERM" daemon_gone
RC=0
wait "$SERVE_PID" 2>/dev/null || RC=$?
[ "$RC" -eq 0 ] || fail "recovery daemon exited with status $RC"
SERVE_PID=""
echo "chaos: recovery OK (warm hit on surviving store)"

# --- Phase 3: injected ENOSPC must degrade, not kill, the service. ---
DEG_STORE="$WORK_DIR/degraded.jsonl"
: >"$SERVE_LOG"
MSE_FAULTS="store.append:every:1:ENOSPC" \
    "$SERVE" --store "$DEG_STORE" --samples 200 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
wait_until "the fault-armed daemon to report its port" port_reported
PORT=$(awk '/^LISTENING/ {print $2; exit}' "$SERVE_LOG")

OUT=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
    --gemm 4,64,64,64 --samples 200) ||
    fail "search under injected ENOSPC failed: $OUT"
echo "$OUT" | grep -q '"ok":true' ||
    fail "search under injected ENOSPC not ok: $OUT"

STATS=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" --stats) ||
    fail "stats under injected ENOSPC failed"
echo "$STATS" | grep -q '"degraded":true' ||
    fail "stats does not report the store degraded: $STATS"
echo "$STATS" | grep -q '"armed":true' ||
    fail "stats does not report fault injection armed: $STATS"
if [ -s "$DEG_STORE" ]; then
    fail "degraded store was written to disk despite ENOSPC on every append"
fi

# Still answering after the degradation was noticed.
timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" --ping |
    grep -q '"ok":true' || fail "daemon stopped answering after degrading"

kill -TERM "$SERVE_PID"
wait_until "the degraded daemon to drain after SIGTERM" daemon_gone
SERVE_PID=""
echo "chaos: degraded-mode OK (server survived ENOSPC on every append)"

# --- Phase 4: faults at the event loop's own sys_io sites. ---
: >"$SERVE_LOG"
MSE_FAULTS="server.epoll.wait:every:2:EINTR,server.poll.wait:every:2:EINTR,server.send:once:3:EAGAIN,server.accept:once:1:EIO" \
    "$SERVE" --store "$WORK_DIR/evfaults.jsonl" --samples 200 \
    >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
wait_until "the event-fault daemon to report its port" port_reported
PORT=$(awk '/^LISTENING/ {print $2; exit}' "$SERVE_LOG")

PIPE=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
    --ping --pipeline 8) ||
    fail "pipelined ping under event-loop faults failed: $PIPE"
PIPE_OK=$(echo "$PIPE" | grep -c '"ok":true')
[ "$PIPE_OK" -eq 8 ] ||
    fail "expected 8 pipelined replies under faults, got $PIPE_OK"

OUT=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
    --gemm 4,64,64,64 --samples 200) ||
    fail "search under event-loop faults failed: $OUT"
echo "$OUT" | grep -q '"ok":true' ||
    fail "search under event-loop faults not ok: $OUT"

kill -TERM "$SERVE_PID"
wait_until "the event-fault daemon to drain after SIGTERM" daemon_gone
RC=0
wait "$SERVE_PID" 2>/dev/null || RC=$?
[ "$RC" -eq 0 ] || fail "event-fault daemon exited with status $RC"
SERVE_PID=""
echo "chaos: event-loop fault injection OK (EINTR storm, EAGAIN send, failed accept)"

echo "chaos harness OK: $CYCLES kill cycles, zero corrupted records, clean recovery, graceful degradation, event-loop faults absorbed"

#!/usr/bin/env bash
# Crash/chaos harness for the mapping-search service.
#
# Phase 1 (kill loop): repeatedly start mse_serve against one shared
# store file, throw a few distinct GEMM searches at it, and SIGKILL
# the daemon at a random-but-deterministic point mid-work. After every
# kill, store_check must certify the store file: every complete line
# is a valid record or an allowed torn prefix, no merged lines, and
# per-key scores never regress. One corrupted record fails the run.
#
# Phase 2 (clean recovery): start the battered store one more time,
# verify the daemon loads it, answers a warm search from it, and
# drains cleanly on SIGTERM.
#
# Phase 3 (degraded mode): start a fresh daemon with
# MSE_FAULTS="store.append:every:1:ENOSPC" so every store append
# fails. The daemon must stay up, keep answering search and stats,
# and stats must report the store degraded with the fault counter
# armed.
#
# Phase 4 (event-loop faults): arm faults at the event loop's own
# sys_io sites — EINTR storms on the readiness wait, a transient
# EAGAIN mid-reply, a failed accept — and require pipelined pings and
# a search to still succeed, then a clean drain.
#
# Phase 5 (cluster failover): a three-daemon consistent-hash cluster
# (replication factor 2) under a SIGKILL storm — every cycle searches
# through the routing client, records the acknowledged (store_key,
# score) pair, SIGKILLs one daemon, and restarts it. After
# CHAOS_CLUSTER_CYCLES (default 20) cycles: every per-node store file
# must still pass store_check, and for every acknowledged record the
# cluster-wide best score for its key must be at least as good — zero
# acknowledged-record loss and cluster-wide per-key monotonicity.
#
# Phase 6 (partition chaos): a fresh ring with fast health probes
# (--probe-interval-ms 50 --down-after 2) through
# CHAOS_PARTITION_CYCLES (default 21) deterministic partition/heal
# cycles. Fault config is per-process environment, so a partition is
# "restart the victim with the link broken" and a heal is "restart it
# clean". Scenarios rotate by cycle%3:
#   netsplit   — the victim's cluster.* sites all fail: inbound
#                replicate/probe/sync severed (cluster.accept EPIPE)
#                and outbound probes/ships/syncs erroring, so both
#                sides detect Down and peers spill hinted handoff;
#   asymmetric — the victim cannot reach exactly one peer
#                (MSE_FAULT_PEERS-filtered probe/ship/sync EIO) while
#                that peer still reaches the victim;
#   flapping   — every second inbound cluster op dies
#                (cluster.accept every:2), churning the victim
#                through Suspect at the observers.
# Every cycle runs an acknowledged routed search *during* the
# partition, heals, and must re-converge within CHAOS_WAIT_S: the
# acked key reaches >=2 of the 3 stores via hint drain + the rejoin
# sync pull. Afterwards: store_check on every file, zero
# acknowledged-record loss cluster-wide, and every acked key on >=2
# stores.
#
# Usage: tools/chaos_harness.sh BUILD_DIR [CYCLES]
#
# CYCLES defaults to 30 (the CI acceptance floor). CHAOS_WAIT_S bounds
# every individual wait (default 30s) so a wedged daemon fails fast
# instead of hanging CI. The kill delays are derived from the cycle
# number, so a failing cycle replays with the same timing.
set -euo pipefail

BUILD_DIR="${1:-build}"
CYCLES="${2:-30}"
CHAOS_WAIT_S="${CHAOS_WAIT_S:-30}"
SERVE="$BUILD_DIR/tools/mse_serve"
CLIENT="$BUILD_DIR/tools/mse_client"
CHECK="$BUILD_DIR/tools/store_check"
WORK_DIR="$(mktemp -d)"
STORE="$WORK_DIR/mappings.jsonl"
SERVE_LOG="$WORK_DIR/serve.log"
SERVE_PID=""
CL_PIDS=() # phase-5 cluster daemons (reaped by the EXIT trap too)

fail() {
    echo "CHAOS FAIL: $*" >&2
    [ -f "$SERVE_LOG" ] && sed 's/^/  serve| /' "$SERVE_LOG" >&2
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
    exit 1
}

wait_until() {
    local what="$1"
    shift
    local deadline=$(($(date +%s) + CHAOS_WAIT_S))
    until "$@"; do
        if [ "$(date +%s)" -ge "$deadline" ]; then
            fail "timed out after ${CHAOS_WAIT_S}s waiting for $what"
        fi
        sleep 0.1
    done
}

[ -x "$SERVE" ] || fail "missing $SERVE (build first)"
[ -x "$CLIENT" ] || fail "missing $CLIENT (build first)"
[ -x "$CHECK" ] || fail "missing $CHECK (build first)"

port_reported() {
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon died on startup"
    grep -q '^LISTENING' "$SERVE_LOG" 2>/dev/null
}

start_serve() { # start_serve [extra serve args...]
    : >"$SERVE_LOG"
    "$SERVE" --store "$STORE" --samples 200 "$@" >"$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    wait_until "the daemon to report its port" port_reported
    PORT=$(awk '/^LISTENING/ {print $2; exit}' "$SERVE_LOG")
    [ -n "$PORT" ] && [ "$PORT" -gt 0 ] ||
        fail "daemon reported a bad port: '$PORT'"
}

trap '[ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null;
      for p in "${CL_PIDS[@]:-}"; do
          [ -n "$p" ] && kill -9 "$p" 2>/dev/null
      done
      rm -rf "$WORK_DIR"' EXIT

echo "chaos: $CYCLES SIGKILL cycles against $STORE"

for ((cycle = 1; cycle <= CYCLES; ++cycle)); do
    start_serve

    # Fire a burst of searches in the background. The M dimension
    # varies with the cycle so appends keep landing on fresh keys
    # (new keys = guaranteed store writes to kill in the middle of);
    # repeating a key from an earlier cycle exercises the
    # better-score-only append path instead.
    for i in 1 2 3; do
        M=$((32 + ((cycle * 3 + i) % 8) * 16))
        timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
            --gemm "4,$M,64,64" --samples 200 --retries 0 \
            >/dev/null 2>&1 &
    done

    # Deterministic kill point: 10-190 ms after launch, swept across
    # cycles so kills land before, during, and after the appends.
    DELAY_MS=$((10 + (cycle * 37) % 180))
    sleep "0.$(printf '%03d' "$DELAY_MS")"
    kill -9 "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
    wait # reap the client jobs (failures expected: their server died)

    REPORT=$("$CHECK" "$STORE") ||
        fail "cycle $cycle: store corrupted after SIGKILL: $REPORT"
done

VALID=$(echo "$REPORT" | sed -n 's/.*"valid_records":\([0-9]*\).*/\1/p')
TORN=$(echo "$REPORT" | sed -n 's/.*"torn_lines":\([0-9]*\).*/\1/p')
echo "chaos: $CYCLES cycles clean (${VALID:-0} records, ${TORN:-0} torn lines sealed)"
[ "${VALID:-0}" -gt 0 ] ||
    fail "no append ever survived a kill — the kill window never overlapped a write, harness proves nothing"

# --- Phase 2: the battered store must still load and serve warm. ---
start_serve
# Every cycle searched 4,M,64,64 shapes, so any surviving record gives
# this search at least a near (scaleFrom) warm start; which exact keys
# survived depends on where the kills landed.
WARM=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
    --gemm 4,96,64,64 --samples 200) ||
    fail "recovery search failed: $WARM"
echo "$WARM" | grep -Eq '"store":"(exact|near)"' ||
    fail "recovery search was not warm-started from the store: $WARM"
kill -TERM "$SERVE_PID"
daemon_gone() { ! kill -0 "$SERVE_PID" 2>/dev/null; }
wait_until "the daemon to drain after SIGTERM" daemon_gone
RC=0
wait "$SERVE_PID" 2>/dev/null || RC=$?
[ "$RC" -eq 0 ] || fail "recovery daemon exited with status $RC"
SERVE_PID=""
echo "chaos: recovery OK (warm hit on surviving store)"

# --- Phase 3: injected ENOSPC must degrade, not kill, the service. ---
DEG_STORE="$WORK_DIR/degraded.jsonl"
: >"$SERVE_LOG"
MSE_FAULTS="store.append:every:1:ENOSPC" \
    "$SERVE" --store "$DEG_STORE" --samples 200 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
wait_until "the fault-armed daemon to report its port" port_reported
PORT=$(awk '/^LISTENING/ {print $2; exit}' "$SERVE_LOG")

OUT=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
    --gemm 4,64,64,64 --samples 200) ||
    fail "search under injected ENOSPC failed: $OUT"
echo "$OUT" | grep -q '"ok":true' ||
    fail "search under injected ENOSPC not ok: $OUT"

STATS=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" --stats) ||
    fail "stats under injected ENOSPC failed"
echo "$STATS" | grep -q '"degraded":true' ||
    fail "stats does not report the store degraded: $STATS"
echo "$STATS" | grep -q '"armed":true' ||
    fail "stats does not report fault injection armed: $STATS"
if [ -s "$DEG_STORE" ]; then
    fail "degraded store was written to disk despite ENOSPC on every append"
fi

# Still answering after the degradation was noticed.
timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" --ping |
    grep -q '"ok":true' || fail "daemon stopped answering after degrading"

kill -TERM "$SERVE_PID"
wait_until "the degraded daemon to drain after SIGTERM" daemon_gone
SERVE_PID=""
echo "chaos: degraded-mode OK (server survived ENOSPC on every append)"

# --- Phase 4: faults at the event loop's own sys_io sites. ---
: >"$SERVE_LOG"
MSE_FAULTS="server.epoll.wait:every:2:EINTR,server.poll.wait:every:2:EINTR,server.send:once:3:EAGAIN,server.accept:once:1:EIO" \
    "$SERVE" --store "$WORK_DIR/evfaults.jsonl" --samples 200 \
    >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
wait_until "the event-fault daemon to report its port" port_reported
PORT=$(awk '/^LISTENING/ {print $2; exit}' "$SERVE_LOG")

PIPE=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
    --ping --pipeline 8) ||
    fail "pipelined ping under event-loop faults failed: $PIPE"
PIPE_OK=$(echo "$PIPE" | grep -c '"ok":true')
[ "$PIPE_OK" -eq 8 ] ||
    fail "expected 8 pipelined replies under faults, got $PIPE_OK"

OUT=$(timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$PORT" \
    --gemm 4,64,64,64 --samples 200) ||
    fail "search under event-loop faults failed: $OUT"
echo "$OUT" | grep -q '"ok":true' ||
    fail "search under event-loop faults not ok: $OUT"

kill -TERM "$SERVE_PID"
wait_until "the event-fault daemon to drain after SIGTERM" daemon_gone
RC=0
wait "$SERVE_PID" 2>/dev/null || RC=$?
[ "$RC" -eq 0 ] || fail "event-fault daemon exited with status $RC"
SERVE_PID=""
echo "chaos: event-loop fault injection OK (EINTR storm, EAGAIN send, failed accept)"

# --- Phase 5: cluster failover under a replica SIGKILL storm. ---
# Three daemons on one consistent-hash ring (replication factor 2).
# Every cycle: a routed search through the cluster client, whose ok
# reply is an acknowledgement we record as (store_key, score); then
# SIGKILL one daemon and restart it on the same --self (safe: the
# listener sets SO_REUSEADDR). The client must absorb every kill via
# failover/redirect. Afterwards, zero acknowledged-record loss: for
# every acked pair the cluster-wide best score for that key (min
# across all three store files) must be <= the acked score, and every
# store file must still pass store_check on its own.
CL_N=3
CL_CYCLES="${CHAOS_CLUSTER_CYCLES:-20}"
CL_PIDS=()
CL_ADDRS=()
CL_NODES=""
ACKED="$WORK_DIR/acked.txt"
: >"$ACKED"

cl_dump_logs() {
    local i
    for i in $(seq 0 $((CL_N - 1))); do
        [ -f "$WORK_DIR/cl_serve_$i.log" ] &&
            sed "s/^/  cl_serve$i| /" "$WORK_DIR/cl_serve_$i.log" >&2
    done
}

cl_kill_all() {
    local pid
    for pid in "${CL_PIDS[@]:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    CL_PIDS=()
}

cl_fail() {
    cl_dump_logs
    cl_kill_all
    fail "$@"
}

cl_peers_of() { # cl_peers_of INDEX -> comma list of the other addrs
    local i="$1" j out=""
    for j in $(seq 0 $((CL_N - 1))); do
        [ "$j" -eq "$i" ] && continue
        out="${out:+$out,}${CL_ADDRS[$j]}"
    done
    echo "$out"
}

# cl_start INDEX [MSE_FAULTS [MSE_FAULT_PEERS]] — (re)start daemon
# INDEX on its fixed addr; CL_STORE_PREFIX and CL_PROBE_ARGS let the
# partition phase reuse the machinery with its own stores and fast
# health probes.
cl_start() {
    local i="$1" faults="${2:-}" fault_peers="${3:-}"
    : >"$WORK_DIR/cl_serve_$i.log"
    # shellcheck disable=SC2086  # CL_PROBE_ARGS is a flag list
    MSE_EXECUTORS=2 MSE_FAULTS="$faults" MSE_FAULT_PEERS="$fault_peers" \
        "$SERVE" \
        --self "${CL_ADDRS[$i]}" --peers "$(cl_peers_of "$i")" \
        --replicas 2 --store "$WORK_DIR/${CL_STORE_PREFIX}$i.jsonl" \
        --samples 200 ${CL_PROBE_ARGS:-} \
        >"$WORK_DIR/cl_serve_$i.log" 2>&1 &
    CL_PIDS[$i]=$!
}

cl_listening() {
    kill -0 "${CL_PIDS[$1]}" 2>/dev/null || return 1
    grep -q '^LISTENING' "$WORK_DIR/cl_serve_$1.log" 2>/dev/null
}

cl_bounce() { # cl_bounce INDEX [MSE_FAULTS [MSE_FAULT_PEERS]]
    local i="$1"
    kill -9 "${CL_PIDS[$i]}" 2>/dev/null || true
    wait "${CL_PIDS[$i]}" 2>/dev/null || true
    cl_start "$@"
    wait_until "bounced daemon $i to report its port" cl_listening "$i"
}

# The ring needs fixed ports (--self is part of the hash): derive a
# block from the PID (salted per phase) and retry with a shifted
# block on bind collision.
cl_boot_ring() { # cl_boot_ring SALT
    local salt="$1" attempt i all_up deadline
    cl_started=0
    for attempt in 0 1 2 3 4; do
        CL_BASE=$((24000 + (($$ * 7 + salt + attempt * 233) % 36000)))
        CL_ADDRS=()
        for i in $(seq 0 $((CL_N - 1))); do
            CL_ADDRS+=("127.0.0.1:$((CL_BASE + i))")
        done
        CL_NODES=$(IFS=,; echo "${CL_ADDRS[*]}")

        CL_PIDS=()
        for i in $(seq 0 $((CL_N - 1))); do
            rm -f "$WORK_DIR/${CL_STORE_PREFIX}$i.jsonl"
            cl_start "$i"
        done

        all_up=1
        for i in $(seq 0 $((CL_N - 1))); do
            deadline=$(($(date +%s) + CHAOS_WAIT_S))
            while ! grep -q '^LISTENING' "$WORK_DIR/cl_serve_$i.log" 2>/dev/null; do
                if ! kill -0 "${CL_PIDS[$i]}" 2>/dev/null; then
                    all_up=0
                    break
                fi
                [ "$(date +%s)" -ge "$deadline" ] &&
                    cl_fail "cluster daemon $i never reported its port"
                sleep 0.1
            done
            [ "$all_up" -eq 1 ] || break
        done
        if [ "$all_up" -eq 1 ]; then
            cl_started=1
            break
        fi
        cl_kill_all
    done
}

cl_drain() { # SIGTERM every live daemon and require rc 0 from each
    local i deadline
    for i in $(seq 0 $((CL_N - 1))); do
        [ -n "${CL_PIDS[$i]}" ] && kill -TERM "${CL_PIDS[$i]}" 2>/dev/null || true
    done
    for i in $(seq 0 $((CL_N - 1))); do
        [ -n "${CL_PIDS[$i]}" ] || continue
        deadline=$(($(date +%s) + CHAOS_WAIT_S))
        while kill -0 "${CL_PIDS[$i]}" 2>/dev/null; do
            [ "$(date +%s)" -ge "$deadline" ] &&
                cl_fail "cluster daemon $i ignored SIGTERM"
            sleep 0.1
        done
        wait "${CL_PIDS[$i]}" 2>/dev/null || true
        CL_PIDS[$i]=""
    done
}

CL_STORE_PREFIX="cl_store_"
CL_PROBE_ARGS=""
cl_boot_ring 0
[ "$cl_started" -eq 1 ] ||
    fail "could not bind a $CL_N-port block after 5 attempts"
echo "chaos: cluster up at $CL_NODES for $CL_CYCLES SIGKILL cycles"

for ((cycle = 1; cycle <= CL_CYCLES; ++cycle)); do
    # Routed search; the M sweep revisits keys so later cycles also
    # exercise warm hits served by replicas of earlier victims. Retries
    # wrap whole failover sweeps, so a cycle that races a restart still
    # lands somewhere in the replica set.
    M=$((32 + ((cycle * 5) % 8) * 16))
    OUT=$(timeout "$((CHAOS_WAIT_S * 4))" "$CLIENT" --cluster "$CL_NODES" \
        --gemm "4,$M,64,64" --samples 200 --retries 3 2>/dev/null) ||
        cl_fail "cycle $cycle: cluster search failed: $OUT"
    echo "$OUT" | grep -q '"ok":true' ||
        cl_fail "cycle $cycle: cluster search not ok: $OUT"
    CL_KEY=$(echo "$OUT" | sed -n 's/.*"store_key":"\([^"]*\)".*/\1/p')
    CL_SCORE=$(echo "$OUT" | sed -n 's/.*"score":\([0-9.eE+-]*\).*/\1/p')
    [ -n "$CL_KEY" ] && [ -n "$CL_SCORE" ] ||
        cl_fail "cycle $cycle: reply missing store_key/score: $OUT"
    echo "$CL_KEY $CL_SCORE" >>"$ACKED"

    # A background search too, so some kills land mid-request.
    BG_M=$((32 + ((cycle * 5 + 3) % 8) * 16))
    timeout "$((CHAOS_WAIT_S * 4))" "$CLIENT" --cluster "$CL_NODES" \
        --gemm "4,$BG_M,64,64" --samples 200 --retries 3 \
        >/dev/null 2>&1 &
    BG_PID=$!

    VICTIM=$((cycle % CL_N))
    kill -9 "${CL_PIDS[$VICTIM]}" 2>/dev/null || true
    wait "${CL_PIDS[$VICTIM]}" 2>/dev/null || true
    # Reap only the client (failure fine: its shard may have died);
    # a bare `wait` would block on the surviving daemons.
    wait "$BG_PID" 2>/dev/null || true

    cl_start "$VICTIM"
    wait_until "killed daemon $VICTIM to rejoin the ring" \
        cl_listening "$VICTIM"
done

# Drain the survivors cleanly before inspecting the store files.
cl_drain

# Per-file integrity + per-key monotonicity, then the cluster-wide
# acknowledged-record check.
BEST="$WORK_DIR/cluster_best.txt"
: >"$BEST"
for i in $(seq 0 $((CL_N - 1))); do
    "$CHECK" "$WORK_DIR/cl_store_$i.jsonl" >/dev/null ||
        cl_fail "cluster store $i corrupted after the kill storm"
    "$CHECK" --keys "$WORK_DIR/cl_store_$i.jsonl" >>"$BEST" ||
        cl_fail "cluster store $i key dump failed"
done

ACK_COUNT=$(wc -l <"$ACKED")
[ "$ACK_COUNT" -ge "$CL_CYCLES" ] ||
    cl_fail "only $ACK_COUNT acked records for $CL_CYCLES cycles"
LOST=$(awk '
    NR == FNR { if (!($1 in best) || $2 < best[$1]) best[$1] = $2; next }
    {
        if (!($1 in best)) { print "missing " $1; exit 1 }
        # Tiny relative slack for the decimal round-trip through JSON.
        if (best[$1] > $2 * (1 + 1e-9) + 1e-12) {
            print "regressed " $1 ": best " best[$1] " > acked " $2
            exit 1
        }
    }' "$BEST" "$ACKED") ||
    cl_fail "acknowledged record lost after kill storm: $LOST"
echo "chaos: cluster failover OK ($CL_CYCLES SIGKILL cycles, $ACK_COUNT acks, zero acknowledged-record loss)"

# --- Phase 6: partition chaos — detection, handoff, re-sync. ---
# Fresh ring, fresh stores, fast probes so Down detection and the
# Suspect->Up climb fit inside a cycle. See the header comment for
# the scenario rotation.
P6_CYCLES="${CHAOS_PARTITION_CYCLES:-21}"
CL_STORE_PREFIX="p6_store_"
CL_PROBE_ARGS="--probe-interval-ms 50 --down-after 2"
cl_boot_ring 101
[ "$cl_started" -eq 1 ] ||
    fail "could not bind a partition-phase port block after 5 attempts"
echo "chaos: partition ring up at $CL_NODES for $P6_CYCLES partition/heal cycles"

ACKED6="$WORK_DIR/acked6.txt"
: >"$ACKED6"

# Observer OBS must report peer PEER_ADDR down in its health stats.
p6_sees_down() { # p6_sees_down PORT PEER_ADDR
    timeout "$CHAOS_WAIT_S" "$CLIENT" --port "$1" --stats 2>/dev/null |
        grep -qF "\"$2\":{\"state\":\"down\""
}

p6_key_on_two() { # p6_key_on_two KEY -> key present in >=2 store files
    local n=0 i
    for i in $(seq 0 $((CL_N - 1))); do
        if "$CHECK" --keys "$WORK_DIR/p6_store_$i.jsonl" 2>/dev/null |
            grep -qF "$1 "; then
            n=$((n + 1))
        fi
    done
    [ "$n" -ge 2 ]
}

for ((cycle = 1; cycle <= P6_CYCLES; ++cycle)); do
    VICTIM=$((cycle % CL_N))
    SCENARIO=$((cycle % 3))
    FPEERS=""
    case "$SCENARIO" in
    0) # Netsplit: the victim loses cluster traffic in both
       # directions (inbound gate severs, outbound probe/ship/sync
       # error) but keeps serving client searches.
        NAME="netsplit"
        FAULTS="cluster.accept:every:1:EPIPE,cluster.probe:every:1:EIO"
        FAULTS="$FAULTS,cluster.ship:every:1:EIO,cluster.sync:every:1:EIO"
        ;;
    1) # Asymmetric: the victim cannot reach exactly one peer; that
       # peer still reaches the victim.
        NAME="asymmetric"
        FAULTS="cluster.probe:every:1:EIO,cluster.ship:every:1:EIO"
        FAULTS="$FAULTS,cluster.sync:every:1:EIO"
        FPEERS="${CL_ADDRS[$(((VICTIM + 1) % CL_N))]}"
        ;;
    *) # Flapping: every second inbound cluster op dies, so the
       # observers churn the victim through Suspect.
        NAME="flapping"
        FAULTS="cluster.accept:every:2:EPIPE"
        ;;
    esac

    # Partition: bounce the victim with the broken link armed.
    cl_bounce "$VICTIM" "$FAULTS" "$FPEERS"

    # Failure detection must actually fire where the scenario predicts
    # it: netsplit -> an observer marks the victim down; asymmetric ->
    # the victim marks its unreachable peer down.
    if [ "$SCENARIO" -eq 0 ]; then
        OBS=$(((VICTIM + 1) % CL_N))
        wait_until "cycle $cycle ($NAME): observer to mark the victim down" \
            p6_sees_down "${CL_ADDRS[$OBS]##*:}" "${CL_ADDRS[$VICTIM]}"
    elif [ "$SCENARIO" -eq 1 ]; then
        wait_until "cycle $cycle ($NAME): victim to mark its lost peer down" \
            p6_sees_down "${CL_ADDRS[$VICTIM]##*:}" "$FPEERS"
    fi

    # Acknowledged routed search *during* the partition. The M sweep
    # lands on different ring owners across cycles, so records are
    # acked on partitioned victims and on healthy observers alike.
    M=$((32 + ((cycle * 7) % 8) * 16))
    OUT=$(timeout "$((CHAOS_WAIT_S * 4))" "$CLIENT" --cluster "$CL_NODES" \
        --gemm "4,$M,64,64" --samples 200 --retries 3 2>/dev/null) ||
        cl_fail "cycle $cycle ($NAME): partitioned search failed: $OUT"
    echo "$OUT" | grep -q '"ok":true' ||
        cl_fail "cycle $cycle ($NAME): partitioned search not ok: $OUT"
    P6_KEY=$(echo "$OUT" | sed -n 's/.*"store_key":"\([^"]*\)".*/\1/p')
    P6_SCORE=$(echo "$OUT" | sed -n 's/.*"score":\([0-9.eE+-]*\).*/\1/p')
    [ -n "$P6_KEY" ] && [ -n "$P6_SCORE" ] ||
        cl_fail "cycle $cycle ($NAME): reply missing store_key/score: $OUT"
    echo "$P6_KEY $P6_SCORE" >>"$ACKED6"

    # Heal: clean restart. Hinted handoff from the observers plus the
    # rejoining victim's startup sync pull must put this cycle's acked
    # key on >=2 stores within the wait bound.
    cl_bounce "$VICTIM"
    wait_until "cycle $cycle ($NAME): acked key to re-converge onto >=2 stores" \
        p6_key_on_two "$P6_KEY"
done

cl_drain

# Final certification: per-file integrity, zero acknowledged-record
# loss cluster-wide, and every acked key on >=2 of the 3 stores.
BEST6="$WORK_DIR/p6_best.txt"
: >"$BEST6"
for i in $(seq 0 $((CL_N - 1))); do
    "$CHECK" "$WORK_DIR/p6_store_$i.jsonl" >/dev/null ||
        cl_fail "partition store $i corrupted after the chaos run"
    "$CHECK" --keys "$WORK_DIR/p6_store_$i.jsonl" >"$WORK_DIR/p6_keys_$i.txt" ||
        cl_fail "partition store $i key dump failed"
    cat "$WORK_DIR/p6_keys_$i.txt" >>"$BEST6"
done

ACK6_COUNT=$(wc -l <"$ACKED6")
[ "$ACK6_COUNT" -ge "$P6_CYCLES" ] ||
    cl_fail "only $ACK6_COUNT acked records for $P6_CYCLES partition cycles"
LOST6=$(awk '
    NR == FNR { if (!($1 in best) || $2 < best[$1]) best[$1] = $2; next }
    {
        if (!($1 in best)) { print "missing " $1; exit 1 }
        if (best[$1] > $2 * (1 + 1e-9) + 1e-12) {
            print "regressed " $1 ": best " best[$1] " > acked " $2
            exit 1
        }
    }' "$BEST6" "$ACKED6") ||
    cl_fail "acknowledged record lost across partitions: $LOST6"

while read -r key _; do
    n=0
    for i in $(seq 0 $((CL_N - 1))); do
        grep -qF "$key " "$WORK_DIR/p6_keys_$i.txt" && n=$((n + 1))
    done
    [ "$n" -ge 2 ] ||
        cl_fail "acked key $key on only $n store(s) after heal"
done <"$ACKED6"
echo "chaos: partition chaos OK ($P6_CYCLES partition/heal cycles, $ACK6_COUNT acks, all re-converged onto >=2 replicas)"

echo "chaos harness OK: $CYCLES kill cycles, zero corrupted records, clean recovery, graceful degradation, event-loop faults absorbed, cluster failover certified, partition chaos certified"

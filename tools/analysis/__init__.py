"""Shared static-analysis framework for the MSE repo.

Modules:
  source     -- file collection + a small C++ lexer (CppSource) that
                classifies every byte as code / comment / string /
                disabled (#if 0), handles raw strings and adjacent
                string-literal concatenation.
  report     -- the Finding record, `// mse-lint: allow(rule)` escape
                hatch, and text/github output formatting.
  registries -- cross-file contract registries: wire error codes,
                fault-injection sites, metrics key paths, plus the
                DESIGN.md / README.md doc-table extractors.
  locks      -- class-member mutex census, thread-safety-annotation
                coverage, and the lock-order graph (declared
                ACQUIRED_BEFORE/AFTER edges + mined acquisition-site
                edges) with cycle detection.
  includes   -- file-level include DAG, module layering ranks, and
                include-cycle detection.

`tools/mse_lint.py` (single-file style rules) and `tools/mse_analyze.py`
(project-wide semantic rules) are both thin drivers over this package.
"""

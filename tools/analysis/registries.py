"""Cross-file contract registries.

Three string-keyed contracts span the repo and can silently drift:

  * wire error codes   -- src/service/error_codes.hpp vs construction
                          sites, client retry logic, tests, DESIGN.md.
  * fault sites        -- src/common/fault_sites.hpp vs faultCheck
                          call sites, tests/chaos arming, README table.
  * metrics key paths  -- src/common/metric_names.hpp vs the JSON trees
                          the stats emitters actually build vs the
                          consumers that read them.

This module extracts each side of each contract into a registry; the
driver (tools/mse_analyze.py) diffs the sides and reports findings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .source import CppSource

# --------------------------------------------------------------------
# Constants headers
# --------------------------------------------------------------------

_CONST_DECL_RE = re.compile(r"const\s+char\s*\*\s*(k\w+)\s*=")


@dataclass
class Const:
    name: str  # identifier, e.g. kBadJson
    value: str  # string value, e.g. "bad_json"
    line: int  # declaration line (1-based)


def parse_constants_header(src: CppSource) -> List[Const]:
    """Extract `inline constexpr const char *kX = "value";` entries.

    The initializer may sit on the following line (clang-format wraps
    long declarations); we pair each declaration with the first string
    literal at or after its line.
    """
    consts: List[Const] = []
    lits = list(src.strings)
    li = 0
    for idx, ln in enumerate(src.code_lines):
        m = _CONST_DECL_RE.search(ln)
        if not m:
            continue
        while li < len(lits) and lits[li].line < idx + 1:
            li += 1
        if li < len(lits):
            consts.append(
                Const(name=m.group(1), value=lits[li].value, line=idx + 1)
            )
            li += 1
    return consts


_ARRAY_DECL_RE = re.compile(
    r"const\s+char\s*\*\s*(k\w+)\[\]\s*=\s*\{([^}]*)\}", re.S
)


def parse_constant_arrays(src: CppSource) -> Dict[str, List[str]]:
    """Extract `constexpr const char *kXs[] = {kA, kB, ...};` tables:
    array name -> member identifier list. Parsed from the
    comments-stripped code text, so the members are bare identifiers.
    """
    text = "\n".join(src.code_lines)
    out: Dict[str, List[str]] = {}
    for m in _ARRAY_DECL_RE.finditer(text):
        out[m.group(1)] = re.findall(r"\bk\w+\b", m.group(2))
    return out


def identifier_refs(
    src: CppSource, namespace: str
) -> List[Tuple[str, int]]:
    """All `namespace::kX` references in a file: [(name, line)]."""
    pat = re.compile(re.escape(namespace) + r"::(k\w+)")
    out: List[Tuple[str, int]] = []
    for idx, ln in enumerate(src.code_lines):
        for m in pat.finditer(ln):
            out.append((m.group(1), idx + 1))
    return out


def function_body(src: CppSource, name_re: str) -> Optional[Tuple[int, str]]:
    """Locate a function definition whose signature matches `name_re`
    and return (first_line_1based, body_text) from the strings-kept
    code view, body delimited by its outermost braces."""
    text = "\n".join(src.code_ws_lines)
    m = re.search(name_re, text)
    if not m:
        return None
    brace = text.find("{", m.end())
    if brace < 0:
        return None
    depth = 0
    for i in range(brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                first_line = text.count("\n", 0, m.start()) + 1
                return (first_line, text[brace + 1:i])
    return None


# --------------------------------------------------------------------
# Wire error codes
# --------------------------------------------------------------------


@dataclass
class ErrorCodeRegistry:
    declared: List[Const] = field(default_factory=list)
    header_path: str = ""
    # name -> [(path, line)] references outside the header
    constructed: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    tested: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    # codes in the client-side blind-retry set (from isRetryable body)
    retryable: Set[str] = field(default_factory=set)
    # DESIGN.md table: code value -> (retryable_flag, line)
    documented: Dict[str, Tuple[bool, int]] = field(default_factory=dict)

    def by_value(self) -> Dict[str, Const]:
        return {c.value: c for c in self.declared}


def extract_error_codes(
    header: CppSource,
    src_files: Sequence[CppSource],
    test_files: Sequence[CppSource],
    design_text: Optional[str],
) -> ErrorCodeRegistry:
    reg = ErrorCodeRegistry()
    reg.header_path = header.path
    reg.declared = parse_constants_header(header)
    values = {c.name: c.value for c in reg.declared}

    body = function_body(header, r"\bisRetryable\s*\(")
    if body:
        for name in re.findall(r"\b(k\w+)\b", body[1]):
            if name in values:
                reg.retryable.add(values[name])

    for f in src_files:
        if f.path == header.path:
            continue
        for name, line in identifier_refs(f, "wire_errors"):
            reg.constructed.setdefault(name, []).append((f.path, line))
    for f in test_files:
        for name, line in identifier_refs(f, "wire_errors"):
            reg.tested.setdefault(name, []).append((f.path, line))
        by_val = {v: k for k, v in values.items()}
        for lit in f.strings:
            if lit.value in by_val:
                reg.tested.setdefault(by_val[lit.value], []).append(
                    (f.path, lit.line)
                )

    if design_text is not None:
        for value, retry, line in parse_design_error_table(design_text):
            reg.documented[value] = (retry, line)
    return reg


_MD_CODE_ROW_RE = re.compile(r"^\|\s*`([a-z_]+)`\s*\|(.*)\|\s*(.*?)\s*\|\s*$")


def parse_design_error_table(text: str) -> List[Tuple[str, bool, int]]:
    """Parse the DESIGN.md wire-error taxonomy: rows between the
    `| Code | Meaning | Retryable |` header and the next blank line."""
    out: List[Tuple[str, bool, int]] = []
    lines = text.split("\n")
    in_table = False
    for idx, ln in enumerate(lines):
        if re.match(r"^\|\s*Code\s*\|\s*Meaning\s*\|\s*Retryable\s*\|", ln):
            in_table = True
            continue
        if in_table:
            if not ln.strip().startswith("|"):
                break
            m = _MD_CODE_ROW_RE.match(ln.strip())
            if m:
                retry = m.group(3).strip().lower().startswith("yes")
                out.append((m.group(1), retry, idx + 1))
    return out


# --------------------------------------------------------------------
# Fault sites
# --------------------------------------------------------------------


@dataclass
class FaultSiteRegistry:
    declared: List[Const] = field(default_factory=list)
    header_path: str = ""
    consulted: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    # site value -> [(path, line)] in tests / chaos scripts that arm it
    exercised: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    # README table: site value -> line
    documented: Dict[str, int] = field(default_factory=dict)


_SITE_TOKEN_RE = re.compile(r"[a-z][a-z0-9_.]*[a-z0-9]")


def site_tokens(s: str) -> Set[str]:
    """Dotted-name tokens inside an MSE_FAULTS-ish string: splitting on
    anything outside [a-z0-9_.] keeps `net.accept.poll` from also
    matching `net.accept`."""
    return set(_SITE_TOKEN_RE.findall(s))


def extract_fault_sites(
    header: CppSource,
    src_files: Sequence[CppSource],
    test_files: Sequence[CppSource],
    script_texts: Dict[str, str],
    readme_text: Optional[str],
) -> FaultSiteRegistry:
    reg = FaultSiteRegistry()
    reg.header_path = header.path
    reg.declared = parse_constants_header(header)
    site_values = {c.value for c in reg.declared}

    for f in src_files:
        if f.path == header.path:
            continue
        for name, line in identifier_refs(f, "fault_sites"):
            reg.consulted.setdefault(name, []).append((f.path, line))

    # Tests arm sites via literals ("store.append:every:3:EIO"), shell
    # harnesses via MSE_FAULTS= lines.  Tokenise so a compound spec
    # marks exactly the sites it names.
    for f in test_files:
        for lit in f.strings:
            for tok in site_tokens(lit.value) & site_values:
                reg.exercised.setdefault(tok, []).append((f.path, lit.line))
    for path, text in script_texts.items():
        for idx, ln in enumerate(text.split("\n")):
            if "MSE_FAULTS" not in ln:
                continue
            for tok in site_tokens(ln) & site_values:
                reg.exercised.setdefault(tok, []).append((path, idx + 1))

    if readme_text is not None:
        for site, line in parse_readme_fault_table(readme_text):
            reg.documented[site] = line
    return reg


_MD_SITE_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_.]*)`\s*\|")


def parse_readme_fault_table(text: str) -> List[Tuple[str, int]]:
    """Parse README's fault-site table: rows between the
    `| Site | ... |` header and the next non-table line."""
    out: List[Tuple[str, int]] = []
    lines = text.split("\n")
    in_table = False
    for idx, ln in enumerate(lines):
        if re.match(r"^\|\s*Site\s*\|", ln):
            in_table = True
            continue
        if in_table:
            if not ln.strip().startswith("|"):
                in_table = False
                continue
            m = _MD_SITE_ROW_RE.match(ln.strip())
            if m:
                out.append((m.group(1), idx + 1))
    return out


# --------------------------------------------------------------------
# Metrics key paths
# --------------------------------------------------------------------


@dataclass
class Emitter:
    """One JSON-building function to interpret structurally."""

    path: str  # file containing the definition
    signature: str  # regex locating it, e.g. r"ServiceMetrics::toJson\s*\("
    key: str  # registry name, e.g. "ServiceMetrics::toJson"


@dataclass
class EmittedKey:
    path_segments: Tuple[str, ...]  # ("store", "per_key", "*")
    file: str
    line: int

    @property
    def dotted(self) -> str:
        return ".".join(self.path_segments)


_ROOT_RE = re.compile(
    r"JsonValue\s+(\w+)\s*=\s*(JsonValue::object\(\)|[\w.>-]+\s*\(\s*\))"
)
_BIND_RE = re.compile(
    r"JsonValue\s*&\s*(\w+)\s*=\s*(\w+)\s*((?:\[[^\]]*\])+)\s*;"
)
_ASSIGN_RE = re.compile(
    r"(?<![\w\]])(\w+)\s*((?:\[[^\]]*\])+)\s*=(?!=)\s*([^;]+);"
)
_INDEX_RE = re.compile(r'\[\s*(?:"([^"]*)"|([^\]]*))\s*\]')
_SPLICE_RE = re.compile(r"(\w+)\s*(?:\.|->)\s*(toJson|statsJson)\s*\(\s*\)")


def _indices(chain: str) -> List[str]:
    """Parse an `["a"]["b"][expr]` chain into segments; non-literal
    indices become `*`."""
    segs: List[str] = []
    for m in _INDEX_RE.finditer(chain):
        if m.group(1) is not None:
            segs.append(m.group(1))
        else:
            segs.append("*")
    return segs


def interpret_emitter(
    src: CppSource, emitter: Emitter
) -> Tuple[List[EmittedKey], List[Tuple[Tuple[str, ...], str, int]]]:
    """Abstractly interpret one JSON-building function.

    Tracks `JsonValue` root objects and `JsonValue &` alias bindings,
    turning every `x["k"] = value;` into an emitted dotted key.  An
    assignment whose RHS calls `.toJson()`/`->statsJson()` is returned
    as a splice (mount-path, member-expression, line) for the caller to
    resolve against the other emitters.

    Returns (keys, splices).
    """
    loc = function_body(src, emitter.signature)
    if loc is None:
        return ([], [])
    start_line, body = loc
    vars_: Dict[str, Tuple[str, ...]] = {}
    keys: List[EmittedKey] = []
    splices: List[Tuple[Tuple[str, ...], str, int]] = []

    def line_of(pos: int) -> int:
        return start_line + body.count("\n", 0, pos)

    for m in _ROOT_RE.finditer(body):
        name, init = m.group(1), m.group(2)
        vars_.setdefault(name, ())
        sp = _SPLICE_RE.search(init)
        if sp:
            splices.append(((), sp.group(1), line_of(m.start())))

    for m in _BIND_RE.finditer(body):
        name, base, chain = m.group(1), m.group(2), m.group(3)
        base_path = vars_.get(base)
        if base_path is None:
            continue
        vars_[name] = base_path + tuple(_indices(chain))

    for m in _ASSIGN_RE.finditer(body):
        base, chain, rhs = m.group(1), m.group(2), m.group(3)
        base_path = vars_.get(base)
        if base_path is None:
            continue
        segs = base_path + tuple(_indices(chain))
        sp = _SPLICE_RE.search(rhs)
        if sp:
            splices.append((segs, sp.group(1), line_of(m.start())))
        else:
            keys.append(
                EmittedKey(
                    path_segments=segs,
                    file=src.path,
                    line=line_of(m.start()),
                )
            )
    return (keys, splices)


def resolve_emitted_tree(
    sources: Dict[str, CppSource],
    emitters: Sequence[Emitter],
    splice_targets: Dict[str, str],
    root_key: str,
    extra_splices: Sequence[Tuple[Tuple[str, ...], str]] = (),
) -> List[EmittedKey]:
    """Interpret all emitters, then resolve splices transitively from
    `root_key` (the top-level stats reply builder).

    splice_targets maps a member expression ("metrics_",
    "search_latency_", "agent_ptr") to the emitter key whose tree is
    mounted there.  extra_splices lets the driver add mounts found
    outside any emitter (the augment_stats hook in mse_serve.cpp).
    """
    per_emitter: Dict[str, Tuple[List[EmittedKey], list]] = {}
    for e in emitters:
        src = sources.get(e.path)
        if src is None:
            continue
        per_emitter[e.key] = interpret_emitter(src, e)

    out: List[EmittedKey] = []
    seen: Set[Tuple[str, Tuple[str, ...]]] = set()

    def mount(key: str, prefix: Tuple[str, ...]) -> None:
        if (key, prefix) in seen or key not in per_emitter:
            return
        seen.add((key, prefix))
        keys, splices = per_emitter[key]
        for k in keys:
            out.append(
                EmittedKey(
                    path_segments=prefix + k.path_segments,
                    file=k.file,
                    line=k.line,
                )
            )
        for mount_path, member, _line in splices:
            target = splice_targets.get(member)
            if target:
                mount(target, prefix + mount_path)

    mount(root_key, ())
    for mount_path, target_key in extra_splices:
        mount(target_key, mount_path)
    return out


@dataclass
class MetricsRegistry:
    declared: List[Const] = field(default_factory=list)
    header_path: str = ""
    emitted: List[EmittedKey] = field(default_factory=list)
    # declared name -> [(path, line)] of consumer references
    consumed: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)


def extract_metrics(
    header: CppSource,
    emitted: List[EmittedKey],
    consumer_files: Sequence[CppSource],
    consumer_texts: Dict[str, str],
) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.header_path = header.path
    reg.declared = parse_constants_header(header)
    reg.emitted = emitted

    # A declared dotted path counts as consumed when its leaf segment
    # (or the full dotted path) shows up in a consumer: C++ tests index
    # segment-by-segment (doc["store"]["degraded"]), harness scripts
    # grep the serialized form ("degraded":true).
    for c in reg.declared:
        leaf = [s for s in c.value.split(".") if s != "*"]
        if not leaf:
            continue
        needle = leaf[-1]
        for f in consumer_files:
            hits = [
                lit.line
                for lit in f.strings
                if lit.value == needle
                or lit.value == c.value
                or f'"{needle}"' in lit.value.replace('\\"', '"')
            ]
            for ln in hits:
                reg.consumed.setdefault(c.name, []).append((f.path, ln))
        for path, text in consumer_texts.items():
            for idx, ln in enumerate(text.split("\n")):
                if f'"{needle}"' in ln or f"'{needle}'" in ln:
                    reg.consumed.setdefault(c.name, []).append(
                        (path, idx + 1)
                    )
    # metric_names::kX identifier references also count. A reference
    # to a kind array (kAlwaysKeys / kConditionalKeys) is a schema
    # test iterating every member, so it credits them all.
    names = {c.name for c in reg.declared}
    arrays = parse_constant_arrays(header)
    for f in consumer_files:
        for name, line in identifier_refs(f, "metric_names"):
            if name in names:
                reg.consumed.setdefault(name, []).append((f.path, line))
            for member in arrays.get(name, ()):
                if member in names:
                    reg.consumed.setdefault(member, []).append(
                        (f.path, line)
                    )
    return reg

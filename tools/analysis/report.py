"""Findings, the escape hatch, and output formatting.

Shared by mse_lint (style rules) and mse_analyze (semantic rules) so
that suppression syntax, GitHub annotation format, and exit-code
conventions cannot drift between the two tools.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

# `// mse-lint: allow(rule) reason` on the offending line or the line
# above.  Several rules may be listed comma-separated.  The reason text
# is free-form but conventionally mandatory in review.
ALLOW_RE = re.compile(
    r"//\s*mse-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)"
)
# Markdown/docs variant for non-C++ files (DESIGN.md, README.md,
# shell): `<!-- mse-lint: allow(rule) -->` or `# mse-lint: allow(rule)`.
ALLOW_DOC_RE = re.compile(
    r"mse-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)"
)


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def format(self, fmt: str) -> str:
        if fmt == "github":
            return (
                f"::error file={self.path},line={self.line},"
                f"title=mse-lint {self.rule}::{self.message}"
            )
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules(lines: Sequence[str], idx: int) -> set:
    """Rules suppressed at 0-based line `idx` (same line or line above)."""
    rules: set = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = ALLOW_RE.search(lines[j])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def allowed_rules_doc(lines: Sequence[str], idx: int) -> set:
    """Doc-file variant of allowed_rules (HTML/shell comment syntax)."""
    rules: set = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = ALLOW_DOC_RE.search(lines[j])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def suppressed(finding: Finding, lines: Sequence[str], doc: bool = False) -> bool:
    """True if an allow-comment at the finding's location names its rule.

    Registry-level findings anchored to a declaration line participate
    too: suppress an `xyz-orphan` by annotating the declaration.
    """
    fn = allowed_rules_doc if doc else allowed_rules
    return finding.rule in fn(lines, finding.line - 1)


def emit(
    findings: Iterable[Finding],
    fmt: str,
    tool: str,
    files_scanned: int,
    out=None,
    err=None,
) -> int:
    """Print findings and the summary line; return the exit status."""
    out = out or sys.stdout
    err = err or sys.stderr
    flist: List[Finding] = sorted(
        findings, key=lambda f: (f.path, f.line, f.rule)
    )
    for f in flist:
        print(f.format(fmt), file=out)
    summary = (
        f"{tool}: {len(flist)} finding(s) across "
        f"{files_scanned} file(s) scanned"
    )
    if fmt == "github":
        print(f"::notice::{summary}", file=err)
    else:
        print(summary, file=err)
    return 1 if flist else 0

"""File collection and a small C++ lexer.

The lexer exists because grep-level extraction lies: a fault-site name
mentioned in a comment, a code literal inside an `#if 0` block, or a
string split across adjacent literals (`"store." "open"`) would all
corrupt the registries.  `CppSource` scans the whole translation unit
once, classifying every byte, and everything downstream (lint rules,
registry extractors, the lock miner) works off that single pass.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

CPP_EXTS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}


def norm(path: str) -> str:
    """Normalise a path to forward slashes for portable matching."""
    return path.replace(os.sep, "/")


def in_dir(path: str, d: str) -> bool:
    """True if `path` (normalised) lives under directory component `d`."""
    return ("/" + d + "/") in ("/" + norm(path))


def collect_files(roots: Iterable[str], exts: Optional[set] = None) -> List[str]:
    """Walk `roots` (files or directories), skipping dot-dirs and build
    trees, returning a sorted list of files with one of `exts`."""
    if exts is None:
        exts = CPP_EXTS
    out: List[str] = []
    for root in roots:
        if os.path.isfile(root):
            if os.path.splitext(root)[1] in exts:
                out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d not in {"build", "__pycache__"}
            )
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in exts:
                    out.append(os.path.join(dirpath, fn))
    return sorted(out)


@dataclass
class StringLit:
    """One logical string literal: adjacent literals separated only by
    whitespace/comments are merged, per [lex.string]."""

    line: int  # 1-based line of the first fragment
    value: str  # decoded-enough contents (escapes kept verbatim)


@dataclass
class CppSource:
    """A lexed C++ file.

    Attributes:
      path           -- as given (normalised separators).
      text           -- raw contents.
      lines          -- raw lines (no terminators).
      code_lines     -- lines with comments removed, string contents
                        blanked to "" and disabled (#if 0) regions
                        emptied: what pattern rules should match on.
      code_ws_lines  -- like code_lines but ordinary string literal
                        contents KEPT: for extractors that read keys
                        out of code (raw strings still blanked; their
                        contents are in `strings`).
      strings        -- every logical string literal in live code.
      line_count     -- len(lines).
    """

    path: str
    text: str
    lines: List[str] = field(default_factory=list)
    code_lines: List[str] = field(default_factory=list)
    code_ws_lines: List[str] = field(default_factory=list)
    strings: List[StringLit] = field(default_factory=list)

    @property
    def line_count(self) -> int:
        return len(self.lines)

    def string_values(self) -> List[str]:
        return [s.value for s in self.strings]


_RAW_OPEN = re.compile(r'R"([^()\\ \t\n]*)\(')

# Lines that flip preprocessor-disabled state.  We only track the
# textbook `#if 0` dead-block idiom (plus nested #if/#endif inside it);
# full conditional evaluation is out of scope and unnecessary.
_PP_IF = re.compile(r"^\s*#\s*(if|ifdef|ifndef)\b(.*)$")
_PP_ELSE = re.compile(r"^\s*#\s*(else|elif)\b")
_PP_ENDIF = re.compile(r"^\s*#\s*endif\b")
_PP_IF0 = re.compile(r"^\s*#\s*if\s+0\s*(//.*|/\*.*)?$")


def _disabled_lines(lines: List[str]) -> List[bool]:
    """Mark lines inside `#if 0` ... (#else|#endif) regions."""
    disabled = [False] * len(lines)
    depth = 0  # nesting depth of #if inside a dead region
    dead = False
    for i, ln in enumerate(lines):
        if not dead:
            if _PP_IF0.match(ln):
                dead = True
                depth = 0
                disabled[i] = True
            continue
        disabled[i] = True
        if _PP_IF.match(ln):
            depth += 1
        elif _PP_ENDIF.match(ln):
            if depth == 0:
                dead = False
            else:
                depth -= 1
        elif depth == 0 and _PP_ELSE.match(ln):
            # `#else` of `#if 0`: the following branch is live.
            dead = False
    return disabled


def lex(path: str, text: Optional[str] = None) -> CppSource:
    """Lex one file into a CppSource."""
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    lines = text.split("\n")
    disabled = _disabled_lines(lines)

    # Rebuild the text with disabled lines blanked so the char scanner
    # never sees them (a quote inside #if 0 must not open a string).
    live_text = "\n".join(
        ("" if disabled[i] else ln) for i, ln in enumerate(lines)
    )

    src = CppSource(path=norm(path), text=text, lines=lines)
    code_chars: List[str] = []  # mirrors live_text, strings/comments blanked
    ws_chars: List[str] = []  # same, but ordinary string contents kept
    raw_strings: List[Tuple[int, str]] = []  # (line, value) fragments

    i = 0
    line_no = 1
    n = len(live_text)
    while i < n:
        c = live_text[i]
        nxt = live_text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code_chars.append("\n")
            ws_chars.append("\n")
            line_no += 1
            i += 1
        elif c == "/" and nxt == "/":
            # Line comment: skip to end of line.
            j = live_text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and nxt == "*":
            j = live_text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            # Preserve line structure inside the comment.
            for ch in live_text[i:end]:
                if ch == "\n":
                    code_chars.append("\n")
                    ws_chars.append("\n")
                    line_no += 1
            i = end
        elif c == "R" and nxt == '"':
            m = _RAW_OPEN.match(live_text, i)
            if not m:
                code_chars.append(c)
                ws_chars.append(c)
                i += 1
                continue
            delim = m.group(1)
            close = ")" + delim + '"'
            j = live_text.find(close, m.end())
            end = n if j < 0 else j + len(close)
            value = live_text[m.end():j] if j >= 0 else live_text[m.end():]
            raw_strings.append((line_no, value))
            code_chars.append('""')
            ws_chars.append('""')
            for ch in live_text[i:end]:
                if ch == "\n":
                    code_chars.append("\n")
                    ws_chars.append("\n")
                    line_no += 1
            i = end
        elif c == '"':
            j = i + 1
            frag: List[str] = []
            while j < n and live_text[j] != '"':
                if live_text[j] == "\\" and j + 1 < n:
                    frag.append(live_text[j:j + 2])
                    j += 2
                elif live_text[j] == "\n":
                    break  # unterminated; be forgiving
                else:
                    frag.append(live_text[j])
                    j += 1
            raw_strings.append((line_no, "".join(frag)))
            code_chars.append('""')
            ws_chars.append('"' + "".join(frag).replace("\n", " ") + '"')
            i = j + 1 if j < n else n
        elif c == "'" and not (
            code_chars and (code_chars[-1].isalnum() or code_chars[-1] == "_")
        ):
            # Char literal; skip it (watch for '\'' and '\\').  A quote
            # preceded by an identifier/digit char is a C++14 digit
            # separator (1'000'000), not a literal.
            j = i + 1
            while j < n and live_text[j] not in {"'", "\n"}:
                j += 2 if live_text[j] == "\\" else 1
            code_chars.append("''")
            ws_chars.append("''")
            i = j + 1 if j < n and live_text[j] == "'" else min(j, n)
        else:
            code_chars.append(c)
            ws_chars.append(c)
            i += 1

    src.code_lines = "".join(code_chars).split("\n")
    src.code_ws_lines = "".join(ws_chars).split("\n")
    for lst in (src.code_lines, src.code_ws_lines):
        while len(lst) < len(lines):
            lst.append("")

    # Merge adjacent literals: consecutive fragments with only
    # whitespace between them in the *code* view are one literal.
    merged: List[StringLit] = []
    code_text = "\n".join(src.code_lines)
    # Positions of every `""` marker in code_text, in order, correspond
    # 1:1 with raw_strings.
    marker_pos: List[int] = []
    k = code_text.find('""')
    while k >= 0:
        marker_pos.append(k)
        k = code_text.find('""', k + 2)
    # Char literals also produce 2-char markers ('' not "") so the
    # correspondence with raw_strings holds for `""` only.
    assert len(marker_pos) == len(raw_strings), (
        f"{path}: lexer marker mismatch "
        f"({len(marker_pos)} vs {len(raw_strings)})"
    )
    idx = 0
    while idx < len(raw_strings):
        line0, val = raw_strings[idx]
        end_pos = marker_pos[idx] + 2
        j = idx + 1
        while j < len(raw_strings):
            between = code_text[end_pos:marker_pos[j]]
            if between.strip() == "":
                val += raw_strings[j][1]
                end_pos = marker_pos[j] + 2
                j += 1
            else:
                break
        merged.append(StringLit(line=line0, value=val))
        idx = j
    src.strings = merged
    return src


class SourceModel:
    """Lexes files once and caches them for all analysis passes."""

    def __init__(self) -> None:
        self._cache: Dict[str, CppSource] = {}

    def get(self, path: str, text: Optional[str] = None) -> CppSource:
        key = norm(path)
        if key not in self._cache:
            self._cache[key] = lex(path, text)
        return self._cache[key]

    def load_all(self, paths: Iterable[str]) -> List[CppSource]:
        return [self.get(p) for p in paths]

"""Mutex census, annotation coverage, and the lock-order graph.

PR 4 put Clang Thread Safety annotations on the hot classes; this
module keeps them honest project-wide:

  * every class-member `Mutex` must be wired into the annotation system
    (something must GUARDED_BY/REQUIRES/ACQUIRE/EXCLUDES it) — an
    unannotated mutex is invisible to -Wthread-safety;
  * the lock-order graph combines declared edges (ACQUIRED_BEFORE /
    ACQUIRED_AFTER on the declarations) with edges mined from
    acquisition sites (a MutexLock taken while another guard is live in
    the same function), and must stay acyclic.  DESIGN.md Sec. 8's rule
    is stronger — no path holds two of the inventory mutexes at once —
    so in-repo the mined edge set stays empty and the graph work
    proves a negative; fixtures in the selftests prove the cycle
    detector actually fires.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .source import CppSource

_CLASS_RE = re.compile(r"\b(class|struct)\s+(\w+)\b[^;{(]*\{")
_MUTEX_DECL_RE = re.compile(r"\b(?:mutable\s+)?Mutex\s+(\w+)\s*(;|ACQUIRED_)")
_ANNOT_REF_RE = re.compile(
    r"\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE|"
    r"ACQUIRE_SHARED|RELEASE|RELEASE_SHARED|RELEASE_GENERIC|TRY_ACQUIRE|"
    r"TRY_ACQUIRE_SHARED|EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY)"
    r"\s*\(([^)]*)\)"
)
_ORDER_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s+(ACQUIRED_BEFORE|ACQUIRED_AFTER)\s*\(([^)]*)\)"
)
_GUARD_RE = re.compile(
    r"\b(?:MutexLock|MutexUniqueLock)\s+\w+\s*[({]\s*([\w.>()\-]+?)\s*[)}]"
)
_FUNC_DEF_RE = re.compile(
    r"^(?:[\w:<>,&*~ ]+[ \t*&])?(?:(\w+)::)?(\w+)\s*\([^;{]*\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:REQUIRES\s*\([^)]*\)\s*|"
    r"EXCLUDES\s*\([^)]*\)\s*|ACQUIRE\s*\([^)]*\)\s*|"
    r"RELEASE\s*\([^)]*\)\s*)*\{",
    re.M,
)


@dataclass
class MutexDecl:
    cls: str  # owning class ("" if file-scope)
    name: str  # member name, e.g. mu_
    path: str
    line: int
    annotated: bool = False  # something references it in an annotation

    @property
    def qualified(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclass
class LockModel:
    mutexes: List[MutexDecl] = field(default_factory=list)
    # qualified-name edges: a must be acquired before b
    declared_edges: List[Tuple[str, str, str, int]] = field(
        default_factory=list
    )  # (before, after, path, line)
    mined_edges: List[Tuple[str, str, str, int]] = field(default_factory=list)

    def all_edges(self) -> List[Tuple[str, str, str, int]]:
        return self.declared_edges + self.mined_edges


def _class_regions(src: CppSource) -> List[Tuple[str, int, int]]:
    """(class_name, start_offset, end_offset) over the joined code
    view, via brace matching from each class/struct head."""
    text = "\n".join(src.code_lines)
    out: List[Tuple[str, int, int]] = []
    for m in _CLASS_RE.finditer(text):
        open_brace = text.find("{", m.start())
        if open_brace < 0:
            continue
        depth = 0
        for i in range(open_brace, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    out.append((m.group(2), open_brace, i))
                    break
    return out


def _owning_class(
    regions: List[Tuple[str, int, int]], offset: int
) -> str:
    """Innermost class containing `offset` (smallest enclosing span)."""
    best = ""
    best_span = None
    for name, a, b in regions:
        if a <= offset <= b:
            span = b - a
            if best_span is None or span < best_span:
                best, best_span = name, span
    return best


def extract_mutexes(sources: Sequence[CppSource]) -> List[MutexDecl]:
    """Census of `Mutex` member declarations across the given files,
    with annotation-coverage computed from the same files."""
    decls: List[MutexDecl] = []
    annotated_refs: Set[Tuple[str, str]] = set()  # (path, mutex-name ref)
    for src in sources:
        text = "\n".join(src.code_lines)
        regions = _class_regions(src)
        for m in _MUTEX_DECL_RE.finditer(text):
            cls = _owning_class(regions, m.start())
            if not cls:
                continue  # function-local or free mutex: TSA tracks it
            line = text.count("\n", 0, m.start()) + 1
            decls.append(
                MutexDecl(cls=cls, name=m.group(1), path=src.path, line=line)
            )
        for m in _ANNOT_REF_RE.finditer(text):
            for tok in re.findall(r"[\w.>\-]+", m.group(2)):
                leaf = re.split(r"[.>]|->", tok)[-1]
                annotated_refs.add((src.path, leaf.lstrip("!")))
    # A mutex is annotated if any annotation in its own header/impl
    # pair (same stem) or the same file references its name.
    by_stem: Dict[str, Set[str]] = {}
    for path, name in annotated_refs:
        stem = re.sub(r"\.(hpp|hh|h|cpp|cc|cxx)$", "", path)
        by_stem.setdefault(stem, set()).add(name)
    for d in decls:
        stem = re.sub(r"\.(hpp|hh|h|cpp|cc|cxx)$", "", d.path)
        if d.name in by_stem.get(stem, set()):
            d.annotated = True
    return decls


def extract_declared_edges(
    sources: Sequence[CppSource],
) -> List[Tuple[str, str, str, int]]:
    edges: List[Tuple[str, str, str, int]] = []
    for src in sources:
        text = "\n".join(src.code_lines)
        regions = _class_regions(src)
        for m in _ORDER_DECL_RE.finditer(text):
            cls = _owning_class(regions, m.start())
            line = text.count("\n", 0, m.start()) + 1
            this = f"{cls}::{m.group(1)}" if cls else m.group(1)
            for other_tok in re.findall(r"[\w:.>\-]+", m.group(3)):
                other = other_tok.split(".")[-1].split(">")[-1]
                if "::" not in other and cls:
                    other = f"{cls}::{other}"
                if m.group(2) == "ACQUIRED_BEFORE":
                    edges.append((this, other, src.path, line))
                else:
                    edges.append((other, this, src.path, line))
    return edges


def _normalize_guard_arg(arg: str, cls: str) -> str:
    """`p->mu` / `this->mu_` / `store_.mu` -> leaf member name,
    qualified by the enclosing class when the expression is local."""
    leaf = re.split(r"->|\.", arg)[-1].strip()
    leaf = re.sub(r"\(\)$", "", leaf)
    if arg.strip().startswith(("this->",)) or arg.strip() == leaf:
        return f"{cls}::{leaf}" if cls else leaf
    return leaf  # foreign object's mutex: best-effort leaf name


def mine_acquisition_edges(
    sources: Sequence[CppSource],
) -> List[Tuple[str, str, str, int]]:
    """Within each function body, an acquisition taken while earlier
    guards are still in scope yields held -> new edges.  Guard lifetime
    is approximated by brace depth: a guard dies when its enclosing
    block closes."""
    edges: List[Tuple[str, str, str, int]] = []
    for src in sources:
        text = "\n".join(src.code_lines)
        for fm in _FUNC_DEF_RE.finditer(text):
            cls = fm.group(1) or _owning_class(
                _class_regions(src), fm.start()
            )
            open_brace = text.find("{", fm.end() - 1)
            if open_brace < 0:
                continue
            # Walk the body char-by-char tracking depth + guards.
            depth = 0
            held: List[Tuple[int, str]] = []  # (depth, mutex)
            i = open_brace
            while i < len(text):
                c = text[i]
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    held = [(d, mx) for (d, mx) in held if d <= depth]
                    if depth == 0:
                        break
                gm = _GUARD_RE.match(text, i)
                if gm:
                    mx = _normalize_guard_arg(gm.group(1), cls or "")
                    line = text.count("\n", 0, i) + 1
                    for _d, prev in held:
                        if prev != mx:
                            edges.append((prev, mx, src.path, line))
                    held.append((depth, mx))
                    i = gm.end()
                    continue
                i += 1
    # Dedup, keep first site per edge.
    seen: Set[Tuple[str, str]] = set()
    out: List[Tuple[str, str, str, int]] = []
    for a, b, p, ln in edges:
        if (a, b) not in seen:
            seen.add((a, b))
            out.append((a, b, p, ln))
    return out


def find_cycles(
    edges: Sequence[Tuple[str, str, str, int]]
) -> List[List[str]]:
    """Simple DFS cycle enumeration over the lock-order graph."""
    graph: Dict[str, List[str]] = {}
    for a, b, _p, _l in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    cycles: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    color: Dict[str, int] = {}
    stack: List[str] = []

    def dfs(u: str) -> None:
        color[u] = 1
        stack.append(u)
        for v in graph[u]:
            if color.get(v, 0) == 0:
                dfs(v)
            elif color.get(v) == 1:
                cyc = stack[stack.index(v):] + [v]
                canon = tuple(sorted(cyc[:-1]))
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(cyc)
        stack.pop()
        color[u] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            dfs(node)
    return cycles


def build_lock_model(sources: Sequence[CppSource]) -> LockModel:
    model = LockModel()
    model.mutexes = extract_mutexes(sources)
    model.declared_edges = extract_declared_edges(sources)
    model.mined_edges = mine_acquisition_edges(sources)
    return model

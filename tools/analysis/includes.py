"""Include DAG: module layering and include-cycle detection.

src/ is layered; the compiler happily lets a low layer reach up (any
header is includable), so the layering only exists while something
checks it.  Ranks are declared by the driver; a module may include
itself or strictly lower-ranked modules.  File-level cycles are flagged
independently (they break incremental builds long before they break
layering).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .source import CppSource

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


@dataclass
class IncludeGraph:
    # file path (repo-relative, normalised) -> [(included path, line)]
    files: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)

    def module_of(self, path: str, src_prefix: str = "src/") -> Optional[str]:
        """`src/service/wire.cpp` -> `service`; None outside src/."""
        idx = path.find(src_prefix)
        if idx < 0:
            return None
        rest = path[idx + len(src_prefix):]
        if "/" not in rest:
            return None
        return rest.split("/")[0]


def build_include_graph(
    sources: Sequence[CppSource], strip_prefix: str = ""
) -> IncludeGraph:
    """Include edges from quoted includes.  Quoted include targets are
    project-relative already (`common/json.hpp`); we normalise both
    sides to `src/...` so file-level cycle detection can join them."""
    g = IncludeGraph()
    for src in sources:
        path = src.path
        if strip_prefix and path.startswith(strip_prefix):
            path = path[len(strip_prefix):]
        edges: List[Tuple[str, int]] = []
        # Raw lines, not code view: includes are preprocessor text and
        # the code view keeps them anyway; raw is simpler to trust.
        for idx, ln in enumerate(src.code_ws_lines):
            m = _INCLUDE_RE.match(ln)
            if m:
                target = m.group(1)
                if not target.startswith("src/"):
                    target = "src/" + target
                edges.append((target, idx + 1))
        g.files[path] = edges
    return g


def layering_violations(
    graph: IncludeGraph, ranks: Dict[str, int]
) -> List[Tuple[str, int, str, str]]:
    """(file, line, from_module, to_module) for every include that
    reaches up or sideways in the rank order."""
    out: List[Tuple[str, int, str, str]] = []
    for path, edges in sorted(graph.files.items()):
        mod = graph.module_of(path)
        if mod is None or mod not in ranks:
            continue
        for target, line in edges:
            tmod = graph.module_of(target)
            if tmod is None or tmod == mod or tmod not in ranks:
                continue
            if ranks[tmod] >= ranks[mod]:
                out.append((path, line, mod, tmod))
    return out


def include_cycles(graph: IncludeGraph) -> List[List[str]]:
    """File-level include cycles (DFS back-edge enumeration)."""
    adj: Dict[str, List[str]] = {}
    for path, edges in graph.files.items():
        adj.setdefault(path, [])
        for target, _line in edges:
            if target in graph.files:
                adj[path].append(target)
            adj.setdefault(target, [])
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()
    color: Dict[str, int] = {}
    stack: List[str] = []

    def dfs(u: str) -> None:
        color[u] = 1
        stack.append(u)
        for v in adj[u]:
            if color.get(v, 0) == 0:
                dfs(v)
            elif color.get(v) == 1:
                cyc = stack[stack.index(v):] + [v]
                canon = tuple(sorted(cyc[:-1]))
                if canon not in seen:
                    seen.add(canon)
                    cycles.append(cyc)
        stack.pop()
        color[u] = 2

    for node in sorted(adj):
        if color.get(node, 0) == 0:
            dfs(node)
    return cycles

#!/usr/bin/env bash
# Smoke test for the mapping-search service: start mse_serve on an
# ephemeral loopback port with a store file, search the same GEMM twice
# (the second must be answered warm out of the store), fetch stats, then
# SIGTERM the daemon and require a clean drain.
#
# Usage: tools/service_smoke.sh BUILD_DIR
#
# Every wait (port report, client calls, drain) is bounded by
# SMOKE_WAIT_S (default 30s) so a wedged daemon fails the test instead
# of hanging CI. Sanitizer builds are slow — the TSan job exports
# SMOKE_WAIT_S=120.
#
# Exits non-zero on the first broken expectation.
set -euo pipefail

BUILD_DIR="${1:-build}"
SMOKE_WAIT_S="${SMOKE_WAIT_S:-30}"
SERVE="$BUILD_DIR/tools/mse_serve"
CLIENT="$BUILD_DIR/tools/mse_client"
WORK_DIR="$(mktemp -d)"
STORE="$WORK_DIR/mappings.jsonl"
SERVE_LOG="$WORK_DIR/serve.log"
SERVE_PID=""

fail() {
    echo "SMOKE FAIL: $*" >&2
    [ -f "$SERVE_LOG" ] && sed 's/^/  serve| /' "$SERVE_LOG" >&2
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
    exit 1
}

# wait_until DESCRIPTION COMMAND...: poll COMMAND every 0.1s until it
# succeeds or SMOKE_WAIT_S elapses; fail loudly on timeout.
wait_until() {
    local what="$1"
    shift
    local deadline=$(($(date +%s) + SMOKE_WAIT_S))
    until "$@"; do
        if [ "$(date +%s)" -ge "$deadline" ]; then
            fail "timed out after ${SMOKE_WAIT_S}s waiting for $what"
        fi
        sleep 0.1
    done
}

[ -x "$SERVE" ] || fail "missing $SERVE (build first)"
[ -x "$CLIENT" ] || fail "missing $CLIENT (build first)"

"$SERVE" --store "$STORE" --samples 300 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
trap '[ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$WORK_DIR"' EXIT

# Wait for "LISTENING <port>" (the daemon binds an ephemeral port),
# failing immediately if the daemon dies instead of reporting one.
port_reported() {
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon died on startup"
    grep -q '^LISTENING' "$SERVE_LOG" 2>/dev/null
}
wait_until "the daemon to report its port" port_reported
PORT=$(awk '/^LISTENING/ {print $2; exit}' "$SERVE_LOG")
[ -n "$PORT" ] && [ "$PORT" -gt 0 ] || fail "daemon reported a bad port: '$PORT'"
echo "daemon up on port $PORT (pid $SERVE_PID)"

run_client() {
    timeout "$((SMOKE_WAIT_S * 4))" "$CLIENT" --port "$PORT" "$@"
}

run_client --ping | grep -q '"ok":true' || fail "ping failed"
grep -q '^backend: event' "$SERVE_LOG" ||
    fail "daemon did not report the event backend"

# Pipelined requests: 8 pings down one connection before any read;
# all 8 replies must come back (the client prints them in order).
PIPE=$(run_client --ping --pipeline 8) || fail "pipelined ping failed"
PIPE_OK=$(echo "$PIPE" | grep -c '"ok":true')
[ "$PIPE_OK" -eq 8 ] ||
    fail "expected 8 pipelined replies, got $PIPE_OK: $PIPE"

COLD=$(run_client --gemm 4,64,64,64 --samples 300) || fail "cold search failed: $COLD"
echo "$COLD" | grep -q '"store":"cold"' || fail "first search was not cold: $COLD"

WARM=$(run_client --gemm 4,64,64,64 --samples 300) || fail "warm search failed: $WARM"
echo "$WARM" | grep -q '"store":"exact"' || fail "second search missed the store: $WARM"

# The warm search must reach the stored incumbent's quality almost
# immediately (that is the whole point of the store).
WARM_STI=$(echo "$WARM" | sed -n 's/.*"samples_to_incumbent":\([0-9]*\).*/\1/p')
[ -n "$WARM_STI" ] && [ "$WARM_STI" -le 10 ] ||
    fail "warm samples_to_incumbent=$WARM_STI, expected <= 10: $WARM"

STATS=$(run_client --stats) || fail "stats request failed"
echo "$STATS" | grep -q '"exact_hits":1' || fail "stats missing the store hit: $STATS"
echo "$STATS" | grep -q '"entries":1' || fail "stats missing the store entry: $STATS"

[ -s "$STORE" ] || fail "store file was never written"

kill -TERM "$SERVE_PID"
daemon_gone() { ! kill -0 "$SERVE_PID" 2>/dev/null; }
wait_until "the daemon to drain after SIGTERM" daemon_gone
RC=0
wait "$SERVE_PID" 2>/dev/null || RC=$?
[ "$RC" -eq 0 ] || fail "daemon exited with status $RC"
grep -q 'shutting down' "$SERVE_LOG" || fail "daemon skipped its drain path"
SERVE_PID=""

echo "service smoke OK: cold -> exact warm hit (samples_to_incumbent=$WARM_STI), clean SIGTERM drain"

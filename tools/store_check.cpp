/**
 * @file
 * store_check: crash-consistency verifier for a MappingStore file.
 *
 * The chaos harness SIGKILLs mse_serve mid-append over many cycles;
 * after every kill this tool decides whether the store file is still
 * within its crash contract. The contract (mapping_store.hpp):
 *
 *  - every *complete* line is either a valid v1 record or a torn
 *    write: a strict prefix of a record (the half-line a kill left
 *    behind, later sealed by the next append's leading newline);
 *  - the final line may be unterminated (kill between the record and
 *    its newline) but must still be prefix-shaped;
 *  - records are never *merged*: a valid record contains exactly one
 *    '{' (all values are scalars), so any line with two opening
 *    braces means two appends interleaved — the bug class the
 *    store's single-write append discipline exists to prevent;
 *  - per key, scores are monotonically non-increasing in file order
 *    (recordIfBetter only appends improvements; compaction rewrites
 *    one best line per key), so a reload can never resurrect a worse
 *    mapping.
 *
 * Prints a JSON summary and exits 0 iff the file honors the contract
 * (a missing file is a fresh store and passes).
 *
 * With --keys, instead prints one "KEY SCORE" line per live key
 * (sorted; SCORE is the best = lowest recorded score) and exits 0.
 * The cluster chaos harness diffs these dumps across daemons to
 * check cluster-wide per-key monotonicity and replication coverage
 * without re-deriving signature hashes in shell.
 *
 * Usage: store_check [--keys] FILE
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "common/math_util.hpp"
#include "core/objective.hpp"
#include "service/mapping_store.hpp"

namespace {

/** A line that looks like the left part of a record a kill truncated:
 *  starts like a record, holds no second record, parses as nothing. */
bool
tornShaped(const std::string &line)
{
    if (line.empty())
        return true; // A sealing '\n' against an already-sealed tail.
    // mse-lint: allow(json-emit) format-prefix comparison, not emission
    const std::string prefix = "{\"v\":1,";
    if (line.size() >= prefix.size()) {
        if (line.compare(0, prefix.size(), prefix) != 0)
            return false;
    } else if (prefix.compare(0, line.size(), line) != 0) {
        return false;
    }
    // Exactly one '{' (valid records have no nested objects), so a
    // second one means two appends merged into one line.
    size_t braces = 0;
    for (const char c : line)
        if (c == '{')
            ++braces;
    return braces == 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool keys_mode = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--keys") == 0)
            keys_mode = true;
        else if (!path)
            path = argv[i];
        else
            path = ""; // Too many positionals: trip the usage check.
    }
    if (!path || path[0] == '\0') {
        std::fprintf(stderr, "usage: %s [--keys] STORE_FILE\n",
                     argv[0]);
        return 2;
    }

    mse::JsonValue report = mse::JsonValue::object();
    report["path"] = path;

    FILE *f = std::fopen(path, "rb");
    if (!f) {
        if (keys_mode)
            return 0; // Fresh store: no keys, nothing to print.
        // Missing file = fresh store: consistent by definition.
        report["present"] = false;
        report["ok"] = true;
        std::printf("%s\n", report.dump().c_str());
        return 0;
    }
    std::string bytes;
    char chunk[1 << 16];
    size_t r;
    while ((r = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.append(chunk, r);
    std::fclose(f);

    size_t lines = 0, valid = 0, torn = 0;
    bool tail_unterminated = false;
    std::vector<std::string> problems;
    std::unordered_map<std::string, double> last_score;
    std::map<std::string, double> best_score; // sorted for --keys

    size_t pos = 0;
    size_t line_no = 0;
    while (pos < bytes.size()) {
        const size_t nl = bytes.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        const std::string line = bytes.substr(
            pos, terminated ? nl - pos : std::string::npos);
        pos = terminated ? nl + 1 : bytes.size();
        ++line_no;
        ++lines;
        if (!terminated)
            tail_unterminated = true;

        const auto entry = mse::MappingStore::decodeEntry(line);
        if (entry) {
            ++valid;
            const std::string key =
                mse::MappingStore::keyOfEntry(*entry);
            const auto best = best_score.find(key);
            if (best == best_score.end() ||
                entry->score < best->second)
                best_score[key] = entry->score;
            const auto it = last_score.find(key);
            if (it != last_score.end() && entry->score > it->second) {
                problems.push_back(
                    "line " + std::to_string(line_no) +
                    ": score regressed for key " + key + " (" +
                    std::to_string(it->second) + " -> " +
                    std::to_string(entry->score) + ")");
            }
            last_score[key] = entry->score;
            continue;
        }
        if (tornShaped(line)) {
            ++torn;
            continue;
        }
        std::string preview = line.substr(0, 80);
        problems.push_back("line " + std::to_string(line_no) +
                           ": corrupted (not a record, not a torn "
                           "prefix): " + preview);
    }

    if (keys_mode) {
        for (const auto &kv : best_score)
            std::printf("%s %.17g\n", kv.first.c_str(), kv.second);
        return 0;
    }

    report["present"] = true;
    report["lines"] = static_cast<uint64_t>(lines);
    report["valid_records"] = static_cast<uint64_t>(valid);
    report["torn_lines"] = static_cast<uint64_t>(torn);
    report["tail_unterminated"] = tail_unterminated;
    report["live_keys"] = static_cast<uint64_t>(last_score.size());
    const bool ok = problems.empty();
    report["ok"] = ok;
    if (!ok) {
        mse::JsonValue &p = report["problems"];
        p = mse::JsonValue::array();
        for (const auto &msg : problems)
            p.push(mse::JsonValue(msg));
    }
    std::printf("%s\n", report.dump().c_str());
    return ok ? 0 : 1;
}

/**
 * @file
 * mse_client: command-line client for the mapping-search daemon.
 *
 * Builds one request (search / stats / ping, or a raw JSON line),
 * sends it to mse_serve, prints the reply JSON on stdout, and exits 0
 * iff the reply carries "ok": true.
 *
 * Usage:
 *   mse_client --port N --gemm B,M,K,N [options]
 *   mse_client --port N --conv2d B,K,C,Y,X,R,S [options]
 *   mse_client --port N --stats | --ping
 *   mse_client --port N --raw '<one JSON request line>'
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "service/net.hpp"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --port N [--host H] REQUEST [options]\n"
        "requests:\n"
        "  --gemm B,M,K,N         search a batched GEMM layer\n"
        "  --conv2d B,K,C,Y,X,R,S search a CONV2D layer\n"
        "  --stats                fetch service metrics\n"
        "  --ping                 liveness check\n"
        "  --raw JSON             send one raw request line\n"
        "search options:\n"
        "  --arch NAME            accel-A (default) or accel-B\n"
        "  --mapper NAME          gamma (default), standard-ga, ...\n"
        "  --objective NAME       edp (default), energy, latency, ...\n"
        "  --samples N            sample budget\n"
        "  --seed N               explicit RNG seed\n"
        "  --deadline-ms N        per-request deadline\n"
        "  --no-warm              skip the mapping-store warm start\n"
        "  --timeout-ms N         client-side reply timeout "
        "(default 120000)\n",
        argv0);
}

std::vector<int64_t>
parseInts(const std::string &csv)
{
    std::vector<int64_t> out;
    size_t pos = 0;
    while (pos <= csv.size()) {
        const size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (tok.empty())
            return {};
        char *end = nullptr;
        const int64_t v = std::strtoll(tok.c_str(), &end, 10);
        if (!end || *end != '\0' || v <= 0)
            return {};
        out.push_back(v);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = 0;
    int timeout_ms = 120000;
    std::string raw;
    mse::JsonValue req = mse::JsonValue::object();
    bool have_request = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--host" && val) {
            host = val;
            ++i;
        } else if (arg == "--port" && val) {
            port = std::atoi(val);
            ++i;
        } else if (arg == "--timeout-ms" && val) {
            timeout_ms = std::atoi(val);
            ++i;
        } else if (arg == "--gemm" && val) {
            const auto d = parseInts(val);
            if (d.size() != 4) {
                std::fprintf(stderr, "--gemm wants B,M,K,N\n");
                return 2;
            }
            req["type"] = "search";
            mse::JsonValue &g = req["workload"]["gemm"];
            g["b"] = d[0];
            g["m"] = d[1];
            g["k"] = d[2];
            g["n"] = d[3];
            have_request = true;
            ++i;
        } else if (arg == "--conv2d" && val) {
            const auto d = parseInts(val);
            if (d.size() != 7) {
                std::fprintf(stderr,
                             "--conv2d wants B,K,C,Y,X,R,S\n");
                return 2;
            }
            req["type"] = "search";
            mse::JsonValue &c = req["workload"]["conv2d"];
            c["b"] = d[0];
            c["k"] = d[1];
            c["c"] = d[2];
            c["y"] = d[3];
            c["x"] = d[4];
            c["r"] = d[5];
            c["s"] = d[6];
            have_request = true;
            ++i;
        } else if (arg == "--stats") {
            req["type"] = "stats";
            have_request = true;
        } else if (arg == "--ping") {
            req["type"] = "ping";
            have_request = true;
        } else if (arg == "--raw" && val) {
            raw = val;
            have_request = true;
            ++i;
        } else if (arg == "--arch" && val) {
            req["arch"] = val;
            ++i;
        } else if (arg == "--mapper" && val) {
            req["mapper"] = val;
            ++i;
        } else if (arg == "--objective" && val) {
            req["objective"] = val;
            ++i;
        } else if (arg == "--samples" && val) {
            req["max_samples"] = static_cast<int64_t>(std::atoll(val));
            ++i;
        } else if (arg == "--seed" && val) {
            req["seed"] = static_cast<int64_t>(std::atoll(val));
            ++i;
        } else if (arg == "--deadline-ms" && val) {
            req["deadline_ms"] = static_cast<int64_t>(std::atoll(val));
            ++i;
        } else if (arg == "--no-warm") {
            req["warm_start"] = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (port <= 0 || port > 65535 || !have_request) {
        usage(argv[0]);
        return 2;
    }
    if (req["type"].asString("") == "search" && !req.find("arch"))
        req["arch"] = "accel-A";

    std::string err;
    const int fd =
        mse::connectTcp(host, static_cast<uint16_t>(port), &err);
    if (fd < 0) {
        std::fprintf(stderr, "mse_client: %s\n", err.c_str());
        return 1;
    }
    const std::string line = raw.empty() ? req.dump() : raw;
    if (!mse::sendLine(fd, line)) {
        std::fprintf(stderr, "mse_client: send failed\n");
        mse::closeSocket(fd);
        return 1;
    }

    mse::LineReader reader(fd);
    std::string reply;
    const auto status = reader.readLine(&reply, timeout_ms);
    mse::closeSocket(fd);
    if (status != mse::LineReader::Status::Line) {
        std::fprintf(stderr, "mse_client: no reply (%s)\n",
                     status == mse::LineReader::Status::Timeout
                         ? "timeout"
                         : "connection lost");
        return 1;
    }
    std::printf("%s\n", reply.c_str());
    const auto doc = mse::parseJson(reply);
    return doc && doc->getBool("ok", false) ? 0 : 1;
}

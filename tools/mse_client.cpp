/**
 * @file
 * mse_client: command-line client for the mapping-search daemon.
 *
 * Builds one request (search / stats / ping, or a raw JSON line),
 * sends it to mse_serve, prints the reply JSON on stdout, and exits 0
 * iff the reply carries "ok": true.
 *
 * Transient failures are retried with capped exponential backoff and
 * deterministic jitter: a refused/reset connection, a connection lost
 * before the reply, and the server's retryable rejections (queue_full,
 * shutting_down, too_many_connections — which carry a retry_after_ms
 * hint the client honors). A reply *timeout* is never retried: the
 * server is alive and still working, so a resend would double the
 * load. The exit summary reports how many retries were spent.
 *
 * With --pipeline K the client sends K copies of the request on one
 * connection before reading any reply, then reads K replies back
 * (exercising the server's request pipelining); replies are printed
 * in order and the exit status reflects the worst one. Pipelined runs
 * only retry while nothing has been sent — once bytes are on the
 * wire, a mid-stream failure is reported, not resent.
 *
 * Cluster mode (--cluster a,b,c): the client derives the same
 * consistent-hash ring the daemons use, routes each search straight
 * to the shard owning its store key, follows wrong_shard redirects,
 * and fails over to the key's next ring replica when the owner is
 * down (see src/cluster/cluster_client.hpp). --stats and --ping
 * broadcast to every node, printing one reply line per node. The
 * retry/backoff loop wraps whole routing sweeps, exactly as it wraps
 * single connections in host:port mode.
 *
 * Usage:
 *   mse_client --port N --gemm B,M,K,N [options]
 *   mse_client --port N --conv2d B,K,C,Y,X,R,S [options]
 *   mse_client --port N --stats | --ping
 *   mse_client --port N --raw '<one JSON request line>'
 *   mse_client --port N --ping --pipeline 16
 *   mse_client --cluster H:P,H:P,... --gemm B,M,K,N [--replicas R]
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.hpp"
#include "common/json.hpp"
#include "common/math_util.hpp"
#include "service/net.hpp"
#include "service/error_codes.hpp"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --port N [--host H] REQUEST [options]\n"
        "       %s --cluster H:P,H:P,... REQUEST [options]\n"
        "requests:\n"
        "  --gemm B,M,K,N         search a batched GEMM layer\n"
        "  --conv2d B,K,C,Y,X,R,S search a CONV2D layer\n"
        "  --stats                fetch service metrics\n"
        "  --ping                 liveness check\n"
        "  --raw JSON             send one raw request line\n"
        "search options:\n"
        "  --arch NAME            accel-A (default) or accel-B\n"
        "  --mapper NAME          gamma (default), standard-ga, ...\n"
        "  --objective NAME       edp (default), energy, latency, ...\n"
        "  --samples N            sample budget\n"
        "  --seed N               explicit RNG seed\n"
        "  --deadline-ms N        per-request deadline\n"
        "  --no-warm              skip the mapping-store warm start\n"
        "  --timeout-ms N         client-side reply timeout "
        "(default 120000)\n"
        "  --pipeline K           send K copies of the request on "
        "one\n"
        "                         connection before reading; K "
        "replies\n"
        "                         come back in request order\n"
        "retry options:\n"
        "  --retries N            retry budget for refused/reset\n"
        "                         connections and retryable server\n"
        "                         rejections (default 4, 0 = fail "
        "fast)\n"
        "  --backoff-ms N         base backoff, doubled per retry "
        "with\n"
        "                         deterministic jitter (default 200)\n"
        "  --backoff-cap-ms N     backoff ceiling (default 5000)\n"
        "  --retry-seed N         jitter seed (default 1)\n"
        "cluster options:\n"
        "  --cluster LIST         comma-separated daemon addresses; "
        "route\n"
        "                         searches to the owning shard, fail "
        "over\n"
        "                         to ring replicas, broadcast "
        "stats/ping\n"
        "  --replicas R           replica count the daemons run with\n"
        "                         (default 2; must match theirs)\n",
        argv0, argv0);
}

/**
 * Backoff before retry `attempt` (0-based): min(cap, base * 2^attempt)
 * scaled into [75%, 125%) by a jitter drawn from fnv1a64(seed,
 * attempt). Same seed => same delays, so flake reports replay.
 */
int
backoffMs(int attempt, int base_ms, int cap_ms, uint64_t seed)
{
    double d = static_cast<double>(base_ms);
    for (int i = 0; i < attempt && d < cap_ms; ++i)
        d *= 2.0;
    d = std::min(d, static_cast<double>(cap_ms));
    const std::string key =
        std::to_string(seed) + "/" + std::to_string(attempt);
    const double frac =
        static_cast<double>(mse::fnv1a64(key) % 1024) / 1024.0;
    return std::max(1, static_cast<int>(d * (0.75 + 0.5 * frac)));
}

/** Server rejections worth resubmitting (load/lifecycle, not the
 *  request's fault). */
bool
retryableCode(const std::string &code)
{
    return mse::wire_errors::isRetryable(code.c_str());
}

std::vector<int64_t>
parseInts(const std::string &csv)
{
    std::vector<int64_t> out;
    size_t pos = 0;
    while (pos <= csv.size()) {
        const size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (tok.empty())
            return {};
        char *end = nullptr;
        const int64_t v = std::strtoll(tok.c_str(), &end, 10);
        if (!end || *end != '\0' || v <= 0)
            return {};
        out.push_back(v);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::string cluster_csv;
    size_t cluster_replicas = 2;
    int port = 0;
    int timeout_ms = 120000;
    int pipeline = 1;
    int retries = 4;
    int backoff_ms = 200;
    int backoff_cap_ms = 5000;
    uint64_t retry_seed = 1;
    std::string raw;
    mse::JsonValue req = mse::JsonValue::object();
    bool have_request = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--host" && val) {
            host = val;
            ++i;
        } else if (arg == "--cluster" && val) {
            cluster_csv = val;
            ++i;
        } else if (arg == "--replicas" && val) {
            cluster_replicas = static_cast<size_t>(
                std::max<long long>(1, std::atoll(val)));
            ++i;
        } else if (arg == "--port" && val) {
            port = std::atoi(val);
            ++i;
        } else if (arg == "--timeout-ms" && val) {
            timeout_ms = std::atoi(val);
            ++i;
        } else if (arg == "--pipeline" && val) {
            pipeline = std::max(1, std::atoi(val));
            ++i;
        } else if (arg == "--retries" && val) {
            retries = std::atoi(val);
            ++i;
        } else if (arg == "--backoff-ms" && val) {
            backoff_ms = std::max(1, std::atoi(val));
            ++i;
        } else if (arg == "--backoff-cap-ms" && val) {
            backoff_cap_ms = std::max(1, std::atoi(val));
            ++i;
        } else if (arg == "--retry-seed" && val) {
            retry_seed = static_cast<uint64_t>(std::atoll(val));
            ++i;
        } else if (arg == "--gemm" && val) {
            const auto d = parseInts(val);
            if (d.size() != 4) {
                std::fprintf(stderr, "--gemm wants B,M,K,N\n");
                return 2;
            }
            req["type"] = "search";
            mse::JsonValue &g = req["workload"]["gemm"];
            g["b"] = d[0];
            g["m"] = d[1];
            g["k"] = d[2];
            g["n"] = d[3];
            have_request = true;
            ++i;
        } else if (arg == "--conv2d" && val) {
            const auto d = parseInts(val);
            if (d.size() != 7) {
                std::fprintf(stderr,
                             "--conv2d wants B,K,C,Y,X,R,S\n");
                return 2;
            }
            req["type"] = "search";
            mse::JsonValue &c = req["workload"]["conv2d"];
            c["b"] = d[0];
            c["k"] = d[1];
            c["c"] = d[2];
            c["y"] = d[3];
            c["x"] = d[4];
            c["r"] = d[5];
            c["s"] = d[6];
            have_request = true;
            ++i;
        } else if (arg == "--stats") {
            req["type"] = "stats";
            have_request = true;
        } else if (arg == "--ping") {
            req["type"] = "ping";
            have_request = true;
        } else if (arg == "--raw" && val) {
            raw = val;
            have_request = true;
            ++i;
        } else if (arg == "--arch" && val) {
            req["arch"] = val;
            ++i;
        } else if (arg == "--mapper" && val) {
            req["mapper"] = val;
            ++i;
        } else if (arg == "--objective" && val) {
            req["objective"] = val;
            ++i;
        } else if (arg == "--samples" && val) {
            req["max_samples"] = static_cast<int64_t>(std::atoll(val));
            ++i;
        } else if (arg == "--seed" && val) {
            req["seed"] = static_cast<int64_t>(std::atoll(val));
            ++i;
        } else if (arg == "--deadline-ms" && val) {
            req["deadline_ms"] = static_cast<int64_t>(std::atoll(val));
            ++i;
        } else if (arg == "--no-warm") {
            req["warm_start"] = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    const bool cluster_mode = !cluster_csv.empty();
    if ((!cluster_mode && (port <= 0 || port > 65535)) ||
        !have_request) {
        usage(argv[0]);
        return 2;
    }
    if (req["type"].asString("") == "search" && !req.find("arch"))
        req["arch"] = "accel-A";

    const std::string line = raw.empty() ? req.dump() : raw;
    int retries_used = 0;

    if (cluster_mode) {
        if (pipeline > 1) {
            std::fprintf(stderr,
                         "mse_client: --pipeline is not supported "
                         "with --cluster\n");
            return 2;
        }
        mse::ClusterConfig cc;
        cc.nodes = mse::splitNodeList(cluster_csv);
        cc.replication = cluster_replicas;
        if (cc.nodes.empty()) {
            std::fprintf(stderr,
                         "mse_client: --cluster wants at least one "
                         "HOST:PORT\n");
            return 2;
        }
        mse::ClusterClient client(cc, timeout_ms);

        const std::string type = req["type"].asString("");
        if (raw.empty() && (type == "stats" || type == "ping")) {
            // Cluster-wide health: one reply line per node, exit 0
            // only when every node answered ok.
            bool all_ok = true;
            for (const auto &nr : client.broadcast(line)) {
                if (!nr.second.ok) {
                    std::fprintf(stderr, "mse_client: %s\n",
                                 nr.second.error.c_str());
                    all_ok = false;
                    continue;
                }
                const auto doc = mse::parseJson(nr.second.reply);
                if (!doc || !doc->getBool("ok", false))
                    all_ok = false;
                std::printf("%s\n", nr.second.reply.c_str());
            }
            return all_ok ? 0 : 1;
        }

        // Routed request: each attempt is one full sweep over the
        // key's candidate nodes (owner, replicas, redirect targets);
        // the retry loop only re-sweeps for transport failures and
        // the server's retryable rejections.
        for (int attempt = 0;; ++attempt) {
            std::string why;
            const auto res = client.request(line);
            if (res.ok) {
                const auto doc = mse::parseJson(res.reply);
                const bool ok = doc && doc->getBool("ok", false);
                std::string code;
                int hint_ms = 0;
                if (doc) {
                    if (const mse::JsonValue *e = doc->find("error")) {
                        code = e->getString("code", "");
                        hint_ms = static_cast<int>(
                            e->getDouble("retry_after_ms", 0.0));
                    }
                }
                if (!ok && retryableCode(code) && attempt < retries) {
                    const int wait = std::max(
                        hint_ms, backoffMs(attempt, backoff_ms,
                                           backoff_cap_ms,
                                           retry_seed));
                    std::fprintf(stderr,
                                 "mse_client: %s from %s, retrying "
                                 "in %d ms (attempt %d/%d)\n",
                                 code.c_str(), res.served_by.c_str(),
                                 wait, attempt + 1, retries);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(wait));
                    ++retries_used;
                    continue;
                }
                std::printf("%s\n", res.reply.c_str());
                if (res.nodes_tried > 1 || retries_used > 0)
                    std::fprintf(stderr,
                                 "mse_client: served by %s "
                                 "(nodes tried: %zu, retries: %d)\n",
                                 res.served_by.c_str(),
                                 res.nodes_tried, retries_used);
                return ok ? 0 : 1;
            }
            why = res.error;
            if (attempt >= retries) {
                std::fprintf(stderr,
                             "mse_client: %s; giving up after %d "
                             "retr%s\n",
                             why.c_str(), retries_used,
                             retries_used == 1 ? "y" : "ies");
                return 1;
            }
            const int wait = backoffMs(attempt, backoff_ms,
                                       backoff_cap_ms, retry_seed);
            std::fprintf(stderr,
                         "mse_client: %s, retrying in %d ms "
                         "(attempt %d/%d)\n",
                         why.c_str(), wait, attempt + 1, retries);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(wait));
            ++retries_used;
        }
    }

    // One attempt per loop iteration; `why` collects the transient
    // failure that justifies the next retry.
    for (int attempt = 0;; ++attempt) {
        std::string why;
        std::string err;
        const int fd =
            mse::connectTcp(host, static_cast<uint16_t>(port), &err);
        if (fd < 0) {
            why = err; // Refused/reset/unreachable: retryable.
        } else if (pipeline > 1) {
            // Pipelined mode: K requests down one connection before
            // any read, then K replies in request order. Once bytes
            // are on the wire a failure is final — a resend could
            // duplicate searches the server already ran.
            int sent = 0;
            while (sent < pipeline && mse::sendLine(fd, line))
                ++sent;
            if (sent == 0) {
                why = "send failed";
                mse::closeSocket(fd);
            } else if (sent < pipeline) {
                std::fprintf(stderr,
                             "mse_client: send failed after %d/%d "
                             "pipelined requests\n",
                             sent, pipeline);
                mse::closeSocket(fd);
                return 1;
            } else {
                mse::LineReader reader(fd);
                bool all_ok = true;
                for (int k = 0; k < pipeline; ++k) {
                    std::string reply;
                    const auto status =
                        reader.readLine(&reply, timeout_ms);
                    if (status != mse::LineReader::Status::Line) {
                        std::fprintf(
                            stderr,
                            "mse_client: %s after %d/%d pipelined "
                            "replies\n",
                            status == mse::LineReader::Status::Timeout
                                ? "timeout"
                                : "connection lost",
                            k, pipeline);
                        mse::closeSocket(fd);
                        return 1;
                    }
                    const auto doc = mse::parseJson(reply);
                    if (!doc || !doc->getBool("ok", false))
                        all_ok = false;
                    std::printf("%s\n", reply.c_str());
                }
                mse::closeSocket(fd);
                if (retries_used > 0)
                    std::fprintf(stderr,
                                 "mse_client: retries used: %d\n",
                                 retries_used);
                return all_ok ? 0 : 1;
            }
        } else if (!mse::sendLine(fd, line)) {
            // The request may not have reached the server; resending
            // is the right bet (at worst it redoes a search).
            why = "send failed";
            mse::closeSocket(fd);
        } else {
            mse::LineReader reader(fd);
            std::string reply;
            const auto status = reader.readLine(&reply, timeout_ms);
            mse::closeSocket(fd);
            if (status == mse::LineReader::Status::Timeout) {
                // Server alive but slow: retrying duplicates work.
                std::fprintf(stderr,
                             "mse_client: no reply (timeout), "
                             "retries used: %d\n",
                             retries_used);
                return 1;
            }
            if (status != mse::LineReader::Status::Line) {
                why = "connection lost before reply";
            } else {
                const auto doc = mse::parseJson(reply);
                const bool ok = doc && doc->getBool("ok", false);
                std::string code;
                int hint_ms = 0;
                if (doc) {
                    if (const mse::JsonValue *e = doc->find("error")) {
                        code = e->getString("code", "");
                        hint_ms = static_cast<int>(
                            e->getDouble("retry_after_ms", 0.0));
                    }
                }
                if (!ok && retryableCode(code) &&
                    attempt < retries) {
                    // Honor the server's hint when it out-waits our
                    // own backoff schedule.
                    const int wait = std::max(
                        hint_ms, backoffMs(attempt, backoff_ms,
                                           backoff_cap_ms,
                                           retry_seed));
                    std::fprintf(stderr,
                                 "mse_client: %s, retrying in %d ms "
                                 "(attempt %d/%d)\n",
                                 code.c_str(), wait, attempt + 1,
                                 retries);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(wait));
                    ++retries_used;
                    continue;
                }
                std::printf("%s\n", reply.c_str());
                if (retries_used > 0)
                    std::fprintf(stderr,
                                 "mse_client: retries used: %d\n",
                                 retries_used);
                return ok ? 0 : 1;
            }
        }
        if (attempt >= retries) {
            std::fprintf(stderr,
                         "mse_client: %s; giving up after %d "
                         "retr%s\n",
                         why.c_str(), retries_used,
                         retries_used == 1 ? "y" : "ies");
            return 1;
        }
        const int wait =
            backoffMs(attempt, backoff_ms, backoff_cap_ms, retry_seed);
        std::fprintf(stderr,
                     "mse_client: %s, retrying in %d ms "
                     "(attempt %d/%d)\n",
                     why.c_str(), wait, attempt + 1, retries);
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
        ++retries_used;
    }
}

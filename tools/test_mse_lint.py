#!/usr/bin/env python3
"""Unit tests for tools/mse_lint.py.

Each rule is exercised on fixture snippets twice: once proving it fires
on the violating pattern, once proving the `// mse-lint: allow(<rule>)`
escape hatch suppresses exactly that finding. Run directly or via ctest
(registered as `mse_lint_selftest`).
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import mse_lint  # noqa: E402


def lint(path: str, text: str):
    return mse_lint.lint_file(path, text)


def rules_of(findings):
    return [f.rule for f in findings]


class JsonEmitTest(unittest.TestCase):
    SNIPPET = r'''
void dump() {
    printf("{\"ok\":true}\n");
}
'''

    def test_fires_outside_json_layer(self):
        self.assertEqual(rules_of(lint("src/core/x.cpp", self.SNIPPET)),
                         ["json-emit"])

    def test_quiet_inside_json_layer(self):
        self.assertEqual(lint("src/common/json.cpp", self.SNIPPET), [])

    def test_allow_comment_suppresses(self):
        snippet = self.SNIPPET.replace(
            "printf(",
            "// mse-lint: allow(json-emit) protocol frame, not a doc\n"
            "    printf(")
        self.assertEqual(lint("src/core/x.cpp", snippet), [])

    def test_jsonvalue_dump_is_clean(self):
        code = 'void f() { printf("%s", j.dump().c_str()); }'
        self.assertEqual(lint("src/core/x.cpp", code), [])


class NondetSeedTest(unittest.TestCase):
    def test_random_device_fires(self):
        code = "uint64_t s = std::random_device{}();"
        self.assertEqual(rules_of(lint("src/mappers/m.cpp", code)),
                         ["nondet-seed"])

    def test_rand_fires(self):
        code = "int r = rand() % 7;"
        self.assertEqual(rules_of(lint("src/core/e.cpp", code)),
                         ["nondet-seed"])

    def test_srand_fires(self):
        code = "void f() { srand(42); }"
        self.assertEqual(rules_of(lint("src/core/e.cpp", code)),
                         ["nondet-seed"])

    def test_identifier_containing_rand_is_clean(self):
        code = "double v = quick_rand(rng);"
        self.assertEqual(lint("src/core/e.cpp", code), [])

    def test_outside_src_is_exempt(self):
        code = "int r = rand();"
        self.assertEqual(lint("bench/b.cpp", code), [])

    def test_allow_comment_suppresses(self):
        code = ("int r = rand(); "
                "// mse-lint: allow(nondet-seed) fixture only")
        self.assertEqual(lint("src/core/e.cpp", code), [])


class WallclockSeedTest(unittest.TestCase):
    def test_now_feeding_seed_fires(self):
        code = ("Rng rng(static_cast<uint64_t>("
                "std::chrono::steady_clock::now()"
                ".time_since_epoch().count()));")
        self.assertEqual(rules_of(lint("src/core/e.cpp", code)),
                         ["wallclock-seed"])

    def test_time_null_seed_fires(self):
        code = "uint64_t seed = time(nullptr);"
        self.assertEqual(rules_of(lint("src/core/e.cpp", code)),
                         ["wallclock-seed"])

    def test_budget_timing_is_clean(self):
        code = ("const double t0 = std::chrono::duration<double>("
                "clock::now().time_since_epoch()).count();")
        self.assertEqual(lint("src/core/e.cpp", code), [])

    def test_allow_comment_suppresses(self):
        code = ("uint64_t seed = time(nullptr); "
                "// mse-lint: allow(wallclock-seed)")
        self.assertEqual(lint("src/core/e.cpp", code), [])


class UnorderedIterTest(unittest.TestCase):
    SNIPPET = """
std::unordered_map<std::string, int> counts;
void emit() {
    for (const auto &kv : counts)
        print(kv);
}
"""

    def test_iteration_fires(self):
        self.assertEqual(rules_of(lint("src/core/x.cpp", self.SNIPPET)),
                         ["unordered-iter"])

    def test_lookup_only_is_clean(self):
        code = ("std::unordered_map<std::string, int> counts;\n"
                "int get(const std::string &k) "
                "{ return counts.at(k); }\n")
        self.assertEqual(lint("src/core/x.cpp", code), [])

    def test_ordered_map_is_clean(self):
        code = ("std::map<std::string, int> counts;\n"
                "void emit() { for (const auto &kv : counts) "
                "print(kv); }\n")
        self.assertEqual(lint("src/core/x.cpp", code), [])

    def test_allow_comment_on_previous_line_suppresses(self):
        snippet = self.SNIPPET.replace(
            "    for (",
            "    // mse-lint: allow(unordered-iter) order-independent\n"
            "    for (")
        self.assertEqual(lint("src/core/x.cpp", snippet), [])

    def test_member_declared_in_header(self):
        with tempfile.TemporaryDirectory() as d:
            hpp = os.path.join(d, "store.hpp")
            cpp = os.path.join(d, "store.cpp")
            with open(hpp, "w") as f:
                f.write("std::unordered_map<std::string, E> best_ "
                        "GUARDED_BY(mu_);\n")
            with open(cpp, "w") as f:
                f.write("void S::dump() {\n"
                        "    for (const auto &kv : best_) emit(kv);\n"
                        "}\n")
            self.assertEqual(rules_of(mse_lint.lint_file(cpp)),
                             ["unordered-iter"])


class LockAcrossParallelForTest(unittest.TestCase):
    def test_lock_held_across_parallelfor_fires(self):
        code = """
void f() {
    MutexLock lk(mu_);
    pool.parallelFor(n, fn);
}
"""
        self.assertEqual(rules_of(lint("src/core/x.cpp", code)),
                         ["lock-across-parallelfor"])

    def test_std_lock_guard_also_fires_outside_src(self):
        code = """
void f() {
    std::lock_guard<std::mutex> lk(mu_);
    tracker.evaluateBatch(batch);
}
"""
        self.assertEqual(rules_of(lint("bench/b.cpp", code)),
                         ["lock-across-parallelfor"])

    def test_lock_released_before_parallelfor_is_clean(self):
        code = """
void f() {
    {
        MutexLock lk(mu_);
        prepare();
    }
    pool.parallelFor(n, fn);
}
"""
        self.assertEqual(lint("src/core/x.cpp", code), [])

    def test_same_line_scope_is_clean(self):
        code = """
void f() {
    { MutexLock lk(mu_); prepare(); }
    pool.parallelFor(n, fn);
}
"""
        self.assertEqual(lint("src/core/x.cpp", code), [])

    def test_allow_comment_suppresses(self):
        code = """
void f() {
    MutexLock lk(mu_);
    // mse-lint: allow(lock-across-parallelfor) single-thread mode
    pool.parallelFor(n, fn);
}
"""
        self.assertEqual(lint("src/core/x.cpp", code), [])


class RawMutexTest(unittest.TestCase):
    def test_std_mutex_fires_in_src(self):
        code = "std::mutex mu_;"
        self.assertEqual(rules_of(lint("src/core/x.hpp", code)),
                         ["raw-mutex"])

    def test_lock_guard_fires_in_src(self):
        code = "std::lock_guard<std::mutex> lk(mu_);"
        self.assertEqual(rules_of(lint("src/core/x.cpp", code)),
                         ["raw-mutex"])  # one finding per line

    def test_thread_annotations_header_exempt(self):
        code = "std::mutex mu_;"
        self.assertEqual(
            lint("src/common/thread_annotations.hpp", code), [])

    def test_tests_and_bench_exempt(self):
        code = "std::mutex mu_;"
        self.assertEqual(lint("tests/test_x.cpp", code), [])
        self.assertEqual(lint("bench/b.cpp", code), [])

    def test_annotated_wrappers_are_clean(self):
        code = ("Mutex mu_;\nvoid f() { MutexLock lk(mu_); x_++; }\n")
        self.assertEqual(lint("src/core/x.cpp", code), [])

    def test_allow_comment_suppresses(self):
        code = ("std::mutex mu_; "
                "// mse-lint: allow(raw-mutex) interop with external lib")
        self.assertEqual(lint("src/core/x.hpp", code), [])


class RawSyscallTest(unittest.TestCase):
    def test_raw_write_fires_in_service(self):
        code = "ssize_t n = write(fd, buf, len);"
        self.assertEqual(rules_of(lint("src/service/store.cpp", code)),
                         ["raw-syscall"])

    def test_global_qualified_call_fires(self):
        code = "if (::fsync(fd) != 0) bail();"
        self.assertEqual(rules_of(lint("src/service/store.cpp", code)),
                         ["raw-syscall"])

    def test_stdio_fires(self):
        code = 'FILE *f = fopen(path, "r");'
        self.assertEqual(rules_of(lint("src/service/store.cpp", code)),
                         ["raw-syscall"])

    def test_sys_io_wrappers_are_clean(self):
        code = ("if (sysWriteAll(fd, p, n, \"store.append\") < 0)\n"
                "    sysRename(a, b, \"store.rename\");\n"
                "sysClose(fd);\n")
        self.assertEqual(lint("src/service/store.cpp", code), [])

    def test_member_and_qualified_names_are_clean(self):
        code = ("reader.readLine(&line, ms);\n"
                "conn->send(msg);\n"
                "LineReader::Status s = LineReader::readLine(x);\n"
                "closeSocket(fd);\n")
        self.assertEqual(lint("src/service/net_user.cpp", code), [])

    def test_outside_service_is_exempt(self):
        code = "ssize_t n = write(fd, buf, len);"
        self.assertEqual(lint("src/common/sys_io.cpp", code), [])
        self.assertEqual(lint("tools/t.cpp", code), [])

    def test_cluster_layer_is_covered(self):
        code = "ssize_t n = send(fd, buf, len, 0);"
        self.assertEqual(
            rules_of(lint("src/cluster/replication.cpp", code)),
            ["raw-syscall"])

    def test_raw_epoll_calls_fire_in_service(self):
        for call in ("epoll_create1(EPOLL_CLOEXEC)",
                     "epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev)",
                     "epoll_wait(ep, evs, 64, ms)",
                     "::epoll_pwait(ep, evs, 64, ms, nullptr)"):
            code = f"int r = {call};"
            self.assertEqual(rules_of(lint("src/service/loop.cpp", code)),
                             ["raw-syscall"], call)

    def test_epoll_seam_wrappers_are_clean(self):
        code = ("int ep = sysEpollCreate(\"server.epoll.create\");\n"
                "sysEpollCtl(ep, EPOLL_CTL_ADD, fd, &ev, \"server.epoll.ctl\");\n"
                "int n = sysEpollWait(ep, evs, 64, ms, \"server.epoll.wait\");\n"
                "struct epoll_event ev{};\n")
        self.assertEqual(lint("src/service/loop.cpp", code), [])

    def test_raw_epoll_allow_comment_suppresses(self):
        code = ("epoll_create1(0); "
                "// mse-lint: allow(raw-syscall) platform probe")
        self.assertEqual(lint("src/service/loop.cpp", code), [])

    def test_socket_setup_calls_are_clean(self):
        code = ("int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"
                "::bind(fd, addr, len);\n"
                "::listen(fd, 64);\n")
        self.assertEqual(lint("src/service/net.cpp", code), [])

    def test_allow_comment_suppresses(self):
        code = ("::fsync(fd); "
                "// mse-lint: allow(raw-syscall) pre-seam bootstrap")
        self.assertEqual(lint("src/service/store.cpp", code), [])


class StoreConstructTest(unittest.TestCase):
    def test_local_instance_fires_in_tools(self):
        code = "mse::MappingStore store(path);"
        self.assertEqual(rules_of(lint("tools/t.cpp", code)),
                         ["store-construct"])

    def test_default_constructed_member_fires_in_core(self):
        code = "MappingStore store_;"
        self.assertEqual(rules_of(lint("src/core/engine.hpp", code)),
                         ["store-construct"])

    def test_heap_and_factory_fire(self):
        for code in ("auto *s = new MappingStore(path);",
                     "auto s = std::make_unique<MappingStore>(path);",
                     "auto s = std::make_shared<MappingStore>();"):
            self.assertEqual(rules_of(lint("bench/b.cpp", code)),
                             ["store-construct"], code)

    def test_service_and_cluster_layers_exempt(self):
        code = "MappingStore store_;"
        self.assertEqual(lint("src/service/service.hpp", code), [])
        self.assertEqual(lint("src/cluster/replication.cpp", code), [])

    def test_tests_exempt(self):
        code = "MappingStore store(path);"
        self.assertEqual(lint("tests/test_x.cpp", code), [])

    def test_static_codec_helpers_are_clean(self):
        code = ("auto e = mse::MappingStore::decodeEntry(line);\n"
                "auto k = MappingStore::keyOfEntry(*e);\n"
                "auto key = MappingStore::keyOf(wl, arch, obj, sp);\n")
        self.assertEqual(lint("tools/store_check.cpp", code), [])

    def test_reference_to_service_store_is_clean(self):
        code = "MappingStore &store = service.store();"
        self.assertEqual(lint("tools/t.cpp", code), [])

    def test_allow_comment_suppresses(self):
        code = ("MappingStore store(path); "
                "// mse-lint: allow(store-construct) offline migration")
        self.assertEqual(lint("tools/t.cpp", code), [])


class SuppressionHygieneTest(unittest.TestCase):
    def test_allow_only_suppresses_named_rule(self):
        code = ("int r = rand(); "
                "// mse-lint: allow(json-emit) wrong rule name")
        self.assertEqual(rules_of(lint("src/core/e.cpp", code)),
                         ["nondet-seed"])

    def test_allow_list_suppresses_multiple_rules(self):
        code = ("std::mutex mu_; int r = rand(); "
                "// mse-lint: allow(raw-mutex, nondet-seed)")
        self.assertEqual(lint("src/core/e.cpp", code), [])

    def test_comment_content_not_linted(self):
        code = "// std::mutex example in a comment, rand() too"
        self.assertEqual(lint("src/core/e.cpp", code), [])

    def test_string_content_not_structurally_linted(self):
        code = 'const char *doc = "call rand() for chaos";'
        self.assertEqual(lint("src/core/e.cpp", code), [])


class RepoIsCleanTest(unittest.TestCase):
    def test_whole_repo_has_zero_findings(self):
        repo = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        roots = [os.path.join(repo, d) for d in ("src", "tools", "bench")]
        findings = []
        for path in mse_lint.collect_files(roots):
            findings.extend(mse_lint.lint_file(path))
        self.assertEqual(findings, [],
                         "repo must lint clean: " +
                         "; ".join(f.format("text") for f in findings))


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env bash
# Smoke test for the sharded multi-daemon cluster: start three
# mse_serve daemons that share one consistent-hash ring (replication
# factor 2), then walk the cluster contract end to end:
#
#   1. broadcast ping reaches every node;
#   2. a routed cold search lands on the key's ring owner and the
#      reply carries served_by + store_key;
#   3. the same search again is a warm exact hit;
#   4. the owner's improvement replicates to the key's ring successor
#      (two of the three store files end up holding the key);
#   5. a stale client that only knows the one non-replica node is
#      redirected to the owner by wrong_shard and still succeeds;
#   6. after SIGKILLing the owner, the routed search fails over to the
#      replica and is *still* a warm exact hit — the acknowledged
#      record survived its owner's death;
#   7. the dead owner rejoins with an *empty* store (its file is
#      deleted first) and re-learns the key from the survivors via
#      the startup anti-entropy sync pull — self-healing, no client
#      traffic required;
#   8. all three daemons drain cleanly on SIGTERM.
#
# Usage: tools/cluster_smoke.sh BUILD_DIR
#
# The ring needs fixed ports (--self is part of the hash), so the
# script derives a port block from its PID and retries with a shifted
# block if a bind collides. Every wait is bounded by SMOKE_WAIT_S
# (default 30s; the TSan CI job exports 120).
set -euo pipefail

BUILD_DIR="${1:-build}"
SMOKE_WAIT_S="${SMOKE_WAIT_S:-30}"
SERVE="$BUILD_DIR/tools/mse_serve"
CLIENT="$BUILD_DIR/tools/mse_client"
CHECK="$BUILD_DIR/tools/store_check"
WORK_DIR="$(mktemp -d)"
N=3
PIDS=()
PORTS=()
ADDRS=()
NODES=""

dump_logs() {
    local i
    for i in $(seq 0 $((N - 1))); do
        [ -f "$WORK_DIR/serve_$i.log" ] &&
            sed "s/^/  serve$i| /" "$WORK_DIR/serve_$i.log" >&2
    done
}

kill_all() {
    local pid
    for pid in "${PIDS[@]:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    PIDS=()
}

fail() {
    echo "CLUSTER SMOKE FAIL: $*" >&2
    dump_logs
    kill_all
    exit 1
}

wait_until() {
    local what="$1"
    shift
    local deadline=$(($(date +%s) + SMOKE_WAIT_S))
    until "$@"; do
        if [ "$(date +%s)" -ge "$deadline" ]; then
            fail "timed out after ${SMOKE_WAIT_S}s waiting for $what"
        fi
        sleep 0.1
    done
}

[ -x "$SERVE" ] || fail "missing $SERVE (build first)"
[ -x "$CLIENT" ] || fail "missing $CLIENT (build first)"
[ -x "$CHECK" ] || fail "missing $CHECK (build first)"

trap 'kill_all; rm -rf "$WORK_DIR"' EXIT

# --- Start the ring (retrying the port block on bind collisions). ---
started=0
for attempt in 0 1 2 3 4; do
    BASE=$((20000 + (($$ * 3 + attempt * 211) % 40000)))
    PORTS=()
    ADDRS=()
    for i in $(seq 0 $((N - 1))); do
        PORTS+=($((BASE + i)))
        ADDRS+=("127.0.0.1:$((BASE + i))")
    done
    NODES=$(IFS=,; echo "${ADDRS[*]}")

    PIDS=()
    for i in $(seq 0 $((N - 1))); do
        PEERS=""
        for j in $(seq 0 $((N - 1))); do
            [ "$j" -eq "$i" ] && continue
            PEERS="${PEERS:+$PEERS,}${ADDRS[$j]}"
        done
        : >"$WORK_DIR/serve_$i.log"
        MSE_EXECUTORS=2 "$SERVE" \
            --self "${ADDRS[$i]}" --peers "$PEERS" --replicas 2 \
            --store "$WORK_DIR/store_$i.jsonl" --samples 300 \
            --probe-interval-ms 100 --down-after 2 \
            >"$WORK_DIR/serve_$i.log" 2>&1 &
        PIDS+=($!)
    done

    # Every daemon must report LISTENING; one dying (port taken) sends
    # us around with a shifted block.
    all_up=1
    for i in $(seq 0 $((N - 1))); do
        deadline=$(($(date +%s) + SMOKE_WAIT_S))
        while ! grep -q '^LISTENING' "$WORK_DIR/serve_$i.log" 2>/dev/null; do
            if ! kill -0 "${PIDS[$i]}" 2>/dev/null; then
                all_up=0
                break
            fi
            [ "$(date +%s)" -ge "$deadline" ] &&
                fail "daemon $i never reported its port"
            sleep 0.1
        done
        [ "$all_up" -eq 1 ] || break
    done
    if [ "$all_up" -eq 1 ]; then
        started=1
        break
    fi
    kill_all
done
[ "$started" -eq 1 ] || fail "could not bind a 3-port block after 5 attempts"
echo "cluster up: $NODES (pids ${PIDS[*]})"

for i in $(seq 0 $((N - 1))); do
    grep -q '^cluster: self=' "$WORK_DIR/serve_$i.log" ||
        fail "daemon $i did not report cluster mode"
done

run_client() {
    timeout "$((SMOKE_WAIT_S * 4))" "$CLIENT" "$@"
}

# --- 1. Broadcast ping: one ok reply per node. ---
PING=$(run_client --cluster "$NODES" --ping) || fail "cluster ping failed: $PING"
PING_OK=$(echo "$PING" | grep -c '"ok":true')
[ "$PING_OK" -eq "$N" ] ||
    fail "expected $N ping replies, got $PING_OK: $PING"

# --- 2. Routed cold search lands on the owner. ---
COLD=$(run_client --cluster "$NODES" --gemm 4,64,64,64 --samples 300) ||
    fail "cold routed search failed: $COLD"
echo "$COLD" | grep -q '"store":"cold"' || fail "first search was not cold: $COLD"
OWNER=$(echo "$COLD" | sed -n 's/.*"served_by":"\([^"]*\)".*/\1/p')
KEY=$(echo "$COLD" | sed -n 's/.*"store_key":"\([^"]*\)".*/\1/p')
[ -n "$OWNER" ] || fail "cold reply carries no served_by: $COLD"
[ -n "$KEY" ] || fail "cold reply carries no store_key: $COLD"
echo "cold search served by owner $OWNER (key $KEY)"

# --- 3. Same search again: warm exact hit on the same owner. ---
WARM=$(run_client --cluster "$NODES" --gemm 4,64,64,64 --samples 300) ||
    fail "warm routed search failed: $WARM"
echo "$WARM" | grep -q '"store":"exact"' ||
    fail "second search missed the store: $WARM"
echo "$WARM" | grep -q "\"served_by\":\"$OWNER\"" ||
    fail "warm search left the owner: $WARM"

# --- 4. Replication: the key reaches a second store file. ---
replica_count() {
    local n=0 i
    for i in $(seq 0 $((N - 1))); do
        if "$CHECK" --keys "$WORK_DIR/store_$i.jsonl" 2>/dev/null |
            grep -qF "$KEY "; then
            n=$((n + 1))
        fi
    done
    [ "$n" -ge 2 ]
}
wait_until "the record to replicate to a second node" replica_count
echo "replication OK: key present in >=2 of $N store files"

# --- 5. Stale client against the one non-replica node: wrong_shard
#        redirect self-heals in one extra hop. ---
OUTSIDER=""
for i in $(seq 0 $((N - 1))); do
    if ! "$CHECK" --keys "$WORK_DIR/store_$i.jsonl" 2>/dev/null |
        grep -qF "$KEY "; then
        OUTSIDER="${ADDRS[$i]}"
    fi
done
if [ -n "$OUTSIDER" ]; then
    REDIR_ERR="$WORK_DIR/redirect.stderr"
    REDIR=$(run_client --cluster "$OUTSIDER" --gemm 4,64,64,64 \
        --samples 300 2>"$REDIR_ERR") ||
        fail "redirected search failed: $REDIR $(cat "$REDIR_ERR")"
    echo "$REDIR" | grep -q '"store":"exact"' ||
        fail "redirected search was not warm: $REDIR"
    grep -q "served by $OWNER" "$REDIR_ERR" ||
        fail "client did not report the redirect target: $(cat "$REDIR_ERR")"
    echo "wrong_shard redirect OK: $OUTSIDER -> $OWNER"
else
    echo "note: key already on all nodes; skipping the redirect leg"
fi

# --- 6. SIGKILL the owner: failover to the replica, still warm. ---
for i in $(seq 0 $((N - 1))); do
    if [ "${ADDRS[$i]}" = "$OWNER" ]; then
        kill -9 "${PIDS[$i]}" 2>/dev/null || true
        wait "${PIDS[$i]}" 2>/dev/null || true
        PIDS[$i]=""
        echo "killed owner $OWNER"
    fi
done

FO_ERR="$WORK_DIR/failover.stderr"
FAILOVER=$(run_client --cluster "$NODES" --gemm 4,64,64,64 \
    --samples 300 2>"$FO_ERR") ||
    fail "failover search failed: $FAILOVER $(cat "$FO_ERR")"
echo "$FAILOVER" | grep -q '"store":"exact"' ||
    fail "failover search lost the warm copy: $FAILOVER"
SURVIVOR=$(echo "$FAILOVER" | sed -n 's/.*"served_by":"\([^"]*\)".*/\1/p')
[ -n "$SURVIVOR" ] && [ "$SURVIVOR" != "$OWNER" ] ||
    fail "failover reply not served by a replica: $FAILOVER"
grep -q 'nodes tried: 2' "$FO_ERR" ||
    fail "client did not report the failover hop: $(cat "$FO_ERR")"
echo "failover OK: warm exact hit from $SURVIVOR after owner SIGKILL"

# --- 7. Kill -> rejoin -> verify converged: the owner comes back
#        with an empty store and must re-learn the key from the
#        survivors via the startup sync pull (plus the survivors'
#        hint drain once their probes see it Up again). ---
OWNER_IDX=""
for i in $(seq 0 $((N - 1))); do
    [ "${ADDRS[$i]}" = "$OWNER" ] && OWNER_IDX="$i"
done
[ -n "$OWNER_IDX" ] || fail "owner $OWNER not in the node list"
rm -f "$WORK_DIR/store_$OWNER_IDX.jsonl"
PEERS=""
for j in $(seq 0 $((N - 1))); do
    [ "$j" -eq "$OWNER_IDX" ] && continue
    PEERS="${PEERS:+$PEERS,}${ADDRS[$j]}"
done
: >"$WORK_DIR/serve_$OWNER_IDX.log"
MSE_EXECUTORS=2 "$SERVE" \
    --self "${ADDRS[$OWNER_IDX]}" --peers "$PEERS" --replicas 2 \
    --store "$WORK_DIR/store_$OWNER_IDX.jsonl" --samples 300 \
    --probe-interval-ms 100 --down-after 2 \
    >"$WORK_DIR/serve_$OWNER_IDX.log" 2>&1 &
PIDS[$OWNER_IDX]=$!
owner_listening() {
    kill -0 "${PIDS[$OWNER_IDX]}" 2>/dev/null || return 1
    grep -q '^LISTENING' "$WORK_DIR/serve_$OWNER_IDX.log" 2>/dev/null
}
wait_until "the owner to rejoin the ring" owner_listening
owner_recovered_key() {
    "$CHECK" --keys "$WORK_DIR/store_$OWNER_IDX.jsonl" 2>/dev/null |
        grep -qF "$KEY "
}
wait_until "the rejoined owner to re-sync the key from the survivors" \
    owner_recovered_key
echo "rejoin OK: owner re-learned $KEY from the survivors with zero client traffic"

# --- 8. Clean SIGTERM drain of all three daemons. ---
for i in $(seq 0 $((N - 1))); do
    [ -n "${PIDS[$i]}" ] || continue
    kill -TERM "${PIDS[$i]}"
    deadline=$(($(date +%s) + SMOKE_WAIT_S))
    while kill -0 "${PIDS[$i]}" 2>/dev/null; do
        [ "$(date +%s)" -ge "$deadline" ] ||
            { sleep 0.1; continue; }
        fail "daemon $i ignored SIGTERM"
    done
    RC=0
    wait "${PIDS[$i]}" 2>/dev/null || RC=$?
    [ "$RC" -eq 0 ] || fail "daemon $i exited with status $RC"
    grep -q 'shutting down' "$WORK_DIR/serve_$i.log" ||
        fail "daemon $i skipped its drain path"
    PIDS[$i]=""
done

echo "cluster smoke OK: routed cold -> warm, replication, wrong_shard redirect, failover warm hit, rejoin re-sync, clean drain"

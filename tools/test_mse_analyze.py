#!/usr/bin/env python3
"""Selftests for tools/mse_analyze.py and the tools/analysis package.

Each semantic rule is proven to fire on a seeded violation in a
miniature repo (same layout as the real one, written to a tempdir),
and proven quiet on the consistent baseline fixture.  The lexer edge
cases that would corrupt the registries if mishandled — raw strings,
adjacent-literal concatenation, comments, `#if 0` blocks, digit
separators — are covered against analysis.source directly.

Run: python3 tools/test_mse_analyze.py
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import mse_analyze  # noqa: E402
from analysis import registries as regs  # noqa: E402
from analysis import source  # noqa: E402

# ------------------------------------------------------------------
# Baseline fixture: a miniature repo where every registry agrees.
# ------------------------------------------------------------------

ERROR_HEADER = """\
#pragma once
namespace mse {
namespace wire_errors {
inline constexpr const char *kBadJson = "bad_json";
inline constexpr const char *kQueueFull = "queue_full";
inline bool isRetryable(const char *c) { return c == kQueueFull; }
} // namespace wire_errors
} // namespace mse
"""

FAULT_HEADER = """\
#pragma once
namespace mse {
namespace fault_sites {
inline constexpr const char *kZap = "store.zap";
} // namespace fault_sites
} // namespace mse
"""

METRIC_HEADER = """\
#pragma once
namespace mse {
namespace metric_names {
inline constexpr const char *kUptime = "uptime_s";
inline constexpr const char *kAlwaysKeys[] = { kUptime };
} // namespace metric_names
} // namespace mse
"""

DESIGN_MD = """\
# Design

| Code | Meaning | Retryable |
| --- | --- | --- |
| `bad_json` | unparsable request | no |
| `queue_full` | queue at capacity | yes - retry with backoff |
"""

README_MD = """\
# Readme

| Site | Failure it simulates |
| --- | --- |
| `store.zap` | disk zap |
"""

WIRE_CPP = """\
#include "service/error_codes.hpp"
namespace mse {
const char *badJson() { return wire_errors::kBadJson; }
const char *queueFull() { return wire_errors::kQueueFull; }
} // namespace mse
"""

STORE_CPP = """\
#include "common/fault_sites.hpp"
namespace mse {
void touchStore() { faultCheck(fault_sites::kZap); }
} // namespace mse
"""

SERVICE_CPP = """\
#include "common/metric_names.hpp"
namespace mse {
JsonValue
MseService::statsJson() const
{
    JsonValue j = JsonValue::object();
    j["uptime_s"] = 1.0;
    return j;
}
} // namespace mse
"""

TEST_CPP = """\
#include <gtest/gtest.h>
static const char *a = "bad_json";
static const char *b = "queue_full";
static const char *spec = "store.zap:every:1:EIO";
static const char *key = "uptime_s";
"""


def baseline() -> dict:
    return {
        "src/service/error_codes.hpp": ERROR_HEADER,
        "src/common/fault_sites.hpp": FAULT_HEADER,
        "src/common/metric_names.hpp": METRIC_HEADER,
        "src/service/wire.cpp": WIRE_CPP,
        "src/service/store.cpp": STORE_CPP,
        "src/service/service.cpp": SERVICE_CPP,
        "tests/test_wire.cpp": TEST_CPP,
        "DESIGN.md": DESIGN_MD,
        "README.md": README_MD,
    }


def run_analyzer(files: dict):
    """Materialise `files` in a tempdir and run the Analyzer on it."""
    with tempfile.TemporaryDirectory() as root:
        for rel, text in files.items():
            full = os.path.join(root, rel)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(text)
        analyzer = mse_analyze.Analyzer(root)
        findings = analyzer.run()
        return findings, analyzer


def rules_of(findings) -> set:
    return {f.rule for f in findings}


class BaselineTest(unittest.TestCase):
    def test_consistent_fixture_is_clean(self):
        findings, _ = run_analyzer(baseline())
        self.assertEqual([f.format("text") for f in findings], [])


class WireCodeRulesTest(unittest.TestCase):
    def test_undocumented_code(self):
        files = baseline()
        files["DESIGN.md"] = DESIGN_MD.replace(
            "| `queue_full` | queue at capacity | yes - retry with backoff |\n",
            "",
        )
        findings, _ = run_analyzer(files)
        self.assertIn("wire-code-undocumented", rules_of(findings))

    def test_unknown_documented_code(self):
        files = baseline()
        files["DESIGN.md"] += "| `ghost_code` | never declared | no |\n"
        findings, _ = run_analyzer(files)
        self.assertIn("wire-code-unknown", rules_of(findings))

    def test_orphan_code_never_constructed(self):
        files = baseline()
        files["src/service/wire.cpp"] = WIRE_CPP.replace(
            "const char *queueFull() { return wire_errors::kQueueFull; }\n",
            "",
        )
        findings, _ = run_analyzer(files)
        self.assertIn("wire-code-orphan", rules_of(findings))

    def test_untested_code(self):
        files = baseline()
        files["tests/test_wire.cpp"] = TEST_CPP.replace(
            'static const char *b = "queue_full";\n', ""
        )
        findings, _ = run_analyzer(files)
        self.assertIn("wire-code-untested", rules_of(findings))

    def test_retry_mismatch(self):
        files = baseline()
        files["DESIGN.md"] = DESIGN_MD.replace(
            "| `bad_json` | unparsable request | no |",
            "| `bad_json` | unparsable request | yes |",
        )
        findings, _ = run_analyzer(files)
        self.assertIn("wire-code-retry-mismatch", rules_of(findings))

    def test_dup_literal_in_service_code(self):
        files = baseline()
        files["src/service/wire.cpp"] = WIRE_CPP.replace(
            "return wire_errors::kBadJson;", 'return "bad_json";'
        )
        findings, _ = run_analyzer(files)
        self.assertIn("dup-literal", rules_of(findings))

    def test_dup_literal_suppressed_by_allow_comment(self):
        files = baseline()
        files["src/service/wire.cpp"] = WIRE_CPP.replace(
            "return wire_errors::kBadJson;",
            "// mse-lint: allow(dup-literal) fixture\n"
            '    return "bad_json";',
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("dup-literal", rules_of(findings))


class FaultSiteRulesTest(unittest.TestCase):
    def test_undocumented_site(self):
        files = baseline()
        files["README.md"] = README_MD.replace(
            "| `store.zap` | disk zap |\n", ""
        )
        findings, _ = run_analyzer(files)
        self.assertIn("fault-site-undocumented", rules_of(findings))

    def test_unknown_site_in_readme(self):
        files = baseline()
        files["README.md"] += "| `store.phantom` | never declared |\n"
        findings, _ = run_analyzer(files)
        self.assertIn("fault-site-unknown", rules_of(findings))

    def test_unknown_site_armed_in_test(self):
        files = baseline()
        files["tests/test_wire.cpp"] += (
            'static const char *bad = "store.typo:once:1:EIO";\n'
        )
        findings, _ = run_analyzer(files)
        self.assertIn("fault-site-unknown", rules_of(findings))

    def test_test_prefix_sites_are_exempt(self):
        files = baseline()
        files["tests/test_wire.cpp"] += (
            'static const char *synth = "test.synthetic:once:1:EIO";\n'
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("fault-site-unknown", rules_of(findings))

    def test_orphan_site_never_consulted(self):
        files = baseline()
        files["src/service/store.cpp"] = (
            '#include "common/fault_sites.hpp"\n'
        )
        findings, _ = run_analyzer(files)
        self.assertIn("fault-site-orphan", rules_of(findings))

    def test_unexercised_site(self):
        files = baseline()
        files["tests/test_wire.cpp"] = TEST_CPP.replace(
            'static const char *spec = "store.zap:every:1:EIO";\n', ""
        )
        findings, _ = run_analyzer(files)
        self.assertIn("fault-site-unexercised", rules_of(findings))

    def test_unexercised_cleared_by_script_arming(self):
        files = baseline()
        files["tests/test_wire.cpp"] = TEST_CPP.replace(
            'static const char *spec = "store.zap:every:1:EIO";\n', ""
        )
        files["scripts/chaos.sh"] = (
            "#!/bin/sh\n"
            'MSE_FAULTS="store.zap:every:1:EIO" ./daemon\n'
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("fault-site-unexercised", rules_of(findings))

    def test_dup_literal_site_in_src(self):
        files = baseline()
        files["src/service/store.cpp"] = STORE_CPP.replace(
            "faultCheck(fault_sites::kZap);", 'faultCheck("store.zap");'
        )
        findings, _ = run_analyzer(files)
        self.assertIn("dup-literal", rules_of(findings))

    def test_macro_wrapped_consultation_counts(self):
        files = baseline()
        files["src/service/store.cpp"] = STORE_CPP.replace(
            "faultCheck(fault_sites::kZap);",
            "MSE_FAULT_CHECK(fault_sites::kZap);",
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("fault-site-orphan", rules_of(findings))


class MetricsRulesTest(unittest.TestCase):
    def test_undeclared_emitted_key(self):
        files = baseline()
        files["src/service/service.cpp"] = SERVICE_CPP.replace(
            'j["uptime_s"] = 1.0;',
            'j["uptime_s"] = 1.0;\n    j["mystery"] = 2.0;',
        )
        findings, _ = run_analyzer(files)
        self.assertIn("metrics-key-undeclared", rules_of(findings))

    def test_stale_declared_key(self):
        files = baseline()
        files["src/common/metric_names.hpp"] = METRIC_HEADER.replace(
            'inline constexpr const char *kUptime = "uptime_s";',
            'inline constexpr const char *kUptime = "uptime_s";\n'
            'inline constexpr const char *kGhost = "ghost_key";',
        )
        findings, _ = run_analyzer(files)
        self.assertIn("metrics-key-stale", rules_of(findings))

    def test_orphan_key_nothing_consumes(self):
        files = baseline()
        files["tests/test_wire.cpp"] = TEST_CPP.replace(
            'static const char *key = "uptime_s";\n', ""
        )
        findings, _ = run_analyzer(files)
        self.assertIn("metrics-key-orphan", rules_of(findings))

    def test_kind_array_reference_credits_members(self):
        files = baseline()
        files["tests/test_wire.cpp"] = TEST_CPP.replace(
            'static const char *key = "uptime_s";',
            "static const char *const *keys = metric_names::kAlwaysKeys;",
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("metrics-key-orphan", rules_of(findings))

    def test_nested_and_spliced_trees_resolve(self):
        files = baseline()
        files["src/common/metrics.cpp"] = (
            "namespace mse {\n"
            "JsonValue\n"
            "ServiceMetrics::toJson() const\n"
            "{\n"
            "    JsonValue j = JsonValue::object();\n"
            '    JsonValue &q = j["queue"];\n'
            '    q["depth"] = 1;\n'
            "    return j;\n"
            "}\n"
            "} // namespace mse\n"
        )
        files["src/service/service.cpp"] = (
            '#include "common/metric_names.hpp"\n'
            "namespace mse {\n"
            "JsonValue\n"
            "MseService::statsJson() const\n"
            "{\n"
            "    JsonValue j = metrics_.toJson();\n"
            '    j["uptime_s"] = 1.0;\n'
            "    return j;\n"
            "}\n"
            "} // namespace mse\n"
        )
        files["src/common/metric_names.hpp"] = METRIC_HEADER.replace(
            'inline constexpr const char *kUptime = "uptime_s";',
            'inline constexpr const char *kUptime = "uptime_s";\n'
            'inline constexpr const char *kQDepth = "queue.depth";',
        )
        files["tests/test_wire.cpp"] = TEST_CPP + (
            'static const char *qd = "depth";\n'
        )
        findings, analyzer = run_analyzer(files)
        emitted = analyzer.registries["metrics_keys"]["emitted"]
        self.assertIn("queue.depth", emitted)
        self.assertNotIn("metrics-key-stale", rules_of(findings))


class LockRulesTest(unittest.TestCase):
    def test_unannotated_member_mutex(self):
        files = baseline()
        files["src/service/state.hpp"] = (
            "#pragma once\n"
            "namespace mse {\n"
            "class State\n"
            "{\n"
            "    Mutex mu_;\n"
            "    int x = 0;\n"
            "};\n"
            "} // namespace mse\n"
        )
        findings, _ = run_analyzer(files)
        self.assertIn("mutex-unannotated", rules_of(findings))

    def test_annotated_member_mutex_is_clean(self):
        files = baseline()
        files["src/service/state.hpp"] = (
            "#pragma once\n"
            "namespace mse {\n"
            "class State\n"
            "{\n"
            "    Mutex mu_;\n"
            "    int x GUARDED_BY(mu_) = 0;\n"
            "};\n"
            "} // namespace mse\n"
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("mutex-unannotated", rules_of(findings))

    def test_lock_order_cycle_detected(self):
        files = baseline()
        files["src/service/order.cpp"] = (
            "namespace mse {\n"
            "void\n"
            "lockAB()\n"
            "{\n"
            "    MutexLock la(g_a);\n"
            "    MutexLock lb(g_b);\n"
            "}\n"
            "void\n"
            "lockBA()\n"
            "{\n"
            "    MutexLock lb(g_b);\n"
            "    MutexLock la(g_a);\n"
            "}\n"
            "} // namespace mse\n"
        )
        findings, _ = run_analyzer(files)
        self.assertIn("lock-order-cycle", rules_of(findings))

    def test_consistent_order_is_acyclic(self):
        files = baseline()
        files["src/service/order.cpp"] = (
            "namespace mse {\n"
            "void\n"
            "lockAB()\n"
            "{\n"
            "    MutexLock la(g_a);\n"
            "    MutexLock lb(g_b);\n"
            "}\n"
            "void\n"
            "alsoAB()\n"
            "{\n"
            "    MutexLock la(g_a);\n"
            "    MutexLock lb(g_b);\n"
            "}\n"
            "} // namespace mse\n"
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("lock-order-cycle", rules_of(findings))


class IncludeRulesTest(unittest.TestCase):
    def test_layering_violation(self):
        files = baseline()
        files["src/common/util.cpp"] = (
            '#include "service/error_codes.hpp"\n'
        )
        findings, _ = run_analyzer(files)
        self.assertIn("layering", rules_of(findings))

    def test_include_cycle(self):
        files = baseline()
        files["src/service/a.hpp"] = '#include "service/b.hpp"\n'
        files["src/service/b.hpp"] = '#include "service/a.hpp"\n'
        findings, _ = run_analyzer(files)
        self.assertIn("include-cycle", rules_of(findings))


class SuppressionTest(unittest.TestCase):
    def test_header_allow_comment_suppresses_untested(self):
        files = baseline()
        files["tests/test_wire.cpp"] = TEST_CPP.replace(
            'static const char *b = "queue_full";\n', ""
        )
        files["src/service/error_codes.hpp"] = ERROR_HEADER.replace(
            'inline constexpr const char *kQueueFull = "queue_full";',
            "// mse-lint: allow(wire-code-untested) fixture\n"
            'inline constexpr const char *kQueueFull = "queue_full";',
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("wire-code-untested", rules_of(findings))

    def test_markdown_allow_comment_suppresses_unknown(self):
        files = baseline()
        files["DESIGN.md"] += (
            "<!-- mse-lint: allow(wire-code-unknown) fixture -->\n"
            "| `ghost_code` | never declared | no |\n"
        )
        findings, _ = run_analyzer(files)
        self.assertNotIn("wire-code-unknown", rules_of(findings))


class LexerEdgeCasesTest(unittest.TestCase):
    def lex(self, text: str) -> source.CppSource:
        return source.lex("src/service/x.cpp", text)

    def test_comments_do_not_reach_registries(self):
        src = self.lex(
            '// faultCheck("store.zap")\n'
            '/* also "store.zap" here */\n'
            "int x = 0;\n"
        )
        self.assertEqual(src.string_values(), [])
        self.assertNotIn("faultCheck", "\n".join(src.code_lines))

    def test_if0_blocks_are_dead(self):
        src = self.lex(
            "#if 0\n"
            'const char *dead = "store.zap";\n'
            "#else\n"
            'const char *live = "bad_json";\n'
            "#endif\n"
        )
        self.assertEqual(src.string_values(), ["bad_json"])

    def test_nested_if0(self):
        src = self.lex(
            "#if 0\n"
            "#ifdef FOO\n"
            'const char *a = "x1";\n'
            "#endif\n"
            'const char *b = "x2";\n'
            "#endif\n"
            'const char *c = "x3";\n'
        )
        self.assertEqual(src.string_values(), ["x3"])

    def test_raw_strings(self):
        src = self.lex('const char *r = R"(store.zap:every:1)";\n')
        self.assertEqual(src.string_values(), ["store.zap:every:1"])

    def test_raw_string_with_delimiter(self):
        src = self.lex('const char *r = R"ab(x")y")ab";\n')
        self.assertEqual(src.string_values(), ['x")y"'])

    def test_adjacent_literal_concatenation(self):
        src = self.lex('const char *s = "store." "zap";\n')
        self.assertEqual(src.string_values(), ["store.zap"])

    def test_digit_separators_are_not_char_literals(self):
        src = self.lex("int n = 1'000'000;\nconst char *s = \"after\";\n")
        self.assertEqual(src.string_values(), ["after"])

    def test_escaped_quotes(self):
        src = self.lex('const char *s = "say \\"hi\\"";\n')
        self.assertEqual(src.string_values(), ['say \\"hi\\"'])

    def test_char_literals_do_not_open_strings(self):
        src = self.lex(
            "char c = '\"';\nconst char *s = \"real\";\n"
        )
        self.assertEqual(src.string_values(), ["real"])


class RegistryHelpersTest(unittest.TestCase):
    def test_parse_constant_arrays(self):
        src = source.lex("h.hpp", METRIC_HEADER)
        arrays = regs.parse_constant_arrays(src)
        self.assertEqual(arrays, {"kAlwaysKeys": ["kUptime"]})

    def test_site_tokens_no_prefix_collision(self):
        toks = regs.site_tokens("net.accept.poll:every:2:EINTR")
        self.assertIn("net.accept.poll", toks)
        self.assertNotIn("net.accept", toks)


class OutputTest(unittest.TestCase):
    def test_github_format(self):
        files = baseline()
        files["DESIGN.md"] += "| `ghost_code` | never declared | no |\n"
        findings, _ = run_analyzer(files)
        unknown = [f for f in findings if f.rule == "wire-code-unknown"]
        self.assertTrue(unknown)
        line = unknown[0].format("github")
        self.assertTrue(line.startswith("::error file=DESIGN.md,line="))
        self.assertIn("title=mse-lint wire-code-unknown::", line)

    def test_dump_registries_json(self):
        with tempfile.TemporaryDirectory() as root:
            for rel, text in baseline().items():
                full = os.path.join(root, rel)
                os.makedirs(os.path.dirname(full), exist_ok=True)
                with open(full, "w", encoding="utf-8") as f:
                    f.write(text)
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                rc = mse_analyze.main(
                    ["--root", root, "--dump-registries", "json"]
                )
            self.assertEqual(rc, 0)
            dump = json.loads(buf.getvalue())
            self.assertIn("wire_error_codes", dump)
            self.assertIn("fault_sites", dump)
            self.assertIn("metrics_keys", dump)
            self.assertIn("locks", dump)
            self.assertIn("include_graph", dump)
            self.assertEqual(
                dump["wire_error_codes"]["retryable"], ["queue_full"]
            )

    def test_exit_status_propagates_findings(self):
        with tempfile.TemporaryDirectory() as root:
            files = baseline()
            files["DESIGN.md"] += "| `ghost_code` | boo | no |\n"
            for rel, text in files.items():
                full = os.path.join(root, rel)
                os.makedirs(os.path.dirname(full), exist_ok=True)
                with open(full, "w", encoding="utf-8") as f:
                    f.write(text)
            out, err = io.StringIO(), io.StringIO()
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(err):
                rc = mse_analyze.main(["--root", root])
            self.assertEqual(rc, 1)
            self.assertIn("wire-code-unknown", out.getvalue())


if __name__ == "__main__":
    unittest.main()

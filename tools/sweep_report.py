#!/usr/bin/env python3
"""Summarize a BENCH_model_sweep.json produced by bench_model_sweep.

Usage:
    ./build/bench/bench_model_sweep
    python3 tools/sweep_report.py BENCH_model_sweep.json

Prints, per (model, arch) sweep: the dedup savings (unique search jobs
vs. total layers and the cost-model samples that saved), the warm/cold
split of the unique jobs, the eval-cache hit rate, and the warm-start
sample speedup against the cold-start reference run. Exits non-zero if
any sweep was non-deterministic across thread counts — the same check
the bench itself enforces, usable on an archived JSON.

Stdlib only; no third-party dependencies.
"""
import json
import sys


def pct(num, den):
    return 100.0 * num / den if den else 0.0


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    print(f"model sweep report ({sys.argv[1]})")
    print(f"  detected cores: {doc.get('detected_cores', '?')}, "
          f"samples/layer: {doc.get('samples_per_layer', '?')}, "
          f"seed: {doc.get('seed', '?')}")

    header = (f"{'model':<12} {'arch':<8} {'layers':>6} {'jobs':>5} "
              f"{'dedup':>6} {'samples saved':>14} {'cache hit':>9} "
              f"{'warm speedup':>12} {'determ.':>8}")
    print()
    print(header)
    print("-" * len(header))

    ok = True
    for s in doc.get("sweeps", []):
        saved = s["samples_without_dedup"] - s["samples_spent"]
        cache_total = s["eval_cache_hits"] + s["eval_cache_misses"]
        wvc = s.get("warm_vs_cold", {})
        det = s.get("deterministic_threads_1_vs_4", False)
        ok = ok and det
        print(f"{s['model']:<12} {s['arch']:<8} {s['total_layers']:>6} "
              f"{s['unique_jobs']:>5} {s['dedup_hits']:>6} "
              f"{saved:>7} ({pct(saved, s['samples_without_dedup']):.0f}%) "
              f"{pct(s['eval_cache_hits'], cache_total):>8.1f}% "
              f"{wvc.get('sample_speedup', 1.0):>11.2f}x "
              f"{'yes' if det else 'NO':>8}")

    print()
    for s in doc.get("sweeps", []):
        wvc = s.get("warm_vs_cold", {})
        if not wvc.get("jobs_compared"):
            continue
        print(f"  {s['model']}/{s['arch']}: "
              f"{wvc['reached_cold_quality']}/{wvc['jobs_compared']} "
              f"warm jobs reached the cold run's incumbent EDP "
              f"(mean {wvc['mean_samples_warm_to_cold_edp']:.0f} vs "
              f"{wvc['mean_samples_cold_to_incumbent']:.0f} samples)")

    if not ok:
        sys.exit("ERROR: at least one sweep was not deterministic "
                 "across MSE_THREADS=1 and 4")


if __name__ == "__main__":
    main()

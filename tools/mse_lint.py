#!/usr/bin/env python3
"""mse-lint: repo-specific static analysis for the MSE codebase.

Enforces invariants the compiler cannot see — mostly determinism and
concurrency discipline that the "bit-identical results at any
MSE_THREADS" guarantee rests on:

  json-emit      JSON may only be produced through src/common/json
                 (JsonValue::dump / writeJsonFile). Hand-formatted JSON
                 string literals elsewhere drift from the escaping and
                 ordering rules the store and the wire protocol rely on.
  nondet-seed    std::random_device / rand() / srand() are banned
                 everywhere in src/: all randomness must flow through
                 the deterministic, explicitly seeded mse::Rng.
  wallclock-seed Wall-clock reads (now(), time()) must not feed RNG
                 seeds in deterministic engine paths. Clock reads for
                 budgets/latency are fine; a seed derived from one is
                 not reproducible.
  unordered-iter Iterating an unordered_map/unordered_set is
                 order-unspecified; feeding that order into output,
                 hashes, or tie-broken reductions is a determinism bug.
                 Sites that are genuinely order-independent carry an
                 allow comment saying why.
  lock-across-parallelfor
                 Holding a lock across ThreadPool::parallelFor or
                 evaluateBatch serializes the batch at best and
                 deadlocks at worst (workers may need the same lock).
  raw-mutex      src/ must use the annotated mse::Mutex / MutexLock /
                 MutexUniqueLock wrappers (common/thread_annotations.hpp)
                 so every lock participates in Clang Thread Safety
                 Analysis; bare std::mutex & friends are invisible to it.
  raw-syscall    src/service/ and src/cluster/ must do file and socket
                 I/O through the sys_io seam (common/sys_io.hpp): the
                 wrappers own the EINTR/short-write discipline and are
                 the only place deterministic fault injection
                 (MSE_FAULTS) can intercept. A raw
                 write()/fsync()/rename()/recv() here is I/O the chaos
                 harness cannot test. Covers the epoll family too
                 (epoll_create1/ctl/wait): the event loop's readiness
                 waits must stay injectable.
  store-construct
                 Only src/service/ and src/cluster/ may construct a
                 MappingStore (tests excepted). Anywhere else, a
                 private store instance bypasses the service's
                 single-writer discipline and its cluster hooks — a
                 best written that way is never replicated
                 (on_improved fires only inside MseService), so
                 replication must go through the service/agent. The
                 static codec helpers (MappingStore::decodeEntry /
                 keyOf / ...) stay legal everywhere: reading a store
                 file is fine, owning one is not.

Escape hatch: a finding on line N is suppressed by an allow comment on
that line (or the line above):   // mse-lint: allow(<rule>) <reason>

Usage:
  tools/mse_lint.py [--format {text,github}] [paths...]

Paths default to src/ tools/ bench/ (tests/ is exempt: test fixtures
legitimately contain literal JSON, raw mutexes, and hostile snippets).
Exits 1 if any finding survives suppression, 0 otherwise.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

# Shared with tools/mse_analyze.py so suppression syntax, finding
# formats, and file collection cannot drift between the two tools.
from analysis.report import ALLOW_RE, Finding, allowed_rules  # noqa: E402
from analysis.source import CPP_EXTS, collect_files, norm  # noqa: E402

RULES = (
    "json-emit",
    "nondet-seed",
    "wallclock-seed",
    "unordered-iter",
    "lock-across-parallelfor",
    "raw-mutex",
    "raw-syscall",
    "store-construct",
)

# A string literal containing the opening of a JSON object/field, e.g.
# "{\"type\":..." — the signature of hand-rolled JSON emission.
JSON_LITERAL_RE = re.compile(r'"[^"\n]*\{\\"')

NONDET_RE = re.compile(r"std::random_device|random_device\s*\(|[^\w.:]s?rand\s*\(")

CLOCK_RE = re.compile(r"::now\s*\(|[^\w.:]time\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
SEEDISH_RE = re.compile(r"[Ss]eed|\bRng\s*(?:\w+\s*)?[({]")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*\*?(\w+)\s*\)")

LOCK_DECL_RE = re.compile(
    r"\b(?:std::lock_guard|std::unique_lock|std::scoped_lock|"
    r"MutexLock|MutexUniqueLock)\b[^;]*\("
)
PARALLEL_CALL_RE = re.compile(r"\b(?:parallelFor|evaluateBatch)\s*\(")

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock)\b"
)

# A call to a POSIX/stdio I/O primitive that has a sys_io wrapper. The
# lookbehind rejects member calls (.read, ->read), qualified names
# (LineReader::readLine), and suffix matches (sysRead); `::open(` still
# matches because the lookbehind lands before the `::`. Socket setup
# calls (socket/bind/listen/connect/setsockopt/...) are deliberately
# not listed: they run once at startup, not on fault-relevant paths.
RAW_SYSCALL_RE = re.compile(
    r"(?<![\w.>])(?:::)?"
    r"(open|openat|creat|read|pread|readv|write|pwrite|writev|"
    r"fsync|fdatasync|rename|renameat|unlink|unlinkat|remove|"
    r"poll|ppoll|select|accept|accept4|send|sendto|sendmsg|"
    r"epoll_create|epoll_create1|epoll_ctl|epoll_wait|epoll_pwait|"
    r"recv|recvfrom|recvmsg|close|"
    r"fopen|fclose|fread|fwrite|fflush|fgets|fputs|fprintf)"
    r"\s*\("
)

# Constructing a MappingStore: a named instance, heap allocation, or
# smart-pointer factory. Static member calls (MappingStore::keyOf) and
# references/pointers to the service-owned store do not match.
STORE_CONSTRUCT_RE = re.compile(
    r"\bMappingStore\s+\w+\s*[({;=]|"
    r"\bnew\s+MappingStore\b|"
    r"make_(?:unique|shared)\s*<\s*MappingStore\b"
)


def strip_comments_and_strings(line: str) -> str:
    """Code content of a line for structural rules (keeps length rough)."""
    line = re.sub(r'"(?:\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(?:\\.|[^'\\])*'", "''", line)
    return re.sub(r"//.*", "", line)


def in_dir(path: str, prefix: str) -> bool:
    """Prefix match (unlike analysis.source.in_dir's component match):
    lint scopes are path prefixes like "src/service/" or even file
    stems like "src/common/json"."""
    return norm(path).startswith(prefix) or ("/" + prefix) in norm(path)


class FileLinter:
    def __init__(self, path: str, text: str,
                 extra_unordered: set[str] | None = None):
        self.path = path
        self.lines = text.splitlines()
        self.code = [strip_comments_and_strings(l) for l in self.lines]
        self.extra_unordered = extra_unordered or set()
        self.findings: list[Finding] = []

    def report(self, idx: int, rule: str, message: str) -> None:
        if rule in allowed_rules(self.lines, idx):
            return
        self.findings.append(Finding(self.path, idx + 1, rule, message))

    # -- json-emit ----------------------------------------------------
    def check_json_emit(self) -> None:
        if in_dir(self.path, "src/common/json"):
            return
        for i, line in enumerate(self.lines):
            if JSON_LITERAL_RE.search(line):
                self.report(
                    i, "json-emit",
                    "hand-formatted JSON literal; build it with "
                    "JsonValue (src/common/json) instead",
                )

    # -- nondet-seed --------------------------------------------------
    def check_nondet_seed(self) -> None:
        if not in_dir(self.path, "src/"):
            return
        for i, code in enumerate(self.code):
            if NONDET_RE.search(code):
                self.report(
                    i, "nondet-seed",
                    "nondeterministic randomness source; use the "
                    "explicitly seeded mse::Rng",
                )

    # -- wallclock-seed -----------------------------------------------
    def check_wallclock_seed(self) -> None:
        if not in_dir(self.path, "src/"):
            return
        for i, code in enumerate(self.code):
            if CLOCK_RE.search(code) and SEEDISH_RE.search(code):
                self.report(
                    i, "wallclock-seed",
                    "wall-clock value appears to feed an RNG seed; "
                    "derive seeds from stable signatures",
                )

    # -- unordered-iter -----------------------------------------------
    def check_unordered_iter(self) -> None:
        unordered: set[str] = set(self.extra_unordered)
        for code in self.code:
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered.add(m.group(1))
        if not unordered:
            return
        for i, code in enumerate(self.code):
            m = RANGE_FOR_RE.search(code)
            if m and m.group(1) in unordered:
                self.report(
                    i, "unordered-iter",
                    f"iteration over unordered container "
                    f"'{m.group(1)}' is order-unspecified; sort first "
                    f"or justify with an allow comment",
                )

    # -- lock-across-parallelfor --------------------------------------
    def check_lock_across_parallelfor(self) -> None:
        # Character-exact scope tracking: a scoped lock declared at
        # brace depth d is live until depth drops below d; reaching a
        # parallelFor/evaluateBatch call while any lock is live is a
        # finding.
        depth = 0
        live: list[tuple[int, int]] = []  # (decl depth, decl line)
        for i, code in enumerate(self.code):
            events = [(m.start(), "lock")
                      for m in LOCK_DECL_RE.finditer(code)]
            events += [(m.start(), "par")
                       for m in PARALLEL_CALL_RE.finditer(code)]
            events.sort()
            ei = 0
            for pos in range(len(code) + 1):
                while ei < len(events) and events[ei][0] == pos:
                    if events[ei][1] == "lock":
                        live.append((depth, i))
                    elif live:
                        self.report(
                            i, "lock-across-parallelfor",
                            f"parallelFor/evaluateBatch reached while "
                            f"the lock declared on line "
                            f"{live[-1][1] + 1} is held; workers "
                            f"contending for it serialize or deadlock "
                            f"the batch",
                        )
                    ei += 1
                if pos < len(code):
                    c = code[pos]
                    if c == "{":
                        depth += 1
                    elif c == "}":
                        depth -= 1
                        live = [x for x in live if x[0] <= depth]

    # -- raw-mutex ----------------------------------------------------
    def check_raw_mutex(self) -> None:
        if not in_dir(self.path, "src/"):
            return
        if in_dir(self.path, "src/common/thread_annotations"):
            return
        for i, code in enumerate(self.code):
            m = RAW_MUTEX_RE.search(code)
            if m:
                self.report(
                    i, "raw-mutex",
                    f"'{m.group(0)}' bypasses Clang Thread Safety "
                    f"Analysis; use mse::Mutex / MutexLock / "
                    f"MutexUniqueLock (common/thread_annotations.hpp)",
                )

    # -- raw-syscall ---------------------------------------------------
    def check_raw_syscall(self) -> None:
        if not (in_dir(self.path, "src/service/") or
                in_dir(self.path, "src/cluster/")):
            return
        for i, code in enumerate(self.code):
            m = RAW_SYSCALL_RE.search(code)
            if m:
                self.report(
                    i, "raw-syscall",
                    f"raw '{m.group(1)}()' bypasses the sys_io seam "
                    f"(common/sys_io.hpp): no EINTR/short-write "
                    f"handling, invisible to MSE_FAULTS fault "
                    f"injection",
                )

    # -- store-construct -----------------------------------------------
    def check_store_construct(self) -> None:
        if (in_dir(self.path, "src/service/") or
                in_dir(self.path, "src/cluster/") or
                in_dir(self.path, "tests/")):
            return
        for i, code in enumerate(self.code):
            if STORE_CONSTRUCT_RE.search(code):
                self.report(
                    i, "store-construct",
                    "constructing a MappingStore outside src/service/"
                    "|src/cluster/ bypasses the service's cluster "
                    "hooks — a best recorded here is never "
                    "replicated; go through MseService (static codec "
                    "helpers like MappingStore::decodeEntry are fine)",
                )

    def run(self) -> list[Finding]:
        self.check_json_emit()
        self.check_nondet_seed()
        self.check_wallclock_seed()
        self.check_unordered_iter()
        self.check_lock_across_parallelfor()
        self.check_raw_mutex()
        self.check_raw_syscall()
        self.check_store_construct()
        return self.findings


def header_unordered_members(path: str) -> set[str]:
    """Unordered-container member names declared in a .cpp's header, so
    iteration in the .cpp over a header-declared member is caught."""
    stem, ext = os.path.splitext(path)
    if ext not in {".cpp", ".cc", ".cxx"}:
        return set()
    out: set[str] = set()
    for hdr_ext in (".hpp", ".hh", ".h"):
        hdr = stem + hdr_ext
        if os.path.isfile(hdr):
            with open(hdr, "r", encoding="utf-8",
                      errors="replace") as f:
                for line in f:
                    for m in UNORDERED_DECL_RE.finditer(
                            strip_comments_and_strings(line)):
                        out.add(m.group(1))
    return out


def lint_file(path: str, text: str | None = None) -> list[Finding]:
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    return FileLinter(norm(path), text,
                      header_unordered_members(path)).run()


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src tools bench)")
    ap.add_argument("--format", choices=("text", "github"), default="text",
                    help="finding output format")
    args = ap.parse_args(argv)

    roots = args.paths or ["src", "tools", "bench"]
    files = collect_files(roots)
    if not files:
        print("mse-lint: no C++ files found under", " ".join(roots),
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))

    for f in findings:
        print(f.format(args.format))
    summary = (f"mse-lint: {len(findings)} finding(s) in "
               f"{len(files)} file(s)")
    print(summary if args.format == "text" else f"::notice::{summary}",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

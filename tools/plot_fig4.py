#!/usr/bin/env python3
"""Render the Fig. 4 map-space visualization from the bench CSVs.

Usage:
    MSE_BENCH_OUTDIR=out ./build/bench/bench_fig4_mapspace_visualization
    python3 tools/plot_fig4.py out fig4.png

Produces a 2x2 panel: the PCA-projected landscape colored by log10(EDP),
plus the points each mapper actually sampled — the reproduction of the
paper's Fig. 4(a)/(b).
"""
import csv
import sys


def load(path):
    xs, ys, cs = [], [], []
    with open(path) as f:
        for row in csv.DictReader(f):
            xs.append(float(row["pc1"]))
            ys.append(float(row["pc2"]))
            cs.append(float(row["log10_edp"]))
    return xs, ys, cs


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    outdir, target = sys.argv[1], sys.argv[2]

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    panels = [
        ("landscape", "map space (random sample)"),
        ("random-pruned", "Random-Pruned samples"),
        ("gamma", "Gamma samples"),
        ("mind-mappings", "Mind-Mappings samples"),
    ]
    fig, axes = plt.subplots(2, 2, figsize=(11, 9))
    lx, ly, lc = load(f"{outdir}/fig4_landscape.csv")
    vmin, vmax = min(lc), max(lc)
    for ax, (name, title) in zip(axes.flat, panels):
        xs, ys, cs = (lx, ly, lc) if name == "landscape" else load(
            f"{outdir}/fig4_{name}.csv")
        sc = ax.scatter(xs, ys, c=cs, s=4, cmap="RdYlGn_r", vmin=vmin,
                        vmax=vmax, alpha=0.6)
        ax.set_title(title)
        ax.set_xlabel("PC1")
        ax.set_ylabel("PC2")
    fig.colorbar(sc, ax=axes.ravel().tolist(), label="log10(EDP)")
    fig.suptitle("Fig. 4 — how each mapper navigates the map space")
    fig.savefig(target, dpi=150)
    print(f"wrote {target}")


if __name__ == "__main__":
    main()

/**
 * @file
 * mse_serve: the mapping-search daemon.
 *
 * Listens on 127.0.0.1 for line-delimited-JSON requests (see
 * src/service/wire.hpp for the protocol), runs searches on the shared
 * engine stack, and persists best-known mappings to the store file.
 * Prints "LISTENING <port>" on stdout once ready (so scripts can grab
 * an ephemeral port), serves until SIGINT/SIGTERM, then drains and
 * dumps final stats to stderr.
 *
 * Cluster mode (--self + --peers): N daemons share one logical store
 * via consistent-hash sharding. This daemon serves only the keys it
 * owns or replicates (anything else is rejected with a wrong_shard
 * redirect), and ships its local store improvements to each key's
 * ring successors in the background (see src/cluster/). Self-healing
 * rides on top: a health monitor probes every peer, Down peers get
 * hinted handoff instead of live shipping, and an anti-entropy sync
 * round fires at startup (the rejoin pull) and whenever a peer climbs
 * back to Up.
 *
 * Usage:
 *   mse_serve [--port N] [--store FILE] [--samples N]
 *             [--deadline-s S] [--queue N] [--executors N]
 *             [--max-conns N] [--threaded]
 *             [--self HOST:PORT --peers H:P,H:P,... [--replicas R]]
 *             [--probe-interval-ms N] [--down-after N]
 */
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "cluster/health.hpp"
#include "cluster/replication.hpp"
#include "service/server.hpp"

namespace {

// Written by the signal handler, read by the main wait loop.
// `volatile sig_atomic_t` is the only object type the C++ standard
// guarantees a signal handler may write (glibc additionally makes the
// store atomic with respect to the polling read in main()).
volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onSignal(int)
{
    // Async-signal-safety contract: this handler runs at arbitrary
    // points, possibly mid-malloc or mid-printf on the interrupted
    // thread. It must therefore touch nothing but g_stop and call
    // only async-signal-safe functions (_Exit is on that list;
    // printf/fprintf/exit and anything that locks or allocates are
    // not). The graceful drain — server.stop(), stats dump — happens
    // in main(), outside signal context.
    if (g_stop) {
        // Second SIGINT/SIGTERM: the drain is stuck (or the operator
        // is impatient). Hard-exit without running atexit handlers or
        // flushing stdio; 130 = 128 + SIGINT, the conventional
        // killed-by-signal status.
        std::_Exit(130);
    }
    g_stop = 1;
}

void
installSignalHandlers()
{
    // sigaction over std::signal: defined semantics for the handler's
    // disposition after delivery (no SysV reset-to-default race) and
    // explicit SA_RESTART, so the server's blocking accept()/read()
    // calls on other threads are restarted rather than failing with
    // EINTR mid-request.
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--store FILE] [--samples N]\n"
        "          [--deadline-s S] [--queue N] [--fsync]\n"
        "          [--executors N] [--max-conns N] [--threaded]\n"
        "  --port N        listen port on 127.0.0.1 (default: "
        "ephemeral)\n"
        "  --store FILE    mapping-store backing file (default: "
        "in-memory)\n"
        "  --samples N     default per-request sample budget\n"
        "  --deadline-s S  default per-request deadline, seconds\n"
        "  --queue N       request queue capacity\n"
        "  --fsync         fsync every store append (durable vs "
        "machine crash)\n"
        "  --executors N   search worker threads (default: "
        "MSE_EXECUTORS\n"
        "                  env, else hardware concurrency); "
        "per-request\n"
        "                  results are bit-identical at any value\n"
        "  --max-conns N   concurrent connection cap (default: 32)\n"
        "  --threaded      thread-per-connection front end instead "
        "of\n"
        "                  the event loop (reference implementation)\n"
        "cluster mode:\n"
        "  --self H:P      this daemon's advertised address (must "
        "match\n"
        "                  --port; enables sharding + replication)\n"
        "  --peers LIST    comma-separated peer addresses\n"
        "  --replicas R    copies of each key incl. the owner "
        "(default 2)\n"
        "  --probe-interval-ms N  peer health probe period "
        "(default 500)\n"
        "  --down-after N  consecutive failed probes before a peer "
        "is\n"
        "                  marked Down (default 3)\n"
        "env: MSE_FAULTS=\"site:spec,...\" arms deterministic fault\n"
        "injection (see src/common/fault_injection.hpp);\n"
        "MSE_FAULT_PEERS=H:P,... limits cluster.* fault sites to "
        "those\npeers; "
        "MSE_EVENT_BACKEND=poll forces the poll(2) readiness "
        "backend\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    mse::ServiceConfig svc_cfg;
    mse::ServerConfig srv_cfg;
    std::string cluster_self;
    std::string cluster_peers;
    size_t cluster_replicas = 2;
    mse::HealthConfig health_cfg;
    // The daemon (not the library) resolves the executor default, so
    // embedded/test uses of MseService stay single-executor unless
    // they opt in.
    svc_cfg.executors = mse::MseService::defaultExecutors();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--port" && val) {
            srv_cfg.port = static_cast<uint16_t>(std::atoi(val));
            ++i;
        } else if (arg == "--store" && val) {
            svc_cfg.store_path = val;
            ++i;
        } else if (arg == "--samples" && val) {
            svc_cfg.default_samples =
                static_cast<size_t>(std::atoll(val));
            ++i;
        } else if (arg == "--deadline-s" && val) {
            svc_cfg.default_deadline_seconds = std::atof(val);
            ++i;
        } else if (arg == "--queue" && val) {
            svc_cfg.queue_capacity =
                static_cast<size_t>(std::atoll(val));
            ++i;
        } else if (arg == "--fsync") {
            svc_cfg.store_fsync = true;
        } else if (arg == "--executors" && val) {
            svc_cfg.executors = static_cast<size_t>(
                std::max<long long>(1, std::atoll(val)));
            ++i;
        } else if (arg == "--max-conns" && val) {
            srv_cfg.max_connections = static_cast<size_t>(
                std::max<long long>(1, std::atoll(val)));
            ++i;
        } else if (arg == "--threaded") {
            srv_cfg.backend = mse::ServerConfig::Backend::Threaded;
        } else if (arg == "--self" && val) {
            cluster_self = val;
            ++i;
        } else if (arg == "--peers" && val) {
            cluster_peers = val;
            ++i;
        } else if (arg == "--replicas" && val) {
            cluster_replicas = static_cast<size_t>(
                std::max<long long>(1, std::atoll(val)));
            ++i;
        } else if (arg == "--probe-interval-ms" && val) {
            health_cfg.probe_interval_ms =
                std::max(1, std::atoi(val));
            ++i;
        } else if (arg == "--down-after" && val) {
            health_cfg.down_after = std::max(1, std::atoi(val));
            ++i;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    // Cluster topology, validated before anything starts listening.
    mse::ClusterConfig cluster;
    const bool cluster_mode =
        !cluster_self.empty() || !cluster_peers.empty();
    if (cluster_mode) {
        if (cluster_self.empty() || cluster_peers.empty()) {
            std::fprintf(stderr,
                         "mse_serve: cluster mode needs both --self "
                         "and --peers\n");
            return 2;
        }
        std::string self_host;
        uint16_t self_port = 0;
        if (!mse::splitHostPort(cluster_self, &self_host,
                                &self_port)) {
            std::fprintf(stderr,
                         "mse_serve: --self wants HOST:PORT, got "
                         "'%s'\n",
                         cluster_self.c_str());
            return 2;
        }
        if (srv_cfg.port == 0) {
            srv_cfg.port = self_port; // --self implies the listen port
        } else if (srv_cfg.port != self_port) {
            std::fprintf(stderr,
                         "mse_serve: --port %u contradicts --self "
                         "%s (peers would route to the wrong "
                         "place)\n",
                         srv_cfg.port, cluster_self.c_str());
            return 2;
        }
        cluster.self = cluster_self;
        cluster.nodes = mse::splitNodeList(cluster_peers);
        cluster.nodes.push_back(cluster_self);
        cluster.replication = cluster_replicas;
    }

    // Declaration order is the reverse of teardown: the monitor
    // outlives the agent (workers read healthOf), the agent outlives
    // the service (executors call enqueue via on_improved). The
    // cross-calls that point the other way — the monitor's transition
    // callback into the agent, the agent's digest/apply hooks into
    // the service — are quiesced by the explicit stop sequence below
    // (server, monitor, agent) before any of them is destroyed.
    std::unique_ptr<mse::HealthMonitor> monitor;
    std::unique_ptr<mse::ReplicationAgent> agent;
    mse::MseService service(svc_cfg);
    if (cluster_mode) {
        monitor =
            std::make_unique<mse::HealthMonitor>(cluster, health_cfg);
        mse::HealthMonitor *monitor_ptr = monitor.get();

        mse::ReplicationConfig rcfg;
        if (!svc_cfg.store_path.empty())
            rcfg.hint_path_prefix = svc_cfg.store_path + ".";
        mse::ReplicationHooks rhooks;
        rhooks.health_of = [monitor_ptr](const std::string &addr) {
            return monitor_ptr->healthOf(addr);
        };
        mse::MseService *svc_ptr = &service;
        rhooks.local_digest = [svc_ptr]() {
            return svc_ptr->store().bestScores();
        };
        rhooks.apply_entries =
            [svc_ptr](const std::vector<mse::StoreEntry> &entries) {
                return svc_ptr->applyReplication(entries).first;
            };
        agent = std::make_unique<mse::ReplicationAgent>(
            cluster, rcfg, std::move(rhooks));
        mse::ReplicationAgent *agent_ptr = agent.get();

        // A peer that climbed back to Up missed everything shipped
        // while it was gone only if *we* were also down — but the
        // reverse pull is what heals *us* after a partition, so both
        // sides sync on recovery. Cheap when already converged: the
        // digest exchange ships nothing.
        monitor->setOnTransition(
            [agent_ptr](const std::string &addr, mse::PeerHealth,
                        mse::PeerHealth to) {
                if (to == mse::PeerHealth::Up)
                    agent_ptr->requestSync(addr);
            });

        mse::MseService::ClusterHooks hooks;
        hooks.self = cluster_self;
        const mse::ShardRing ring = cluster.ring();
        const size_t reps = cluster.replicationClamped();
        const std::string self = cluster_self;
        hooks.accepts_key = [ring, self,
                             reps](const std::string &key) {
            return ring.isReplica(key, self, reps);
        };
        hooks.owner_of = [ring](const std::string &key) {
            return ring.ownerOf(key);
        };
        hooks.on_improved = [agent_ptr](const mse::StoreEntry &e) {
            agent_ptr->enqueue(e);
        };
        hooks.augment_stats = [agent_ptr,
                               monitor_ptr](mse::JsonValue &j) {
            j["replication"] = agent_ptr->statsJson();
            j["health"] = monitor_ptr->statsJson();
        };
        service.setClusterHooks(std::move(hooks));
    }
    mse::ServiceServer server(service, srv_cfg);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "mse_serve: %s\n", err.c_str());
        // Quiesce the cross-calling threads in order before the
        // destructors run (see the declaration-order comment).
        if (monitor)
            monitor->stop();
        if (agent)
            agent->stop();
        return 1;
    }
    if (cluster_mode) {
        monitor->start();
        // The rejoin pull: ask every peer for records this daemon
        // missed while it was down (a no-op digest exchange when the
        // store is already converged).
        agent->requestSyncAll();
    }

    installSignalHandlers();

    std::printf("LISTENING %u\n", server.port());
    std::fflush(stdout);
    std::fprintf(stderr, "backend: %s, executors: %zu\n",
                 srv_cfg.backend ==
                         mse::ServerConfig::Backend::Threaded
                     ? "threaded"
                     : "event",
                 service.executors());
    if (!service.store().path().empty()) {
        std::fprintf(stderr, "store: %s (%zu entries)\n",
                     service.store().path().c_str(),
                     service.store().size());
    }
    if (cluster_mode) {
        std::fprintf(stderr,
                     "cluster: self=%s nodes=%zu replicas=%zu\n",
                     cluster.self.c_str(), cluster.nodes.size(),
                     cluster.replicationClamped());
    }

    while (!g_stop && !server.stopRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::fprintf(stderr, "shutting down...\n");
    server.stop(); // Joins connections, drains the queue.
    if (monitor)
        monitor->stop(); // No more transition callbacks into the agent.
    if (agent)
        agent->stop(); // After the drain: last improvements ship too.
    std::fprintf(stderr, "%s\n", service.statsJson().dump(2).c_str());
    return 0;
}

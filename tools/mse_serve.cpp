/**
 * @file
 * mse_serve: the mapping-search daemon.
 *
 * Listens on 127.0.0.1 for line-delimited-JSON requests (see
 * src/service/wire.hpp for the protocol), runs searches on the shared
 * engine stack, and persists best-known mappings to the store file.
 * Prints "LISTENING <port>" on stdout once ready (so scripts can grab
 * an ephemeral port), serves until SIGINT/SIGTERM, then drains and
 * dumps final stats to stderr.
 *
 * Usage:
 *   mse_serve [--port N] [--store FILE] [--samples N]
 *             [--deadline-s S] [--queue N] [--executors N]
 *             [--max-conns N] [--threaded]
 */
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/server.hpp"

namespace {

// Written by the signal handler, read by the main wait loop.
// `volatile sig_atomic_t` is the only object type the C++ standard
// guarantees a signal handler may write (glibc additionally makes the
// store atomic with respect to the polling read in main()).
volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onSignal(int)
{
    // Async-signal-safety contract: this handler runs at arbitrary
    // points, possibly mid-malloc or mid-printf on the interrupted
    // thread. It must therefore touch nothing but g_stop and call
    // only async-signal-safe functions (_Exit is on that list;
    // printf/fprintf/exit and anything that locks or allocates are
    // not). The graceful drain — server.stop(), stats dump — happens
    // in main(), outside signal context.
    if (g_stop) {
        // Second SIGINT/SIGTERM: the drain is stuck (or the operator
        // is impatient). Hard-exit without running atexit handlers or
        // flushing stdio; 130 = 128 + SIGINT, the conventional
        // killed-by-signal status.
        std::_Exit(130);
    }
    g_stop = 1;
}

void
installSignalHandlers()
{
    // sigaction over std::signal: defined semantics for the handler's
    // disposition after delivery (no SysV reset-to-default race) and
    // explicit SA_RESTART, so the server's blocking accept()/read()
    // calls on other threads are restarted rather than failing with
    // EINTR mid-request.
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--store FILE] [--samples N]\n"
        "          [--deadline-s S] [--queue N] [--fsync]\n"
        "          [--executors N] [--max-conns N] [--threaded]\n"
        "  --port N        listen port on 127.0.0.1 (default: "
        "ephemeral)\n"
        "  --store FILE    mapping-store backing file (default: "
        "in-memory)\n"
        "  --samples N     default per-request sample budget\n"
        "  --deadline-s S  default per-request deadline, seconds\n"
        "  --queue N       request queue capacity\n"
        "  --fsync         fsync every store append (durable vs "
        "machine crash)\n"
        "  --executors N   search worker threads (default: "
        "MSE_EXECUTORS\n"
        "                  env, else hardware concurrency); "
        "per-request\n"
        "                  results are bit-identical at any value\n"
        "  --max-conns N   concurrent connection cap (default: 32)\n"
        "  --threaded      thread-per-connection front end instead "
        "of\n"
        "                  the event loop (reference implementation)\n"
        "env: MSE_FAULTS=\"site:spec,...\" arms deterministic fault\n"
        "injection (see src/common/fault_injection.hpp);\n"
        "MSE_EVENT_BACKEND=poll forces the poll(2) readiness "
        "backend\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    mse::ServiceConfig svc_cfg;
    mse::ServerConfig srv_cfg;
    // The daemon (not the library) resolves the executor default, so
    // embedded/test uses of MseService stay single-executor unless
    // they opt in.
    svc_cfg.executors = mse::MseService::defaultExecutors();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--port" && val) {
            srv_cfg.port = static_cast<uint16_t>(std::atoi(val));
            ++i;
        } else if (arg == "--store" && val) {
            svc_cfg.store_path = val;
            ++i;
        } else if (arg == "--samples" && val) {
            svc_cfg.default_samples =
                static_cast<size_t>(std::atoll(val));
            ++i;
        } else if (arg == "--deadline-s" && val) {
            svc_cfg.default_deadline_seconds = std::atof(val);
            ++i;
        } else if (arg == "--queue" && val) {
            svc_cfg.queue_capacity =
                static_cast<size_t>(std::atoll(val));
            ++i;
        } else if (arg == "--fsync") {
            svc_cfg.store_fsync = true;
        } else if (arg == "--executors" && val) {
            svc_cfg.executors = static_cast<size_t>(
                std::max<long long>(1, std::atoll(val)));
            ++i;
        } else if (arg == "--max-conns" && val) {
            srv_cfg.max_connections = static_cast<size_t>(
                std::max<long long>(1, std::atoll(val)));
            ++i;
        } else if (arg == "--threaded") {
            srv_cfg.backend = mse::ServerConfig::Backend::Threaded;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    mse::MseService service(svc_cfg);
    mse::ServiceServer server(service, srv_cfg);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "mse_serve: %s\n", err.c_str());
        return 1;
    }

    installSignalHandlers();

    std::printf("LISTENING %u\n", server.port());
    std::fflush(stdout);
    std::fprintf(stderr, "backend: %s, executors: %zu\n",
                 srv_cfg.backend ==
                         mse::ServerConfig::Backend::Threaded
                     ? "threaded"
                     : "event",
                 service.executors());
    if (!service.store().path().empty()) {
        std::fprintf(stderr, "store: %s (%zu entries)\n",
                     service.store().path().c_str(),
                     service.store().size());
    }

    while (!g_stop && !server.stopRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::fprintf(stderr, "shutting down...\n");
    server.stop(); // Joins connections, drains the queue.
    std::fprintf(stderr, "%s\n", service.statsJson().dump(2).c_str());
    return 0;
}

/**
 * @file
 * The wire error-code registry: every stable machine-readable
 * `error.code` the service can put on the wire, as named constants.
 *
 * Codes are a cross-file contract: constructed in `src/service/` and
 * `src/cluster/`, switched on by `mse_client`/`ClusterClient` retry
 * logic, asserted in tests, and documented in DESIGN.md Sec. 9's
 * taxonomy table. The string literals live here and nowhere else —
 * `tools/mse_analyze.py` (rule `dup-literal`) rejects a code literal
 * typed out anywhere else in src/, tools/, or tests/, and its
 * registry rules cross-check this header against the construction
 * sites, the client retry set, the tests, and the DESIGN.md table.
 *
 * Adding a code: define the constant, add it to kAllCodes, construct
 * it somewhere, assert it in a test, and add a DESIGN.md Sec. 9 row —
 * the analyzer fails CI until all five agree.
 */
#pragma once

#include <cstring>

namespace mse {
namespace wire_errors {

// Request-shape rejections (never retryable: the request itself is
// wrong and a resend would fail identically).
inline constexpr const char *kBadJson = "bad_json";
inline constexpr const char *kBadRequest = "bad_request";
inline constexpr const char *kBadWorkload = "bad_workload";
inline constexpr const char *kBadArch = "bad_arch";
inline constexpr const char *kUnknownMapper = "unknown_mapper";
inline constexpr const char *kRequestTooLarge = "request_too_large";

// Search-outcome failures.
inline constexpr const char *kNoValidMapping = "no_valid_mapping";
inline constexpr const char *kDeadlineExceeded = "deadline_exceeded";
inline constexpr const char *kCancelled = "cancelled";

// Connection-lifecycle rejections.
inline constexpr const char *kIdleTimeout = "idle_timeout";

// Load/lifecycle rejections (retryable: the server is healthy, the
// moment was wrong; replies carry error.retry_after_ms).
inline constexpr const char *kQueueFull = "queue_full";
inline constexpr const char *kShuttingDown = "shutting_down";
inline constexpr const char *kTooManyConnections = "too_many_connections";

// Cluster routing: the key belongs to another shard. Not blind-retry
// retryable — the reply names the owner and the routing client
// re-sends there (see ClusterClient).
inline constexpr const char *kWrongShard = "wrong_shard";

// Cluster op refused (inbound fault gate or peer overload): the
// daemon is alive but not accepting this probe/replicate/sync right
// now. Retryable — replication backs off and re-ships, the health
// monitor keeps probing.
inline constexpr const char *kUnavailable = "unavailable";

// Server-side invariant breach (reply future lost). Never expected.
// mse-lint: allow(wire-code-untested) unreachable without breaking an invariant
inline constexpr const char *kInternal = "internal";

/** Every code the service can emit, for schema tests and tooling. */
inline constexpr const char *kAllCodes[] = {
    kBadJson,         kBadRequest,   kBadWorkload,
    kBadArch,         kUnknownMapper, kRequestTooLarge,
    kNoValidMapping,  kDeadlineExceeded, kCancelled,
    kIdleTimeout,     kQueueFull,    kShuttingDown,
    kTooManyConnections, kWrongShard, kUnavailable, kInternal,
};

/**
 * The blind-retry contract both clients implement: resubmitting the
 * identical request later can succeed. Must stay in lockstep with the
 * "Retryable: yes" rows of DESIGN.md Sec. 9 (mse_analyze rule
 * `wire-code-retry-mismatch`).
 */
inline bool
isRetryable(const char *code)
{
    return std::strcmp(code, kQueueFull) == 0 ||
        std::strcmp(code, kShuttingDown) == 0 ||
        std::strcmp(code, kTooManyConnections) == 0 ||
        std::strcmp(code, kUnavailable) == 0;
}

} // namespace wire_errors
} // namespace mse

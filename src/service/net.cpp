#include "service/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/sys_io.hpp"
#include "common/fault_sites.hpp"

namespace mse {

namespace {

void
setError(std::string *err, const char *what)
{
    if (err)
        *err = std::string(what) + ": " + std::strerror(errno);
}

} // namespace

int
listenTcp(uint16_t port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(err, "socket");
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        setError(err, "bind");
        sysClose(fd);
        return -1;
    }
    // Backlog sized for connect storms (the bench opens hundreds of
    // connections at once); the kernel clamps to net.core.somaxconn.
    if (::listen(fd, 1024) != 0) {
        setError(err, "listen");
        sysClose(fd);
        return -1;
    }
    return fd;
}

uint16_t
boundPort(int listen_fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

int
acceptWithTimeout(int listen_fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    // sysPoll retries EINTR against the deadline, so a signal during
    // the wait reads as a (shorter) timeout, never as a dead listener.
    const int rc = sysPoll(&pfd, 1, timeout_ms, fault_sites::kNetAcceptPoll);
    if (rc == 0)
        return -1;
    if (rc < 0)
        return -2;
    const int fd = sysAccept(listen_fd, fault_sites::kNetAccept);
    if (fd < 0)
        return errno == ECONNABORTED ? -1 : -2;
    return fd;
}

int
connectTcp(const std::string &host, uint16_t port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(err, "socket");
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (err)
            *err = "bad address: " + host;
        sysClose(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        // A signal can interrupt a blocking connect; the handshake
        // keeps going in the kernel, so finish it by waiting for
        // writability and reading the final status from SO_ERROR —
        // retrying connect() here would fail with EALREADY/EISCONN.
        if (errno == EINTR) {
            pollfd pfd{};
            pfd.fd = fd;
            pfd.events = POLLOUT;
            int so_err = 0;
            socklen_t len = sizeof(so_err);
            if (sysPoll(&pfd, 1, -1, fault_sites::kNetConnectPoll) > 0 &&
                ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_err,
                             &len) == 0 &&
                so_err == 0)
                return fd;
            errno = so_err != 0 ? so_err : ECONNABORTED;
        }
        setError(err, "connect");
        sysClose(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const void *data, size_t n)
{
    return sysSendAll(fd, data, n, MSG_NOSIGNAL, fault_sites::kNetSend);
}

bool
sendLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    return sendAll(fd, framed.data(), framed.size());
}

bool
setNonBlocking(int fd)
{
    // fcntl is socket setup, not data-path I/O: no fault site, same
    // category as the socket()/setsockopt() calls above.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
closeSocket(int fd)
{
    if (fd >= 0)
        sysClose(fd);
}

bool
peerClosed(int fd)
{
    char c;
    const ssize_t r =
        sysRecv(fd, &c, 1, MSG_PEEK | MSG_DONTWAIT, fault_sites::kNetPeek);
    if (r == 0)
        return true; // Orderly shutdown.
    if (r < 0)
        return errno != EAGAIN && errno != EWOULDBLOCK;
    return false;
}

LineReader::Status
LineReader::readLine(std::string *out, int timeout_ms)
{
    while (true) {
        const size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out->assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return Status::Line;
        }
        if (buf_.size() > max_line_)
            return Status::TooLong;
        if (eof_)
            return buf_.empty() ? Status::Closed : Status::Error;

        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int rc = sysPoll(&pfd, 1, timeout_ms, fault_sites::kNetPoll);
        if (rc == 0)
            return Status::Timeout;
        if (rc < 0)
            return Status::Error;
        char chunk[4096];
        const ssize_t r =
            sysRecv(fd_, chunk, sizeof(chunk), 0, fault_sites::kNetRecv);
        if (r < 0)
            return Status::Error;
        if (r == 0) {
            eof_ = true;
            continue; // Flush any final unterminated partial line.
        }
        buf_.append(chunk, static_cast<size_t>(r));
    }
}

} // namespace mse

#include "service/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mse {

namespace {

void
setError(std::string *err, const char *what)
{
    if (err)
        *err = std::string(what) + ": " + std::strerror(errno);
}

} // namespace

int
listenTcp(uint16_t port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(err, "socket");
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        setError(err, "bind");
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 16) != 0) {
        setError(err, "listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

uint16_t
boundPort(int listen_fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

int
acceptWithTimeout(int listen_fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0)
        return -1;
    if (rc < 0)
        return errno == EINTR ? -1 : -2;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0)
        return errno == EINTR || errno == ECONNABORTED ? -1 : -2;
    return fd;
}

int
connectTcp(const std::string &host, uint16_t port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(err, "socket");
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (err)
            *err = "bad address: " + host;
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(err, "connect");
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
sendLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    return sendAll(fd, framed.data(), framed.size());
}

void
closeSocket(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

bool
peerClosed(int fd)
{
    char c;
    const ssize_t r =
        ::recv(fd, &c, 1, MSG_PEEK | MSG_DONTWAIT);
    if (r == 0)
        return true; // Orderly shutdown.
    if (r < 0)
        return errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR;
    return false;
}

LineReader::Status
LineReader::readLine(std::string *out, int timeout_ms)
{
    while (true) {
        const size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out->assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return Status::Line;
        }
        if (buf_.size() > max_line_)
            return Status::TooLong;
        if (eof_)
            return buf_.empty() ? Status::Closed : Status::Error;

        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc == 0)
            return Status::Timeout;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return Status::Error;
        }
        char chunk[4096];
        const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return Status::Error;
        }
        if (r == 0) {
            eof_ = true;
            continue; // Flush any final unterminated partial line.
        }
        buf_.append(chunk, static_cast<size_t>(r));
    }
}

} // namespace mse

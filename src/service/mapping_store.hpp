/**
 * @file
 * Persistent store of best-known mappings.
 *
 * The paper's warm-start result (Sec. 5.1.3, Figs. 9-11) shows that
 * seeding a search from a previously solved similar workload is the
 * dominant lever for samples-to-quality. The MappingStore turns that
 * from a per-process trick into a cross-run, cross-client capability:
 * a database keyed by (workload signature, arch signature, objective)
 * holding the best mapping ever found for each key, loaded at service
 * startup and written back whenever a search improves on it.
 *
 * On-disk format: append-only line-delimited JSON. One record per line:
 *
 *   {"v":1,"objective":"EDP","arch_sig":"<16-hex fnv1a of
 *    ArchConfig::signature()>","workload":"wl1;...","mapping":"v1;...",
 *    "score":...,"energy_uj":...,"latency_cycles":...,"samples":N}
 *
 * Append-only makes every write crash-safe: a torn final line is
 * dropped at the next load (the valid prefix survives), and a record
 * is only ever superseded by a later, better record for the same key.
 * load() keeps the best record per key; when the file accumulates too
 * many superseded lines, compact() atomically rewrites it (temp file +
 * rename) down to the live set.
 *
 * Thread safety: every public method locks the store mutex, so
 * concurrent request handlers serialize their reads and write-backs.
 *
 * Failure behavior (see DESIGN.md Sec. 9): all disk I/O goes through
 * the sys_io seam, so ENOSPC/EIO (real or injected via MSE_FAULTS)
 * surface here instead of aborting. A failed append flips the store
 * into *degraded* read-only mode: in-memory bests keep updating and
 * lookups keep answering, but the disk is left alone until
 * tryRecover() succeeds. The service surfaces degraded() in stats.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/arch.hpp"
#include "common/json.hpp"
#include "common/thread_annotations.hpp"
#include "core/objective.hpp"
#include "mapping/mapping.hpp"
#include "workload/workload.hpp"

namespace mse {

/** One best-known-mapping record. */
struct StoreEntry
{
    Workload workload;       ///< Source workload (scaleFrom seed).
    std::string arch_sig;    ///< fnv1a64Hex(arch.signature()).
    Objective objective = Objective::Edp;
    Mapping mapping;
    double score = 0.0;      ///< Objective score (lower is better).
    double energy_uj = 0.0;
    double latency_cycles = 0.0;
    uint64_t samples = 0;    ///< Search samples spent finding it.

    /** Scored by the sparse cost model (separate key space: dense and
     *  sparse scores are not comparable). */
    bool sparse = false;
};

/** How a store lookup was satisfied. */
enum class StoreHit
{
    Miss,  ///< Nothing usable: cold-start the search.
    Near,  ///< Similar workload on the same arch: warm via scaleFrom.
    Exact, ///< Same (workload, arch, objective): warm from the record.
};

/** Printable name ("cold" / "near" / "exact"). */
const char *storeHitName(StoreHit h);

/** Signature-keyed persistent map of best-known mappings. */
class MappingStore
{
  public:
    /**
     * Empty path = purely in-memory (tests, benches). fsync_each
     * makes every append durable against machine crash (not just
     * process death) at a large throughput cost.
     */
    explicit MappingStore(std::string path = "",
                          bool fsync_each = false);

    const std::string &path() const { return path_; }

    /**
     * Load (or re-load) the backing file, replacing in-memory contents.
     * Malformed or truncated lines are skipped and counted; for each
     * key the best-scoring record wins. Returns the number of live
     * entries (0 for a missing file — a fresh store).
     */
    size_t load() EXCLUDES(mu_);

    /** Result of a lookup: the entry plus how close it is. */
    struct Lookup
    {
        StoreHit hit = StoreHit::Miss;
        StoreEntry entry;        ///< Valid when hit != Miss.
        double distance = -1.0;  ///< Workload distance (0 for Exact).
    };

    /**
     * Best warm-start source for (wl, arch, objective, model): the
     * exact key if present, else the nearest same-arch same-objective
     * same-model entry with compatible dimensionality within
     * max_distance (BoundRatio units, i.e. total |log2| bound drift).
     */
    Lookup lookup(const Workload &wl, const ArchConfig &arch,
                  Objective objective, bool sparse,
                  double max_distance) const EXCLUDES(mu_);

    /**
     * Record a search outcome if it beats the stored best for its key
     * (or the key is new). Appends one line to the backing file and
     * returns true when the store was updated; a worse-or-equal score
     * is a no-op. Triggers an automatic compact() when superseded
     * lines outnumber max(16, live entries).
     */
    bool recordIfBetter(const Workload &wl, const ArchConfig &arch,
                        Objective objective, bool sparse,
                        const Mapping &mapping, double score,
                        double energy_uj, double latency_cycles,
                        uint64_t samples) EXCLUDES(mu_);

    /**
     * Merge one replicated record: best-score-wins against the local
     * entry for the same key (safe because entries are monotone
     * best-score records — the merge is commutative, associative, and
     * idempotent, so replication order and duplicates cannot corrupt
     * the store). Accepted records are appended to the backing file
     * like local improvements. Returns true when the local store
     * improved; a worse-or-equal score (or invalid entry) is ignored.
     */
    bool mergeEntry(const StoreEntry &e) EXCLUDES(mu_);

    /**
     * Atomically rewrite the backing file down to the live entries
     * (write temp + rename). Returns false on I/O failure (the old
     * file is left untouched).
     */
    bool compact() EXCLUDES(mu_);

    size_t size() const EXCLUDES(mu_);

    /** Malformed lines skipped by the last load(). */
    size_t malformedLines() const EXCLUDES(mu_);

    /** Lines on disk superseded by better records since the last
     *  load/compact. */
    size_t deadLines() const EXCLUDES(mu_);

    /**
     * True when disk I/O has failed (ENOSPC/EIO/unreadable file) and
     * the store is in read-only degraded mode: lookups and in-memory
     * updates continue, appends and auto-compaction stop.
     */
    bool degraded() const EXCLUDES(mu_);

    /** Appends that failed (and were dropped from disk, not memory). */
    size_t appendFailures() const EXCLUDES(mu_);

    /**
     * Attempt to leave degraded mode by atomically rewriting the
     * backing file from the in-memory live set (which is a superset
     * of what disk lost). True = healthy again.
     */
    bool tryRecover() EXCLUDES(mu_);

    /** Stable store key of one (workload, arch, objective, model)
     *  tuple. */
    static std::string keyOf(const Workload &wl, const ArchConfig &arch,
                             Objective objective, bool sparse);

    /** The same key derived from a decoded record (which carries the
     *  arch signature hash, not the full ArchConfig). */
    static std::string keyOfEntry(const StoreEntry &e);

    /** Serialize / parse one record line (exposed for tests). */
    static std::string encodeEntry(const StoreEntry &e);
    static std::optional<StoreEntry> decodeEntry(const std::string &line);

    /** Record as a JSON object (the wire `replicate` payload unit). */
    static JsonValue encodeEntryJson(const StoreEntry &e);
    static std::optional<StoreEntry> decodeEntryJson(const JsonValue &doc);

    /**
     * Records accepted per key (live + superseded) since the last
     * load(): on-disk lines from load, plus every accepted
     * recordIfBetter/mergeEntry since. Sorted by key, so stats output
     * is deterministic.
     */
    std::vector<std::pair<std::string, uint64_t>> keyAppendCounts()
        const EXCLUDES(mu_);

    /**
     * Anti-entropy digest: best score per live store key, sorted by
     * key (deterministic wire payloads). A rejoining daemon sends this
     * to its peers to learn exactly what it missed.
     */
    std::vector<std::pair<std::string, double>> bestScores() const
        EXCLUDES(mu_);

    /**
     * Anti-entropy responder half: the live entries a peer holding
     * `digest` (its bestScores) is missing, or that strictly beat its
     * score for the same key. Sorted by key; capped at max_entries
     * (0 = unlimited). Score ties are NOT shipped — mergeEntry would
     * ignore them, so shipping them only wastes wire bytes.
     */
    std::vector<StoreEntry> entriesBetterThan(
        const std::vector<std::pair<std::string, double>> &digest,
        size_t max_entries) const EXCLUDES(mu_);

  private:
    void ingestLineLocked(const std::string &line) REQUIRES(mu_);
    /** Shared accept path of recordIfBetter/mergeEntry: best-score-
     *  wins upsert + append + auto-compaction. */
    bool upsertLocked(const std::string &key, const StoreEntry &e)
        REQUIRES(mu_);
    bool appendLocked(const StoreEntry &e) REQUIRES(mu_);
    bool compactLocked() REQUIRES(mu_);

    mutable Mutex mu_;
    std::string path_; ///< Immutable after construction (unguarded).
    bool fsync_each_;  ///< Immutable after construction (unguarded).
    std::unordered_map<std::string, StoreEntry> best_ GUARDED_BY(mu_);
    std::unordered_map<std::string, uint64_t> key_appends_
        GUARDED_BY(mu_);
    size_t malformed_ GUARDED_BY(mu_) = 0;
    size_t dead_ GUARDED_BY(mu_) = 0;
    bool degraded_ GUARDED_BY(mu_) = false;
    size_t append_failures_ GUARDED_BY(mu_) = 0;

    /** File ends in a torn (unterminated) line; the next append must
     *  start on a fresh line or it would merge with the torn tail. */
    bool tail_unterminated_ GUARDED_BY(mu_) = false;
};

} // namespace mse

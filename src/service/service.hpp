/**
 * @file
 * MseService: the embeddable mapping-search service.
 *
 * The engine stack (ThreadPool / MseEngine / ModelSweep) was only
 * reachable through one-shot bench binaries; every caller paid
 * cold-start search cost and nothing persisted. MseService wraps that
 * stack in a long-lived request loop:
 *
 *  - a *bounded request queue* feeding one executor thread. Exactly one
 *    search runs at a time — by design: the search itself fans its
 *    batched cost-model queries across ThreadPool::global() (whose
 *    contract allows a single top-level parallelFor caller), so request
 *    concurrency would only displace batch parallelism while breaking
 *    the pool contract. Submitters get a future; a full queue rejects
 *    immediately with a structured `queue_full` error.
 *  - *per-request deadlines*: a request carries an absolute deadline
 *    from the moment it is accepted. Expired while queued -> a
 *    `deadline_exceeded` error without burning any search samples.
 *    Expiring mid-search caps the search's wall-clock budget, so the
 *    reply still carries the best-so-far mapping, flagged `timed_out`.
 *  - *cancellation*: every ticket exposes a CancelToken. A dropped
 *    client cancels its token; the running search observes it at the
 *    next generation boundary and stops burning pool threads.
 *  - *store warm-start*: each search consults the persistent
 *    MappingStore. An exact (workload, arch, objective) hit or a near
 *    same-arch neighbor seeds the search via the replay-buffer /
 *    MapSpace::scaleFrom machinery (Sec. 5.1); improvements are
 *    written back, so the store monotonically accumulates the best
 *    known mapping per key across runs and clients.
 *  - *metrics*: every request updates the shared ServiceMetrics
 *    (queue depth, latency percentiles, store hit split, eval-cache
 *    totals), served by statsJson() and dumped on shutdown.
 *
 * Determinism: a request with an explicit seed produces bit-identical
 * results to a direct MseEngine::optimize run with the same options at
 * any MSE_THREADS — the service adds no randomness and no extra
 * cost-model queries (store seeding rides the standard warm-start
 * path, which only alters the mapper's initial population).
 */
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "common/metrics.hpp"
#include "common/thread_annotations.hpp"
#include "core/mse_engine.hpp"
#include "core/objective.hpp"
#include "service/mapping_store.hpp"

namespace mse {

/** Service-level configuration. */
struct ServiceConfig
{
    /** Backing file of the mapping store; empty = in-memory only. */
    std::string store_path;

    /** Maximum queued (not yet running) requests. */
    size_t queue_capacity = 64;

    /** Deadline for requests that don't set one, seconds. */
    double default_deadline_seconds = 300.0;

    /** Maximum store distance for a near warm-start (BoundRatio
     *  units: total |log2| bound drift across dimensions). */
    double warm_max_distance = 8.0;

    /** Sample budget for requests that don't set one. */
    size_t default_samples = 2000;

    /** Write improved mappings back to the store. */
    bool store_writeback = true;

    /** fsync every store append (durable against machine crash, not
     *  just process death; costs throughput). */
    bool store_fsync = false;

    /**
     * retry_after_ms hint attached to retryable rejections
     * (queue_full, shutting_down): how long a well-behaved client
     * should back off before resubmitting.
     */
    int retry_hint_ms = 1000;
};

/** One mapping-search request. */
struct SearchRequest
{
    Workload workload;
    ArchConfig arch;
    std::string mapper = "gamma";
    Objective objective = Objective::Edp;

    /** 0 = service default budget. */
    size_t max_samples = 0;

    /** Explicit RNG seed; when unset the seed derives from the layer
     *  signature, so identical requests replay identically. */
    uint64_t seed = 0;
    bool seed_set = false;

    /** Consult the mapping store for a warm start. */
    bool warm_start = true;

    /** Warm-seed copies injected into the initial population. */
    size_t warm_seeds = 2;

    /** Use the sparse cost model (densities off the workload). */
    bool sparse = false;

    /** Per-request deadline in seconds; 0 = service default. */
    double deadline_seconds = 0.0;
};

/** Reply to one search request. */
struct SearchReply
{
    bool ok = false;
    std::string error_code;    ///< Set when !ok.
    std::string error_message;

    /** For retryable errors (queue_full, shutting_down): suggested
     *  client backoff before resubmitting; 0 = not retryable. */
    int retry_after_ms = 0;

    std::string mapping;       ///< serializeMapping() of the best.
    double score = 0.0;        ///< Objective score of the best.
    double edp = 0.0;
    double energy_uj = 0.0;
    double latency_cycles = 0.0;
    size_t samples = 0;
    size_t samples_to_converge = 0;

    /** Samples spent reaching incumbent quality: for a store-warmed
     *  search, the first sample whose best-so-far matched the stored
     *  score; cold, same as samples_to_converge. The warm-start win
     *  (paper Sec. 5.1) shows up as this collapsing on warm hits. */
    size_t samples_to_incumbent = 0;
    size_t eval_cache_hits = 0;
    size_t eval_cache_misses = 0;

    StoreHit store_hit = StoreHit::Miss;
    double warm_distance = -1.0;
    bool store_improved = false; ///< This run improved the stored best.

    bool timed_out = false;  ///< Deadline expired mid-search.
    bool cancelled = false;  ///< Token fired mid-search.
    double wall_seconds = 0.0;
};

/** Embeddable mapping-search service. */
class MseService
{
  public:
    explicit MseService(ServiceConfig cfg = {});
    ~MseService();

    MseService(const MseService &) = delete;
    MseService &operator=(const MseService &) = delete;

    /** Handle to an accepted request. */
    struct Ticket
    {
        std::future<SearchReply> reply;
        CancelTokenPtr cancel; ///< Fire to abandon the request.
    };

    /**
     * Enqueue a request. Always returns a ticket; rejected requests
     * (full queue, unknown mapper, malformed workload/arch, stopping
     * service) come back as an already-completed future carrying a
     * structured error reply.
     */
    Ticket submit(SearchRequest req) EXCLUDES(mu_);

    /** Synchronous convenience: submit and wait. */
    SearchReply search(SearchRequest req) EXCLUDES(mu_);

    /**
     * Stop the executor. drain = finish queued requests first; without
     * drain, queued requests fail with `shutting_down` and the running
     * one is cancelled. Idempotent; called by the destructor (drain).
     */
    void stop(bool drain = true) EXCLUDES(mu_);

    /** Stats snapshot: metrics + store + uptime (the `stats` reply). */
    JsonValue statsJson() const;

    MappingStore &store() { return store_; }
    const ServiceConfig &config() const { return cfg_; }
    ServiceMetrics &metrics() { return metrics_; }

  private:
    struct Pending
    {
        SearchRequest req;
        std::promise<SearchReply> promise;
        CancelTokenPtr cancel;
        double deadline_abs = 0.0; ///< steady-clock seconds.
    };

    void executorLoop() EXCLUDES(mu_);
    SearchReply runSearch(const SearchRequest &req,
                          const CancelTokenPtr &cancel,
                          double deadline_abs);

    ServiceConfig cfg_;
    MappingStore store_;   ///< Internally synchronized.
    ServiceMetrics metrics_; ///< Internally synchronized.
    double start_time_ = 0.0; ///< Immutable after construction.

    Mutex mu_;
    std::condition_variable queue_cv_;
    std::deque<std::unique_ptr<Pending>> queue_ GUARDED_BY(mu_);
    bool stopping_ GUARDED_BY(mu_) = false;
    bool drain_on_stop_ GUARDED_BY(mu_) = true;
    /** Token of the in-flight search. */
    CancelTokenPtr running_cancel_ GUARDED_BY(mu_);

    /** Degraded-store transition already counted in metrics. Touched
     *  only by the executor thread (no lock needed). */
    bool store_degraded_noted_ = false;
    std::thread executor_;
};

} // namespace mse

/**
 * @file
 * MseService: the embeddable mapping-search service.
 *
 * The engine stack (ThreadPool / MseEngine / ModelSweep) was only
 * reachable through one-shot bench binaries; every caller paid
 * cold-start search cost and nothing persisted. MseService wraps that
 * stack in a long-lived request loop:
 *
 *  - a *bounded request queue* feeding a pool of N executor workers
 *    (ServiceConfig::executors; MseService::defaultExecutors() resolves
 *    the daemon's MSE_EXECUTORS knob). With one executor the search
 *    fans its batched cost-model queries across ThreadPool::global();
 *    with N > 1 each worker wraps its search in
 *    ThreadPool::ScopedInline so evaluation runs serially on that
 *    worker's lane — N concurrent searches instead of one parallel
 *    one, without breaking the pool's one-top-level-caller contract.
 *    Either way per-request results are bit-identical (the pool-size
 *    determinism contract: inline == pool of 1). Submitters get a
 *    future; a full queue rejects immediately with a structured
 *    `queue_full` error.
 *  - *per-request deadlines*: a request carries an absolute deadline
 *    from the moment it is accepted. Expired while queued -> a
 *    `deadline_exceeded` error without burning any search samples.
 *    Expiring mid-search caps the search's wall-clock budget, so the
 *    reply still carries the best-so-far mapping, flagged `timed_out`.
 *  - *cancellation*: every ticket exposes a CancelToken. A dropped
 *    client cancels its token; the running search observes it at the
 *    next generation boundary and stops burning pool threads.
 *  - *store warm-start*: each search consults the persistent
 *    MappingStore. An exact (workload, arch, objective) hit or a near
 *    same-arch neighbor seeds the search via the replay-buffer /
 *    MapSpace::scaleFrom machinery (Sec. 5.1); improvements are
 *    written back, so the store monotonically accumulates the best
 *    known mapping per key across runs and clients.
 *  - *metrics*: every request updates the shared ServiceMetrics
 *    (queue depth, latency percentiles, store hit split, eval-cache
 *    totals), served by statsJson() and dumped on shutdown.
 *
 * Determinism: a request with an explicit seed produces bit-identical
 * results to a direct MseEngine::optimize run with the same options at
 * any MSE_THREADS — the service adds no randomness and no extra
 * cost-model queries (store seeding rides the standard warm-start
 * path, which only alters the mapper's initial population).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/thread_annotations.hpp"
#include "core/mse_engine.hpp"
#include "core/objective.hpp"
#include "service/mapping_store.hpp"

namespace mse {

/** Service-level configuration. */
struct ServiceConfig
{
    /** Backing file of the mapping store; empty = in-memory only. */
    std::string store_path;

    /** Maximum queued (not yet running) requests. */
    size_t queue_capacity = 64;

    /** Deadline for requests that don't set one, seconds. */
    double default_deadline_seconds = 300.0;

    /** Maximum store distance for a near warm-start (BoundRatio
     *  units: total |log2| bound drift across dimensions). */
    double warm_max_distance = 8.0;

    /** Sample budget for requests that don't set one. */
    size_t default_samples = 2000;

    /** Write improved mappings back to the store. */
    bool store_writeback = true;

    /** fsync every store append (durable against machine crash, not
     *  just process death; costs throughput). */
    bool store_fsync = false;

    /**
     * retry_after_ms hint attached to retryable rejections
     * (queue_full, shutting_down): how long a well-behaved client
     * should back off before resubmitting.
     */
    int retry_hint_ms = 1000;

    /**
     * Executor workers draining the queue (clamped to [1, 64]). The
     * library default stays 1 (single deterministic drain order, the
     * behavior every embedded caller had before); the daemon resolves
     * its default via MseService::defaultExecutors() (MSE_EXECUTORS
     * env, else hardware_concurrency). Per-request *results* are
     * bit-identical at any value; cross-request *interleaving* (store
     * warm-hit timing, queue order) is concurrent at N > 1.
     */
    size_t executors = 1;
};

/** One mapping-search request. */
struct SearchRequest
{
    Workload workload;
    ArchConfig arch;
    std::string mapper = "gamma";
    Objective objective = Objective::Edp;

    /** 0 = service default budget. */
    size_t max_samples = 0;

    /** Explicit RNG seed; when unset the seed derives from the layer
     *  signature, so identical requests replay identically. */
    uint64_t seed = 0;
    bool seed_set = false;

    /** Consult the mapping store for a warm start. */
    bool warm_start = true;

    /** Warm-seed copies injected into the initial population. */
    size_t warm_seeds = 2;

    /** Use the sparse cost model (densities off the workload). */
    bool sparse = false;

    /** Per-request deadline in seconds; 0 = service default. */
    double deadline_seconds = 0.0;
};

/** Reply to one search request. */
struct SearchReply
{
    bool ok = false;
    std::string error_code;    ///< Set when !ok.
    std::string error_message;

    /** For retryable errors (queue_full, shutting_down): suggested
     *  client backoff before resubmitting; 0 = not retryable. */
    int retry_after_ms = 0;

    /** For wrong_shard rejections: the daemon that owns the key, so a
     *  routing client can retry against it in one hop. */
    std::string error_owner;

    std::string mapping;       ///< serializeMapping() of the best.
    double score = 0.0;        ///< Objective score of the best.
    double edp = 0.0;
    double energy_uj = 0.0;
    double latency_cycles = 0.0;
    size_t samples = 0;
    size_t samples_to_converge = 0;

    /** Samples spent reaching incumbent quality: for a store-warmed
     *  search, the first sample whose best-so-far matched the stored
     *  score; cold, same as samples_to_converge. The warm-start win
     *  (paper Sec. 5.1) shows up as this collapsing on warm hits. */
    size_t samples_to_incumbent = 0;
    size_t eval_cache_hits = 0;
    size_t eval_cache_misses = 0;

    StoreHit store_hit = StoreHit::Miss;
    double warm_distance = -1.0;
    bool store_improved = false; ///< This run improved the stored best.

    bool timed_out = false;  ///< Deadline expired mid-search.
    bool cancelled = false;  ///< Token fired mid-search.
    double wall_seconds = 0.0;

    /** Cluster observability (empty outside a cluster): the daemon
     *  that ran the search and the store key the result lives under. */
    std::string served_by;
    std::string store_key;
};

/** Embeddable mapping-search service. */
class MseService
{
  public:
    explicit MseService(ServiceConfig cfg = {});
    ~MseService();

    MseService(const MseService &) = delete;
    MseService &operator=(const MseService &) = delete;

    /** Handle to an accepted request. */
    struct Ticket
    {
        std::future<SearchReply> reply;
        CancelTokenPtr cancel; ///< Fire to abandon the request.
    };

    /**
     * Completion hook for event-driven callers: invoked exactly once
     * per submit, *after* the ticket's future is ready. Fires on an
     * executor thread for queued requests and synchronously inside
     * submit() for immediate rejections, so the caller must tolerate
     * both (the event server just enqueues a wakeup either way). Must
     * not block and must not call back into MseService.
     */
    using CompletionFn = std::function<void()>;

    /**
     * Enqueue a request. Always returns a ticket; rejected requests
     * (full queue, unknown mapper, malformed workload/arch, stopping
     * service) come back as an already-completed future carrying a
     * structured error reply (on_complete still fires, synchronously).
     */
    Ticket submit(SearchRequest req,
                  CompletionFn on_complete = nullptr) EXCLUDES(mu_);

    /** Resolved executor-worker count. */
    size_t executors() const { return n_executors_; }

    /**
     * The daemon-side default executor count: MSE_EXECUTORS env
     * (clamped to [1, 64]), else hardware_concurrency. Library users
     * get ServiceConfig's explicit default (1) unless they opt in.
     */
    static size_t defaultExecutors();

    /** Synchronous convenience: submit and wait. */
    SearchReply search(SearchRequest req) EXCLUDES(mu_);

    /**
     * Stop the executor. drain = finish queued requests first; without
     * drain, queued requests fail with `shutting_down` and the running
     * one is cancelled. Idempotent; called by the destructor (drain).
     */
    void stop(bool drain = true) EXCLUDES(mu_);

    /** Stats snapshot: metrics + store + uptime (the `stats` reply). */
    /** Counters, latency histogram, store/queue state. The `queue`
     *  block (depth, running) is a live snapshot — ops dashboards and
     *  tests can watch executor occupancy without racing it. */
    JsonValue statsJson() const EXCLUDES(mu_);

    /**
     * Seams the cluster layer plugs into. MseService itself knows
     * nothing about rings or peers (src/service must not depend on
     * src/cluster); the daemon wires these from its ClusterConfig.
     * Every hook may be null. Not thread-safe: set before the first
     * submit()/statsJson() and never change afterwards.
     */
    struct ClusterHooks
    {
        /** This daemon's advertised address, stamped into replies. */
        std::string self;

        /** False = this shard neither owns nor replicates the key:
         *  submit() rejects with wrong_shard instead of queueing. */
        std::function<bool(const std::string &key)> accepts_key;

        /** Ring owner of a key (for the wrong_shard error payload). */
        std::function<std::string(const std::string &key)> owner_of;

        /** A local search improved the stored best: hand the record
         *  to the replication agent. Called on an executor thread
         *  after the store write; must not block. */
        std::function<void(const StoreEntry &e)> on_improved;

        /** Extend the statsJson() document (replication lag, peer
         *  queue depths). */
        std::function<void(JsonValue &stats)> augment_stats;
    };

    void setClusterHooks(ClusterHooks hooks) { hooks_ = std::move(hooks); }

    /**
     * Merge records replicated from a peer into the local store
     * (best-score-wins per key; see MappingStore::mergeEntry). Keys
     * outside this shard's replica set are merged too — during a
     * topology change, dropping data is strictly worse than holding a
     * stale copy. Merges never re-trigger on_improved (only local
     * search improvements do), so replication cannot loop.
     * Returns {merged, ignored}.
     */
    std::pair<size_t, size_t>
    applyReplication(const std::vector<StoreEntry> &entries);

    /**
     * Anti-entropy responder: the live records a peer advertising
     * `digest` (its per-key best scores) is missing or losing on,
     * capped at max_entries (0 = unlimited). Pure read — the caller
     * merges our records via its own applyReplication, so a sync
     * round can only flow data one way and cannot loop.
     */
    std::vector<StoreEntry> syncEntries(
        const std::vector<std::pair<std::string, double>> &digest,
        size_t max_entries) const;

    MappingStore &store() { return store_; }
    const ServiceConfig &config() const { return cfg_; }
    ServiceMetrics &metrics() { return metrics_; }

  private:
    struct Pending
    {
        SearchRequest req;
        std::promise<SearchReply> promise;
        CancelTokenPtr cancel;
        CompletionFn on_complete; ///< Fired after the promise is set.
        double deadline_abs = 0.0; ///< steady-clock seconds.
    };

    void executorLoop() EXCLUDES(mu_);
    /** Set the reply, then fire the completion hook. */
    static void finish(Pending &p, SearchReply reply);
    SearchReply runSearch(const SearchRequest &req,
                          const CancelTokenPtr &cancel,
                          double deadline_abs);

    ServiceConfig cfg_;
    MappingStore store_;   ///< Internally synchronized.
    ServiceMetrics metrics_; ///< Internally synchronized.
    double start_time_ = 0.0; ///< Immutable after construction.
    ClusterHooks hooks_;   ///< Immutable after setClusterHooks().

    mutable Mutex mu_; ///< mutable: statsJson() is logically const.
    std::condition_variable queue_cv_;
    std::deque<std::unique_ptr<Pending>> queue_ GUARDED_BY(mu_);
    bool stopping_ GUARDED_BY(mu_) = false;
    bool drain_on_stop_ GUARDED_BY(mu_) = true;
    /** Tokens of the in-flight searches (one slot per busy executor);
     *  a non-drain stop cancels all of them. */
    std::vector<CancelTokenPtr> running_ GUARDED_BY(mu_);

    /** Degraded-store transition already counted in metrics (any
     *  executor can observe the transition first). */
    std::atomic<bool> store_degraded_noted_{false};
    size_t n_executors_ = 1; ///< Immutable after construction.
    std::vector<std::thread> executors_;
};

} // namespace mse

#include "service/wire.hpp"

#include <cmath>

#include "workload/workload_io.hpp"
#include "service/error_codes.hpp"

namespace mse {

namespace {

bool
fail(std::string *code, std::string *msg, const char *c,
     const std::string &m)
{
    if (code)
        *code = c;
    if (msg)
        *msg = m;
    return false;
}

int64_t
requireDim(const JsonValue &o, const char *key, bool *ok)
{
    const JsonValue *v = o.find(key);
    if (!v || !v->isNumber() || v->asDouble() < 1.0 ||
        v->asDouble() != std::floor(v->asDouble())) {
        *ok = false;
        return 0;
    }
    return static_cast<int64_t>(v->asDouble());
}

bool
parseWorkloadField(const JsonValue &v, Workload *out, std::string *code,
                   std::string *msg)
{
    if (v.isString()) {
        const auto wl = parseWorkload(v.asString());
        if (!wl)
            return fail(code, msg, wire_errors::kBadWorkload,
                        "unparseable wl1 workload string");
        *out = *wl;
        return true;
    }
    if (!v.isObject())
        return fail(code, msg, wire_errors::kBadWorkload,
                    "workload must be a wl1 string or an object");
    if (const JsonValue *g = v.find("gemm")) {
        if (!g->isObject())
            return fail(code, msg, wire_errors::kBadWorkload,
                        "gemm spec must be an object");
        bool ok = true;
        const int64_t b = requireDim(*g, "b", &ok);
        const int64_t m = requireDim(*g, "m", &ok);
        const int64_t k = requireDim(*g, "k", &ok);
        const int64_t n = requireDim(*g, "n", &ok);
        if (!ok)
            return fail(code, msg, wire_errors::kBadWorkload,
                        "gemm needs positive integer b, m, k, n");
        *out = makeGemm(g->getString("name", "gemm"), b, m, k, n);
        return true;
    }
    if (const JsonValue *c = v.find("conv2d")) {
        if (!c->isObject())
            return fail(code, msg, wire_errors::kBadWorkload,
                        "conv2d spec must be an object");
        bool ok = true;
        const int64_t b = requireDim(*c, "b", &ok);
        const int64_t k = requireDim(*c, "k", &ok);
        const int64_t ch = requireDim(*c, "c", &ok);
        const int64_t y = requireDim(*c, "y", &ok);
        const int64_t x = requireDim(*c, "x", &ok);
        const int64_t r = requireDim(*c, "r", &ok);
        const int64_t s = requireDim(*c, "s", &ok);
        if (!ok)
            return fail(code, msg, wire_errors::kBadWorkload,
                        "conv2d needs positive integer "
                        "b, k, c, y, x, r, s");
        *out = makeConv2d(c->getString("name", "conv2d"), b, k, ch, y,
                          x, r, s);
        return true;
    }
    return fail(code, msg, wire_errors::kBadWorkload,
                "workload object needs a \"gemm\" or \"conv2d\" spec");
}

bool
parseArchField(const JsonValue &v, ArchConfig *out, std::string *code,
               std::string *msg)
{
    if (v.isString()) {
        const std::string name = v.asString();
        if (name == "accel-A" || name == "accel-a") {
            *out = accelA();
            return true;
        }
        if (name == "accel-B" || name == "accel-b") {
            *out = accelB();
            return true;
        }
        return fail(code, msg, wire_errors::kBadArch,
                    "unknown arch preset '" + name +
                        "' (want accel-A or accel-B)");
    }
    if (!v.isObject())
        return fail(code, msg, wire_errors::kBadArch,
                    "arch must be a preset name or an object");
    const JsonValue *n = v.find("npu");
    if (!n || !n->isObject())
        return fail(code, msg, wire_errors::kBadArch,
                    "arch object needs an \"npu\" spec");
    bool ok = true;
    const int64_t l2 = requireDim(*n, "l2_bytes", &ok);
    const int64_t l1 = requireDim(*n, "l1_bytes", &ok);
    const int64_t pes = requireDim(*n, "num_pes", &ok);
    const int64_t alus = requireDim(*n, "alus_per_pe", &ok);
    if (!ok)
        return fail(code, msg, wire_errors::kBadArch,
                    "npu needs positive integer l2_bytes, l1_bytes, "
                    "num_pes, alus_per_pe");
    *out = makeNpu(n->getString("name", "npu"), l2, l1, pes, alus);
    return true;
}

} // namespace

std::optional<WireRequest>
parseWireRequest(const std::string &line, std::string *error_code,
                 std::string *error_message)
{
    std::string parse_err;
    const auto doc = parseJson(line, &parse_err);
    if (!doc) {
        fail(error_code, error_message, wire_errors::kBadJson, parse_err);
        return std::nullopt;
    }
    if (!doc->isObject()) {
        fail(error_code, error_message, wire_errors::kBadRequest,
             "request must be a JSON object");
        return std::nullopt;
    }
    const std::string type = doc->getString("type", "");
    WireRequest req;
    if (type == "ping") {
        req.kind = WireRequest::Kind::Ping;
        return req;
    }
    if (type == "stats") {
        req.kind = WireRequest::Kind::Stats;
        return req;
    }
    if (type == "replicate") {
        req.kind = WireRequest::Kind::Replicate;
        req.from = doc->getString("from", "");
        const JsonValue *entries = doc->find("entries");
        if (!entries || !entries->isArray()) {
            fail(error_code, error_message, wire_errors::kBadRequest,
                 "replicate request needs an \"entries\" array");
            return std::nullopt;
        }
        for (const JsonValue &item : entries->items()) {
            auto e = MappingStore::decodeEntryJson(item);
            if (e)
                req.replicate_entries.push_back(std::move(*e));
            else
                ++req.replicate_invalid; // Skip, never wedge the peer.
        }
        return req;
    }
    if (type == "probe") {
        req.kind = WireRequest::Kind::Probe;
        req.from = doc->getString("from", "");
        return req;
    }
    if (type == "sync") {
        req.kind = WireRequest::Kind::Sync;
        req.from = doc->getString("from", "");
        const JsonValue *digest = doc->find("digest");
        if (!digest || !digest->isObject()) {
            fail(error_code, error_message, wire_errors::kBadRequest,
                 "sync request needs a \"digest\" object");
            return std::nullopt;
        }
        for (const auto &kv : digest->members()) {
            // Non-numeric digest values are skipped, not fatal: the
            // responder then treats the key as missing and ships the
            // record — extra data merges idempotently.
            if (kv.second.isNumber())
                req.sync_digest.emplace_back(kv.first,
                                             kv.second.asDouble());
        }
        return req;
    }
    if (type != "search") {
        fail(error_code, error_message, wire_errors::kBadRequest,
             "unknown request type '" + type +
                 "' (want ping, stats, search, replicate, probe, or "
                 "sync)");
        return std::nullopt;
    }

    req.kind = WireRequest::Kind::Search;
    SearchRequest &s = req.search;

    const JsonValue *wl = doc->find("workload");
    if (!wl) {
        fail(error_code, error_message, wire_errors::kBadWorkload,
             "search request needs a \"workload\"");
        return std::nullopt;
    }
    if (!parseWorkloadField(*wl, &s.workload, error_code,
                            error_message))
        return std::nullopt;

    const JsonValue *arch = doc->find("arch");
    if (!arch) {
        fail(error_code, error_message, wire_errors::kBadArch,
             "search request needs an \"arch\"");
        return std::nullopt;
    }
    if (!parseArchField(*arch, &s.arch, error_code, error_message))
        return std::nullopt;

    s.mapper = doc->getString("mapper", s.mapper);
    const std::string obj_name = doc->getString("objective", "edp");
    const auto obj = objectiveFromName(obj_name);
    if (!obj) {
        fail(error_code, error_message, wire_errors::kBadRequest,
             "unknown objective '" + obj_name + "'");
        return std::nullopt;
    }
    s.objective = *obj;

    const double samples = doc->getDouble("max_samples", 0.0);
    if (samples < 0.0) {
        fail(error_code, error_message, wire_errors::kBadRequest,
             "max_samples must be >= 0");
        return std::nullopt;
    }
    s.max_samples = static_cast<size_t>(samples);
    if (const JsonValue *seed = doc->find("seed")) {
        if (!seed->isNumber()) {
            fail(error_code, error_message, wire_errors::kBadRequest,
                 "seed must be a number");
            return std::nullopt;
        }
        s.seed = static_cast<uint64_t>(seed->asDouble());
        s.seed_set = true;
    }
    s.warm_start = doc->getBool("warm_start", s.warm_start);
    s.warm_seeds = static_cast<size_t>(
        doc->getDouble("warm_seeds", static_cast<double>(s.warm_seeds)));
    s.sparse = doc->getBool("sparse", s.sparse);
    if (const JsonValue *dens = doc->find("densities")) {
        if (!dens->isObject()) {
            fail(error_code, error_message, wire_errors::kBadRequest,
                 "densities must be an object of tensor -> density");
            return std::nullopt;
        }
        for (const auto &kv : dens->members()) {
            if (!kv.second.isNumber() || kv.second.asDouble() <= 0.0 ||
                kv.second.asDouble() > 1.0) {
                fail(error_code, error_message, wire_errors::kBadRequest,
                     "density of '" + kv.first +
                         "' must be in (0, 1]");
                return std::nullopt;
            }
            s.workload.setDensity(kv.first, kv.second.asDouble());
        }
    }
    const double deadline_ms = doc->getDouble("deadline_ms", 0.0);
    if (deadline_ms < 0.0) {
        fail(error_code, error_message, wire_errors::kBadRequest,
             "deadline_ms must be >= 0");
        return std::nullopt;
    }
    s.deadline_seconds = deadline_ms / 1000.0;
    return req;
}

JsonValue
wireError(const std::string &code, const std::string &message,
          int retry_after_ms)
{
    JsonValue j = JsonValue::object();
    j["ok"] = false;
    JsonValue &e = j["error"];
    e["code"] = code;
    e["message"] = message;
    if (retry_after_ms > 0)
        e["retry_after_ms"] = retry_after_ms;
    return j;
}

JsonValue
searchReplyJson(const SearchReply &r)
{
    if (!r.ok) {
        JsonValue j = wireError(r.error_code, r.error_message,
                                r.retry_after_ms);
        // wrong_shard rejections name the owning daemon so a routing
        // client can fix its ring view and retry in one hop.
        if (!r.error_owner.empty())
            j["error"]["owner"] = r.error_owner;
        return j;
    }
    JsonValue j = JsonValue::object();
    j["ok"] = true;
    j["type"] = "search";
    j["mapping"] = r.mapping;
    j["score"] = r.score;
    j["edp"] = r.edp;
    j["energy_uj"] = r.energy_uj;
    j["latency_cycles"] = r.latency_cycles;
    j["samples"] = static_cast<uint64_t>(r.samples);
    j["samples_to_converge"] =
        static_cast<uint64_t>(r.samples_to_converge);
    j["samples_to_incumbent"] =
        static_cast<uint64_t>(r.samples_to_incumbent);
    j["store"] = storeHitName(r.store_hit);
    j["warm_distance"] = r.warm_distance;
    j["store_improved"] = r.store_improved;
    j["timed_out"] = r.timed_out;
    // mse-lint: allow(dup-literal) reply-schema field, not an error code
    j["cancelled"] = r.cancelled;
    j["wall_ms"] = r.wall_seconds * 1e3;
    // Cluster observability: which daemon answered, and the store key
    // the result lives under (lets harnesses check ring placement and
    // per-key monotonicity without re-deriving signature hashes).
    if (!r.served_by.empty())
        j["served_by"] = r.served_by;
    if (!r.store_key.empty())
        j["store_key"] = r.store_key;
    JsonValue &cache = j["eval_cache"];
    cache["hits"] = static_cast<uint64_t>(r.eval_cache_hits);
    cache["misses"] = static_cast<uint64_t>(r.eval_cache_misses);
    return j;
}

JsonValue
statsReplyJson(const JsonValue &stats)
{
    JsonValue j = JsonValue::object();
    j["ok"] = true;
    j["type"] = "stats";
    j["stats"] = stats;
    return j;
}

JsonValue
replicateReplyJson(size_t merged, size_t ignored)
{
    JsonValue j = JsonValue::object();
    j["ok"] = true;
    j["type"] = "replicate";
    j["merged"] = static_cast<uint64_t>(merged);
    j["ignored"] = static_cast<uint64_t>(ignored);
    return j;
}

JsonValue
pingReplyJson()
{
    JsonValue j = JsonValue::object();
    j["ok"] = true;
    j["type"] = "ping";
    return j;
}

JsonValue
probeReplyJson()
{
    JsonValue j = JsonValue::object();
    j["ok"] = true;
    j["type"] = "probe";
    return j;
}

JsonValue
syncReplyJson(const std::vector<StoreEntry> &entries)
{
    JsonValue j = JsonValue::object();
    j["ok"] = true;
    j["type"] = "sync";
    j["sent"] = static_cast<uint64_t>(entries.size());
    JsonValue &arr = j["entries"];
    arr = JsonValue::array();
    for (const StoreEntry &e : entries)
        arr.push(MappingStore::encodeEntryJson(e));
    return j;
}

} // namespace mse

/**
 * @file
 * Wire protocol of the mapping-search service: one JSON object per
 * line, both directions.
 *
 * Requests:
 *
 *   {"type":"ping"}
 *   {"type":"stats"}
 *   {"type":"search",
 *    "workload": "wl1;..."                       // workload_io string
 *             | {"gemm":   {"b":16,"m":1024,"k":1024,"n":512}}
 *             | {"conv2d": {"b":16,"k":128,"c":128,
 *                           "y":28,"x":28,"r":3,"s":3}},
 *    "arch": "accel-A" | "accel-B"
 *          | {"npu": {"l2_bytes":..., "l1_bytes":...,
 *                     "num_pes":..., "alus_per_pe":...}},
 *    // all optional:
 *    "mapper":"gamma", "objective":"edp", "max_samples":2000,
 *    "seed":123, "warm_start":true, "warm_seeds":2, "sparse":false,
 *    "densities": {"Weights":0.4, "Inputs":0.5}, "deadline_ms":60000}
 *   {"type":"replicate","from":"host:port",
 *    "entries":[{<store record, see mapping_store.hpp>}, ...]}
 *   {"type":"probe","from":"host:port"}           // health-monitor ping
 *   {"type":"sync","from":"host:port",            // anti-entropy pull
 *    "digest":{"<store key>":<best score>, ...}}
 *
 * Unknown top-level fields are ignored on every request type (the
 * tolerant-reader rule, pinned by tests/test_wire.cpp): a newer client
 * adding a field must not break an older daemon, and vice versa.
 *
 * Replies always carry "ok". Success:
 *
 *   {"ok":true,"type":"search","mapping":"v1;...","score":...,
 *    "edp":...,"energy_uj":...,"latency_cycles":...,"samples":N,
 *    "samples_to_converge":N,"store":"cold"|"near"|"exact",
 *    "warm_distance":...,"store_improved":bool,"timed_out":bool,
 *    "cancelled":bool,"wall_ms":...,
 *    "eval_cache":{"hits":N,"misses":N}}
 *
 * Failure (parse errors, rejections, search failures alike):
 *
 *   {"ok":false,"error":{"code":"bad_request","message":"..."}}
 *
 * The codec lives apart from the TCP server so tests (and the bench)
 * can exercise request parsing and reply formatting without sockets.
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "service/mapping_store.hpp"
#include "service/service.hpp"

namespace mse {

/** A decoded request line. */
struct WireRequest
{
    enum class Kind
    {
        Ping,
        Stats,
        Search,
        Replicate,
        Probe,
        Sync,
    };
    Kind kind = Kind::Ping;
    SearchRequest search; ///< Valid when kind == Search.

    /** Sender's advertised address on the daemon-to-daemon ops
     *  (replicate / probe / sync) — the inbound fault gate keys its
     *  per-peer filter on this. */
    std::string from;

    /** Replicate payload: decoded records. Entries that fail to decode
     *  are counted, not fatal — a peer running a newer build must not
     *  be able to wedge this daemon's replication stream. */
    std::vector<StoreEntry> replicate_entries;
    size_t replicate_invalid = 0;

    /** Sync payload: the caller's per-store-key best scores. The
     *  responder sends back exactly the records the caller is missing
     *  or losing on. */
    std::vector<std::pair<std::string, double>> sync_digest;
};

/**
 * Decode one request line. On failure returns nullopt and fills
 * error_code/error_message (suitable for wireError()).
 */
std::optional<WireRequest> parseWireRequest(const std::string &line,
                                            std::string *error_code,
                                            std::string *error_message);

/**
 * {"ok":false,"error":{"code":...,"message":...}}. A positive
 * retry_after_ms adds "retry_after_ms" to the error object: the
 * server-suggested client backoff for retryable codes (queue_full,
 * shutting_down, too_many_connections). The full code taxonomy is
 * documented in DESIGN.md Sec. 9.
 */
JsonValue wireError(const std::string &code, const std::string &message,
                    int retry_after_ms = 0);

/** Encode a search reply (success or structured failure). */
JsonValue searchReplyJson(const SearchReply &r);

/** {"ok":true,"type":"stats","stats":<stats>} */
JsonValue statsReplyJson(const JsonValue &stats);

/** {"ok":true,"type":"replicate","merged":N,"ignored":N} */
JsonValue replicateReplyJson(size_t merged, size_t ignored);

/** {"ok":true,"type":"ping"} */
JsonValue pingReplyJson();

/** {"ok":true,"type":"probe"} */
JsonValue probeReplyJson();

/** {"ok":true,"type":"sync","sent":N,"entries":[...]} */
JsonValue syncReplyJson(const std::vector<StoreEntry> &entries);

} // namespace mse

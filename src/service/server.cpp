#include "service/server.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>
#include <vector>

#include "common/cluster_faults.hpp"
#include "common/fault_sites.hpp"
#include "common/thread_annotations.hpp"
#include "service/event_server.hpp"
#include "service/net.hpp"
#include "service/wire.hpp"
#include "service/error_codes.hpp"

namespace mse {

namespace {

/** Poll interval for stop-flag checks, ms (threaded backend only;
 *  the event backend uses exact steady-clock deadlines instead). */
constexpr int kPollMs = 200;

/** Backoff hint on an `unavailable` refusal of a cluster op. */
constexpr int kUnavailableRetryMs = 100;

/** Cap on records per sync reply: a rejoining daemon that missed a
 *  lot pulls in bounded rounds instead of one giant line. */
constexpr size_t kSyncMaxEntries = 512;

/**
 * The original thread-per-connection backend: an accept loop spawning
 * one blocking reader thread per connection. Kept as the behavioral
 * reference for the event loop (tests diff the two reply streams) and
 * as the bench baseline the event backend's QPS is gated against.
 */
class ThreadedServer : public ServerBackend
{
  public:
    ThreadedServer(MseService &service, ServerConfig cfg)
        : service_(service), cfg_(cfg)
    {
    }

    ~ThreadedServer() override { stop(); }

    bool start(std::string *err) override
    {
        listen_fd_ = listenTcp(cfg_.port, err);
        if (listen_fd_ < 0)
            return false;
        port_ = boundPort(listen_fd_);
        accept_thread_ = std::thread([this] { acceptLoop(); });
        return true;
    }

    void stop() override EXCLUDES(conn_mu_)
    {
        stop_flag_.store(true);
        if (accept_thread_.joinable())
            accept_thread_.join();
        std::vector<std::thread> threads;
        {
            MutexLock lk(conn_mu_);
            threads.swap(conn_threads_);
        }
        for (auto &t : threads)
            if (t.joinable())
                t.join();
        if (listen_fd_ >= 0) {
            closeSocket(listen_fd_);
            listen_fd_ = -1;
        }
        service_.stop(true);
    }

    uint16_t port() const override { return port_; }
    void requestStop() override { stop_flag_.store(true); }
    bool stopRequested() const override { return stop_flag_.load(); }

  private:
    void acceptLoop() EXCLUDES(conn_mu_)
    {
        while (!stop_flag_.load()) {
            const int fd = acceptWithTimeout(listen_fd_, kPollMs);
            if (fd == -1)
                continue;
            if (fd == -2)
                break;
            if (live_connections_.load() >= cfg_.max_connections) {
                sendLine(fd,
                         wireError(wire_errors::kTooManyConnections,
                                   "server connection limit reached",
                                   service_.config().retry_hint_ms)
                             .dump());
                closeSocket(fd);
                continue;
            }
            ++live_connections_;
            MutexLock lk(conn_mu_);
            conn_threads_.emplace_back(
                [this, fd] { handleConnection(fd); });
        }
    }

    /** Run one search, cancelling if the peer hangs up mid-search. */
    SearchReply searchWatchingPeer(int fd, SearchRequest req)
    {
        auto ticket = service_.submit(std::move(req));
        // Wait on the reply in short slices so a dropped peer or a
        // server stop cancels the search instead of burning the whole
        // budget.
        while (ticket.reply.wait_for(std::chrono::milliseconds(
                   kPollMs)) != std::future_status::ready) {
            if (stop_flag_.load() || peerClosed(fd))
                ticket.cancel->requestCancel();
        }
        return ticket.reply.get();
    }

    void handleConnection(int fd)
    {
        LineReader reader(fd, cfg_.max_line_bytes);
        std::string line;
        int idle_ms = 0;
        while (!stop_flag_.load()) {
            const auto status = reader.readLine(&line, kPollMs);
            if (status == LineReader::Status::Timeout) {
                idle_ms += kPollMs;
                if (idle_ms >= cfg_.io_timeout_ms) {
                    sendLine(fd,
                             wireError(wire_errors::kIdleTimeout,
                                       "no request received in time")
                                 .dump());
                    break;
                }
                continue;
            }
            idle_ms = 0;
            if (status == LineReader::Status::TooLong) {
                // Framing is gone; nothing on this stream is
                // trustworthy.
                sendLine(
                    fd,
                    wireError(wire_errors::kRequestTooLarge,
                              "request line exceeds " +
                                  std::to_string(cfg_.max_line_bytes) +
                                  " bytes")
                        .dump());
                break;
            }
            if (status != LineReader::Status::Line)
                break; // Closed or Error: peer is gone.
            if (line.empty())
                continue;

            std::string code, message;
            const auto req = parseWireRequest(line, &code, &message);
            if (!req) {
                service_.metrics().onError(code.c_str());
                if (!sendLine(fd, wireError(code, message).dump()))
                    break;
                continue; // Malformed input costs the line, not the
                          // session.
            }

            // Inbound partition gate: the cluster.accept site can make
            // this daemon drop (connection dies, no reply — a severed
            // link) or refuse (structured `unavailable` — an
            // overloaded-but-alive peer) daemon-to-daemon traffic,
            // keyed per sender via MSE_FAULT_PEERS. Client traffic
            // (ping/stats/search) is never gated — that is what makes
            // a partitioned daemon different from a dead one.
            if (req->kind == WireRequest::Kind::Replicate ||
                req->kind == WireRequest::Kind::Probe ||
                req->kind == WireRequest::Kind::Sync) {
                const int err = clusterFaultCheck(
                    fault_sites::kClusterAccept, req->from);
                if (err == EPIPE || err == ECONNRESET)
                    break; // Drop: close without a reply.
                if (err != 0) {
                    if (!sendLine(fd,
                                  wireError(wire_errors::kUnavailable,
                                            "cluster op refused",
                                            kUnavailableRetryMs)
                                      .dump()))
                        break;
                    continue;
                }
            }

            std::string reply;
            switch (req->kind) {
              case WireRequest::Kind::Ping:
                service_.metrics().onRequest("ping");
                reply = pingReplyJson().dump();
                break;
              case WireRequest::Kind::Stats:
                service_.metrics().onRequest("stats");
                reply = statsReplyJson(service_.statsJson()).dump();
                break;
              case WireRequest::Kind::Search:
                reply = searchReplyJson(
                            searchWatchingPeer(fd, req->search))
                            .dump();
                break;
              case WireRequest::Kind::Replicate: {
                service_.metrics().onRequest("replicate");
                const auto res =
                    service_.applyReplication(req->replicate_entries);
                reply = replicateReplyJson(
                            res.first,
                            res.second + req->replicate_invalid)
                            .dump();
                break;
              }
              case WireRequest::Kind::Probe:
                service_.metrics().onRequest("probe");
                reply = probeReplyJson().dump();
                break;
              case WireRequest::Kind::Sync: {
                service_.metrics().onRequest("sync");
                reply = syncReplyJson(
                            service_.syncEntries(req->sync_digest,
                                                 kSyncMaxEntries))
                            .dump();
                break;
              }
            }
            if (!sendLine(fd, reply))
                break;
        }
        closeSocket(fd);
        --live_connections_;
    }

    MseService &service_;
    ServerConfig cfg_;
    int listen_fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stop_flag_{false};
    std::atomic<size_t> live_connections_{0};
    std::thread accept_thread_;
    Mutex conn_mu_;
    std::vector<std::thread> conn_threads_ GUARDED_BY(conn_mu_);
};

} // namespace

ServiceServer::ServiceServer(MseService &service, ServerConfig cfg)
{
    if (cfg.backend == ServerConfig::Backend::Threaded)
        impl_ = std::make_unique<ThreadedServer>(service, cfg);
    else
        impl_ = std::make_unique<EventServer>(service, cfg);
}

ServiceServer::~ServiceServer()
{
    stop();
}

bool
ServiceServer::start(std::string *err)
{
    return impl_->start(err);
}

void
ServiceServer::stop()
{
    impl_->stop();
}

} // namespace mse

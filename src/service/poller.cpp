#include "service/poller.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/sys_io.hpp"
#include "common/fault_sites.hpp"

namespace mse {

namespace {

#ifdef __linux__
uint32_t
epollMask(bool read, bool write)
{
    uint32_t ev = 0;
    if (read)
        ev |= EPOLLIN;
    if (write)
        ev |= EPOLLOUT;
    return ev;
}
#endif

short
pollMask(bool read, bool write)
{
    short ev = 0;
    if (read)
        ev |= POLLIN;
    if (write)
        ev |= POLLOUT;
    return ev;
}

} // namespace

Poller::~Poller()
{
    if (epfd_ >= 0)
        sysClose(epfd_);
}

bool
Poller::init(Kind kind, std::string *err)
{
    if (kind == Kind::Auto) {
        // getenv is safe here: nothing in this process calls
        // setenv/putenv after main() starts.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char *env = std::getenv("MSE_EVENT_BACKEND");
        if (env != nullptr && std::strcmp(env, "poll") == 0)
            kind = Kind::Poll;
    }
#ifdef __linux__
    if (kind != Kind::Poll) {
        epfd_ = sysEpollCreate(fault_sites::kServerEpollCreate);
        if (epfd_ < 0) {
            if (err)
                *err = std::string("epoll_create1: ") +
                       std::strerror(errno);
            return false;
        }
        return true;
    }
#else
    if (kind == Kind::Epoll) {
        if (err)
            *err = "epoll backend unavailable on this platform";
        return false;
    }
#endif
    return true; // poll backend needs no setup.
}

bool
Poller::add(int fd, bool read, bool write)
{
#ifdef __linux__
    if (epfd_ >= 0) {
        struct epoll_event ev{};
        ev.events = epollMask(read, write);
        ev.data.fd = fd;
        return sysEpollCtl(epfd_, EPOLL_CTL_ADD, fd, &ev,
                           fault_sites::kServerEpollCtl) == 0;
    }
#endif
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = pollMask(read, write);
    index_[fd] = pfds_.size();
    pfds_.push_back(pfd);
    return true;
}

bool
Poller::mod(int fd, bool read, bool write)
{
#ifdef __linux__
    if (epfd_ >= 0) {
        struct epoll_event ev{};
        ev.events = epollMask(read, write);
        ev.data.fd = fd;
        return sysEpollCtl(epfd_, EPOLL_CTL_MOD, fd, &ev,
                           fault_sites::kServerEpollCtl) == 0;
    }
#endif
    const auto it = index_.find(fd);
    if (it == index_.end())
        return false;
    pfds_[it->second].events = pollMask(read, write);
    return true;
}

void
Poller::del(int fd)
{
#ifdef __linux__
    if (epfd_ >= 0) {
        struct epoll_event ev{}; // non-null for pre-2.6.9 kernels.
        sysEpollCtl(epfd_, EPOLL_CTL_DEL, fd, &ev, fault_sites::kServerEpollCtl);
        return;
    }
#endif
    const auto it = index_.find(fd);
    if (it == index_.end())
        return;
    const size_t i = it->second;
    const size_t last = pfds_.size() - 1;
    if (i != last) {
        pfds_[i] = pfds_[last];
        index_[pfds_[i].fd] = i;
    }
    pfds_.pop_back();
    index_.erase(it);
}

int
Poller::wait(int timeout_ms, std::vector<Event> *out)
{
    out->clear();
#ifdef __linux__
    if (epfd_ >= 0) {
        struct epoll_event evs[64];
        const int rc = sysEpollWait(epfd_, evs, 64, timeout_ms,
                                    fault_sites::kServerEpollWait);
        for (int i = 0; i < rc; ++i) {
            Event e;
            e.fd = evs[i].data.fd;
            e.readable = (evs[i].events & EPOLLIN) != 0;
            e.writable = (evs[i].events & EPOLLOUT) != 0;
            e.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
            out->push_back(e);
        }
        return rc;
    }
#endif
    const int rc = sysPoll(pfds_.data(), pfds_.size(), timeout_ms,
                           fault_sites::kServerPollWait);
    if (rc <= 0)
        return rc;
    for (const pollfd &p : pfds_) {
        if (p.revents == 0)
            continue;
        Event e;
        e.fd = p.fd;
        e.readable = (p.revents & POLLIN) != 0;
        e.writable = (p.revents & POLLOUT) != 0;
        e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        out->push_back(e);
        if (static_cast<int>(out->size()) == rc)
            break;
    }
    return static_cast<int>(out->size());
}

} // namespace mse

#include "service/event_server.hpp"

#include <cerrno>
#include <chrono>
#include <sys/socket.h>
#include <unistd.h>

#include "common/cluster_faults.hpp"
#include "common/sys_io.hpp"
#include "service/net.hpp"
#include "service/wire.hpp"
#include "common/fault_sites.hpp"
#include "service/error_codes.hpp"

namespace mse {

namespace {

/** Upper bound on one wait, ms: a backstop for stop requests should
 *  the wake pipe ever fail; idle deadlines shorten it further. */
constexpr int kLoopTickMs = 200;

/** Backoff hint on an `unavailable` refusal of a cluster op. */
constexpr int kUnavailableRetryMs = 100;

/** Cap on records per sync reply (see ThreadedServer's twin). */
constexpr size_t kSyncMaxEntries = 512;

/** Shutdown drain budget, ms: cancelled in-flight searches stop at
 *  their next generation boundary, so this is generous. */
constexpr int64_t kDrainCapMs = 10000;

/** recv chunk size for the read loop. */
constexpr size_t kReadChunk = 16384;

int64_t
steadyMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

EventServer::EventServer(MseService &service, ServerConfig cfg)
    : service_(service), cfg_(cfg)
{
}

EventServer::~EventServer()
{
    stop();
}

bool
EventServer::start(std::string *err)
{
    if (!poller_.init(cfg_.poller, err))
        return false;
    listen_fd_ = listenTcp(cfg_.port, err);
    if (listen_fd_ < 0)
        return false;
    if (!setNonBlocking(listen_fd_)) {
        if (err)
            *err = "cannot set listen socket non-blocking";
        closeSocket(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    port_ = boundPort(listen_fd_);

    // Self-wake pipe: completions and requestStop() poke the loop out
    // of its wait. pipe() is startup plumbing, not data-path I/O (same
    // category as socket()/bind() — see sys_io's socket-setup note).
    int fds[2];
    if (::pipe(fds) != 0) {
        if (err)
            *err = "cannot create wake pipe";
        closeSocket(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    setNonBlocking(fds[0]);
    setNonBlocking(fds[1]);
    wake_r_ = fds[0];
    wake_w_.store(fds[1]);

    poller_.add(listen_fd_, true, false);
    poller_.add(wake_r_, true, false);
    loop_thread_ = std::thread([this] { loop(); });
    return true;
}

void
EventServer::requestStop()
{
    stop_flag_.store(true);
    wakeLoop();
}

void
EventServer::wakeLoop()
{
    const int w = wake_w_.load();
    if (w < 0)
        return;
    // Raw write(2), not sysWriteAll: this path must stay
    // async-signal-safe (requestStop runs from SIGINT/SIGTERM
    // handlers) and faultCheck takes a mutex. One byte is enough;
    // EAGAIN means the pipe already holds a pending wakeup.
    // mse-lint: allow(raw-syscall) async-signal-safe wake-pipe poke
    (void)!::write(w, "w", 1);
}

void
EventServer::stop()
{
    stop_flag_.store(true);
    wakeLoop();
    if (loop_thread_.joinable())
        loop_thread_.join();
    // Join the executors *before* closing the wake pipe: completion
    // hooks write to it until the last in-flight request resolves.
    service_.stop(true);
    if (listen_fd_ >= 0) {
        closeSocket(listen_fd_);
        listen_fd_ = -1;
    }
    if (wake_r_ >= 0) {
        closeSocket(wake_r_);
        wake_r_ = -1;
    }
    const int w = wake_w_.exchange(-1);
    if (w >= 0)
        closeSocket(w);
}

void
EventServer::touch(Conn *c)
{
    c->idle_deadline_ms = steadyMs() + cfg_.io_timeout_ms;
}

int64_t
EventServer::nextTimeoutMs(int64_t now_ms) const
{
    int64_t timeout = kLoopTickMs;
    for (const auto &kv : conns_) {
        const Conn *c = kv.second.get();
        // A connection with requests in flight or replies pending is
        // making progress, not idling.
        if (c->dead || c->want_close || !c->slots.empty() ||
            c->out.size() > c->out_off)
            continue;
        const int64_t left = c->idle_deadline_ms - now_ms;
        timeout = left < timeout ? (left < 0 ? 0 : left) : timeout;
    }
    return timeout;
}

void
EventServer::loop()
{
    while (!stop_flag_.load()) {
        const int timeout =
            static_cast<int>(nextTimeoutMs(steadyMs()));
        poller_.wait(timeout, &events_);
        for (const Poller::Event &ev : events_) {
            if (ev.fd == listen_fd_) {
                acceptReady();
                continue;
            }
            if (ev.fd == wake_r_) {
                drainWake();
                continue;
            }
            const auto it = conns_.find(ev.fd);
            if (it == conns_.end())
                continue; // Destroyed earlier in this batch.
            Conn *c = it->second.get();
            if (c->dead)
                continue;
            if (ev.error) {
                destroyConn(c, true);
                continue;
            }
            if (ev.readable && !c->paused)
                readInput(c);
            if (!c->dead && ev.writable)
                pump(c);
        }
        drainCompletions();
        expireIdle(steadyMs());
        reapDead();
    }

    // Drain: stop accepting, cancel in-flight searches (they stop at
    // the next generation boundary and still produce best-so-far
    // replies), flush whatever the peers will take, then close.
    poller_.del(listen_fd_);
    std::vector<Conn *> live;
    live.reserve(conns_.size());
    for (auto &kv : conns_)
        live.push_back(kv.second.get());
    for (Conn *c : live) {
        for (auto &s : c->slots)
            if (s.cancel)
                s.cancel->requestCancel();
        c->want_close = true;
        pump(c);
    }
    reapDead();
    const int64_t drain_deadline = steadyMs() + kDrainCapMs;
    while (!conns_.empty() && steadyMs() < drain_deadline) {
        poller_.wait(50, &events_);
        for (const Poller::Event &ev : events_) {
            if (ev.fd == listen_fd_ || ev.fd == wake_r_) {
                if (ev.fd == wake_r_)
                    drainWake();
                continue;
            }
            const auto it = conns_.find(ev.fd);
            if (it == conns_.end())
                continue;
            Conn *c = it->second.get();
            if (c->dead)
                continue;
            if (ev.error)
                destroyConn(c, true);
            else if (ev.writable)
                pump(c);
        }
        drainCompletions();
        reapDead();
    }
    // Force-close stragglers past the drain budget.
    live.clear();
    for (auto &kv : conns_)
        live.push_back(kv.second.get());
    for (Conn *c : live)
        destroyConn(c, true);
    reapDead();
}

void
EventServer::acceptReady()
{
    while (!stop_flag_.load()) {
        const int fd = sysAccept(listen_fd_, fault_sites::kServerAccept);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return; // Backlog drained.
            if (errno == ECONNABORTED)
                continue; // Peer gave up; try the next one.
            // EMFILE or an injected fault: give up on this readiness
            // round. Level-triggered wait re-reports while the
            // backlog persists, so accepting resumes once fds free up.
            return;
        }
        setNonBlocking(fd);
        if (conns_.size() >= cfg_.max_connections) {
            const std::string line =
                wireError(wire_errors::kTooManyConnections,
                          "server connection limit reached",
                          service_.config().retry_hint_ms)
                    .dump() +
                "\n";
            // Best-effort refusal: the socket's send buffer is empty,
            // so a short/failed send just means the peer is gone.
            sysSend(fd, line.data(), line.size(), MSG_NOSIGNAL,
                    fault_sites::kServerSend);
            closeSocket(fd);
            continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = next_conn_id_++;
        touch(conn.get());
        Conn *raw = conn.get();
        by_id_[raw->id] = raw;
        conns_[fd] = std::move(conn);
        poller_.add(fd, true, false);
    }
}

void
EventServer::drainWake()
{
    char buf[256];
    while (true) {
        const ssize_t r =
            sysRead(wake_r_, buf, sizeof(buf), fault_sites::kServerWakeRead);
        if (r < static_cast<ssize_t>(sizeof(buf)))
            return; // Drained (or EAGAIN/injected error; either way
                    // the pending work is picked up below).
    }
}

void
EventServer::drainCompletions()
{
    std::vector<uint64_t> ids;
    {
        MutexLock lk(done_mu_);
        ids.swap(done_ids_);
    }
    for (const uint64_t id : ids) {
        const auto it = by_id_.find(id);
        if (it == by_id_.end())
            continue; // Connection already destroyed; reply dropped.
        pump(it->second);
    }
}

void
EventServer::readInput(Conn *c)
{
    // Per-round intake cap: framing needs at most one max-size line
    // plus a chunk in the buffer; level-triggered readiness re-reports
    // whatever stays in the kernel buffer.
    const size_t intake_cap = cfg_.max_line_bytes + kReadChunk;
    bool eof = false;
    while (c->in.size() < intake_cap) {
        char buf[kReadChunk];
        const ssize_t r =
            sysRecv(c->fd, buf, sizeof(buf), 0, fault_sites::kServerRecv);
        if (r < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            destroyConn(c, true);
            return;
        }
        if (r == 0) {
            eof = true;
            break;
        }
        c->in.append(buf, static_cast<size_t>(r));
        touch(c);
        if (static_cast<size_t>(r) < sizeof(buf))
            break; // Socket drained.
    }
    pump(c);
    if (eof && !c->dead) {
        // Peer is gone (or at least done sending). Complete lines
        // above were parsed and submitted, matching the threaded
        // backend; now cancel this connection's in-flight searches —
        // and only this connection's — flush what the peer will still
        // take, and close.
        for (auto &s : c->slots)
            if (s.cancel)
                s.cancel->requestCancel();
        c->want_close = true;
        // Drop read interest: the fd stays readable at EOF forever
        // (level-triggered), and nothing more will be parsed.
        setPaused(c, true);
        pump(c);
    }
}

void
EventServer::parseLines(Conn *c)
{
    while (!c->want_close && !c->dead) {
        if (c->slots.size() >= cfg_.max_pipeline ||
            c->out.size() - c->out_off >= cfg_.max_buffered_bytes) {
            // Backpressure: stop framing (and reading) until the
            // pipeline drains. Nothing is lost — residual bytes stay
            // in c->in and the kernel buffer.
            setPaused(c, true);
            return;
        }
        const size_t nl = c->in.find('\n');
        if (nl == std::string::npos) {
            if (c->in.size() > cfg_.max_line_bytes) {
                // Oversized line still incomplete: framing is lost.
                pushDone(c,
                         wireError(wire_errors::kRequestTooLarge,
                                   "request line exceeds " +
                                       std::to_string(
                                           cfg_.max_line_bytes) +
                                       " bytes")
                             .dump());
                c->want_close = true;
                c->in.clear();
                setPaused(c, true); // stop reading the junk stream
            }
            return;
        }
        if (nl > cfg_.max_line_bytes) {
            pushDone(c,
                     wireError(wire_errors::kRequestTooLarge,
                               "request line exceeds " +
                                   std::to_string(cfg_.max_line_bytes) +
                                   " bytes")
                         .dump());
            c->want_close = true;
            c->in.clear();
            setPaused(c, true); // stop reading the junk stream
            return;
        }
        std::string line = c->in.substr(0, nl);
        c->in.erase(0, nl + 1);
        if (line.empty())
            continue;
        handleLine(c, line);
    }
}

void
EventServer::handleLine(Conn *c, const std::string &line)
{
    std::string code, message;
    const auto req = parseWireRequest(line, &code, &message);
    if (!req) {
        service_.metrics().onError(code.c_str());
        // Malformed input costs the line, not the session.
        pushDone(c, wireError(code, message).dump());
        return;
    }
    // Inbound partition gate — see ThreadedServer::handleConnection.
    // Drop severs the connection without a reply; refuse answers
    // `unavailable`. Client ops are never gated.
    if (req->kind == WireRequest::Kind::Replicate ||
        req->kind == WireRequest::Kind::Probe ||
        req->kind == WireRequest::Kind::Sync) {
        const int err =
            clusterFaultCheck(fault_sites::kClusterAccept, req->from);
        if (err == EPIPE || err == ECONNRESET) {
            c->want_close = true;
            c->in.clear();
            setPaused(c, true);
            return;
        }
        if (err != 0) {
            pushDone(c, wireError(wire_errors::kUnavailable,
                                  "cluster op refused",
                                  kUnavailableRetryMs)
                            .dump());
            return;
        }
    }
    switch (req->kind) {
      case WireRequest::Kind::Ping:
        service_.metrics().onRequest("ping");
        pushDone(c, pingReplyJson().dump());
        break;
      case WireRequest::Kind::Stats:
        service_.metrics().onRequest("stats");
        pushDone(c, statsReplyJson(service_.statsJson()).dump());
        break;
      case WireRequest::Kind::Replicate: {
        // Merging is a handful of map updates + one append per
        // accepted record: cheap enough to run on the event loop,
        // and doing so keeps replication strictly ordered per peer
        // connection.
        service_.metrics().onRequest("replicate");
        const auto res =
            service_.applyReplication(req->replicate_entries);
        pushDone(c, replicateReplyJson(
                        res.first, res.second + req->replicate_invalid)
                        .dump());
        break;
      }
      case WireRequest::Kind::Probe:
        service_.metrics().onRequest("probe");
        pushDone(c, probeReplyJson().dump());
        break;
      case WireRequest::Kind::Sync: {
        // A digest diff over the in-memory best map: read-only and
        // bounded, fine on the event loop like replicate merges.
        service_.metrics().onRequest("sync");
        pushDone(c, syncReplyJson(service_.syncEntries(
                                      req->sync_digest, kSyncMaxEntries))
                        .dump());
        break;
      }
      case WireRequest::Kind::Search: {
        const uint64_t id = c->id;
        auto ticket = service_.submit(
            req->search, [this, id] {
                {
                    MutexLock lk(done_mu_);
                    done_ids_.push_back(id);
                }
                wakeLoop();
            });
        Slot s;
        s.fut = std::move(ticket.reply);
        s.cancel = std::move(ticket.cancel);
        c->slots.push_back(std::move(s));
        break;
      }
    }
}

void
EventServer::pushDone(Conn *c, std::string reply)
{
    Slot s;
    s.done = true;
    s.reply = std::move(reply);
    c->slots.push_back(std::move(s));
}

void
EventServer::setPaused(Conn *c, bool paused)
{
    if (c->paused == paused || c->dead)
        return;
    c->paused = paused;
    poller_.mod(c->fd, !c->paused, c->write_armed);
}

void
EventServer::flushOut(Conn *c)
{
    // Serialize ready replies strictly from the front of the slot
    // queue: this is the pipelining ordering guarantee. A finished
    // search behind an unfinished one waits its turn.
    while (!c->slots.empty()) {
        Slot &s = c->slots.front();
        if (!s.done) {
            if (s.fut.valid() &&
                s.fut.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready)
                break;
            s.reply = s.fut.valid()
                ? searchReplyJson(s.fut.get()).dump()
                : wireError(wire_errors::kInternal, "lost reply future").dump();
            s.done = true;
        }
        c->out += s.reply;
        c->out += '\n';
        c->slots.pop_front();
        touch(c);
    }
    // Write until the socket refuses; never block the loop.
    while (c->out_off < c->out.size()) {
        const ssize_t w =
            sysSend(c->fd, c->out.data() + c->out_off,
                    c->out.size() - c->out_off, MSG_NOSIGNAL,
                    fault_sites::kServerSend);
        if (w < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (!c->write_armed) {
                    c->write_armed = true;
                    poller_.mod(c->fd, !c->paused, true);
                }
                return;
            }
            destroyConn(c, true);
            return;
        }
        c->out_off += static_cast<size_t>(w);
        touch(c);
    }
    c->out.clear();
    c->out_off = 0;
    if (c->write_armed) {
        c->write_armed = false;
        poller_.mod(c->fd, !c->paused, false);
    }
}

void
EventServer::pump(Conn *c)
{
    while (!c->dead) {
        parseLines(c);
        flushOut(c);
        if (c->dead)
            return;
        if (c->want_close && c->slots.empty() &&
            c->out_off >= c->out.size()) {
            destroyConn(c, false);
            return;
        }
        // Flushing may have made room below the backpressure marks:
        // resume framing the residual input.
        if (c->paused && !c->want_close &&
            c->slots.size() < cfg_.max_pipeline &&
            c->out.size() - c->out_off < cfg_.max_buffered_bytes) {
            setPaused(c, false);
            continue;
        }
        return;
    }
}

void
EventServer::expireIdle(int64_t now_ms)
{
    std::vector<Conn *> expired;
    for (auto &kv : conns_) {
        Conn *c = kv.second.get();
        if (c->dead || c->want_close || !c->slots.empty() ||
            c->out.size() > c->out_off)
            continue;
        if (now_ms >= c->idle_deadline_ms)
            expired.push_back(c);
    }
    for (Conn *c : expired) {
        pushDone(c, wireError(wire_errors::kIdleTimeout,
                              "no request received in time")
                        .dump());
        c->want_close = true;
        pump(c);
    }
}

void
EventServer::destroyConn(Conn *c, bool cancel_inflight)
{
    if (c->dead)
        return;
    c->dead = true;
    if (cancel_inflight) {
        for (auto &s : c->slots)
            if (s.cancel)
                s.cancel->requestCancel();
    }
    poller_.del(c->fd);
    by_id_.erase(c->id);
    const auto it = conns_.find(c->fd);
    if (it != conns_.end()) {
        // Keep the object (and fd) alive until reapDead so events and
        // completion ids from this batch resolve against a live map
        // miss instead of a recycled fd.
        dead_.push_back(std::move(it->second));
        conns_.erase(it);
    }
}

void
EventServer::reapDead()
{
    for (auto &c : dead_)
        closeSocket(c->fd);
    dead_.clear();
}

} // namespace mse

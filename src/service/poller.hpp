/**
 * @file
 * Readiness-notification abstraction for the event-loop server.
 *
 * One interface, two backends:
 *
 *  - **epoll** (Linux): O(1) per-event dispatch; the fd set lives in
 *    the kernel, so a wait over thousands of idle connections costs
 *    nothing per idle fd.
 *  - **plain poll** (portable fallback): the fd set is a flat
 *    vector<pollfd> rescanned per wait — O(n) but dependency-free.
 *
 * Both are *level-triggered*: a ready fd is re-reported on every wait
 * until drained, so the server may stop reading/writing mid-buffer
 * (backpressure, fairness) without losing the wakeup. All syscalls go
 * through the sys_io seam (sites "server.epoll.*" / "server.poll.wait"),
 * so fault injection covers the event loop the same way it covered the
 * thread-per-connection reader.
 *
 * Not thread-safe: a Poller belongs to exactly one loop thread.
 */
#pragma once

#include <poll.h>

#include <string>
#include <unordered_map>
#include <vector>

namespace mse {

class Poller
{
  public:
    enum class Kind
    {
        Auto,  ///< epoll on Linux (unless MSE_EVENT_BACKEND=poll), else poll.
        Epoll, ///< epoll; open() fails on non-Linux builds.
        Poll,  ///< portable poll(2) backend.
    };

    struct Event
    {
        int fd = -1;
        bool readable = false;
        bool writable = false;
        bool error = false; ///< EPOLLERR/EPOLLHUP (peer gone or socket error).
    };

    Poller() = default;
    ~Poller();

    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    /** Pick + initialize a backend. False with *err set on failure. */
    bool init(Kind kind, std::string *err);

    /** True when the epoll backend is active (after init). */
    bool usingEpoll() const { return epfd_ >= 0; }

    /** Start watching fd. read/write select the interest set. */
    bool add(int fd, bool read, bool write);

    /** Change fd's interest set. */
    bool mod(int fd, bool read, bool write);

    /** Stop watching fd; do this before closing the fd. */
    void del(int fd);

    /**
     * Wait up to timeout_ms (-1 = infinite) and append ready fds to
     * *out (cleared first). Returns the event count, 0 on timeout, -1
     * on a non-EINTR wait error (EINTR is retried against a
     * steady-clock deadline inside sys_io).
     */
    int wait(int timeout_ms, std::vector<Event> *out);

  private:
    int epfd_ = -1; // epoll backend (Linux); -1 = poll backend.

    // poll(2) backend state: flat pollfd array + fd -> index map for
    // O(1) mod/del (del swap-erases and patches the moved entry).
    std::vector<pollfd> pfds_;
    std::unordered_map<int, size_t> index_;
};

} // namespace mse

#include "service/mapping_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <fcntl.h>
#include <limits>

#include "common/json.hpp"
#include "common/math_util.hpp"
#include "common/sys_io.hpp"
#include "core/model_sweep.hpp"
#include "mapping/mapping_io.hpp"
#include "workload/workload_io.hpp"
#include "common/fault_sites.hpp"

namespace mse {

const char *
storeHitName(StoreHit h)
{
    switch (h) {
      case StoreHit::Miss: return "cold";
      case StoreHit::Near: return "near";
      case StoreHit::Exact: return "exact";
    }
    return "unknown";
}

MappingStore::MappingStore(std::string path, bool fsync_each)
    : path_(std::move(path)), fsync_each_(fsync_each)
{
    if (!path_.empty())
        load();
}

namespace {

std::string
keyFromParts(const std::string &wl_sig_hex, const std::string &arch_sig,
             Objective objective, bool sparse)
{
    return wl_sig_hex + "|" + arch_sig + "|" + objectiveName(objective) +
        (sparse ? "|sparse" : "|dense");
}

} // namespace

std::string
MappingStore::keyOf(const Workload &wl, const ArchConfig &arch,
                    Objective objective, bool sparse)
{
    return keyFromParts(fnv1a64Hex(wl.signature()),
                        fnv1a64Hex(arch.signature()), objective, sparse);
}

std::string
MappingStore::keyOfEntry(const StoreEntry &e)
{
    return keyFromParts(fnv1a64Hex(e.workload.signature()), e.arch_sig,
                        e.objective, e.sparse);
}

JsonValue
MappingStore::encodeEntryJson(const StoreEntry &e)
{
    JsonValue j = JsonValue::object();
    j["v"] = 1;
    j["objective"] = objectiveName(e.objective);
    j["model"] = e.sparse ? "sparse" : "dense";
    j["arch_sig"] = e.arch_sig;
    j["workload"] = serializeWorkload(e.workload);
    j["mapping"] = serializeMapping(e.mapping);
    j["score"] = e.score;
    j["energy_uj"] = e.energy_uj;
    j["latency_cycles"] = e.latency_cycles;
    j["samples"] = e.samples;
    return j;
}

std::string
MappingStore::encodeEntry(const StoreEntry &e)
{
    return encodeEntryJson(e).dump();
}

std::optional<StoreEntry>
MappingStore::decodeEntryJson(const JsonValue &doc)
{
    if (!doc.isObject())
        return std::nullopt;
    if (doc.getInt("v", 0) != 1)
        return std::nullopt;
    const auto objective = objectiveFromName(
        doc.getString("objective", ""));
    if (!objective)
        return std::nullopt;
    const auto wl = parseWorkload(doc.getString("workload", ""));
    if (!wl)
        return std::nullopt;
    const auto mapping = parseMapping(doc.getString("mapping", ""));
    if (!mapping)
        return std::nullopt;
    const std::string model = doc.getString("model", "dense");
    if (model != "dense" && model != "sparse")
        return std::nullopt;
    StoreEntry e;
    e.workload = *wl;
    e.arch_sig = doc.getString("arch_sig", "");
    e.objective = *objective;
    e.sparse = model == "sparse";
    e.mapping = *mapping;
    e.score = doc.getDouble("score", 0.0);
    e.energy_uj = doc.getDouble("energy_uj", 0.0);
    e.latency_cycles = doc.getDouble("latency_cycles", 0.0);
    e.samples = static_cast<uint64_t>(doc.getInt("samples", 0));
    if (e.arch_sig.size() != 16 || !(e.score > 0.0) ||
        !std::isfinite(e.score))
        return std::nullopt;
    return e;
}

std::optional<StoreEntry>
MappingStore::decodeEntry(const std::string &line)
{
    const auto doc = parseJson(line);
    if (!doc)
        return std::nullopt;
    return decodeEntryJson(*doc);
}

void
MappingStore::ingestLineLocked(const std::string &line)
{
    const auto entry = decodeEntry(line);
    if (!entry) {
        // Torn tail or bit-rotted line: skip, keep the rest.
        ++malformed_;
        return;
    }
    const std::string key = keyOfEntry(*entry);
    ++key_appends_[key];
    const auto it = best_.find(key);
    if (it == best_.end()) {
        best_.emplace(key, *entry);
    } else {
        ++dead_;
        if (entry->score < it->second.score)
            it->second = *entry;
    }
}

size_t
MappingStore::load()
{
    MutexLock lk(mu_);
    best_.clear();
    key_appends_.clear();
    malformed_ = 0;
    dead_ = 0;
    append_failures_ = 0;
    degraded_ = false;
    tail_unterminated_ = false;
    if (path_.empty())
        return 0;
    const int fd = sysOpen(path_.c_str(), O_RDONLY, 0, fault_sites::kStoreOpen);
    if (fd < 0) {
        if (errno != ENOENT) {
            // Exists but unreadable (EIO, EACCES, ...): appending to a
            // file we cannot read risks clobbering records we never
            // saw — serve empty, read-only.
            degraded_ = true;
        }
        return 0; // Missing file = fresh store.
    }
    std::string pending; // Bytes read, not yet terminated by '\n'.
    char chunk[1 << 16];
    while (true) {
        const ssize_t r =
            sysRead(fd, chunk, sizeof(chunk), fault_sites::kStoreRead);
        if (r < 0) {
            // Mid-file read error: keep the parsed prefix, go
            // read-only (appending after an unknown suffix could
            // shadow or merge with records we never saw).
            degraded_ = true;
            pending.clear();
            break;
        }
        if (r == 0)
            break;
        pending.append(chunk, static_cast<size_t>(r));
        size_t start = 0;
        while (true) {
            const size_t nl = pending.find('\n', start);
            if (nl == std::string::npos)
                break;
            ingestLineLocked(pending.substr(start, nl - start));
            start = nl + 1;
        }
        pending.erase(0, start);
    }
    if (!pending.empty()) {
        tail_unterminated_ = true; // crash mid-append
        ingestLineLocked(pending);
    }
    sysClose(fd);
    return best_.size();
}

MappingStore::Lookup
MappingStore::lookup(const Workload &wl, const ArchConfig &arch,
                     Objective objective, bool sparse,
                     double max_distance) const
{
    MutexLock lk(mu_);
    Lookup out;
    const auto it = best_.find(keyOf(wl, arch, objective, sparse));
    if (it != best_.end()) {
        out.hit = StoreHit::Exact;
        out.entry = it->second;
        out.distance = 0.0;
        return out;
    }
    // Nearest same-arch, same-objective neighbor whose mapping can seed
    // this workload's map space (BoundRatio: total |log2| bound drift).
    const std::string arch_sig = fnv1a64Hex(arch.signature());
    double best_dist = std::numeric_limits<double>::infinity();
    const StoreEntry *best_entry = nullptr;
    const std::string *best_key = nullptr;
    // Min-reduction with a total order (distance, then key), so the
    // chosen neighbor is independent of hash-map iteration order.
    // mse-lint: allow(unordered-iter) order-independent min-reduction
    for (const auto &kv : best_) {
        const StoreEntry &e = kv.second;
        if (e.arch_sig != arch_sig || e.objective != objective ||
            e.sparse != sparse)
            continue;
        const double d = workloadDistance(SimilarityMetric::BoundRatio,
                                          wl, e.workload);
        if (d < best_dist ||
            (d == best_dist && best_key && kv.first < *best_key)) {
            best_dist = d;
            best_entry = &e;
            best_key = &kv.first;
        }
    }
    if (best_entry && best_dist <= max_distance) {
        out.hit = StoreHit::Near;
        out.entry = *best_entry;
        out.distance = best_dist;
    }
    return out;
}

bool
MappingStore::appendLocked(const StoreEntry &e)
{
    if (path_.empty())
        return true;
    if (degraded_) {
        // Read-only mode: the disk already failed us once; do not
        // keep hammering it (or risk interleaving with whatever the
        // failure left behind). tryRecover() is the way back.
        ++append_failures_;
        return false;
    }
    const int fd = sysOpen(path_.c_str(),
                           O_WRONLY | O_APPEND | O_CREAT, 0644,
                           fault_sites::kStoreOpen);
    if (fd < 0) {
        ++append_failures_;
        degraded_ = true;
        return false;
    }
    std::string line;
    if (tail_unterminated_) {
        // Seal the torn tail so this record starts on its own line
        // (the half-line stays on disk and is skipped at load).
        line += '\n';
        tail_unterminated_ = false;
    }
    line += encodeEntry(e);
    line += '\n';
    // One write() per record: a SIGKILL between syscalls can at worst
    // truncate this record (handled at load), never merge two.
    bool ok = sysWriteAll(fd, line.data(), line.size(),
                          fault_sites::kStoreAppend);
    if (ok && fsync_each_)
        ok = sysFsync(fd, fault_sites::kStoreFsync) == 0;
    sysClose(fd);
    if (!ok) {
        // The record may be partially on disk: treat the tail as torn
        // so a same-process retry would seal it first.
        tail_unterminated_ = true;
        ++append_failures_;
        degraded_ = true;
    }
    return ok;
}

bool
MappingStore::upsertLocked(const std::string &key, const StoreEntry &e)
{
    const auto it = best_.find(key);
    if (it != best_.end() && it->second.score <= e.score)
        return false;
    if (it != best_.end()) {
        it->second = e;
        ++dead_;
    } else {
        best_.emplace(key, e);
    }
    ++key_appends_[key];
    appendLocked(e);
    if (!degraded_ && dead_ > std::max<size_t>(16, best_.size()))
        compactLocked();
    return true;
}

bool
MappingStore::recordIfBetter(const Workload &wl, const ArchConfig &arch,
                             Objective objective, bool sparse,
                             const Mapping &mapping, double score,
                             double energy_uj, double latency_cycles,
                             uint64_t samples)
{
    if (!(score > 0.0) || !std::isfinite(score))
        return false;
    MutexLock lk(mu_);
    StoreEntry e;
    e.workload = wl;
    e.arch_sig = fnv1a64Hex(arch.signature());
    e.objective = objective;
    e.sparse = sparse;
    e.mapping = mapping;
    e.score = score;
    e.energy_uj = energy_uj;
    e.latency_cycles = latency_cycles;
    e.samples = samples;
    return upsertLocked(keyOf(wl, arch, objective, sparse), e);
}

bool
MappingStore::mergeEntry(const StoreEntry &e)
{
    if (e.arch_sig.size() != 16 || !(e.score > 0.0) ||
        !std::isfinite(e.score))
        return false;
    MutexLock lk(mu_);
    return upsertLocked(keyOfEntry(e), e);
}

bool
MappingStore::compactLocked()
{
    if (path_.empty()) {
        dead_ = 0;
        return true;
    }
    const std::string tmp = path_ + ".tmp";
    const int fd = sysOpen(tmp.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644,
                           fault_sites::kStoreCompact);
    if (fd < 0)
        return false;
    bool ok = true;
    // Write records in sorted key order: the compacted file's bytes
    // must not depend on hash-map iteration order, so two stores that
    // hold identical entries compact to identical files.
    std::vector<const std::string *> keys;
    keys.reserve(best_.size());
    // mse-lint: allow(unordered-iter) keys are sorted before use
    for (const auto &kv : best_)
        keys.push_back(&kv.first);
    std::sort(keys.begin(), keys.end(),
              [](const std::string *a, const std::string *b) {
                  return *a < *b;
              });
    for (const std::string *key : keys) {
        std::string line = encodeEntry(best_.at(*key));
        line += '\n';
        ok = ok && sysWriteAll(fd, line.data(), line.size(),
                               fault_sites::kStoreCompact);
    }
    // fsync before rename: the rename must never make a half-written
    // compaction the only copy of the store.
    ok = ok && sysFsync(fd, fault_sites::kStoreFsync) == 0;
    ok = sysClose(fd) == 0 && ok;
    if (!ok) {
        sysUnlink(tmp.c_str(), fault_sites::kStoreUnlink);
        return false;
    }
    if (sysRename(tmp.c_str(), path_.c_str(), fault_sites::kStoreRename) != 0) {
        sysUnlink(tmp.c_str(), fault_sites::kStoreUnlink);
        return false;
    }
    dead_ = 0;
    tail_unterminated_ = false;
    return true;
}

bool
MappingStore::compact()
{
    MutexLock lk(mu_);
    return compactLocked();
}

size_t
MappingStore::size() const
{
    MutexLock lk(mu_);
    return best_.size();
}

size_t
MappingStore::malformedLines() const
{
    MutexLock lk(mu_);
    return malformed_;
}

size_t
MappingStore::deadLines() const
{
    MutexLock lk(mu_);
    return dead_;
}

bool
MappingStore::degraded() const
{
    MutexLock lk(mu_);
    return degraded_;
}

size_t
MappingStore::appendFailures() const
{
    MutexLock lk(mu_);
    return append_failures_;
}

std::vector<std::pair<std::string, uint64_t>>
MappingStore::keyAppendCounts() const
{
    MutexLock lk(mu_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(key_appends_.size());
    // mse-lint: allow(unordered-iter) sorted before return
    for (const auto &kv : key_appends_)
        out.push_back(kv);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::string, double>>
MappingStore::bestScores() const
{
    MutexLock lk(mu_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(best_.size());
    // mse-lint: allow(unordered-iter) sorted before return
    for (const auto &kv : best_)
        out.emplace_back(kv.first, kv.second.score);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<StoreEntry>
MappingStore::entriesBetterThan(
    const std::vector<std::pair<std::string, double>> &digest,
    size_t max_entries) const
{
    std::unordered_map<std::string, double> peer_best;
    peer_best.reserve(digest.size());
    for (const auto &kv : digest)
        peer_best[kv.first] = kv.second;
    MutexLock lk(mu_);
    std::vector<std::pair<std::string, const StoreEntry *>> picked;
    // mse-lint: allow(unordered-iter) sorted before return
    for (const auto &kv : best_) {
        const auto it = peer_best.find(kv.first);
        if (it == peer_best.end() || kv.second.score < it->second)
            picked.emplace_back(kv.first, &kv.second);
    }
    std::sort(picked.begin(), picked.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    if (max_entries > 0 && picked.size() > max_entries)
        picked.resize(max_entries);
    std::vector<StoreEntry> out;
    out.reserve(picked.size());
    for (const auto &kv : picked)
        out.push_back(*kv.second);
    return out;
}

bool
MappingStore::tryRecover()
{
    MutexLock lk(mu_);
    if (!degraded_)
        return true;
    // The in-memory live set is a superset of everything disk lost
    // (appends kept updating it while degraded), so a successful
    // atomic rewrite both repairs the file and catches it up.
    if (!compactLocked())
        return false;
    degraded_ = false;
    return true;
}

} // namespace mse

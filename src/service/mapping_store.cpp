#include "service/mapping_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/json.hpp"
#include "common/math_util.hpp"
#include "core/model_sweep.hpp"
#include "mapping/mapping_io.hpp"
#include "workload/workload_io.hpp"

namespace mse {

const char *
storeHitName(StoreHit h)
{
    switch (h) {
      case StoreHit::Miss: return "cold";
      case StoreHit::Near: return "near";
      case StoreHit::Exact: return "exact";
    }
    return "unknown";
}

MappingStore::MappingStore(std::string path) : path_(std::move(path))
{
    if (!path_.empty())
        load();
}

namespace {

std::string
keyFromParts(const std::string &wl_sig_hex, const std::string &arch_sig,
             Objective objective, bool sparse)
{
    return wl_sig_hex + "|" + arch_sig + "|" + objectiveName(objective) +
        (sparse ? "|sparse" : "|dense");
}

} // namespace

std::string
MappingStore::keyOf(const Workload &wl, const ArchConfig &arch,
                    Objective objective, bool sparse)
{
    return keyFromParts(fnv1a64Hex(wl.signature()),
                        fnv1a64Hex(arch.signature()), objective, sparse);
}

std::string
MappingStore::encodeEntry(const StoreEntry &e)
{
    JsonValue j = JsonValue::object();
    j["v"] = 1;
    j["objective"] = objectiveName(e.objective);
    j["model"] = e.sparse ? "sparse" : "dense";
    j["arch_sig"] = e.arch_sig;
    j["workload"] = serializeWorkload(e.workload);
    j["mapping"] = serializeMapping(e.mapping);
    j["score"] = e.score;
    j["energy_uj"] = e.energy_uj;
    j["latency_cycles"] = e.latency_cycles;
    j["samples"] = e.samples;
    return j.dump();
}

std::optional<StoreEntry>
MappingStore::decodeEntry(const std::string &line)
{
    const auto doc = parseJson(line);
    if (!doc || !doc->isObject())
        return std::nullopt;
    if (doc->getInt("v", 0) != 1)
        return std::nullopt;
    const auto objective = objectiveFromName(
        doc->getString("objective", ""));
    if (!objective)
        return std::nullopt;
    const auto wl = parseWorkload(doc->getString("workload", ""));
    if (!wl)
        return std::nullopt;
    const auto mapping = parseMapping(doc->getString("mapping", ""));
    if (!mapping)
        return std::nullopt;
    const std::string model = doc->getString("model", "dense");
    if (model != "dense" && model != "sparse")
        return std::nullopt;
    StoreEntry e;
    e.workload = *wl;
    e.arch_sig = doc->getString("arch_sig", "");
    e.objective = *objective;
    e.sparse = model == "sparse";
    e.mapping = *mapping;
    e.score = doc->getDouble("score", 0.0);
    e.energy_uj = doc->getDouble("energy_uj", 0.0);
    e.latency_cycles = doc->getDouble("latency_cycles", 0.0);
    e.samples = static_cast<uint64_t>(doc->getInt("samples", 0));
    if (e.arch_sig.size() != 16 || !(e.score > 0.0) ||
        !std::isfinite(e.score))
        return std::nullopt;
    return e;
}

size_t
MappingStore::load()
{
    MutexLock lk(mu_);
    best_.clear();
    malformed_ = 0;
    dead_ = 0;
    tail_unterminated_ = false;
    if (path_.empty())
        return 0;
    FILE *f = std::fopen(path_.c_str(), "r");
    if (!f)
        return 0; // Missing file = fresh store.
    std::string line;
    size_t lines = 0;
    int c;
    while (true) {
        line.clear();
        while ((c = std::fgetc(f)) != EOF && c != '\n')
            line += static_cast<char>(c);
        if (line.empty() && c == EOF)
            break;
        if (c == EOF && !line.empty())
            tail_unterminated_ = true; // crash mid-append
        ++lines;
        const auto entry = decodeEntry(line);
        if (!entry) {
            // Torn tail or bit-rotted line: skip, keep the rest.
            ++malformed_;
            continue;
        }
        const std::string key =
            keyFromParts(fnv1a64Hex(entry->workload.signature()),
                         entry->arch_sig, entry->objective,
                         entry->sparse);
        const auto it = best_.find(key);
        if (it == best_.end()) {
            best_.emplace(key, *entry);
        } else {
            ++dead_;
            if (entry->score < it->second.score)
                it->second = *entry;
        }
        if (c == EOF)
            break;
    }
    std::fclose(f);
    (void)lines;
    return best_.size();
}

MappingStore::Lookup
MappingStore::lookup(const Workload &wl, const ArchConfig &arch,
                     Objective objective, bool sparse,
                     double max_distance) const
{
    MutexLock lk(mu_);
    Lookup out;
    const auto it = best_.find(keyOf(wl, arch, objective, sparse));
    if (it != best_.end()) {
        out.hit = StoreHit::Exact;
        out.entry = it->second;
        out.distance = 0.0;
        return out;
    }
    // Nearest same-arch, same-objective neighbor whose mapping can seed
    // this workload's map space (BoundRatio: total |log2| bound drift).
    const std::string arch_sig = fnv1a64Hex(arch.signature());
    double best_dist = std::numeric_limits<double>::infinity();
    const StoreEntry *best_entry = nullptr;
    const std::string *best_key = nullptr;
    // Min-reduction with a total order (distance, then key), so the
    // chosen neighbor is independent of hash-map iteration order.
    // mse-lint: allow(unordered-iter) order-independent min-reduction
    for (const auto &kv : best_) {
        const StoreEntry &e = kv.second;
        if (e.arch_sig != arch_sig || e.objective != objective ||
            e.sparse != sparse)
            continue;
        const double d = workloadDistance(SimilarityMetric::BoundRatio,
                                          wl, e.workload);
        if (d < best_dist ||
            (d == best_dist && best_key && kv.first < *best_key)) {
            best_dist = d;
            best_entry = &e;
            best_key = &kv.first;
        }
    }
    if (best_entry && best_dist <= max_distance) {
        out.hit = StoreHit::Near;
        out.entry = *best_entry;
        out.distance = best_dist;
    }
    return out;
}

bool
MappingStore::appendLocked(const StoreEntry &e)
{
    if (path_.empty())
        return true;
    FILE *f = std::fopen(path_.c_str(), "a");
    if (!f)
        return false;
    std::string line;
    if (tail_unterminated_) {
        // Seal the torn tail so this record starts on its own line
        // (the half-line stays on disk and is skipped at load).
        line += '\n';
        tail_unterminated_ = false;
    }
    line += encodeEntry(e);
    line += '\n';
    const bool ok =
        std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    return ok;
}

bool
MappingStore::recordIfBetter(const Workload &wl, const ArchConfig &arch,
                             Objective objective, bool sparse,
                             const Mapping &mapping, double score,
                             double energy_uj, double latency_cycles,
                             uint64_t samples)
{
    if (!(score > 0.0) || !std::isfinite(score))
        return false;
    MutexLock lk(mu_);
    const std::string key = keyOf(wl, arch, objective, sparse);
    const auto it = best_.find(key);
    if (it != best_.end() && it->second.score <= score)
        return false;

    StoreEntry e;
    e.workload = wl;
    e.arch_sig = fnv1a64Hex(arch.signature());
    e.objective = objective;
    e.sparse = sparse;
    e.mapping = mapping;
    e.score = score;
    e.energy_uj = energy_uj;
    e.latency_cycles = latency_cycles;
    e.samples = samples;

    if (it != best_.end()) {
        it->second = e;
        ++dead_;
    } else {
        best_.emplace(key, e);
    }
    appendLocked(e);
    if (dead_ > std::max<size_t>(16, best_.size()))
        compactLocked();
    return true;
}

bool
MappingStore::compactLocked()
{
    if (path_.empty()) {
        dead_ = 0;
        return true;
    }
    const std::string tmp = path_ + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return false;
    bool ok = true;
    // Write records in sorted key order: the compacted file's bytes
    // must not depend on hash-map iteration order, so two stores that
    // hold identical entries compact to identical files.
    std::vector<const std::string *> keys;
    keys.reserve(best_.size());
    // mse-lint: allow(unordered-iter) keys are sorted before use
    for (const auto &kv : best_)
        keys.push_back(&kv.first);
    std::sort(keys.begin(), keys.end(),
              [](const std::string *a, const std::string *b) {
                  return *a < *b;
              });
    for (const std::string *key : keys) {
        const std::string line = encodeEntry(best_.at(*key));
        ok = ok &&
            std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
            std::fputc('\n', f) != EOF;
    }
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    dead_ = 0;
    tail_unterminated_ = false;
    return true;
}

bool
MappingStore::compact()
{
    MutexLock lk(mu_);
    return compactLocked();
}

size_t
MappingStore::size() const
{
    MutexLock lk(mu_);
    return best_.size();
}

size_t
MappingStore::malformedLines() const
{
    MutexLock lk(mu_);
    return malformed_;
}

size_t
MappingStore::deadLines() const
{
    MutexLock lk(mu_);
    return dead_;
}

} // namespace mse

/**
 * @file
 * Minimal POSIX TCP helpers for the line-delimited-JSON front end.
 *
 * Everything here is loopback-oriented plumbing: bind/listen with an
 * ephemeral-port option, accept with a poll timeout (so the accept loop
 * can observe a stop flag), connect, full-buffer sends, and a buffered
 * line reader with a per-read timeout and a hard line-length cap — the
 * two knobs that keep a slow or malicious peer from pinning a
 * connection thread or ballooning memory.
 */
#pragma once

#include <cstdint>
#include <string>

namespace mse {

/**
 * Bind + listen on 127.0.0.1:port (port 0 = kernel-assigned ephemeral
 * port; read it back with boundPort). Returns the listening fd, or -1
 * with *err set.
 */
int listenTcp(uint16_t port, std::string *err);

/** Port a listening socket is actually bound to (0 on error). */
uint16_t boundPort(int listen_fd);

/**
 * Accept one connection, waiting at most timeout_ms. Returns the
 * connection fd, -1 on timeout (poll again), or -2 on a real error.
 */
int acceptWithTimeout(int listen_fd, int timeout_ms);

/** Connect to host:port. Returns the fd, or -1 with *err set. */
int connectTcp(const std::string &host, uint16_t port, std::string *err);

/** Write the whole buffer (retrying short writes); false on error. */
bool sendAll(int fd, const void *data, size_t n);

/** sendAll of line + '\n'. */
bool sendLine(int fd, const std::string &line);

/** Put fd into O_NONBLOCK mode; false on error. */
bool setNonBlocking(int fd);

/** Close a socket fd (ignores errors). */
void closeSocket(int fd);

/**
 * True if the peer has closed or errored the connection (non-blocking
 * peek). Used to notice a dropped client while its search is running.
 */
bool peerClosed(int fd);

/** Buffered newline-delimited reader with timeout and length cap. */
class LineReader
{
  public:
    enum class Status
    {
        Line,    ///< *out holds one line (newline stripped).
        Timeout, ///< Nothing arrived within timeout_ms.
        Closed,  ///< Peer closed cleanly (EOF).
        TooLong, ///< Line exceeded max_line bytes; connection is junk.
        Error,   ///< Read error.
    };

    explicit LineReader(int fd, size_t max_line = 1 << 20)
        : fd_(fd), max_line_(max_line)
    {
    }

    /**
     * Read the next line, waiting at most timeout_ms for new bytes
     * (the timeout applies per poll, i.e. to peer silence, not to
     * total line duration).
     */
    Status readLine(std::string *out, int timeout_ms);

  private:
    int fd_;
    size_t max_line_;
    std::string buf_;
    bool eof_ = false;
};

} // namespace mse

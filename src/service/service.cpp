#include "service/service.hpp"

#include <chrono>
#include <cstdlib>

#include "common/fault_injection.hpp"
#include "common/math_util.hpp"
#include "common/thread_pool.hpp"
#include "core/model_sweep.hpp"
#include "mapping/mapping_io.hpp"
#include "service/error_codes.hpp"

namespace mse {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

SearchReply
errorReply(const char *code, const std::string &message,
           int retry_after_ms = 0)
{
    SearchReply r;
    r.ok = false;
    r.error_code = code;
    r.error_message = message;
    r.retry_after_ms = retry_after_ms;
    return r;
}

/** A ticket whose future is already satisfied with `reply`. */
MseService::Ticket
immediateTicket(SearchReply reply)
{
    std::promise<SearchReply> p;
    MseService::Ticket t;
    t.reply = p.get_future();
    t.cancel = std::make_shared<CancelToken>();
    p.set_value(std::move(reply));
    return t;
}

} // namespace

size_t
MseService::defaultExecutors()
{
    // getenv is safe here: nothing in this process calls
    // setenv/putenv after main() starts.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("MSE_EXECUTORS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<size_t>(v > 64 ? 64 : v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

MseService::MseService(ServiceConfig cfg)
    : cfg_(std::move(cfg)), store_(cfg_.store_path, cfg_.store_fsync),
      start_time_(nowSeconds())
{
    n_executors_ = cfg_.executors < 1 ? 1
        : cfg_.executors > 64        ? 64
                                     : cfg_.executors;
    executors_.reserve(n_executors_);
    for (size_t i = 0; i < n_executors_; ++i)
        executors_.emplace_back([this] { executorLoop(); });
}

MseService::~MseService()
{
    stop(true);
    store_.compact();
}

MseService::Ticket
MseService::submit(SearchRequest req, CompletionFn on_complete)
{
    metrics_.onRequest("search");

    // Rejections resolve the future before returning, so the
    // completion hook can fire synchronously right here — the
    // "after the future is ready" contract holds on both paths.
    const auto reject = [&](SearchReply reply) {
        Ticket t = immediateTicket(std::move(reply));
        if (on_complete)
            on_complete();
        return t;
    };

    // Validate before queueing so bad requests fail fast and never
    // occupy a queue slot.
    if (req.workload.numDims() <= 0 ||
        req.workload.numTensors() <= 0) {
        metrics_.onError(wire_errors::kBadWorkload);
        return reject(
            errorReply(wire_errors::kBadWorkload, "workload has no dimensions"));
    }
    if (req.arch.numLevels() <= 0) {
        metrics_.onError(wire_errors::kBadArch);
        return reject(
            errorReply(wire_errors::kBadArch, "arch has no storage levels"));
    }
    if (!makeMapperFactory(req.mapper)) {
        metrics_.onError(wire_errors::kUnknownMapper);
        return reject(errorReply(
            wire_errors::kUnknownMapper, "no mapper named '" + req.mapper + "'"));
    }
    if (hooks_.accepts_key) {
        const std::string key = MappingStore::keyOf(
            req.workload, req.arch, req.objective, req.sparse);
        if (!hooks_.accepts_key(key)) {
            metrics_.onError(wire_errors::kWrongShard);
            SearchReply r = errorReply(
                wire_errors::kWrongShard,
                "key " + key + " is not served by this shard");
            if (hooks_.owner_of)
                r.error_owner = hooks_.owner_of(key);
            return reject(std::move(r));
        }
    }

    auto pending = std::make_unique<Pending>();
    pending->req = std::move(req);
    pending->cancel = std::make_shared<CancelToken>();
    pending->on_complete = std::move(on_complete);
    const double deadline = pending->req.deadline_seconds > 0.0
        ? pending->req.deadline_seconds
        : cfg_.default_deadline_seconds;
    pending->deadline_abs = nowSeconds() + deadline;

    Ticket t;
    t.reply = pending->promise.get_future();
    t.cancel = pending->cancel;
    {
        MutexLock lk(mu_);
        if (stopping_) {
            metrics_.onError(wire_errors::kShuttingDown);
            on_complete = std::move(pending->on_complete);
            return reject(
                errorReply(wire_errors::kShuttingDown, "service is draining",
                           cfg_.retry_hint_ms));
        }
        if (queue_.size() >= cfg_.queue_capacity) {
            metrics_.onRejectQueueFull();
            on_complete = std::move(pending->on_complete);
            return reject(errorReply(
                wire_errors::kQueueFull,
                "request queue is at capacity (" +
                    std::to_string(cfg_.queue_capacity) + ")",
                cfg_.retry_hint_ms));
        }
        queue_.push_back(std::move(pending));
        metrics_.onEnqueue();
    }
    queue_cv_.notify_one();
    return t;
}

SearchReply
MseService::search(SearchRequest req)
{
    return submit(std::move(req)).reply.get();
}

void
MseService::finish(Pending &p, SearchReply reply)
{
    p.promise.set_value(std::move(reply));
    if (p.on_complete)
        p.on_complete();
}

void
MseService::executorLoop()
{
    while (true) {
        std::unique_ptr<Pending> pending;
        std::vector<std::unique_ptr<Pending>> abandoned;
        {
            MutexUniqueLock lk(mu_);
            // Explicit wait loop: guarded reads stay in this scope for
            // the thread-safety analysis (lambdas lose lock state).
            while (!stopping_ && queue_.empty())
                queue_cv_.wait(lk.native());
            if (stopping_ && (!drain_on_stop_ || queue_.empty())) {
                // Abandon what's left (non-drain stop only); replies
                // and completion hooks fire outside the lock.
                abandoned.reserve(queue_.size());
                for (auto &p : queue_)
                    abandoned.push_back(std::move(p));
                queue_.clear();
            } else {
                if (queue_.empty())
                    continue;
                pending = std::move(queue_.front());
                queue_.pop_front();
                running_.push_back(pending->cancel);
            }
        }
        if (!pending) {
            for (auto &p : abandoned)
                finish(*p, errorReply(wire_errors::kShuttingDown,
                                      "service stopped"));
            return;
        }
        metrics_.onDequeue();

        SearchReply reply;
        if (pending->cancel->cancelled()) {
            reply = errorReply(wire_errors::kCancelled,
                               "request cancelled while queued");
            metrics_.onError(wire_errors::kCancelled);
        } else if (nowSeconds() >= pending->deadline_abs) {
            reply = errorReply(wire_errors::kDeadlineExceeded,
                               "deadline expired while queued");
            metrics_.onError(wire_errors::kDeadlineExceeded);
        } else if (n_executors_ > 1) {
            // N concurrent searches must not each claim the global
            // pool (one-top-level-caller contract): pin this worker's
            // evaluation inline on its own lane. Bit-identical by the
            // pool-size determinism contract.
            ThreadPool::ScopedInline inline_scope;
            reply = runSearch(pending->req, pending->cancel,
                              pending->deadline_abs);
        } else {
            reply = runSearch(pending->req, pending->cancel,
                              pending->deadline_abs);
        }
        {
            MutexLock lk(mu_);
            for (auto it = running_.begin(); it != running_.end(); ++it) {
                if (*it == pending->cancel) {
                    running_.erase(it);
                    break;
                }
            }
        }
        finish(*pending, std::move(reply));
    }
}

SearchReply
MseService::runSearch(const SearchRequest &req,
                      const CancelTokenPtr &cancel, double deadline_abs)
{
    const double t0 = nowSeconds();

    MseEngine engine(req.arch);
    MseOptions opts;
    opts.budget.max_samples =
        req.max_samples > 0 ? req.max_samples : cfg_.default_samples;
    opts.budget.max_seconds = deadline_abs - t0;
    opts.budget.cancel = cancel;
    opts.objective = req.objective;
    opts.sparse = req.sparse;
    opts.update_replay = false;
    opts.warm_start = WarmStartStrategy::None;

    // Store warm-start: seed the engine's replay buffer with the best
    // known mapping for this key (or its nearest same-arch neighbor);
    // warmStartSeeds then re-scales it into this map space via
    // MapSpace::scaleFrom (Sec. 5.1.2).
    MappingStore::Lookup lk;
    if (req.warm_start) {
        lk = store_.lookup(req.workload, req.arch, req.objective,
                           req.sparse, cfg_.warm_max_distance);
        if (lk.hit != StoreHit::Miss) {
            CostResult seed_cost;
            seed_cost.valid = true;
            seed_cost.edp = lk.entry.score;
            seed_cost.energy_uj = lk.entry.energy_uj;
            seed_cost.latency_cycles = lk.entry.latency_cycles;
            engine.replay().push(lk.entry.workload, lk.entry.mapping,
                                 seed_cost);
            opts.warm_start = WarmStartStrategy::BySimilarity;
            opts.warm_seeds = req.warm_seeds;
        }
    }

    const uint64_t seed = req.seed_set
        ? req.seed
        : fnv1a64(layerSignature(req.workload, req.arch));
    Rng rng(seed);
    const auto mapper = makeMapperFactory(req.mapper)();
    const MseOutcome outcome =
        engine.optimize(req.workload, *mapper, opts, rng);

    SearchReply r;
    r.wall_seconds = nowSeconds() - t0;
    // Cluster observability only: outside a cluster both fields stay
    // empty and off the wire (single-daemon replies are unchanged).
    if (!hooks_.self.empty()) {
        r.served_by = hooks_.self;
        r.store_key = MappingStore::keyOf(req.workload, req.arch,
                                          req.objective, req.sparse);
    }
    r.store_hit = lk.hit;
    r.warm_distance = lk.distance;
    r.samples = outcome.search.log.samples;
    r.samples_to_converge = outcome.samples_to_converge;
    r.samples_to_incumbent = r.samples_to_converge;
    if (lk.hit != StoreHit::Miss) {
        // How fast did the search reach the stored incumbent's quality?
        const auto &trace = outcome.search.log.best_edp_per_sample;
        const double target = lk.entry.score * (1.0 + 1e-9);
        r.samples_to_incumbent = outcome.search.log.samples;
        for (size_t i = 0; i < trace.size(); ++i) {
            if (trace[i] <= target) {
                r.samples_to_incumbent = i + 1;
                break;
            }
        }
    }
    r.eval_cache_hits = outcome.eval_cache_hits;
    r.eval_cache_misses = outcome.eval_cache_misses;
    r.cancelled = cancel->cancelled();
    r.timed_out = !r.cancelled && nowSeconds() >= deadline_abs;

    if (!outcome.search.found()) {
        r.ok = false;
        if (r.cancelled) {
            r.error_code = wire_errors::kCancelled;
            r.error_message = "cancelled before any valid mapping";
        } else if (r.timed_out) {
            r.error_code = wire_errors::kDeadlineExceeded;
            r.error_message = "deadline before any valid mapping";
        } else {
            r.error_code = wire_errors::kNoValidMapping;
            r.error_message =
                "search budget exhausted without a legal mapping";
        }
    } else {
        r.ok = true;
        r.mapping = serializeMapping(outcome.search.best_mapping);
        r.score = outcome.search.best_cost.edp;
        r.edp = outcome.search.best_cost.energy_uj *
            outcome.search.best_cost.latency_cycles;
        r.energy_uj = outcome.search.best_cost.energy_uj;
        r.latency_cycles = outcome.search.best_cost.latency_cycles;
        if (cfg_.store_writeback) {
            r.store_improved = store_.recordIfBetter(
                req.workload, req.arch, req.objective, req.sparse,
                outcome.search.best_mapping, r.score, r.energy_uj,
                r.latency_cycles, r.samples);
        }
        // Replication fires only on *local* improvements — merges via
        // applyReplication never re-enter here, so a record cannot
        // bounce between peers.
        if (r.store_improved && hooks_.on_improved) {
            StoreEntry e;
            e.workload = req.workload;
            e.arch_sig = fnv1a64Hex(req.arch.signature());
            e.objective = req.objective;
            e.sparse = req.sparse;
            e.mapping = outcome.search.best_mapping;
            e.score = r.score;
            e.energy_uj = r.energy_uj;
            e.latency_cycles = r.latency_cycles;
            e.samples = r.samples;
            hooks_.on_improved(e);
        }
    }

    // Degraded-store transition (disk append failed, store went
    // read-only): count it once — exchange() arbitrates when several
    // executors observe the transition together. The service keeps
    // answering; cold and in-memory-warm searches don't need the disk.
    if (store_.degraded() && !store_degraded_noted_.exchange(true))
        metrics_.onStoreDegraded();

    ServiceMetrics::SearchSample sample;
    sample.latency_seconds = r.wall_seconds;
    sample.store_kind = lk.hit == StoreHit::Exact ? 2
        : lk.hit == StoreHit::Near                ? 1
                                                  : 0;
    sample.store_improved = r.store_improved;
    sample.timed_out = r.timed_out;
    sample.cancelled = r.cancelled;
    sample.samples = r.samples;
    sample.eval_cache_hits = r.eval_cache_hits;
    sample.eval_cache_misses = r.eval_cache_misses;
    metrics_.onSearchDone(sample);
    if (!r.ok)
        metrics_.onError(r.error_code.c_str());
    return r;
}

std::pair<size_t, size_t>
MseService::applyReplication(const std::vector<StoreEntry> &entries)
{
    size_t merged = 0;
    for (const StoreEntry &e : entries)
        if (store_.mergeEntry(e))
            ++merged;
    const size_t ignored = entries.size() - merged;
    metrics_.onReplicate(merged, ignored);
    if (store_.degraded() && !store_degraded_noted_.exchange(true))
        metrics_.onStoreDegraded();
    return {merged, ignored};
}

std::vector<StoreEntry>
MseService::syncEntries(
    const std::vector<std::pair<std::string, double>> &digest,
    size_t max_entries) const
{
    return store_.entriesBetterThan(digest, max_entries);
}

void
MseService::stop(bool drain)
{
    bool joinable = false;
    for (auto &t : executors_)
        joinable = joinable || t.joinable();
    {
        MutexLock lk(mu_);
        if (stopping_ && !joinable)
            return;
        stopping_ = true;
        drain_on_stop_ = drain;
        if (!drain) {
            for (auto &c : running_)
                c->requestCancel();
        }
    }
    queue_cv_.notify_all();
    for (auto &t : executors_)
        if (t.joinable())
            t.join();
}

JsonValue
MseService::statsJson() const
{
    JsonValue j = metrics_.toJson();
    j["uptime_s"] = nowSeconds() - start_time_;
    JsonValue &store = j["store"]; // extends the hit-split block
    store["entries"] = store_.size();
    store["path"] = store_.path().empty() ? "(in-memory)"
                                          : store_.path();
    store["malformed_lines_skipped"] = store_.malformedLines();
    store["superseded_lines"] = store_.deadLines();
    store["degraded"] = store_.degraded();
    store["append_failures"] = store_.appendFailures();
    {
        // Per-key accepted-record counts (sorted): which shards of the
        // key space this daemon is actually serving — the cluster
        // harness reads this to verify ring placement.
        JsonValue &per_key = store["per_key"];
        per_key = JsonValue::object();
        for (const auto &kv : store_.keyAppendCounts())
            per_key[kv.first] = kv.second;
    }
    const FaultInjector &faults = FaultInjector::global();
    if (faults.armed()) {
        // Make injected-fault runs self-identifying in dashboards and
        // harness logs: a degraded store with faults armed is a test,
        // without them an incident.
        JsonValue &f = j["faults"];
        f["armed"] = true;
        f["injected_total"] = faults.totalInjected();
    }
    {
        MutexLock lock(mu_);
        JsonValue &q = j["queue"];
        q["depth"] = queue_.size();
        q["running"] = running_.size();
    }
    JsonValue &cfg = j["config"];
    cfg["executors"] = n_executors_;
    cfg["queue_capacity"] = cfg_.queue_capacity;
    cfg["default_deadline_seconds"] = cfg_.default_deadline_seconds;
    cfg["default_samples"] = cfg_.default_samples;
    cfg["warm_max_distance"] = cfg_.warm_max_distance;
    cfg["store_writeback"] = cfg_.store_writeback;
    if (!hooks_.self.empty())
        j["self"] = hooks_.self;
    if (hooks_.augment_stats)
        hooks_.augment_stats(j);
    return j;
}

} // namespace mse

/**
 * @file
 * Line-delimited-JSON TCP front end over MseService.
 *
 * Thread-per-connection on loopback: the accept loop polls with a
 * short timeout so a stop request (e.g. from a SIGINT/SIGTERM handler
 * via requestStop(), which is async-signal-safe) is observed promptly.
 * Connection threads likewise poll, so shutdown needs no thread
 * cancellation.
 *
 * Robustness rules, per line:
 *  - malformed JSON / bad request  -> structured error reply, keep
 *    the connection (a client bug shouldn't cost the session);
 *  - oversized line                -> structured error reply, then
 *    drop the session (framing is lost, the rest of the stream is
 *    junk);
 *  - peer silent past io_timeout   -> hang up (slow-loris guard);
 *  - peer disconnects mid-search   -> the request's CancelToken fires
 *    and the search stops at its next generation boundary.
 *
 * stop() drains: accepting stops first, live connections finish their
 * in-flight request, then the service queue drains.
 */
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "service/service.hpp"

namespace mse {

/** TCP front-end configuration. */
struct ServerConfig
{
    /** Listen port on 127.0.0.1; 0 = kernel-assigned (see port()). */
    uint16_t port = 0;

    /** Close a connection whose peer stays silent this long. */
    int io_timeout_ms = 30000;

    /** Hard cap on one request line (oversized => error + close). */
    size_t max_line_bytes = 1 << 20;

    /** Connections beyond this are refused with an error reply. */
    size_t max_connections = 32;
};

/** The TCP server; owns the accept loop and connection threads. */
class ServiceServer
{
  public:
    ServiceServer(MseService &service, ServerConfig cfg = {});
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /** Bind, listen, spawn the accept loop. False + *err on failure. */
    bool start(std::string *err);

    /** Actual listening port (after start; useful with cfg.port = 0). */
    uint16_t port() const { return port_; }

    /**
     * Flag the server to stop. Async-signal-safe (only touches an
     * atomic); the accept loop notices within one poll interval.
     */
    void requestStop() { stop_flag_.store(true); }

    /** True once requestStop() fired (or stop() ran). */
    bool stopRequested() const { return stop_flag_.load(); }

    /** Stop accepting, join all threads, drain the service. */
    void stop() EXCLUDES(conn_mu_);

  private:
    void acceptLoop() EXCLUDES(conn_mu_);
    void handleConnection(int fd);

    /** Run one search, cancelling if the peer hangs up mid-search. */
    SearchReply searchWatchingPeer(int fd, SearchRequest req);

    MseService &service_;
    ServerConfig cfg_;
    int listen_fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stop_flag_{false};
    std::atomic<size_t> live_connections_{0};
    std::thread accept_thread_;
    Mutex conn_mu_;
    std::vector<std::thread> conn_threads_ GUARDED_BY(conn_mu_);
};

} // namespace mse

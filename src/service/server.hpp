/**
 * @file
 * Line-delimited-JSON TCP front end over MseService.
 *
 * Two interchangeable backends behind one facade (ServerConfig::
 * backend), serving the identical wire protocol:
 *
 *  - **Event** (default): a single-threaded epoll/poll event loop
 *    (src/service/event_server.cpp) multiplexing every connection —
 *    non-blocking accept, per-connection read/write buffers with a
 *    line-framing state machine, request pipelining with replies in
 *    request order, steady-clock idle deadlines, and searches executed
 *    by MseService's executor workers. Scales to thousands of mostly
 *    idle connections at one thread of front-end cost.
 *  - **Threaded**: the original thread-per-connection implementation,
 *    kept as the behavioral reference — tests assert the two backends
 *    produce byte-identical reply streams (modulo timing fields).
 *
 * Robustness rules, per line (both backends):
 *  - malformed JSON / bad request  -> structured error reply, keep
 *    the connection (a client bug shouldn't cost the session);
 *  - oversized line                -> structured error reply, then
 *    drop the session (framing is lost, the rest of the stream is
 *    junk);
 *  - peer silent past io_timeout   -> hang up (slow-loris guard);
 *  - peer disconnects mid-search   -> the request's CancelToken fires
 *    and the search stops at its next generation boundary.
 *
 * stop() drains: accepting stops first, in-flight requests are
 * cancelled (best-so-far replies still go out), then the service
 * queue drains.
 */
#pragma once

#include <memory>
#include <string>

#include "service/poller.hpp"
#include "service/service.hpp"

namespace mse {

/** TCP front-end configuration. */
struct ServerConfig
{
    /** Listen port on 127.0.0.1; 0 = kernel-assigned (see port()). */
    uint16_t port = 0;

    /** Close a connection whose peer stays silent this long. */
    int io_timeout_ms = 30000;

    /** Hard cap on one request line (oversized => error + close). */
    size_t max_line_bytes = 1 << 20;

    /** Connections beyond this are refused with an error reply. */
    size_t max_connections = 32;

    /** Front-end implementation. */
    enum class Backend
    {
        Event,    ///< epoll/poll event loop (default).
        Threaded, ///< thread-per-connection reference implementation.
    };
    Backend backend = Backend::Event;

    /** Readiness backend for Backend::Event (Auto = epoll on Linux
     *  unless MSE_EVENT_BACKEND=poll). */
    Poller::Kind poller = Poller::Kind::Auto;

    /**
     * Pipelining cap: in-flight requests per connection before the
     * server pauses reading that socket (backpressure; nothing is
     * dropped — bytes queue in the kernel and the client blocks).
     */
    size_t max_pipeline = 64;

    /** Pending reply bytes per connection before reads pause (slow-
     *  reader guard; the loop itself never blocks on a full socket). */
    size_t max_buffered_bytes = 4u << 20;
};

/** Internal server implementation interface (one per Backend). */
class ServerBackend
{
  public:
    virtual ~ServerBackend() = default;
    virtual bool start(std::string *err) = 0;
    virtual void stop() = 0;
    virtual uint16_t port() const = 0;
    virtual void requestStop() = 0; ///< Async-signal-safe.
    virtual bool stopRequested() const = 0;
};

/** The TCP server facade; owns whichever backend cfg selects. */
class ServiceServer
{
  public:
    ServiceServer(MseService &service, ServerConfig cfg = {});
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /** Bind, listen, spawn the backend. False + *err on failure. */
    bool start(std::string *err);

    /** Actual listening port (after start; useful with cfg.port = 0). */
    uint16_t port() const { return impl_->port(); }

    /**
     * Flag the server to stop. Async-signal-safe (an atomic store
     * plus, for the event backend, one byte written to a wake pipe).
     */
    void requestStop() { impl_->requestStop(); }

    /** True once requestStop() fired (or stop() ran). */
    bool stopRequested() const { return impl_->stopRequested(); }

    /** Stop accepting, drain in-flight work, stop the service. */
    void stop();

  private:
    std::unique_ptr<ServerBackend> impl_; ///< Never null after ctor.
};

} // namespace mse

/**
 * @file
 * EventServer: the epoll/poll event-loop backend of ServiceServer.
 *
 * One loop thread multiplexes the listening socket, a self-wake pipe,
 * and every client connection (all non-blocking, level-triggered via
 * Poller). Searches never run on the loop thread: they are submitted
 * to MseService's executor workers with a completion hook that pushes
 * the connection id onto a queue and pokes the wake pipe, so the loop
 * wakes exactly when a reply becomes writable.
 *
 * Per-connection state machine (full invariants in DESIGN.md Sec. 11):
 *
 *   bytes -> in buffer -> line framing -> reply slots (FIFO) ->
 *   out buffer -> socket
 *
 *  - *Pipelining*: each parsed line appends one reply slot; slots are
 *    flushed strictly from the front, so replies leave in request
 *    order no matter which executor finishes first.
 *  - *Backpressure*: when a connection has max_pipeline in-flight
 *    slots or max_buffered_bytes pending output, the loop stops
 *    reading that socket (level-triggered readiness keeps the
 *    residual bytes claimable later); a full send buffer parks the
 *    remaining output and arms write interest. The loop itself never
 *    blocks on any one connection.
 *  - *Idle deadlines*: each connection carries an absolute
 *    steady-clock deadline, refreshed on any byte of progress; the
 *    wait timeout is the nearest deadline, so timeouts fire on time
 *    rather than in kPollMs increments. A connection with requests in
 *    flight is never idle.
 *  - *Disconnect*: EOF/error cancels the connection's in-flight
 *    searches (their executor slots finish early and are dropped on
 *    the floor); other connections are untouched.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "service/poller.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace mse {

/** Event-loop server backend (see file comment). */
class EventServer : public ServerBackend
{
  public:
    EventServer(MseService &service, ServerConfig cfg);
    ~EventServer() override;

    bool start(std::string *err) override;
    void stop() override;
    uint16_t port() const override { return port_; }
    void requestStop() override;
    bool stopRequested() const override { return stop_flag_.load(); }

  private:
    /** One queued reply, kept in request order. */
    struct Slot
    {
        bool done = false;   ///< reply is final (immediate or fetched).
        std::string reply;   ///< framed JSON, no trailing newline.
        std::future<SearchReply> fut; ///< valid while a search runs.
        CancelTokenPtr cancel;        ///< cancels that search.
    };

    /** Per-connection state. */
    struct Conn
    {
        int fd = -1;
        uint64_t id = 0;       ///< monotonic; survives fd reuse.
        std::string in;        ///< unparsed request bytes.
        std::string out;       ///< unsent reply bytes.
        size_t out_off = 0;    ///< sent prefix of out.
        std::deque<Slot> slots;
        int64_t idle_deadline_ms = 0; ///< steady clock, absolute.
        bool want_close = false; ///< close after out drains.
        bool paused = false;     ///< read interest dropped (backpressure).
        bool write_armed = false;
        bool dead = false;       ///< awaiting reap (fd still open).
    };

    void loop();
    void acceptReady();
    void drainWake();
    void drainCompletions();
    /** Read until EAGAIN, parse lines, enqueue slots. */
    void readInput(Conn *c);
    /** Frame complete lines out of c->in into slots. */
    void parseLines(Conn *c);
    void handleLine(Conn *c, const std::string &line);
    /** Serialize ready head-of-line slots and write until EAGAIN. */
    void flushOut(Conn *c);
    /** parse/flush/resume fixpoint after any progress on c. */
    void pump(Conn *c);
    void pushDone(Conn *c, std::string reply);
    void setPaused(Conn *c, bool paused);
    void destroyConn(Conn *c, bool cancel_inflight);
    void expireIdle(int64_t now_ms);
    void reapDead();
    int64_t nextTimeoutMs(int64_t now_ms) const;
    void touch(Conn *c);
    /** Wake the loop from another thread (completion, stop). */
    void wakeLoop();

    MseService &service_;
    ServerConfig cfg_;
    int listen_fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stop_flag_{false};
    int wake_r_ = -1;
    std::atomic<int> wake_w_{-1}; ///< atomic: requestStop is signal ctx.
    Poller poller_;
    std::thread loop_thread_;

    // Loop-thread-only state. conns_ is an ordered map: the loop
    // iterates it (idle scan, drain), and deterministic fd order keeps
    // those passes reproducible under MSE_FAULTS replay.
    uint64_t next_conn_id_ = 1;
    std::map<int, std::unique_ptr<Conn>> conns_; ///< by fd.
    std::unordered_map<uint64_t, Conn *> by_id_; ///< never iterated.
    std::vector<std::unique_ptr<Conn>> dead_; ///< closed at reap.
    std::vector<Poller::Event> events_;

    // Executor -> loop handoff: connection ids with a finished search.
    Mutex done_mu_;
    std::vector<uint64_t> done_ids_ GUARDED_BY(done_mu_);
};

} // namespace mse

/**
 * @file
 * The map-space exploration engine (the canonical MSE framework of
 * Fig. 2 in the paper).
 *
 * MseEngine ties the pieces together: it builds the map space for an
 * incoming workload, constructs the evaluation function (dense or sparse
 * cost model, or a caller-provided wrapper such as the sparsity-aware
 * scorer), applies warm-start seeding from its replay buffer, runs the
 * chosen mapper under a budget, maintains the (energy, latency) Pareto
 * frontier of every evaluated sample, and finally records the optimized
 * mapping back into the replay buffer for future warm-starts.
 */
#pragma once

#include <memory>

#include "common/pareto.hpp"
#include "core/convergence.hpp"
#include "core/objective.hpp"
#include "core/replay_buffer.hpp"
#include "core/warm_start.hpp"
#include "mappers/mapper.hpp"
#include "sparse/sparse_model.hpp"

namespace mse {

/** Per-run options. */
struct MseOptions
{
    SearchBudget budget;

    /**
     * Scalar the mapper minimizes. Edp is the raw cost model; any other
     * objective wraps the evaluator with makeObjectiveEvaluator *after*
     * the eval cache, so cached entries stay objective-agnostic. With
     * Edp the wrapper is the identity, so existing runs are unchanged
     * bit for bit. Applies to optimize() only — callers of
     * optimizeWithEvaluator compose their own evaluator.
     */
    Objective objective = Objective::Edp;

    /** Warm-start strategy (Sec. 5.1); None = random initialization. */
    WarmStartStrategy warm_start = WarmStartStrategy::None;

    /** Number of seed individuals injected on warm-start. Kept small so
     *  the seeded basin cannot crowd out population diversity. */
    size_t warm_seeds = 2;

    /** Record the outcome in the replay buffer. */
    bool update_replay = true;

    /** Use the sparse cost model (reads densities off the workload). */
    bool sparse = false;

    /**
     * Memoize cost-model evaluations behind a canonical-mapping cache
     * (see model/eval_cache.hpp). Transparent to the search: cache hits
     * still count as samples and produce identical logs; they just skip
     * the analytical model. Applies to optimize() only — caller-
     * supplied evaluators may be stateful, so optimizeWithEvaluator
     * never caches.
     */
    bool use_eval_cache = true;

    /** Lock shards of the eval cache (rounded up to a power of two). */
    size_t eval_cache_shards = 16;

    /**
     * Route dense-model optimize() runs through the pipelined batch
     * evaluator (model/batch_eval.hpp): one EvalPlan per run, SoA batch
     * kernel, memoization store honoring use_eval_cache. Results, logs,
     * and cache accounting are bit-identical to the legacy per-mapping
     * path; off = the legacy path (also used whenever sparse is set,
     * since the plan mirrors the dense model only).
     */
    bool use_eval_plan = true;

    /**
     * Within the pipeline, re-evaluate GA offspring incrementally
     * against their hinted parents' memoized access rows (provably
     * bit-identical, with automatic fallback to full evaluation).
     * Ignored on the legacy path.
     */
    bool use_incremental = true;
};

/** Outcome of one MSE run. */
struct MseOutcome
{
    SearchResult search;

    /** Pareto frontier over all evaluated samples of this run. */
    ParetoArchive pareto;

    /** Generations to 99.5% of total improvement (Sec. 5.1.3). */
    size_t generations_to_converge = 0;

    /** Samples to 99.5% of total improvement. */
    size_t samples_to_converge = 0;

    /** Eval-cache accounting (zero when the cache was disabled). */
    size_t eval_cache_hits = 0;
    size_t eval_cache_misses = 0;

    double bestEdp() const { return search.best_cost.edp; }

    /** Fraction of cost-model queries served from the eval cache. */
    double evalCacheHitRate() const
    {
        const double total = static_cast<double>(eval_cache_hits +
                                                 eval_cache_misses);
        return total > 0.0
            ? static_cast<double>(eval_cache_hits) / total
            : 0.0;
    }
};

/** Orchestrates mapping searches for a fixed accelerator. */
class MseEngine
{
  public:
    explicit MseEngine(ArchConfig arch,
                       SparseAcceleratorFeatures saf = {})
        : arch_(std::move(arch)), sparse_model_(saf)
    {}

    const ArchConfig &arch() const { return arch_; }
    ReplayBuffer &replay() { return replay_; }
    const ReplayBuffer &replay() const { return replay_; }

    /** Run MSE for one workload with the built-in cost models. */
    MseOutcome optimize(const Workload &wl, Mapper &mapper,
                        const MseOptions &opts, Rng &rng);

    /**
     * Run MSE against a caller-supplied evaluator (e.g. the
     * sparsity-aware scorer). Warm-start and the replay buffer still
     * apply; the Pareto archive records the evaluator's (energy,
     * latency) outputs.
     */
    MseOutcome optimizeWithEvaluator(const MapSpace &space,
                                     const EvalFn &eval, Mapper &mapper,
                                     const MseOptions &opts, Rng &rng);

  private:
    /**
     * Shared tail of both optimize paths: warm-start seeding, the
     * mapper run under `eval` (which already carries any Pareto/
     * objective wrapping), convergence accounting, and the replay
     * update. The Pareto archive is filled by the caller's evaluator
     * wrapper, not here.
     */
    MseOutcome runSearch(const MapSpace &space, const EvalFn &eval,
                         Mapper &mapper, const MseOptions &opts,
                         Rng &rng);

    ArchConfig arch_;
    SparseCostModel sparse_model_;
    ReplayBuffer replay_;
};

} // namespace mse

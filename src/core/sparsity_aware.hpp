/**
 * @file
 * Sparsity-aware mapping search (the paper's second proposed technique,
 * Sec. 5.2).
 *
 * Activation sparsity is dynamic — it changes with every input — so
 * searching an optimal mapping per input is impractical. Instead, the
 * sparsity-aware evaluator scores a candidate mapping across a sweep of
 * assumed activation densities (default {1.0, 0.8, 0.5, 0.2, 0.1}) and
 * combines them with the paper's density-weighted sum
 *     score = sum_i EDP(m | density_i) / density_i,
 * so the search returns one fixed mapping that is robust across the
 * whole sparsity range (Table 4).
 */
#pragma once

#include <vector>

#include "mappers/mapper.hpp"
#include "sparse/sparse_model.hpp"

namespace mse {

/** Configuration of the density sweep used while searching. */
struct SparsityAwareConfig
{
    /** Activation densities scored during the search. */
    std::vector<double> densities = {1.0, 0.8, 0.5, 0.2, 0.1};

    /** Weight density of the workload (fixed at deploy time). */
    double weight_density = 1.0;
};

/**
 * Build an EvalFn that scores mappings with the density-weighted sum.
 * The returned CostResult carries the combined score in `edp` (energy
 * and latency hold the density-weighted sums of their components) so any
 * Mapper minimizes it transparently; one call evaluates the underlying
 * sparse model once per density.
 *
 * The workload embedded in `space` supplies the tensor shapes; its
 * density annotations are overridden per sweep point.
 */
EvalFn makeSparsityAwareEvaluator(const MapSpace &space,
                                  const SparseCostModel &model,
                                  const SparsityAwareConfig &cfg);

/**
 * Build an EvalFn for a fixed ("static") activation density, the
 * baseline columns of Table 4.
 */
EvalFn makeStaticDensityEvaluator(const MapSpace &space,
                                  const SparseCostModel &model,
                                  double activation_density,
                                  double weight_density = 1.0);

} // namespace mse

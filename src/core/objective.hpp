/**
 * @file
 * Optimization objectives (Sec. 3: "optimizing some objective (e.g.,
 * latency or energy-efficiency)... any formulation of the objective can
 * also be used").
 *
 * Mappers minimize CostResult::edp; makeObjectiveEvaluator re-targets
 * that scalar to any supported objective so every mapper can optimize
 * latency-only, energy-only, ED^2P, etc. without modification. Energy
 * and latency fields are preserved so the Pareto frontier stays
 * meaningful.
 */
#pragma once

#include <optional>
#include <string>

#include "mappers/mapper.hpp"

namespace mse {

/** Scalar figure of merit to minimize. */
enum class Objective
{
    Edp,      ///< energy * delay (the paper's default)
    Energy,   ///< energy only
    Latency,  ///< delay only
    Ed2p,     ///< energy * delay^2 (latency-leaning)
    E2dp,     ///< energy^2 * delay (energy-leaning)
};

/** Printable name of an objective. */
const char *objectiveName(Objective o);

/**
 * Inverse of objectiveName, case-insensitive ("edp", "ED2P", ...);
 * nullopt for unknown names. Used by the wire protocol and the
 * mapping store's on-disk records.
 */
std::optional<Objective> objectiveFromName(const std::string &name);

/** The scalar score of a cost under an objective. */
double objectiveScore(const CostResult &cost, Objective o);

/**
 * Wrap an evaluator so mappers minimize the chosen objective: the
 * returned CostResult carries the objective score in `edp`.
 */
EvalFn makeObjectiveEvaluator(EvalFn base, Objective o);

} // namespace mse

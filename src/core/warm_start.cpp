#include "core/warm_start.hpp"

#include "common/permutation.hpp"

namespace mse {

const char *
warmStartStrategyName(WarmStartStrategy s)
{
    switch (s) {
      case WarmStartStrategy::None: return "random-init";
      case WarmStartStrategy::ByPrevious: return "warm-start-previous";
      case WarmStartStrategy::BySimilarity: return "warm-start-similarity";
    }
    return "unknown";
}

std::vector<Mapping>
warmStartSeeds(const MapSpace &space, const ReplayBuffer &buffer,
               WarmStartStrategy strategy, size_t count, Rng &rng)
{
    if (strategy == WarmStartStrategy::None || buffer.empty() ||
        count == 0) {
        return {};
    }
    const auto entry = strategy == WarmStartStrategy::BySimilarity
        ? buffer.mostSimilar(space.workload())
        : buffer.mostRecent(space.workload());
    if (!entry)
        return {};

    std::vector<Mapping> seeds;
    seeds.reserve(count);
    // First seed: the faithful re-scaled mapping (inherited order and
    // parallelism, scaled tiles). Later seeds keep the inherited tile
    // structure but randomize the loop orders so a mediocre inherited
    // order cannot trap the whole population on irregular workloads.
    const Mapping scaled =
        space.scaleFrom(entry->mapping, entry->workload, rng);
    seeds.push_back(scaled);
    for (size_t i = 1; i < count; ++i) {
        Mapping variant = scaled;
        for (int l = 0; l < variant.numLevels(); ++l) {
            variant.level(l).order =
                randomPermutation(variant.numDims(), rng);
        }
        space.repair(variant);
        seeds.push_back(variant);
    }
    return seeds;
}

} // namespace mse

#include "core/objective.hpp"

#include <cctype>

namespace mse {

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::Edp: return "EDP";
      case Objective::Energy: return "energy";
      case Objective::Latency: return "latency";
      case Objective::Ed2p: return "ED2P";
      case Objective::E2dp: return "E2DP";
    }
    return "unknown";
}

std::optional<Objective>
objectiveFromName(const std::string &name)
{
    std::string lower;
    lower.reserve(name.size());
    for (const char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "edp")
        return Objective::Edp;
    if (lower == "energy")
        return Objective::Energy;
    if (lower == "latency")
        return Objective::Latency;
    if (lower == "ed2p")
        return Objective::Ed2p;
    if (lower == "e2dp")
        return Objective::E2dp;
    return std::nullopt;
}

double
objectiveScore(const CostResult &cost, Objective o)
{
    switch (o) {
      case Objective::Edp:
        return cost.energy_uj * cost.latency_cycles;
      case Objective::Energy:
        return cost.energy_uj;
      case Objective::Latency:
        return cost.latency_cycles;
      case Objective::Ed2p:
        return cost.energy_uj * cost.latency_cycles *
            cost.latency_cycles;
      case Objective::E2dp:
        return cost.energy_uj * cost.energy_uj * cost.latency_cycles;
    }
    return cost.edp;
}

EvalFn
makeObjectiveEvaluator(EvalFn base, Objective o)
{
    if (o == Objective::Edp)
        return base;
    return [base = std::move(base), o](const Mapping &m) {
        CostResult c = base(m);
        if (c.valid)
            c.edp = objectiveScore(c, o);
        return c;
    };
}

} // namespace mse

#include "core/sparsity_aware.hpp"

#include <limits>

namespace mse {

EvalFn
makeSparsityAwareEvaluator(const MapSpace &space,
                           const SparseCostModel &model,
                           const SparsityAwareConfig &cfg)
{
    // Pre-instantiate one annotated workload per density level; the
    // closure captures them by value.
    std::vector<Workload> workloads;
    workloads.reserve(cfg.densities.size());
    for (double d : cfg.densities) {
        Workload wl = space.workload();
        applyDensities(wl, cfg.weight_density, d);
        workloads.push_back(std::move(wl));
    }
    const ArchConfig arch = space.arch();
    const std::vector<double> densities = cfg.densities;

    return [workloads, arch, densities, model](const Mapping &m) {
        CostResult combined;
        combined.valid = true;
        combined.edp = 0.0;
        combined.energy_uj = 0.0;
        combined.latency_cycles = 0.0;
        for (size_t i = 0; i < workloads.size(); ++i) {
            const CostResult c = model.evaluate(workloads[i], arch, m);
            if (!c.valid) {
                // Illegal under some density level: reject outright so
                // the found mapping is deployable at every density.
                CostResult bad;
                bad.valid = false;
                bad.error = c.error;
                bad.edp = std::numeric_limits<double>::infinity();
                bad.energy_uj = bad.edp;
                bad.latency_cycles = bad.edp;
                return bad;
            }
            const double w = 1.0 / densities[i];
            combined.edp += c.edp * w;
            combined.energy_uj += c.energy_uj * w;
            combined.latency_cycles += c.latency_cycles * w;
        }
        return combined;
    };
}

EvalFn
makeStaticDensityEvaluator(const MapSpace &space,
                           const SparseCostModel &model,
                           double activation_density, double weight_density)
{
    Workload wl = space.workload();
    applyDensities(wl, weight_density, activation_density);
    const ArchConfig arch = space.arch();
    return [wl, arch, model](const Mapping &m) {
        return model.evaluate(wl, arch, m);
    };
}

} // namespace mse

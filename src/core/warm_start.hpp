/**
 * @file
 * Warm-start initialization (the paper's first proposed technique,
 * Sec. 5.1).
 *
 * Given a replay buffer of already-optimized workloads, warm-start picks
 * the stored mapping whose workload is most similar to the incoming one
 * (editing distance over dimension bounds), inherits its loop order and
 * parallelization, and re-scales its tile sizes to the new tensor shape.
 * The scaled mapping seeds the mapper's initial population, so the
 * search starts near a known-good region and converges 3.3-7.3x faster
 * (Fig. 11) at no loss in final quality.
 */
#pragma once

#include <vector>

#include "core/replay_buffer.hpp"
#include "mapping/map_space.hpp"

namespace mse {

/** Which replay entry seeds the search. */
enum class WarmStartStrategy
{
    None,        ///< Random initialization (the baseline).
    ByPrevious,  ///< Most recently optimized compatible workload.
    BySimilarity ///< Smallest editing distance (the paper's proposal).
};

/** Printable name of a strategy. */
const char *warmStartStrategyName(WarmStartStrategy s);

/**
 * Produce initial seed mappings for a search over `space` from the
 * replay buffer. Returns up to `count` copies of the scaled seed (GA
 * populations benefit from a few identical seeds plus random fill);
 * empty when the strategy is None or no compatible entry exists.
 */
std::vector<Mapping> warmStartSeeds(const MapSpace &space,
                                    const ReplayBuffer &buffer,
                                    WarmStartStrategy strategy,
                                    size_t count, Rng &rng);

} // namespace mse

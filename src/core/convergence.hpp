/**
 * @file
 * Convergence metrics for search traces.
 *
 * The paper defines time-to-converge as the time to reach 99.5% of the
 * total performance improvement of a run (Sec. 5.1.3) and reports the
 * equivalent generations-to-converge for Gamma. These helpers compute
 * that index from SearchLog traces.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace mse {

/**
 * First index into best_so_far at which the run achieved `frac` of its
 * total improvement (best_so_far is non-increasing). Returns 0 for
 * traces with no improvement and best_so_far.size()-1 as an upper bound.
 */
size_t indexToConverge(const std::vector<double> &best_so_far,
                       double frac = 0.995);

/**
 * First index at which best_so_far reaches `target` (<=). Used to
 * compare two runs against a shared quality bar (Figs. 10-11: the
 * speedup of warm-start is how much sooner it reaches the cold run's
 * final EDP). Returns best_so_far.size() when the target is never
 * reached.
 */
size_t indexToReach(const std::vector<double> &best_so_far, double target);

} // namespace mse

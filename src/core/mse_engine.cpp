#include "core/mse_engine.hpp"

#include <memory>

#include "common/thread_annotations.hpp"
#include "model/batch_eval.hpp"
#include "model/eval_cache.hpp"

namespace mse {

MseOutcome
MseEngine::runSearch(const MapSpace &space, const EvalFn &eval,
                     Mapper &mapper, const MseOptions &opts, Rng &rng)
{
    MseOutcome outcome;

    mapper.setInitialMappings(warmStartSeeds(space, replay_,
                                             opts.warm_start,
                                             opts.warm_seeds, rng));
    outcome.search = mapper.search(space, eval, opts.budget, rng);
    mapper.setInitialMappings({});

    outcome.generations_to_converge =
        indexToConverge(outcome.search.log.best_edp_per_generation);
    outcome.samples_to_converge =
        indexToConverge(outcome.search.log.best_edp_per_sample);

    if (opts.update_replay && outcome.search.found()) {
        replay_.push(space.workload(), outcome.search.best_mapping,
                     outcome.search.best_cost);
    }
    return outcome;
}

MseOutcome
MseEngine::optimizeWithEvaluator(const MapSpace &space, const EvalFn &eval,
                                 Mapper &mapper, const MseOptions &opts,
                                 Rng &rng)
{
    // Wrap the evaluator to maintain the Pareto frontier of the run.
    // evaluateBatch calls this concurrently from pool workers, so the
    // archive and the sample counter sit behind a mutex. The frontier's
    // final (energy, latency) content is order-independent; only the
    // payload sample indices can differ between thread counts.
    ParetoArchive pareto;
    size_t sample_index = 0;
    Mutex pareto_mu;
    EvalFn tracked = [&](const Mapping &m) {
        const CostResult c = eval(m);
        {
            MutexLock lk(pareto_mu);
            if (c.valid) {
                pareto.insert(c.energy_uj, c.latency_cycles,
                              sample_index);
            }
            ++sample_index;
        }
        return c;
    };

    MseOutcome outcome = runSearch(space, tracked, mapper, opts, rng);
    outcome.pareto = std::move(pareto);
    return outcome;
}

MseOutcome
MseEngine::optimize(const Workload &wl, Mapper &mapper,
                    const MseOptions &opts, Rng &rng)
{
    MapSpace space(wl, arch_);

    if (!opts.sparse && opts.use_eval_plan) {
        // Pipelined path: EvalPlan + SoA batch kernel + memoization
        // store + incremental offspring re-evaluation, reached from
        // SearchTracker::evaluateBatch via the BatchableEval target.
        // Objective re-targeting and Pareto capture run as the
        // pipeline's post hook, so they apply to cache hits too and
        // memoized entries keep raw (energy, latency) — the same
        // layering as the legacy wrappers below.
        BatchCostEvaluator::Options popts;
        popts.use_cache = opts.use_eval_cache;
        popts.use_incremental = opts.use_incremental;
        popts.shards = opts.eval_cache_shards;
        BatchCostEvaluator pipeline(wl, arch_, popts);

        ParetoArchive pareto;
        size_t sample_index = 0;
        Mutex pareto_mu;
        const Objective objective = opts.objective;
        pipeline.setPostHook([&](const Mapping &, CostResult &c) {
            if (objective != Objective::Edp && c.valid)
                c.edp = objectiveScore(c, objective);
            MutexLock lk(pareto_mu);
            if (c.valid)
                pareto.insert(c.energy_uj, c.latency_cycles,
                              sample_index);
            ++sample_index;
        });

        const EvalFn eval = BatchableEval{&pipeline};
        MseOutcome outcome = runSearch(space, eval, mapper, opts, rng);
        outcome.pareto = std::move(pareto);
        if (opts.use_eval_cache) {
            outcome.eval_cache_hits = pipeline.cacheHits();
            outcome.eval_cache_misses = pipeline.cacheMisses();
        }
        return outcome;
    }

    EvalFn eval;
    if (opts.sparse) {
        const Workload sparse_wl = wl;
        const ArchConfig arch = arch_;
        const SparseCostModel model = sparse_model_;
        eval = [sparse_wl, arch, model](const Mapping &m) {
            return model.evaluate(sparse_wl, arch, m);
        };
    } else {
        const Workload dense_wl = wl;
        const ArchConfig arch = arch_;
        eval = [dense_wl, arch](const Mapping &m) {
            return CostModel::evaluate(dense_wl, arch, m);
        };
    }

    // Memoize duplicate genomes behind the canonical-mapping cache. The
    // cache is scoped to this run: its key does not encode the workload
    // or architecture.
    std::shared_ptr<EvalCache> cache;
    if (opts.use_eval_cache) {
        cache = std::make_shared<EvalCache>(opts.eval_cache_shards);
        EvalFn inner = std::move(eval);
        eval = [cache, inner](const Mapping &m) {
            return cache->getOrCompute(m, inner);
        };
    }

    // Re-target the scalar the mapper minimizes (identity for Edp).
    // Outside the cache so memoized entries keep raw (energy, latency).
    eval = makeObjectiveEvaluator(std::move(eval), opts.objective);

    MseOutcome outcome =
        optimizeWithEvaluator(space, eval, mapper, opts, rng);
    if (cache) {
        outcome.eval_cache_hits = cache->hits();
        outcome.eval_cache_misses = cache->misses();
    }
    return outcome;
}

} // namespace mse

#include "core/convergence.hpp"

#include <cmath>

namespace mse {

size_t
indexToConverge(const std::vector<double> &best_so_far, double frac)
{
    if (best_so_far.empty())
        return 0;
    // Ignore leading infinities (no legal mapping found yet).
    size_t first = 0;
    while (first < best_so_far.size() && std::isinf(best_so_far[first]))
        ++first;
    if (first >= best_so_far.size())
        return best_so_far.size() - 1;
    const double start = best_so_far[first];
    const double final = best_so_far.back();
    const double total = start - final;
    if (total <= 0.0)
        return first;
    const double target = start - frac * total;
    for (size_t i = first; i < best_so_far.size(); ++i) {
        if (best_so_far[i] <= target)
            return i;
    }
    return best_so_far.size() - 1;
}

size_t
indexToReach(const std::vector<double> &best_so_far, double target)
{
    for (size_t i = 0; i < best_so_far.size(); ++i) {
        if (best_so_far[i] <= target)
            return i;
    }
    return best_so_far.size();
}

} // namespace mse

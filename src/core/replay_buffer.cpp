#include "core/replay_buffer.hpp"

#include <fstream>

#include "mapping/mapping_io.hpp"
#include "workload/workload_io.hpp"

namespace mse {

void
ReplayBuffer::push(Workload wl, Mapping m, CostResult cost)
{
    if (entries_.size() >= capacity_)
        entries_.erase(entries_.begin());
    entries_.push_back({std::move(wl), std::move(m), std::move(cost)});
}

std::optional<ReplayEntry>
ReplayBuffer::mostSimilar(const Workload &wl) const
{
    int best_dist = -1;
    const ReplayEntry *best = nullptr;
    for (const auto &e : entries_) {
        if (e.workload.numDims() != wl.numDims())
            continue;
        const int dist = editDistance(e.workload, wl);
        if (best == nullptr || dist <= best_dist) {
            best = &e;
            best_dist = dist;
        }
    }
    if (!best)
        return std::nullopt;
    return *best;
}

bool
ReplayBuffer::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out.good())
        return false;
    for (const auto &e : entries_) {
        out << serializeWorkload(e.workload) << '\n'
            << serializeMapping(e.mapping) << '\n';
    }
    return out.good();
}

size_t
ReplayBuffer::load(const std::string &path,
                   const std::function<CostResult(
                       const Workload &, const Mapping &)> &eval)
{
    std::ifstream in(path);
    if (!in.good())
        return 0;
    size_t loaded = 0;
    std::string wl_line, map_line;
    while (std::getline(in, wl_line) && std::getline(in, map_line)) {
        const auto wl = parseWorkload(wl_line);
        const auto m = parseMapping(map_line);
        if (!wl || !m)
            continue;
        push(*wl, *m, eval(*wl, *m));
        ++loaded;
    }
    return loaded;
}

std::optional<ReplayEntry>
ReplayBuffer::mostRecent(const Workload &wl) const
{
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (it->workload.numDims() == wl.numDims())
            return *it;
    }
    return std::nullopt;
}

} // namespace mse

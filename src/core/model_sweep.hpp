/**
 * @file
 * Full-model sweep orchestrator: map every layer of a network with one
 * call (the network-level use of the paper's Sec. 5.1 warm-start
 * technique, evaluated in Figs. 10-12).
 *
 * DNN models repeat layer shapes heavily — ResNet stages reuse one conv
 * shape several times, BERT repeats its four encoder GEMMs per block —
 * so a per-layer search loop wastes most of its budget re-solving
 * identical map spaces. ModelSweep exploits the structure in three
 * steps:
 *
 *  1. *Dedup.* Each layer is keyed by a canonical signature (workload
 *     dims, bounds, tensor projections and densities + the arch's
 *     structural parameters). Layers with equal signatures share one
 *     search job; the job's result is fanned back out bit-identically.
 *  2. *Schedule.* Unique jobs are clustered by a configurable
 *     similarity heuristic. Cluster representatives ("roots") run
 *     first, cold-started; the remaining jobs run second, warm-started
 *     from their root's optimized mapping via MapSpace::scaleFrom (the
 *     tile re-scaling machinery of Sec. 5.1.2). Jobs with no
 *     sufficiently similar root — or an incompatible dimensionality —
 *     fall back to a cold start.
 *  3. *Shard.* Within each of the two waves, jobs are independent and
 *     run as a sharded job set on ThreadPool::global(). Each job owns
 *     its engine, mapper, eval cache, and an Rng seeded from
 *     (sweep seed, layer signature), so results are bit-identical for
 *     any MSE_THREADS value: layer-level parallelism simply displaces
 *     batch-level parallelism (nested parallelFor runs inline).
 *
 * The two-wave schedule is what makes warm-start and parallelism
 * compose deterministically: every warm job's seed mapping is fixed
 * before wave 2 starts, regardless of execution interleaving. A chained
 * schedule (each layer warm-starting from the previous) would serialize
 * the whole sweep.
 */
#pragma once

#include <string>
#include <vector>

#include "core/mse_engine.hpp"

namespace mse {

/** Canonical identity of one layer-search job (workload x arch). */
std::string layerSignature(const Workload &wl, const ArchConfig &arch);

/** Distance heuristic deciding warm-start eligibility. */
enum class SimilarityMetric
{
    /** Number of dimensions whose bounds differ (the paper's editing
     *  distance; coarse but cheap). */
    EditDistance,

    /** Sum of |log2(bound_a / bound_b)| over dimensions: refines edit
     *  distance by *how far* each bound moved, so a 2x channel bump
     *  beats a 16x one for the same edit count. */
    BoundRatio,
};

/** Printable name of a metric. */
const char *similarityMetricName(SimilarityMetric m);

/**
 * Distance between two workloads under a metric; +infinity when `b`'s
 * mappings cannot seed a search over `a` (different dimensionality).
 */
double workloadDistance(SimilarityMetric metric, const Workload &a,
                        const Workload &b);

/** Knobs of one full-model sweep. */
struct ModelSweepOptions
{
    /** Per-layer search options (budget, eval cache, sparse model).
     *  The warm_start strategy and update_replay fields are managed by
     *  the sweep itself and need not be set. A CancelToken placed in
     *  layer.budget.cancel cancels the whole sweep cooperatively:
     *  running jobs stop at their next budget check and jobs that have
     *  not started are skipped (their layer records stay invalid). */
    MseOptions layer;

    /** Warm-start propagation between similar unique layers. */
    bool warm_start = true;

    /** Similarity heuristic for warm-start eligibility. */
    SimilarityMetric metric = SimilarityMetric::EditDistance;

    /**
     * Maximum workloadDistance at which a solved root may seed another
     * layer's search; beyond it the layer cold-starts. In EditDistance
     * units this is a dimension count; in BoundRatio units, total log2
     * scale drift.
     */
    double max_distance = 4.0;

    /** Search each unique layer signature once and fan the result out.
     *  Off = every layer runs its own search (the baseline loop). */
    bool dedup = true;

    /** Run each wave's jobs on ThreadPool::global(); off = in order
     *  (results are identical either way). */
    bool parallel_layers = true;

    /** Master seed; each job derives its Rng from (seed, signature). */
    uint64_t seed = 0x5eed;
};

/** Per-layer outcome of a sweep, in the model's layer order. */
struct LayerSweepRecord
{
    size_t layer_index = 0;   ///< Position in the input layer list.
    std::string layer_name;
    std::string signature;    ///< Canonical layer signature.
    size_t job = 0;           ///< Index into ModelSweepResult::jobs.
    bool deduped = false;     ///< True = result copied from an earlier
                              ///  identical layer, no search run.
    bool warm_started = false;
    int warm_source_layer = -1; ///< Layer index of the seeding root.
    double warm_distance = -1.0;

    Mapping best_mapping;
    CostResult best_cost;

    /** Cost-model queries the owning job spent (0 samples were spent
     *  on this layer itself when deduped). */
    size_t samples = 0;
    size_t samples_to_converge = 0;
    double eval_cache_hit_rate = 0.0;
};

/** Sweep-level accounting. */
struct ModelSweepStats
{
    size_t total_layers = 0;
    size_t unique_jobs = 0;
    size_t dedup_hits = 0;   ///< Layers served by an earlier job.
    size_t warm_jobs = 0;    ///< Unique jobs seeded from a root.
    size_t cold_jobs = 0;

    /** Cost-model queries actually issued across unique jobs. */
    size_t samples_spent = 0;

    /** Queries a dedup-less per-layer loop would have issued. */
    size_t samples_without_dedup = 0;

    size_t eval_cache_hits = 0;
    size_t eval_cache_misses = 0;

    /** Mean samples-to-converge (99.5% criterion) per start kind. */
    double mean_converge_samples_warm = 0.0;
    double mean_converge_samples_cold = 0.0;

    double wall_seconds = 0.0;
};

/** Result of one full-model sweep. */
struct ModelSweepResult
{
    std::string model;
    std::string arch;
    std::string mapper;

    /** One record per input layer, input order preserved. */
    std::vector<LayerSweepRecord> layers;

    /** Full per-unique-job outcomes (search logs, Pareto fronts),
     *  indexed by LayerSweepRecord::job. */
    std::vector<MseOutcome> jobs;

    ModelSweepStats stats;

    /** Whole-model sums over layers (each duplicate counted). */
    double totalEnergyUj() const;
    double totalLatencyCycles() const;

    /** Sum of per-layer EDPs — the sweep's scalar objective. */
    double totalEdp() const;
};

/** Network-level MSE orchestrator for one accelerator. */
class ModelSweep
{
  public:
    /** The factory must be valid; each job constructs its own mapper. */
    explicit ModelSweep(ArchConfig arch,
                        MapperFactory factory = makeMapperFactory("gamma"));

    const ArchConfig &arch() const { return arch_; }

    /** Sweep every layer of `layers` (a model-zoo table or any list). */
    ModelSweepResult run(const std::string &model_name,
                        const std::vector<Workload> &layers,
                        const ModelSweepOptions &opts) const;

  private:
    ArchConfig arch_;
    MapperFactory factory_;
};

/**
 * Emit one CSV row per layer (dedup/warm columns included) — the
 * model-sweep analog of the bench CSV dumps. Returns false on I/O
 * failure.
 */
bool writeSweepCsv(const ModelSweepResult &result, const std::string &path);

/**
 * Emit the sweep as a JSON document (stats block + per-layer array),
 * the format BENCH_model_sweep.json aggregates. Returns false on I/O
 * failure.
 */
bool writeSweepJson(const ModelSweepResult &result, const std::string &path);

} // namespace mse

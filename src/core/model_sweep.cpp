#include "core/model_sweep.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/math_util.hpp"
#include "common/thread_pool.hpp"

namespace mse {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** One unique-signature search job being scheduled. */
struct Job
{
    Workload wl;           ///< First-occurrence workload.
    std::string signature;
    size_t first_layer = 0;
    int root = -1;         ///< Seeding job index; -1 = cold start.
    double distance = -1.0;
    MseOutcome outcome;
};

} // namespace

std::string
layerSignature(const Workload &wl, const ArchConfig &arch)
{
    return wl.signature() + "@" + arch.signature();
}

const char *
similarityMetricName(SimilarityMetric m)
{
    switch (m) {
      case SimilarityMetric::EditDistance: return "edit-distance";
      case SimilarityMetric::BoundRatio: return "bound-ratio";
    }
    return "unknown";
}

double
workloadDistance(SimilarityMetric metric, const Workload &a,
                 const Workload &b)
{
    if (a.numDims() != b.numDims())
        return std::numeric_limits<double>::infinity();
    for (int d = 0; d < a.numDims(); ++d) {
        if (a.dimNames()[d] != b.dimNames()[d])
            return std::numeric_limits<double>::infinity();
    }
    switch (metric) {
      case SimilarityMetric::EditDistance:
        return static_cast<double>(editDistance(a, b));
      case SimilarityMetric::BoundRatio: {
        double dist = 0.0;
        for (int d = 0; d < a.numDims(); ++d) {
            dist += std::fabs(std::log2(static_cast<double>(a.bound(d)) /
                                        static_cast<double>(b.bound(d))));
        }
        return dist;
      }
    }
    return std::numeric_limits<double>::infinity();
}

ModelSweep::ModelSweep(ArchConfig arch, MapperFactory factory)
    : arch_(std::move(arch)), factory_(std::move(factory))
{
}

ModelSweepResult
ModelSweep::run(const std::string &model_name,
                const std::vector<Workload> &layers,
                const ModelSweepOptions &opts) const
{
    const double t0 = nowSeconds();

    ModelSweepResult res;
    res.model = model_name;
    res.arch = arch_.name;
    res.mapper = factory_()->name();

    // --- 1. Dedup: one job per distinct layer signature. -------------
    std::vector<Job> jobs;
    std::vector<size_t> layer_job(layers.size(), 0);
    std::unordered_map<std::string, size_t> job_by_sig;
    for (size_t i = 0; i < layers.size(); ++i) {
        const std::string sig = layerSignature(layers[i], arch_);
        const auto it = job_by_sig.find(sig);
        if (opts.dedup && it != job_by_sig.end()) {
            layer_job[i] = it->second;
            continue;
        }
        layer_job[i] = jobs.size();
        if (opts.dedup)
            job_by_sig.emplace(sig, jobs.size());
        Job job;
        job.wl = layers[i];
        job.signature = sig;
        job.first_layer = i;
        jobs.push_back(std::move(job));
    }

    // --- 2. Schedule: cluster roots (cold) vs. members (warm). -------
    // A job joins the nearest already-chosen root within max_distance;
    // otherwise it becomes a root itself. Greedy in first-occurrence
    // order, so a network's leading layer of each shape family anchors
    // its cluster — the compiler-pipeline order the paper assumes.
    std::vector<size_t> wave_cold, wave_warm;
    for (size_t j = 0; j < jobs.size(); ++j) {
        if (opts.warm_start) {
            int best = -1;
            double best_dist = std::numeric_limits<double>::infinity();
            for (const size_t r : wave_cold) {
                const double d =
                    workloadDistance(opts.metric, jobs[j].wl, jobs[r].wl);
                if (d < best_dist) {
                    best_dist = d;
                    best = static_cast<int>(r);
                }
            }
            if (best >= 0 && best_dist <= opts.max_distance) {
                jobs[j].root = best;
                jobs[j].distance = best_dist;
                wave_warm.push_back(j);
                continue;
            }
        }
        wave_cold.push_back(j);
    }

    // --- 3. Execute the two waves as sharded job sets. ---------------
    // Each job is self-contained (own engine, mapper, cache, RNG), so
    // a wave's jobs run concurrently on the pool without ordering
    // effects; nested batch evaluation degrades to inline loops.
    const auto run_job = [&](size_t j) {
        Job &job = jobs[j];
        // Cooperative cancellation: a not-yet-started job is skipped
        // outright (its outcome stays invalid); a started job stops at
        // its next budget check because the token rides in the layer
        // budget the engine passes down to every SearchTracker.
        if (opts.layer.budget.cancelRequested())
            return;
        MseOptions layer_opts = opts.layer;
        layer_opts.update_replay = false;
        layer_opts.warm_start = WarmStartStrategy::None;
        MseEngine engine(arch_);
        if (job.root >= 0) {
            const Job &src = jobs[static_cast<size_t>(job.root)];
            engine.replay().push(src.wl, src.outcome.search.best_mapping,
                                 src.outcome.search.best_cost);
            layer_opts.warm_start = WarmStartStrategy::BySimilarity;
        }
        const auto mapper = factory_();
        Rng rng(opts.seed ^ fnv1a64(job.signature));
        job.outcome = engine.optimize(job.wl, *mapper, layer_opts, rng);
    };
    const auto run_wave = [&](const std::vector<size_t> &wave) {
        if (opts.parallel_layers) {
            ThreadPool::global().parallelFor(
                wave.size(), [&](size_t i) { run_job(wave[i]); });
        } else {
            for (const size_t j : wave)
                run_job(j);
        }
    };
    run_wave(wave_cold);
    run_wave(wave_warm);

    // --- 4. Fan results back out to every layer. ---------------------
    res.layers.reserve(layers.size());
    for (size_t i = 0; i < layers.size(); ++i) {
        const Job &job = jobs[layer_job[i]];
        LayerSweepRecord rec;
        rec.layer_index = i;
        rec.layer_name = layers[i].name();
        rec.signature = job.signature;
        rec.job = layer_job[i];
        rec.deduped = i != job.first_layer;
        rec.warm_started = job.root >= 0;
        rec.warm_source_layer = job.root >= 0
            ? static_cast<int>(jobs[static_cast<size_t>(job.root)]
                                   .first_layer)
            : -1;
        rec.warm_distance = job.distance;
        rec.best_mapping = job.outcome.search.best_mapping;
        rec.best_cost = job.outcome.search.best_cost;
        rec.samples = job.outcome.search.log.samples;
        rec.samples_to_converge = job.outcome.samples_to_converge;
        rec.eval_cache_hit_rate = job.outcome.evalCacheHitRate();
        res.layers.push_back(std::move(rec));
    }

    // --- 5. Aggregate accounting. ------------------------------------
    ModelSweepStats &st = res.stats;
    st.total_layers = layers.size();
    st.unique_jobs = jobs.size();
    double warm_converge = 0.0, cold_converge = 0.0;
    for (const Job &job : jobs) {
        st.samples_spent += job.outcome.search.log.samples;
        st.eval_cache_hits += job.outcome.eval_cache_hits;
        st.eval_cache_misses += job.outcome.eval_cache_misses;
        if (job.root >= 0) {
            ++st.warm_jobs;
            warm_converge +=
                static_cast<double>(job.outcome.samples_to_converge);
        } else {
            ++st.cold_jobs;
            cold_converge +=
                static_cast<double>(job.outcome.samples_to_converge);
        }
    }
    if (st.warm_jobs > 0)
        st.mean_converge_samples_warm =
            warm_converge / static_cast<double>(st.warm_jobs);
    if (st.cold_jobs > 0)
        st.mean_converge_samples_cold =
            cold_converge / static_cast<double>(st.cold_jobs);
    for (const auto &rec : res.layers) {
        if (rec.deduped)
            ++st.dedup_hits;
        st.samples_without_dedup += rec.samples;
    }

    res.jobs.reserve(jobs.size());
    for (Job &job : jobs)
        res.jobs.push_back(std::move(job.outcome));

    st.wall_seconds = nowSeconds() - t0;
    return res;
}

double
ModelSweepResult::totalEnergyUj() const
{
    double sum = 0.0;
    for (const auto &rec : layers)
        sum += rec.best_cost.energy_uj;
    return sum;
}

double
ModelSweepResult::totalLatencyCycles() const
{
    double sum = 0.0;
    for (const auto &rec : layers)
        sum += rec.best_cost.latency_cycles;
    return sum;
}

double
ModelSweepResult::totalEdp() const
{
    double sum = 0.0;
    for (const auto &rec : layers)
        sum += rec.best_cost.edp;
    return sum;
}

namespace {

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Short per-layer signature id for human-scannable output. */
std::string
sigId(const std::string &signature)
{
    return fnv1a64Hex(signature);
}

} // namespace

bool
writeSweepCsv(const ModelSweepResult &result, const std::string &path)
{
    CsvWriter csv(path);
    if (!csv.ok())
        return false;
    csv.writeRow({"layer_index", "layer_name", "signature", "job",
                  "deduped", "warm_started", "warm_source_layer",
                  "warm_distance", "edp", "energy_uj", "latency_cycles",
                  "samples", "samples_to_converge",
                  "eval_cache_hit_rate"});
    for (const auto &r : result.layers) {
        csv.writeRow({std::to_string(r.layer_index), r.layer_name,
                      sigId(r.signature), std::to_string(r.job),
                      r.deduped ? "1" : "0", r.warm_started ? "1" : "0",
                      std::to_string(r.warm_source_layer),
                      fmt(r.warm_distance), fmt(r.best_cost.edp),
                      fmt(r.best_cost.energy_uj),
                      fmt(r.best_cost.latency_cycles),
                      std::to_string(r.samples),
                      std::to_string(r.samples_to_converge),
                      fmt(r.eval_cache_hit_rate)});
    }
    return true;
}

bool
writeSweepJson(const ModelSweepResult &result, const std::string &path)
{
    const ModelSweepStats &st = result.stats;
    JsonValue doc = JsonValue::object();
    doc["model"] = result.model;
    doc["arch"] = result.arch;
    doc["mapper"] = result.mapper;
    JsonValue &stats = doc["stats"];
    stats["total_layers"] = st.total_layers;
    stats["unique_jobs"] = st.unique_jobs;
    stats["dedup_hits"] = st.dedup_hits;
    stats["warm_jobs"] = st.warm_jobs;
    stats["cold_jobs"] = st.cold_jobs;
    stats["samples_spent"] = st.samples_spent;
    stats["samples_without_dedup"] = st.samples_without_dedup;
    stats["eval_cache_hits"] = st.eval_cache_hits;
    stats["eval_cache_misses"] = st.eval_cache_misses;
    stats["mean_converge_samples_warm"] = st.mean_converge_samples_warm;
    stats["mean_converge_samples_cold"] = st.mean_converge_samples_cold;
    stats["wall_seconds"] = st.wall_seconds;
    JsonValue &total = doc["total"];
    total["energy_uj"] = result.totalEnergyUj();
    total["latency_cycles"] = result.totalLatencyCycles();
    total["edp_sum"] = result.totalEdp();
    JsonValue layers = JsonValue::array();
    for (const auto &r : result.layers) {
        JsonValue l = JsonValue::object();
        l["index"] = r.layer_index;
        l["name"] = r.layer_name;
        l["sig"] = sigId(r.signature);
        l["job"] = r.job;
        l["deduped"] = r.deduped;
        l["warm"] = r.warm_started;
        l["warm_source_layer"] = r.warm_source_layer;
        l["warm_distance"] = r.warm_distance;
        l["edp"] = r.best_cost.edp;
        l["energy_uj"] = r.best_cost.energy_uj;
        l["latency_cycles"] = r.best_cost.latency_cycles;
        l["samples"] = r.samples;
        l["samples_to_converge"] = r.samples_to_converge;
        l["cache_hit_rate"] = r.eval_cache_hit_rate;
        layers.push(std::move(l));
    }
    doc["layers"] = std::move(layers);
    return writeJsonFile(path, doc);
}

} // namespace mse

/**
 * @file
 * Replay buffer of previously optimized mappings (Sec. 5.1).
 *
 * Warm-start keeps the best mapping found for every workload optimized
 * so far and initializes new searches from the entry most similar to the
 * incoming workload. Similarity is the workload editing distance: the
 * number of dimensions whose bounds differ.
 */
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mapping/mapping.hpp"
#include "model/cost_model.hpp"
#include "workload/workload.hpp"

namespace mse {

/** One remembered optimization outcome. */
struct ReplayEntry
{
    Workload workload;
    Mapping mapping;
    CostResult cost;
};

/** FIFO store of optimized mappings with similarity lookup. */
class ReplayBuffer
{
  public:
    explicit ReplayBuffer(size_t capacity = 256) : capacity_(capacity) {}

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    const std::vector<ReplayEntry> &entries() const { return entries_; }

    /** Remember an optimized mapping (evicts the oldest when full). */
    void push(Workload wl, Mapping m, CostResult cost);

    /**
     * The entry with the smallest editing distance to `wl` (ties go to
     * the most recent); nullopt when empty or when no entry has a
     * compatible dimensionality.
     */
    std::optional<ReplayEntry> mostSimilar(const Workload &wl) const;

    /** The most recently pushed compatible entry (warm-start-by-
     *  previous-layer); nullopt when none. */
    std::optional<ReplayEntry> mostRecent(const Workload &wl) const;

    /**
     * Persist the buffer to a text file (one workload + mapping pair
     * per entry) so a deployment flow can cache MSE results across
     * runs. Returns false on I/O failure.
     */
    bool save(const std::string &path) const;

    /**
     * Load entries from a file produced by save(), appending to the
     * current contents. Stored costs are not persisted; entries are
     * re-labeled with the supplied evaluator. Returns the number of
     * entries loaded (malformed lines are skipped).
     */
    size_t load(const std::string &path,
                const std::function<CostResult(const Workload &,
                                               const Mapping &)> &eval);

  private:
    size_t capacity_;
    std::vector<ReplayEntry> entries_;
};

} // namespace mse

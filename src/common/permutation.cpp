#include "common/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"

namespace mse {

std::vector<int>
identityPermutation(int n)
{
    std::vector<int> p(n);
    std::iota(p.begin(), p.end(), 0);
    return p;
}

std::vector<int>
randomPermutation(int n, Rng &rng)
{
    auto p = identityPermutation(n);
    rng.shuffle(p);
    return p;
}

bool
isPermutation(const std::vector<int> &perm)
{
    std::vector<bool> seen(perm.size(), false);
    for (int v : perm) {
        if (v < 0 || static_cast<size_t>(v) >= perm.size() || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

uint64_t
factorial(int n)
{
    uint64_t f = 1;
    for (int i = 2; i <= n; ++i)
        f *= static_cast<uint64_t>(i);
    return f;
}

uint64_t
permutationRank(const std::vector<int> &perm)
{
    const int n = static_cast<int>(perm.size());
    uint64_t rank = 0;
    for (int i = 0; i < n; ++i) {
        int smaller = 0;
        for (int j = i + 1; j < n; ++j) {
            if (perm[j] < perm[i])
                ++smaller;
        }
        rank += static_cast<uint64_t>(smaller) * factorial(n - 1 - i);
    }
    return rank;
}

std::vector<int>
permutationFromRank(int n, uint64_t rank)
{
    std::vector<int> pool = identityPermutation(n);
    std::vector<int> perm;
    perm.reserve(n);
    for (int i = 0; i < n; ++i) {
        uint64_t f = factorial(n - 1 - i);
        size_t idx = static_cast<size_t>(rank / f);
        rank %= f;
        perm.push_back(pool[idx]);
        pool.erase(pool.begin() + static_cast<long>(idx));
    }
    return perm;
}

} // namespace mse

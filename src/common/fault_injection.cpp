#include "common/fault_injection.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/math_util.hpp"

namespace mse {

namespace {

/** Split on a delimiter; empty tokens preserved. */
std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (true) {
        const size_t next = s.find(delim, pos);
        out.push_back(s.substr(
            pos, next == std::string::npos ? std::string::npos
                                           : next - pos));
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }
    return out;
}

bool
parseU64(const std::string &s, uint64_t *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0')
        return false;
    *out = static_cast<uint64_t>(v);
    return true;
}

bool
parseProb(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (!end || *end != '\0' || !(v >= 0.0) || !(v <= 1.0))
        return false;
    *out = v;
    return true;
}

bool
setErr(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

} // namespace

int
FaultInjector::errnoFromName(const std::string &name)
{
    struct NameVal
    {
        const char *name;
        int value;
    };
    static const NameVal kNames[] = {
        {"EIO", EIO},           {"ENOSPC", ENOSPC},
        {"EINTR", EINTR},       {"EAGAIN", EAGAIN},
        {"EPIPE", EPIPE},       {"ECONNRESET", ECONNRESET},
        {"EBADF", EBADF},       {"EMFILE", EMFILE},
        {"ENOMEM", ENOMEM},     {"EACCES", EACCES},
        {"ENOENT", ENOENT},     {"EDQUOT", EDQUOT},
        {"ETIMEDOUT", ETIMEDOUT},
    };
    for (const auto &nv : kNames)
        if (name == nv.name)
            return nv.value;
    uint64_t num = 0;
    if (parseU64(name, &num) && num > 0 && num < 4096)
        return static_cast<int>(num);
    return 0;
}

std::optional<FaultSpec>
FaultInjector::parseSpec(const std::string &spec, std::string *err)
{
    const auto parts = split(spec, ':');
    FaultSpec out;
    if (parts.empty() || parts[0].empty()) {
        setErr(err, "empty fault spec");
        return std::nullopt;
    }
    const std::string &mode = parts[0];
    if (mode == "every" || mode == "once") {
        // every:N[:ERR]  /  once:N[:ERR]
        if (parts.size() < 2 || parts.size() > 3) {
            setErr(err, "'" + mode + "' wants " + mode +
                       ":N[:ERRNO], got '" + spec + "'");
            return std::nullopt;
        }
        out.mode = mode == "every" ? FaultSpec::Mode::EveryN
                                   : FaultSpec::Mode::Once;
        if (!parseU64(parts[1], &out.n) || out.n == 0) {
            setErr(err, "'" + mode + "' wants a positive call count, "
                       "got '" + parts[1] + "'");
            return std::nullopt;
        }
        if (parts.size() == 3) {
            out.error = errnoFromName(parts[2]);
            if (out.error == 0) {
                setErr(err, "unknown errno '" + parts[2] + "'");
                return std::nullopt;
            }
        }
        return out;
    }
    if (mode == "p") {
        // p:PROB:SEED[:ERR]
        if (parts.size() < 3 || parts.size() > 4) {
            setErr(err,
                   "'p' wants p:PROB:SEED[:ERRNO], got '" + spec + "'");
            return std::nullopt;
        }
        out.mode = FaultSpec::Mode::Probability;
        if (!parseProb(parts[1], &out.p)) {
            setErr(err, "probability must be in [0, 1], got '" +
                       parts[1] + "'");
            return std::nullopt;
        }
        if (!parseU64(parts[2], &out.seed)) {
            setErr(err, "'p' wants an integer seed, got '" + parts[2] +
                       "'");
            return std::nullopt;
        }
        if (parts.size() == 4) {
            out.error = errnoFromName(parts[3]);
            if (out.error == 0) {
                setErr(err, "unknown errno '" + parts[3] + "'");
                return std::nullopt;
            }
        }
        return out;
    }
    setErr(err, "unknown fault mode '" + mode +
               "' (want every, once, or p)");
    return std::nullopt;
}

bool
FaultInjector::configure(const std::string &config, std::string *err)
{
    std::unordered_map<std::string, Site> sites;
    if (!config.empty()) {
        for (const std::string &entry : split(config, ',')) {
            if (entry.empty())
                continue;
            const size_t colon = entry.find(':');
            if (colon == std::string::npos || colon == 0)
                return setErr(err, "fault entry needs 'site:spec', "
                                   "got '" + entry + "'");
            const std::string site = entry.substr(0, colon);
            const auto spec =
                parseSpec(entry.substr(colon + 1), err);
            if (!spec)
                return false;
            Site s;
            s.spec = *spec;
            // Per-site stream: the same seed drives independent,
            // reproducible sequences at every site.
            s.rng.seed(spec->seed ^ fnv1a64(site));
            sites.emplace(site, std::move(s));
        }
    }
    MutexLock lk(mu_);
    sites_ = std::move(sites);
    total_injected_.store(0, std::memory_order_relaxed);
    armed_.store(!sites_.empty(), std::memory_order_relaxed);
    return true;
}

void
FaultInjector::clear()
{
    MutexLock lk(mu_);
    sites_.clear();
    total_injected_.store(0, std::memory_order_relaxed);
    armed_.store(false, std::memory_order_relaxed);
}

int
FaultInjector::check(const char *site)
{
    if (!armed_.load(std::memory_order_relaxed))
        return 0;
    MutexLock lk(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end())
        return 0;
    Site &s = it->second;
    ++s.calls;
    bool fire = false;
    switch (s.spec.mode) {
      case FaultSpec::Mode::EveryN:
        fire = s.calls % s.spec.n == 0;
        break;
      case FaultSpec::Mode::Once:
        fire = s.calls == s.spec.n;
        break;
      case FaultSpec::Mode::Probability:
        fire = s.rng.chance(s.spec.p);
        break;
    }
    if (!fire)
        return 0;
    ++s.injected;
    total_injected_.fetch_add(1, std::memory_order_relaxed);
    return s.spec.error;
}

uint64_t
FaultInjector::calls(const std::string &site) const
{
    MutexLock lk(mu_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.calls;
}

uint64_t
FaultInjector::injected(const std::string &site) const
{
    MutexLock lk(mu_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.injected;
}

FaultInjector &
FaultInjector::global()
{
    // Configured from the environment exactly once, at first use.
    // A malformed MSE_FAULTS aborts: silently running *without* the
    // faults the operator asked for would fake robustness test passes.
    static FaultInjector *g = [] {
        auto *inj = new FaultInjector();
        // getenv is safe here despite concurrency-mt-unsafe: this
        // initializer runs once (magic static) and nothing in this
        // process calls setenv.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        if (const char *env = std::getenv("MSE_FAULTS")) {
            std::string err;
            if (!inj->configure(env, &err)) {
                std::fprintf(stderr, "MSE_FAULTS: %s\n", err.c_str());
                std::abort();
            }
        }
        return inj;
    }();
    return *g;
}

} // namespace mse

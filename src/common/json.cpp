#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mse {

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.type_ = Type::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.type_ = Type::Object;
    return v;
}

void
JsonValue::push(JsonValue v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    items_.push_back(std::move(v));
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    for (auto &kv : members_) {
        if (kv.first == key)
            return kv.second;
    }
    members_.emplace_back(key, JsonValue());
    return members_.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : members_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

double
JsonValue::getDouble(const std::string &key, double def) const
{
    const JsonValue *v = find(key);
    return v ? v->asDouble(def) : def;
}

int64_t
JsonValue::getInt(const std::string &key, int64_t def) const
{
    const JsonValue *v = find(key);
    return v ? v->asInt(def) : def;
}

bool
JsonValue::getBool(const std::string &key, bool def) const
{
    const JsonValue *v = find(key);
    return v ? v->asBool(def) : def;
}

std::string
JsonValue::getString(const std::string &key, const std::string &def) const
{
    const JsonValue *v = find(key);
    return v ? v->asString(def) : def;
}

void
jsonEscape(const std::string &s, std::string &out)
{
    for (const char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out += c; // UTF-8 bytes pass through unmodified.
            }
        }
    }
}

std::string
jsonEscaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    jsonEscape(s, out);
    return out;
}

namespace {

/** Shortest decimal form of v that parses back to exactly v. */
void
formatNumber(double v, std::string &out)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN literals; null is the conventional stand-in.
        out += "null";
        return;
    }
    constexpr double kExactInt = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && std::fabs(v) <= kExactInt) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    for (const int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out += buf;
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<size_t>(indent) * static_cast<size_t>(depth),
               ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        formatNumber(num_, out);
        break;
      case Type::String:
        out += '"';
        jsonEscape(str_, out);
        out += '"';
        break;
      case Type::Array:
        out += '[';
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i > 0)
                out += ',';
            if (pretty)
                newlineIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (pretty && !items_.empty())
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out += ',';
            if (pretty)
                newlineIndent(out, indent, depth + 1);
            out += '"';
            jsonEscape(members_[i].first, out);
            out += pretty ? "\": " : "\":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (pretty && !members_.empty())
            newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a raw byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s_(text), error_(error)
    {}

    std::optional<JsonValue> parse()
    {
        JsonValue v;
        skipWs();
        if (!parseValue(v, 0))
            return std::nullopt;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after document");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    std::optional<JsonValue> fail(const char *msg)
    {
        if (error_ && error_->empty()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%s (at byte %zu)", msg,
                          pos_);
            *error_ = buf;
        }
        return std::nullopt;
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return false;
        }
        if (pos_ >= s_.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (s_[pos_]) {
          case 'n':
            if (!literal("null")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue();
            return true;
          case 't':
            if (!literal("true")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue(true);
            return true;
          case 'f':
            if (!literal("false")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue(false);
            return true;
          case '"': {
            std::string str;
            if (!parseString(str))
                return false;
            out = JsonValue(std::move(str));
            return true;
          }
          case '[': return parseArray(out, depth);
          case '{': return parseObject(out, depth);
          default: return parseNumber(out);
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        const size_t digits = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == digits) {
            fail("invalid value");
            return false;
        }
        const std::string tok = s_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || !std::isfinite(v)) {
            fail("invalid number");
            return false;
        }
        out = JsonValue(v);
        return true;
    }

    /** Append the UTF-8 encoding of one code point. */
    static void appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseHex4(uint32_t &out)
    {
        if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = s_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<uint32_t>(c - 'A' + 10);
            else {
                fail("invalid \\u escape");
                return false;
            }
        }
        return true;
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= s_.size()) {
                fail("unterminated string");
                return false;
            }
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= s_.size()) {
                fail("unterminated escape");
                return false;
            }
            const char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                uint32_t cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the low half.
                    if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                        s_[pos_ + 1] != 'u') {
                        fail("unpaired surrogate");
                        return false;
                    }
                    pos_ += 2;
                    uint32_t lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF) {
                        fail("invalid low surrogate");
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired surrogate");
                    return false;
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape character");
                return false;
            }
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out = JsonValue::array();
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            skipWs();
            if (!parseValue(item, depth + 1))
                return false;
            out.push(std::move(item));
            skipWs();
            if (pos_ >= s_.size()) {
                fail("unterminated array");
                return false;
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']'");
            return false;
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out = JsonValue::object();
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                fail("expected ':'");
                return false;
            }
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            // Duplicate keys: last one wins (operator[] finds the first
            // occurrence, so overwrite in place).
            out[key] = std::move(value);
            skipWs();
            if (pos_ >= s_.size()) {
                fail("unterminated object");
                return false;
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}'");
            return false;
        }
    }

    const std::string &s_;
    size_t pos_ = 0;
    std::string *error_;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.parse();
}

bool
writeJsonFile(const std::string &path, const JsonValue &doc)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string text = doc.dump(2);
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
}

} // namespace mse

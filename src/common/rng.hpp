/**
 * @file
 * Deterministic random number generation used across the MSE framework.
 *
 * Every stochastic component (mappers, workload generators, surrogate
 * training) draws from an explicitly seeded Rng so that experiments are
 * reproducible run-to-run.
 */
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace mse {

/**
 * A small wrapper around std::mt19937_64 with convenience samplers.
 *
 * The wrapper exists so the rest of the codebase never constructs ad-hoc
 * distributions and so the engine type can be swapped in one place.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eedULL) : engine_(seed) {}

    /** Re-seed the generator. */
    void seed(uint64_t s) { engine_.seed(s); }

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> d(lo, hi);
        return d(engine_);
    }

    /** Uniform index in [0, n). Requires n > 0. */
    size_t index(size_t n) { return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1)); }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine_);
    }

    /** Standard normal sample scaled by stddev. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        std::normal_distribution<double> d(mean, stddev);
        return d(engine_);
    }

    /** Bernoulli trial with probability p of true. */
    bool chance(double p) { return uniformReal() < p; }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[index(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[index(i)]);
        }
    }

    /** Access the underlying engine (for std:: algorithms). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace mse

/**
 * @file
 * Clang Thread Safety Analysis annotations and the annotated mutex
 * wrappers every concurrent translation unit in this repo uses.
 *
 * The engine stack's core guarantee — bit-identical search results at
 * any MSE_THREADS — rests on a dozen mutex-bearing files (thread pool,
 * eval cache, metrics, service queue, mapping store, TCP server).
 * Runtime tests and sanitizers can only catch the interleavings they
 * happen to execute; Clang's -Wthread-safety analysis proves the
 * locking discipline for *every* path at compile time, from the
 * GUARDED_BY / REQUIRES / ACQUIRE / RELEASE contracts declared here.
 *
 * Under any compiler without the capability attributes (GCC, MSVC) the
 * macros expand to nothing, so the annotations are zero-cost
 * documentation; under Clang with -Wthread-safety (the
 * MSE_THREAD_SAFETY=ON CMake configuration, enforced in CI with
 * -Werror) they are a hard gate.
 *
 * Usage rules (enforced by tools/mse_lint.py rule `raw-mutex`):
 *  - never declare a bare std::mutex / std::lock_guard /
 *    std::unique_lock in src/ — use mse::Mutex, mse::MutexLock, and
 *    mse::MutexUniqueLock (for condition-variable waits) so every lock
 *    participates in the analysis;
 *  - every mse::Mutex member must have at least one GUARDED_BY /
 *    REQUIRES contract referring to it;
 *  - condition-variable predicates are written as explicit while loops
 *    around cv.wait(lk.native()) in the locking function's own scope
 *    (the analysis does not propagate lock state into lambdas).
 *
 * The only thread-safety suppressions allowed in the repo live in this
 * header (the wrapper internals the analysis cannot see through).
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros (Abseil-style; no-ops outside Clang).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MSE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef MSE_THREAD_ANNOTATION_ATTRIBUTE
#define MSE_THREAD_ANNOTATION_ATTRIBUTE(x) // no-op
#endif

/** Marks a class as a lockable capability (e.g. a mutex type). */
#define CAPABILITY(x) MSE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/** Marks an RAII class that acquires on construction, releases on
 *  destruction. */
#define SCOPED_CAPABILITY MSE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/** Data member readable/writable only while holding x. */
#define GUARDED_BY(x) MSE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/** Pointer member whose pointee is guarded by x. */
#define PT_GUARDED_BY(x) MSE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/** Function requires the listed capabilities held on entry (and still
 *  held on exit). */
#define REQUIRES(...) \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities; they must not be held on
 *  entry. */
#define ACQUIRE(...) \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities; they must be held on
 *  entry. */
#define RELEASE(...) \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns `ret`. */
#define TRY_ACQUIRE(ret, ...) \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/** Function must NOT be called with the listed capabilities held
 *  (deadlock guard for functions that acquire them internally). */
#define EXCLUDES(...) \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/** Asserts (at runtime, for the analysis) the capability is held. */
#define ASSERT_CAPABILITY(x) \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/** Function returns a reference to the given capability. */
#define RETURN_CAPABILITY(x) MSE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/** Lock-ordering declarations (deadlock prevention). */
#define ACQUIRED_BEFORE(...) \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/** Opt a function out of the analysis (wrapper internals only; the
 *  repo gate forbids this outside thread_annotations.hpp). */
#define NO_THREAD_SAFETY_ANALYSIS \
    MSE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace mse {

// ---------------------------------------------------------------------------
// Annotated std::mutex wrappers.
// ---------------------------------------------------------------------------

/**
 * std::mutex carrying the `capability` attribute so GUARDED_BY /
 * REQUIRES contracts can reference it. Same size and cost as the
 * wrapped mutex; native() exposes the underlying handle for
 * condition-variable waits (via MutexUniqueLock — never lock or unlock
 * through native() directly, the analysis cannot see it).
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

    std::mutex &native() { return mu_; }

  private:
    std::mutex mu_;
};

/**
 * Scoped lock (the std::lock_guard analog). Acquires in the
 * constructor, releases in the destructor; the SCOPED_CAPABILITY
 * attribute lets the analysis track the region it covers.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Scoped lock backed by a std::unique_lock, for condition-variable
 * waits: pass native() to std::condition_variable::wait. The
 * constructor locks through the annotated Mutex::lock() and *adopts*
 * the ownership into the unique_lock, so the analysis sees a real
 * acquire; the destructor symmetrically releases ownership from the
 * unique_lock and unlocks through the annotated path.
 *
 * cv.wait(native()) unlocks and relocks internally — invisible to the
 * analysis, which is sound here because the capability is held both
 * before and after the call. Guarded reads in a wait *predicate* must
 * therefore be written as an explicit while loop in the caller's scope
 * (see the usage rules in the file comment).
 */
class SCOPED_CAPABILITY MutexUniqueLock
{
  public:
    explicit MutexUniqueLock(Mutex &mu) ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
        lk_ = std::unique_lock<std::mutex>(mu_.native(), std::adopt_lock);
    }

    ~MutexUniqueLock() RELEASE()
    {
        if (lk_.owns_lock()) {
            lk_.release(); // Disassociate without unlocking...
            mu_.unlock();  // ...then release through the annotated path.
        }
    }

    MutexUniqueLock(const MutexUniqueLock &) = delete;
    MutexUniqueLock &operator=(const MutexUniqueLock &) = delete;

    /** The underlying lock, for std::condition_variable::wait only. */
    std::unique_lock<std::mutex> &native() { return lk_; }

  private:
    Mutex &mu_;
    std::unique_lock<std::mutex> lk_;
};

} // namespace mse

#include "common/cluster_faults.hpp"

#include <cstdlib>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/thread_annotations.hpp"

namespace mse {
namespace {

Mutex g_mu;
bool g_loaded GUARDED_BY(g_mu) = false;
std::vector<std::string> g_peers GUARDED_BY(g_mu);

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= csv.size()) {
        const size_t comma = csv.find(',', start);
        const std::string tok = csv.substr(
            start,
            comma == std::string::npos ? std::string::npos
                                       : comma - start);
        if (!tok.empty())
            out.push_back(tok);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

void
clusterFaultPeersConfigure(const std::string &csv)
{
    MutexLock lk(g_mu);
    g_peers = splitCsv(csv);
    g_loaded = true;
}

int
clusterFaultCheck(const char *site, const std::string &peer)
{
    // Fast path: nothing armed at all — skip the filter lock entirely.
    if (!FaultInjector::global().armed())
        return 0;
    {
        MutexLock lk(g_mu);
        if (!g_loaded) {
            const char *env = std::getenv("MSE_FAULT_PEERS");
            g_peers = splitCsv(env ? env : "");
            g_loaded = true;
        }
        if (!g_peers.empty()) {
            bool match = false;
            for (const std::string &p : g_peers)
                if (p == peer) {
                    match = true;
                    break;
                }
            // Filtered-out peer: do not consult the site, so its
            // deterministic counter only advances for matched peers.
            if (!match)
                return 0;
        }
    }
    return faultCheck(site);
}

} // namespace mse

/**
 * @file
 * Summary statistics used by benches and EXPERIMENTS.md reporting.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace mse {

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &v);

/** Geometric mean of strictly positive values; 0 for empty input. */
double geomean(const std::vector<double> &v);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &v);

/** Minimum; requires non-empty input. */
double minOf(const std::vector<double> &v);

/** Maximum; requires non-empty input. */
double maxOf(const std::vector<double> &v);

/**
 * Linear-interpolated percentile, p in [0, 100]. Requires non-empty input;
 * the input is copied and sorted internally.
 */
double percentile(std::vector<double> v, double p);

} // namespace mse

#include "common/csv.hpp"

#include <cstdio>

namespace mse {

CsvWriter::CsvWriter(const std::string &path) : out_(path) {}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find(',') == std::string::npos &&
        cell.find('"') == std::string::npos) {
        return cell;
    }
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    char buf[64];
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        std::snprintf(buf, sizeof(buf), "%.6g", cells[i]);
        out_ << buf;
    }
    out_ << '\n';
}

} // namespace mse

/**
 * @file
 * Minimal CSV emission for bench outputs (e.g. the Fig. 4 PCA point cloud).
 */
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mse {

/**
 * Streams rows of heterogeneous printable cells to a CSV file.
 *
 * Cells are quoted only when they contain a comma or quote; numeric cells
 * are formatted with operator<< defaults.
 */
class CsvWriter
{
  public:
    /** Opens (and truncates) path. Check ok() before writing. */
    explicit CsvWriter(const std::string &path);

    /** True iff the file opened successfully. */
    bool ok() const { return out_.good(); }

    /** Write a header or data row of string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write a row of doubles (scientific format, 6 significant digits). */
    void writeRow(const std::vector<double> &cells);

  private:
    static std::string escape(const std::string &cell);

    std::ofstream out_;
};

} // namespace mse

/**
 * @file
 * Integer factorization helpers underpinning tile-size exploration.
 *
 * A mapping assigns each problem dimension a tuple of per-level tile
 * factors whose product equals the dimension bound. Enumerating, sampling
 * and repairing such tuples is the workhorse of every mapper, so the
 * helpers live here in one audited place.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mse {

class Rng;

/**
 * FNV-1a 64-bit hash of a byte string. Used wherever a stable,
 * implementation-independent digest of a signature string is needed
 * (per-job RNG seeds, store keys, short display ids) — std::hash is
 * implementation-defined and would break cross-build reproducibility.
 */
constexpr uint64_t
fnv1a64(std::string_view s)
{
    uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** fnv1a64 rendered as a fixed-width 16-digit hex string. */
std::string fnv1a64Hex(std::string_view s);

/** All positive divisors of n, ascending. Requires n >= 1. */
std::vector<int64_t> divisorsOf(int64_t n);

/**
 * The divisor of n closest to target (ties resolved toward the smaller
 * divisor). Used to repair tile factors after warm-start scaling.
 */
int64_t nearestDivisor(int64_t n, int64_t target);

/**
 * Count ordered factorizations of n into exactly k positive factors
 * (factors of 1 allowed). This is the per-dimension tile sub-space size
 * used by the map-space size computation of Sec. 4.2.
 */
double countOrderedFactorizations(int64_t n, int k);

/**
 * Enumerate all ordered factorizations of n into exactly k factors.
 * Intended for small n / k (tests and exhaustive sweeps).
 */
std::vector<std::vector<int64_t>> enumerateOrderedFactorizations(int64_t n, int k);

/**
 * Sample one ordered factorization of n into k factors uniformly over the
 * recursive divisor tree (not exactly uniform over all tuples, but cheap,
 * full-support, and adequate for random search).
 */
std::vector<int64_t> sampleFactorization(int64_t n, int k, Rng &rng);

/** Greatest common divisor. */
int64_t gcd64(int64_t a, int64_t b);

/** Ceiling division for positive integers. */
inline int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** log2 of a double-precision count that may be astronomically large. */
double log10OfProduct(const std::vector<double> &factors);

} // namespace mse

/**
 * @file
 * The fault-site registry: every named injection site the sys_io seam
 * (and the event loop) consults via faultCheck(), as named constants.
 *
 * Site names are a cross-file contract: passed to the sys* wrappers in
 * `src/service/`/`src/cluster/`, armed by MSE_FAULTS grammar strings
 * in tests and the chaos harness, and listed in README's fault-site
 * table. The literals live here and nowhere else in src/ —
 * `tools/mse_analyze.py` (rule `dup-literal`) rejects a site literal
 * typed out at a call site, and its registry rules cross-check this
 * header against the src/ uses, the tests/chaos configs that arm each
 * site, and the README table.
 *
 * Tests and shell harnesses keep using the plain strings (that is the
 * user-facing MSE_FAULTS surface); the analyzer reads those literals
 * to decide which sites are actually exercised
 * (rule `fault-site-unexercised`).
 *
 * Adding a site: define the constant, add it to kAllSites, consult it
 * from a wrapper call, arm it in a test or chaos phase, and add the
 * README row — the analyzer fails CI until all of them agree.
 */
#pragma once

namespace mse {
namespace fault_sites {

// MappingStore durability path (src/service/mapping_store.cpp).
inline constexpr const char *kStoreOpen = "store.open";
inline constexpr const char *kStoreRead = "store.read";
inline constexpr const char *kStoreAppend = "store.append";
inline constexpr const char *kStoreFsync = "store.fsync";
inline constexpr const char *kStoreCompact = "store.compact";
inline constexpr const char *kStoreRename = "store.rename";
inline constexpr const char *kStoreUnlink = "store.unlink";

// Blocking socket plumbing (src/service/net.cpp) — used by the
// threaded backend, the clients, and the replication agent.
inline constexpr const char *kNetAccept = "net.accept";
inline constexpr const char *kNetAcceptPoll = "net.accept.poll";
inline constexpr const char *kNetConnectPoll = "net.connect.poll";
inline constexpr const char *kNetPeek = "net.peek";
inline constexpr const char *kNetPoll = "net.poll";
inline constexpr const char *kNetRecv = "net.recv";
inline constexpr const char *kNetSend = "net.send";

// Event-driven front end (src/service/event_server.cpp, poller.cpp).
inline constexpr const char *kServerAccept = "server.accept";
inline constexpr const char *kServerRecv = "server.recv";
inline constexpr const char *kServerSend = "server.send";
inline constexpr const char *kServerWakeRead = "server.wake.read";
inline constexpr const char *kServerEpollCreate = "server.epoll.create";
inline constexpr const char *kServerEpollCtl = "server.epoll.ctl";
inline constexpr const char *kServerEpollWait = "server.epoll.wait";
inline constexpr const char *kServerPollWait = "server.poll.wait";

// Cluster self-healing paths (src/cluster/health.cpp, hints.cpp,
// replication.cpp; inbound gate in the server dispatches). These are
// consulted through clusterFaultCheck() so MSE_FAULT_PEERS can arm
// them against a chosen peer subset — the chaos harness builds
// asymmetric partitions that way.
inline constexpr const char *kClusterProbe = "cluster.probe";
inline constexpr const char *kClusterShip = "cluster.ship";
inline constexpr const char *kClusterSync = "cluster.sync";
inline constexpr const char *kClusterHintAppend = "cluster.hint.append";
inline constexpr const char *kClusterHintRead = "cluster.hint.read";
inline constexpr const char *kClusterAccept = "cluster.accept";

/** Every site the seam consults, for tests and tooling. */
inline constexpr const char *kAllSites[] = {
    kStoreOpen,   kStoreRead,       kStoreAppend,     kStoreFsync,
    kStoreCompact, kStoreRename,    kStoreUnlink,     kNetAccept,
    kNetAcceptPoll, kNetConnectPoll, kNetPeek,        kNetPoll,
    kNetRecv,     kNetSend,         kServerAccept,    kServerRecv,
    kServerSend,  kServerWakeRead,  kServerEpollCreate,
    kServerEpollCtl, kServerEpollWait, kServerPollWait,
    kClusterProbe, kClusterShip,    kClusterSync,     kClusterHintAppend,
    kClusterHintRead, kClusterAccept,
};

} // namespace fault_sites
} // namespace mse

#include "common/sys_io.hpp"

#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/fault_injection.hpp"

namespace mse {

namespace {

/** Steady-clock milliseconds, for re-arming poll timeouts. */
int64_t
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

int
sysOpen(const char *path, int flags, int mode, const char *site)
{
    while (true) {
        const int inj = faultCheck(site);
        int fd;
        if (inj) {
            errno = inj;
            fd = -1;
        } else {
            fd = ::open(path, flags, mode);
        }
        if (fd < 0 && errno == EINTR)
            continue;
        return fd;
    }
}

int
sysClose(int fd)
{
    const int rc = ::close(fd);
    if (rc != 0 && errno == EINTR)
        return 0; // fd state unspecified; do not retry (double close).
    return rc;
}

ssize_t
sysRead(int fd, void *buf, size_t n, const char *site)
{
    while (true) {
        const int inj = faultCheck(site);
        ssize_t r;
        if (inj) {
            errno = inj;
            r = -1;
        } else {
            r = ::read(fd, buf, n);
        }
        if (r < 0 && errno == EINTR)
            continue;
        return r;
    }
}

bool
sysWriteAll(int fd, const void *data, size_t n, const char *site)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const int inj = faultCheck(site);
        ssize_t w;
        if (inj) {
            errno = inj;
            w = -1;
        } else {
            w = ::write(fd, p, n);
        }
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

int
sysFsync(int fd, const char *site)
{
    while (true) {
        const int inj = faultCheck(site);
        int rc;
        if (inj) {
            errno = inj;
            rc = -1;
        } else {
            rc = ::fsync(fd);
        }
        if (rc != 0 && errno == EINTR)
            continue;
        return rc;
    }
}

int
sysRename(const char *from, const char *to, const char *site)
{
    const int inj = faultCheck(site);
    if (inj) {
        errno = inj;
        return -1;
    }
    return ::rename(from, to);
}

int
sysUnlink(const char *path, const char *site)
{
    const int inj = faultCheck(site);
    if (inj) {
        errno = inj;
        return -1;
    }
    const int rc = ::unlink(path);
    if (rc != 0 && errno == ENOENT)
        return 0;
    return rc;
}

int
sysPoll(struct pollfd *fds, unsigned long n, int timeout_ms,
        const char *site)
{
    // Re-arm against a deadline so EINTR storms cannot extend the wait.
    const bool bounded = timeout_ms >= 0;
    const int64_t deadline = bounded ? nowMs() + timeout_ms : 0;
    int remaining = timeout_ms;
    while (true) {
        const int inj = faultCheck(site);
        int rc;
        if (inj) {
            errno = inj;
            rc = -1;
        } else {
            rc = ::poll(fds, static_cast<nfds_t>(n), remaining);
        }
        if (rc < 0 && errno == EINTR) {
            if (bounded) {
                const int64_t left = deadline - nowMs();
                if (left <= 0)
                    return 0; // Deadline passed: report timeout.
                remaining = static_cast<int>(left);
            }
            continue;
        }
        return rc;
    }
}

int
sysAccept(int fd, const char *site)
{
    while (true) {
        const int inj = faultCheck(site);
        int conn;
        if (inj) {
            errno = inj;
            conn = -1;
        } else {
            conn = ::accept(fd, nullptr, nullptr);
        }
        // ECONNABORTED is NOT retried here: with no other pending
        // connection a blocking re-accept would wedge the accept loop
        // past its stop-flag checks. The caller re-polls instead.
        if (conn < 0 && errno == EINTR)
            continue;
        return conn;
    }
}

ssize_t
sysSend(int fd, const void *buf, size_t n, int flags, const char *site)
{
    while (true) {
        const int inj = faultCheck(site);
        ssize_t w;
        if (inj) {
            errno = inj;
            w = -1;
        } else {
            w = ::send(fd, buf, n, flags);
        }
        if (w < 0 && errno == EINTR)
            continue;
        return w;
    }
}

bool
sysSendAll(int fd, const void *data, size_t n, int flags,
           const char *site)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t w = sysSend(fd, p, n, flags, site);
        if (w < 0)
            return false;
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

ssize_t
sysRecv(int fd, void *buf, size_t n, int flags, const char *site)
{
    while (true) {
        const int inj = faultCheck(site);
        ssize_t r;
        if (inj) {
            errno = inj;
            r = -1;
        } else {
            r = ::recv(fd, buf, n, flags);
        }
        if (r < 0 && errno == EINTR)
            continue;
        return r;
    }
}

#ifdef __linux__

int
sysEpollCreate(const char *site)
{
    while (true) {
        const int inj = faultCheck(site);
        int fd;
        if (inj) {
            errno = inj;
            fd = -1;
        } else {
            fd = ::epoll_create1(0);
        }
        if (fd < 0 && errno == EINTR)
            continue;
        return fd;
    }
}

int
sysEpollCtl(int epfd, int op, int fd, struct epoll_event *ev,
            const char *site)
{
    while (true) {
        const int inj = faultCheck(site);
        int rc;
        if (inj) {
            errno = inj;
            rc = -1;
        } else {
            rc = ::epoll_ctl(epfd, op, fd, ev);
        }
        if (rc != 0 && errno == EINTR)
            continue;
        return rc;
    }
}

int
sysEpollWait(int epfd, struct epoll_event *events, int maxevents,
             int timeout_ms, const char *site)
{
    // Re-arm against a deadline so EINTR storms cannot extend the
    // wait past timeout_ms (same contract as sysPoll above).
    const bool bounded = timeout_ms >= 0;
    const int64_t deadline = bounded ? nowMs() + timeout_ms : 0;
    int remaining = timeout_ms;
    while (true) {
        const int inj = faultCheck(site);
        int rc;
        if (inj) {
            errno = inj;
            rc = -1;
        } else {
            rc = ::epoll_wait(epfd, events, maxevents, remaining);
        }
        if (rc < 0 && errno == EINTR) {
            if (bounded) {
                const int64_t left = deadline - nowMs();
                if (left <= 0)
                    return 0; // Deadline passed: report timeout.
                remaining = static_cast<int>(left);
            }
            continue;
        }
        return rc;
    }
}

#endif // __linux__

} // namespace mse

#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"

namespace mse {

std::string
fnv1a64Hex(std::string_view s)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(s)));
    return buf;
}

std::vector<int64_t>
divisorsOf(int64_t n)
{
    std::vector<int64_t> small, large;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            small.push_back(d);
            if (d != n / d)
                large.push_back(n / d);
        }
    }
    small.insert(small.end(), large.rbegin(), large.rend());
    return small;
}

int64_t
nearestDivisor(int64_t n, int64_t target)
{
    int64_t best = 1;
    int64_t best_dist = std::llabs(target - 1);
    for (int64_t d : divisorsOf(n)) {
        int64_t dist = std::llabs(target - d);
        if (dist < best_dist) {
            best = d;
            best_dist = dist;
        }
    }
    return best;
}

double
countOrderedFactorizations(int64_t n, int k)
{
    if (k <= 0)
        return n == 1 ? 1.0 : 0.0;
    if (k == 1)
        return 1.0;
    // Multiplicative over prime powers: p^e contributes C(e + k - 1, k - 1).
    double count = 1.0;
    int64_t m = n;
    for (int64_t p = 2; p * p <= m; ++p) {
        if (m % p != 0)
            continue;
        int e = 0;
        while (m % p == 0) {
            m /= p;
            ++e;
        }
        // C(e + k - 1, k - 1) computed in floating point.
        double c = 1.0;
        for (int i = 1; i <= e; ++i)
            c = c * (k - 1 + i) / i;
        count *= c;
    }
    if (m > 1) {
        // One remaining prime with exponent 1: C(k, 1) = k.
        count *= k;
    }
    return count;
}

namespace {

void
enumerateRec(int64_t n, int k, std::vector<int64_t> &prefix,
             std::vector<std::vector<int64_t>> &out)
{
    if (k == 1) {
        prefix.push_back(n);
        out.push_back(prefix);
        prefix.pop_back();
        return;
    }
    for (int64_t d : divisorsOf(n)) {
        prefix.push_back(d);
        enumerateRec(n / d, k - 1, prefix, out);
        prefix.pop_back();
    }
}

} // namespace

std::vector<std::vector<int64_t>>
enumerateOrderedFactorizations(int64_t n, int k)
{
    std::vector<std::vector<int64_t>> out;
    std::vector<int64_t> prefix;
    if (k >= 1)
        enumerateRec(n, k, prefix, out);
    return out;
}

std::vector<int64_t>
sampleFactorization(int64_t n, int k, Rng &rng)
{
    std::vector<int64_t> factors;
    factors.reserve(k);
    int64_t rem = n;
    for (int i = 0; i < k - 1; ++i) {
        const auto divs = divisorsOf(rem);
        int64_t d = divs[rng.index(divs.size())];
        factors.push_back(d);
        rem /= d;
    }
    factors.push_back(rem);
    return factors;
}

int64_t
gcd64(int64_t a, int64_t b)
{
    while (b != 0) {
        int64_t t = a % b;
        a = b;
        b = t;
    }
    return a < 0 ? -a : a;
}

double
log10OfProduct(const std::vector<double> &factors)
{
    double s = 0.0;
    for (double f : factors)
        s += std::log10(f);
    return s;
}

} // namespace mse

/**
 * @file
 * Per-peer gating for the `cluster.*` fault sites.
 *
 * The single-daemon sites in fault_sites.hpp fire for every caller;
 * partition scenarios need finer aim — "drop traffic *to daemon B*
 * but keep talking to C" is what distinguishes an asymmetric
 * partition from a dead process. clusterFaultCheck() wraps
 * faultCheck() with a peer filter read from the MSE_FAULT_PEERS
 * environment variable (comma-separated `host:port` addresses; unset
 * or empty = the site applies to every peer). The filter is applied
 * *before* the underlying site counter advances, so a site armed
 * `every:1` against one peer stays deterministic no matter how much
 * traffic flows to the others.
 *
 * Lives in src/common (not src/cluster) because the inbound gate in
 * the server dispatches needs it and src/service must not include
 * src/cluster (layering runs strictly downward).
 */
#pragma once

#include <string>

namespace mse {

/**
 * Reconfigure the peer filter (tests only; production reads
 * MSE_FAULT_PEERS once at first use). Comma-separated addresses;
 * empty string = match every peer.
 */
void clusterFaultPeersConfigure(const std::string &csv);

/**
 * faultCheck(site), but only when `peer` passes the MSE_FAULT_PEERS
 * filter. Returns the injected errno, or 0 for "no fault".
 */
int clusterFaultCheck(const char *site, const std::string &peer);

} // namespace mse

/**
 * @file
 * Permutation helpers for loop-order exploration.
 *
 * A loop order at a tiling level is a permutation of the workload's
 * dimension indices (outermost first). Mappers need to sample, perturb,
 * enumerate and canonically index such permutations.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mse {

class Rng;

/** The identity permutation [0, 1, ..., n-1]. */
std::vector<int> identityPermutation(int n);

/** A uniformly random permutation of [0, n). */
std::vector<int> randomPermutation(int n, Rng &rng);

/** True iff perm is a permutation of [0, n). */
bool isPermutation(const std::vector<int> &perm);

/**
 * Lexicographic rank of a permutation in [0, n!). Factorial-number-system
 * encoding; n must be small enough that n! fits in uint64_t (n <= 20).
 */
uint64_t permutationRank(const std::vector<int> &perm);

/** Inverse of permutationRank. */
std::vector<int> permutationFromRank(int n, uint64_t rank);

/** n! as uint64_t (n <= 20). */
uint64_t factorial(int n);

} // namespace mse

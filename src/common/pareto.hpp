/**
 * @file
 * Pareto-dominance utilities for multi-objective mapping search.
 *
 * The paper's MSE optimizes (energy, latency) as a multi-objective
 * problem and reports the lowest-EDP point on the Pareto frontier
 * (Sec. 4.1). Gamma's selection also ranks candidates by nondominated
 * sorting. Both use these helpers; objectives are minimized.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace mse {

/** A point in objective space (all objectives minimized). */
using ObjectivePoint = std::vector<double>;

/** True iff a dominates b (<= everywhere, < somewhere). */
bool dominates(const ObjectivePoint &a, const ObjectivePoint &b);

/**
 * Fast nondominated sorting: returns the Pareto rank of each point
 * (0 = on the frontier, 1 = frontier after removing rank 0, ...).
 */
std::vector<int> paretoRanks(const std::vector<ObjectivePoint> &points);

/**
 * Incrementally maintained Pareto frontier of (energy, latency) points
 * with attached payload indices.
 */
class ParetoArchive
{
  public:
    struct Entry
    {
        double energy;
        double latency;
        size_t payload; ///< Caller-defined identifier.
    };

    /**
     * Insert a point; drops it if dominated, evicts entries it
     * dominates. Returns true if the point joined the frontier.
     */
    bool insert(double energy, double latency, size_t payload);

    const std::vector<Entry> &entries() const { return entries_; }

    /** Index into entries() of the lowest energy*latency point; -1 if empty. */
    int bestEdpIndex() const;

  private:
    std::vector<Entry> entries_;
};

} // namespace mse

/**
 * @file
 * The injectable I/O seam: every syscall the service layer makes goes
 * through these wrappers.
 *
 * Two jobs, one seam:
 *
 *  1. *Correct syscall hygiene in one place.* EINTR is retried (with
 *     the poll timeout re-armed against a steady-clock deadline so a
 *     signal storm cannot extend a wait), short writes are resumed,
 *     and errno is preserved across cleanup paths. The service layer
 *     had these loops scattered per call site; now a signal during
 *     poll/read/send can never kill a healthy connection because no
 *     raw call site exists to get it wrong (enforced by the mse-lint
 *     `raw-syscall` rule).
 *
 *  2. *Deterministic fault injection.* Each wrapper takes a site name
 *     and consults faultCheck(site) before issuing the real syscall;
 *     a configured fault makes the wrapper fail with the injected
 *     errno exactly as the kernel would. An injected EINTR exercises
 *     the retry loop itself (the wrapper retries it like a real
 *     signal); injected ENOSPC/EIO/ECONNRESET surface to the caller.
 *
 * Return conventions mirror POSIX (fd or -1, ssize_t or -1, 0 or -1)
 * so call sites read like the raw calls they replace.
 */
#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>

struct pollfd;
#ifdef __linux__
struct epoll_event;
#endif

namespace mse {

/** open(2) with EINTR retry. Site example: "store.open". */
int sysOpen(const char *path, int flags, int mode, const char *site);

/** close(2); EINTR treated as closed (POSIX leaves the fd state
 *  unspecified — retrying risks closing a reused fd). */
int sysClose(int fd);

/** read(2) with EINTR retry. */
ssize_t sysRead(int fd, void *buf, size_t n, const char *site);

/**
 * write(2) until the whole buffer is on its way: EINTR retried, short
 * writes resumed. False on error (errno set; a short write due to
 * ENOSPC leaves errno = ENOSPC).
 */
bool sysWriteAll(int fd, const void *data, size_t n, const char *site);

/** fsync(2) with EINTR retry. */
int sysFsync(int fd, const char *site);

/** rename(2). */
int sysRename(const char *from, const char *to, const char *site);

/** unlink(2); ENOENT is not an error (idempotent cleanup). */
int sysUnlink(const char *path, const char *site);

/**
 * poll(2) with EINTR retry against a steady-clock deadline: a signal
 * mid-wait resumes the poll with the *remaining* timeout, so total
 * wait never exceeds timeout_ms (negative timeout_ms = infinite).
 */
int sysPoll(struct pollfd *fds, unsigned long n, int timeout_ms,
            const char *site);

/** accept(2) with EINTR retry (ECONNABORTED is returned so the
 *  caller's poll loop re-arms instead of blocking in re-accept). */
int sysAccept(int fd, const char *site);

/** send(2) with EINTR retry (one attempt's worth; short sends are the
 *  caller's loop — see sysSendAll). */
ssize_t sysSend(int fd, const void *buf, size_t n, int flags,
                const char *site);

/** send(2) until the whole buffer is written; false on error. */
bool sysSendAll(int fd, const void *data, size_t n, int flags,
                const char *site);

/** recv(2) with EINTR retry. */
ssize_t sysRecv(int fd, void *buf, size_t n, int flags,
                const char *site);

#ifdef __linux__
/** epoll_create1(2) with EINTR retry (paranoia; not specified to
 *  EINTR, but the injected form can). */
int sysEpollCreate(const char *site);

/** epoll_ctl(2); EINTR retried. */
int sysEpollCtl(int epfd, int op, int fd, struct epoll_event *ev,
                const char *site);

/**
 * epoll_wait(2) with EINTR retry against a steady-clock deadline,
 * mirroring sysPoll: a signal (or injected EINTR) mid-wait resumes
 * with the *remaining* timeout, so total wait never exceeds
 * timeout_ms (negative timeout_ms = infinite).
 */
int sysEpollWait(int epfd, struct epoll_event *events, int maxevents,
                 int timeout_ms, const char *site);
#endif

} // namespace mse

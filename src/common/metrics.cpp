#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mse {

namespace {

/** Bucket index for a latency: floor(log2(s)) + 20, clamped. */
int
bucketOf(double seconds)
{
    if (seconds <= 0.0)
        return 0;
    const int i = static_cast<int>(std::floor(std::log2(seconds))) + 20;
    return std::clamp(i, 0, LatencyHistogram::kBuckets - 1);
}

/** Lower bound of bucket i in seconds. */
double
bucketLow(int i)
{
    return std::ldexp(1.0, i - 20);
}

} // namespace

void
LatencyHistogram::record(double seconds)
{
    ++buckets_[bucketOf(seconds)];
    ++count_;
    sum_ += seconds;
    if (count_ == 1 || seconds < min_)
        min_ = seconds;
    if (seconds > max_)
        max_ = seconds;
}

double
LatencyHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count_);
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        const double before = static_cast<double>(seen);
        seen += buckets_[i];
        if (static_cast<double>(seen) >= rank) {
            // Interpolate within the bucket, clamped to observed range.
            const double frac = buckets_[i] > 0
                ? (rank - before) / static_cast<double>(buckets_[i])
                : 0.0;
            const double lo = bucketLow(i);
            const double v = lo + std::clamp(frac, 0.0, 1.0) * lo;
            return std::clamp(v, min_, max_ > 0.0 ? max_ : v);
        }
    }
    return max_;
}

JsonValue
LatencyHistogram::toJson() const
{
    JsonValue j = JsonValue::object();
    j["count"] = count_;
    j["mean_s"] = mean();
    j["min_s"] = min();
    j["max_s"] = max();
    j["p50_s"] = percentile(0.50);
    j["p95_s"] = percentile(0.95);
    j["p99_s"] = percentile(0.99);
    return j;
}

void
ServiceMetrics::onRequest(const char *type)
{
    MutexLock lk(mu_);
    ++requests_total_;
    if (std::strcmp(type, "search") == 0)
        ++requests_search_;
    else if (std::strcmp(type, "stats") == 0)
        ++requests_stats_;
    else if (std::strcmp(type, "ping") == 0)
        ++requests_ping_;
    else if (std::strcmp(type, "replicate") == 0)
        ++requests_replicate_;
    else if (std::strcmp(type, "probe") == 0)
        ++requests_probe_;
    else if (std::strcmp(type, "sync") == 0)
        ++requests_sync_;
    else
        ++requests_other_;
}

void
ServiceMetrics::onError(const char *code)
{
    (void)code;
    MutexLock lk(mu_);
    ++errors_total_;
}

void
ServiceMetrics::onRejectQueueFull()
{
    MutexLock lk(mu_);
    ++rejected_queue_full_;
    ++errors_total_;
}

void
ServiceMetrics::onEnqueue()
{
    MutexLock lk(mu_);
    ++enqueued_;
}

void
ServiceMetrics::onDequeue()
{
    MutexLock lk(mu_);
    ++dequeued_;
}

void
ServiceMetrics::onSearchDone(const SearchSample &s)
{
    MutexLock lk(mu_);
    search_latency_.record(s.latency_seconds);
    switch (s.store_kind) {
      case 2: ++store_exact_; break;
      case 1: ++store_near_; break;
      default: ++store_cold_; break;
    }
    if (s.store_improved)
        ++store_improved_;
    if (s.timed_out)
        ++timed_out_;
    if (s.cancelled)
        ++cancelled_;
    samples_total_ += s.samples;
    eval_cache_hits_ += s.eval_cache_hits;
    eval_cache_misses_ += s.eval_cache_misses;
}

void
ServiceMetrics::onStoreDegraded()
{
    MutexLock lk(mu_);
    ++store_degraded_events_;
}

void
ServiceMetrics::onReplicate(uint64_t merged, uint64_t ignored)
{
    MutexLock lk(mu_);
    replicated_in_merged_ += merged;
    replicated_in_ignored_ += ignored;
}

uint64_t
ServiceMetrics::queueDepth() const
{
    MutexLock lk(mu_);
    return enqueued_ >= dequeued_ ? enqueued_ - dequeued_ : 0;
}

JsonValue
ServiceMetrics::toJson() const
{
    MutexLock lk(mu_);
    JsonValue j = JsonValue::object();
    JsonValue &req = j["requests"];
    req["total"] = requests_total_;
    req["search"] = requests_search_;
    req["stats"] = requests_stats_;
    req["ping"] = requests_ping_;
    req["replicate"] = requests_replicate_;
    req["probe"] = requests_probe_;
    req["sync"] = requests_sync_;
    req["other"] = requests_other_;
    req["errors"] = errors_total_;
    req["rejected_queue_full"] = rejected_queue_full_;
    j["queue_depth"] =
        enqueued_ >= dequeued_ ? enqueued_ - dequeued_ : uint64_t{0};
    JsonValue &store = j["store"];
    store["exact_hits"] = store_exact_;
    store["near_hits"] = store_near_;
    store["cold"] = store_cold_;
    store["improvements_written"] = store_improved_;
    store["degraded_events"] = store_degraded_events_;
    store["replicated_in_merged"] = replicated_in_merged_;
    store["replicated_in_ignored"] = replicated_in_ignored_;
    JsonValue &search = j["search"];
    search["timed_out"] = timed_out_;
    search["cancelled"] = cancelled_;
    search["samples_total"] = samples_total_;
    search["eval_cache_hits"] = eval_cache_hits_;
    search["eval_cache_misses"] = eval_cache_misses_;
    const uint64_t queries = eval_cache_hits_ + eval_cache_misses_;
    search["eval_cache_hit_rate"] = queries > 0
        ? static_cast<double>(eval_cache_hits_) /
            static_cast<double>(queries)
        : 0.0;
    j["latency"] = search_latency_.toJson();
    return j;
}

} // namespace mse

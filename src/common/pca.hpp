/**
 * @file
 * Principal component analysis for map-space visualization (Fig. 4).
 *
 * The paper projects sampled mappings into 3-D via PCA to show how each
 * mapper navigates the map space. We implement PCA from scratch on top of
 * a covariance matrix and Jacobi eigen-decomposition — data sets here are
 * small (thousands of points, tens of features).
 */
#pragma once

#include <cstddef>
#include <vector>

namespace mse {

/** Result of fitting PCA: component directions and explained variance. */
struct PcaModel
{
    size_t dim = 0;                           ///< Input feature count.
    std::vector<double> mean;                 ///< Per-feature mean.
    std::vector<std::vector<double>> components; ///< Row-major, one per PC.
    std::vector<double> explained_variance;   ///< Eigenvalue per PC.

    /** Project one sample onto the first components.size() PCs. */
    std::vector<double> project(const std::vector<double> &x) const;
};

/**
 * Fit PCA on row-major data (n_samples x n_features), keeping
 * n_components leading principal components.
 *
 * Uses cyclic Jacobi rotations on the covariance matrix; suitable for
 * n_features up to a few hundred.
 */
PcaModel fitPca(const std::vector<std::vector<double>> &data,
                size_t n_components);

} // namespace mse

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mse {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size()));
}

double
minOf(const std::vector<double> &v)
{
    return *std::min_element(v.begin(), v.end());
}

double
maxOf(const std::vector<double> &v)
{
    return *std::max_element(v.begin(), v.end());
}

double
percentile(std::vector<double> v, double p)
{
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v[0];
    const double pos = (p / 100.0) * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

} // namespace mse

/**
 * @file
 * Work-queue thread pool backing batched mapping evaluation.
 *
 * The pool exists for exactly one access pattern: a single search thread
 * repeatedly fans a batch of independent cost-model queries out to N
 * workers (`parallelFor`) and blocks until the whole batch is done.
 * Workers are spawned once and parked on a condition variable between
 * batches, so per-batch overhead is one notify + one join handshake
 * rather than thread creation.
 *
 * Sizing. `configuredThreads()` reads the `MSE_THREADS` environment
 * variable (clamped to [1, 256]); unset or unparsable falls back to
 * `std::thread::hardware_concurrency()`. A pool of size 1 spawns no
 * workers at all and `parallelFor` degenerates to an inline serial
 * loop — the fully serial fallback used as the determinism reference.
 *
 * Determinism contract. `parallelFor(n, fn)` invokes fn exactly once
 * for every index in [0, n); indices are claimed dynamically, so the
 * *execution* order is nondeterministic, but callers that write results
 * into per-index slots and reduce them in index order afterwards (see
 * SearchTracker::evaluateBatch) observe identical results at any pool
 * size.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace mse {

/**
 * Fixed-size worker pool with a blocking parallel-for. parallelFor must
 * not be called concurrently from two top-level threads; calls from
 * *inside* a task are legal and degrade to an inline serial loop (see
 * parallelFor), which is what lets ModelSweep parallelize whole layer
 * searches whose inner batched evaluation also targets the global pool.
 */
class ThreadPool
{
  public:
    /** threads = total parallelism (callers + workers); 0 = auto. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (the calling thread counts as one lane). */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Invoke fn(i) for every i in [0, n), distributing indices across
     * the pool; the calling thread participates. Blocks until all n
     * invocations returned. fn must be safe to call concurrently.
     *
     * Re-entrancy: when called from inside a pool task (at any depth),
     * the indices run inline on the calling thread instead of being
     * published as a job — nesting therefore cannot deadlock, and the
     * outermost parallelFor level owns all the pool's parallelism.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn)
        EXCLUDES(mu_);

    /** True while the calling thread is executing a pool task. */
    static bool inTask();

    /**
     * Marks the current thread as pool-task context for its lifetime,
     * so every parallelFor it issues (at any depth) runs inline.
     *
     * This is how N independent top-level threads — e.g. the service's
     * executor workers — can each drive searches concurrently without
     * violating the one-top-level-caller contract of parallelFor: each
     * worker wraps its job in a ScopedInline and evaluates serially on
     * its own lane. Results stay bit-identical by the pool-size
     * determinism contract (inline == pool of size 1).
     */
    class ScopedInline
    {
      public:
        ScopedInline();
        ~ScopedInline();
        ScopedInline(const ScopedInline &) = delete;
        ScopedInline &operator=(const ScopedInline &) = delete;

      private:
        bool prev_;
    };

    /**
     * Process-wide pool used by SearchTracker::evaluateBatch. Created
     * on first use with configuredThreads() lanes.
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of `threads` lanes (0 = auto).
     * Intended for tests and benches that compare serial vs parallel
     * runs in one process. Must not race an active parallelFor.
     */
    static void setGlobalThreads(unsigned threads);

    /** MSE_THREADS env override, else hardware_concurrency (>= 1). */
    static unsigned configuredThreads();

  private:
    void workerLoop() EXCLUDES(mu_);
    void runJob(const std::function<void(size_t)> *fn, size_t n)
        EXCLUDES(mu_);

    std::vector<std::thread> workers_;

    Mutex mu_;
    std::condition_variable job_cv_;  ///< wakes workers on a new job
    std::condition_variable done_cv_; ///< wakes the caller on completion

    // Current job, guarded by mu_ for publication; next_/completed_ are
    // the hot counters workers hit lock-free.
    const std::function<void(size_t)> *job_fn_ GUARDED_BY(mu_) = nullptr;
    size_t job_n_ GUARDED_BY(mu_) = 0;
    uint64_t job_id_ GUARDED_BY(mu_) = 0;
    unsigned active_workers_ GUARDED_BY(mu_) = 0;
    bool stop_ GUARDED_BY(mu_) = false;
    std::atomic<size_t> next_{0};
    std::atomic<size_t> completed_{0};
};

} // namespace mse

#include "common/pareto.hpp"

#include <algorithm>

namespace mse {

bool
dominates(const ObjectivePoint &a, const ObjectivePoint &b)
{
    bool strictly = false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
        if (a[i] < b[i])
            strictly = true;
    }
    return strictly;
}

std::vector<int>
paretoRanks(const std::vector<ObjectivePoint> &points)
{
    const size_t n = points.size();
    std::vector<int> rank(n, -1);
    std::vector<char> assigned(n, 0);
    size_t remaining = n;
    int current = 0;
    while (remaining > 0) {
        std::vector<size_t> front;
        for (size_t i = 0; i < n; ++i) {
            if (assigned[i])
                continue;
            bool dominated = false;
            for (size_t j = 0; j < n && !dominated; ++j) {
                if (j != i && !assigned[j] &&
                    dominates(points[j], points[i])) {
                    dominated = true;
                }
            }
            if (!dominated)
                front.push_back(i);
        }
        for (size_t i : front) {
            rank[i] = current;
            assigned[i] = 1;
        }
        remaining -= front.size();
        ++current;
    }
    return rank;
}

bool
ParetoArchive::insert(double energy, double latency, size_t payload)
{
    for (const auto &e : entries_) {
        // Weak dominance: exact duplicates are not an improvement.
        if (e.energy <= energy && e.latency <= latency)
            return false;
    }
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(),
                       [&](const Entry &e) {
                           return energy <= e.energy &&
                               latency <= e.latency &&
                               (energy < e.energy || latency < e.latency);
                       }),
        entries_.end());
    entries_.push_back({energy, latency, payload});
    return true;
}

int
ParetoArchive::bestEdpIndex() const
{
    int best = -1;
    double best_edp = 0.0;
    for (size_t i = 0; i < entries_.size(); ++i) {
        const double edp = entries_[i].energy * entries_[i].latency;
        if (best < 0 || edp < best_edp) {
            best = static_cast<int>(i);
            best_edp = edp;
        }
    }
    return best;
}

} // namespace mse

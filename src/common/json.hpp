/**
 * @file
 * Minimal JSON layer: an ordered document value, an escaping writer, and
 * a strict recursive-descent parser.
 *
 * The repo grows a serving path in this PR — requests and replies travel
 * as line-delimited JSON over TCP, the mapping store persists JSON
 * records, and every BENCH_*.json already hand-rolled its own emission.
 * This file is the single audited implementation all of them share.
 *
 * Design constraints:
 *  - *Deterministic output.* Object members keep insertion order, so a
 *    document dumps byte-identically run to run (no hash-map ordering).
 *  - *Exact numbers.* Numbers are stored as doubles and written with
 *    the shortest representation that round-trips (integral values in
 *    [-2^53, 2^53] print without a decimal point), so cost traces keep
 *    their full precision through a serialize/parse cycle.
 *  - *Hostile input.* parseJson is the daemon's first line of defense:
 *    it enforces a nesting-depth limit, rejects trailing garbage, and
 *    reports the byte offset of the first error. It never throws.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mse {

/** One JSON document node (null, bool, number, string, array, object). */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
    JsonValue(double v) : type_(Type::Number), num_(v) {}
    JsonValue(int v) : type_(Type::Number), num_(v) {}
    JsonValue(int64_t v)
        : type_(Type::Number), num_(static_cast<double>(v))
    {}
    JsonValue(uint64_t v)
        : type_(Type::Number), num_(static_cast<double>(v))
    {}
    JsonValue(const char *s) : type_(Type::String), str_(s) {}
    JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** An empty array / object (distinct from default-constructed null). */
    static JsonValue array();
    static JsonValue object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed reads with a fallback for wrong-typed / absent values. */
    bool asBool(bool def = false) const
    {
        return isBool() ? bool_ : def;
    }
    double asDouble(double def = 0.0) const
    {
        return isNumber() ? num_ : def;
    }
    int64_t asInt(int64_t def = 0) const
    {
        return isNumber() ? static_cast<int64_t>(num_) : def;
    }
    const std::string &asString() const { return str_; }
    std::string asString(const std::string &def) const
    {
        return isString() ? str_ : def;
    }

    /** Array elements / object members (empty for other types). */
    const std::vector<JsonValue> &items() const { return items_; }
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return members_;
    }
    size_t size() const
    {
        return isObject() ? members_.size() : items_.size();
    }

    /** Append to an array (converts a null value into an array). */
    void push(JsonValue v);

    /**
     * Member access for building objects: returns the value for `key`,
     * inserting a null member if absent (converts null into an object).
     */
    JsonValue &operator[](const std::string &key);

    /** Lookup without insertion; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** find() that tolerates a null `this` (chained optional lookups). */
    double getDouble(const std::string &key, double def) const;
    int64_t getInt(const std::string &key, int64_t def) const;
    bool getBool(const std::string &key, bool def) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /**
     * Serialize. indent < 0 emits the compact one-line form (the wire
     * and store format); indent >= 0 pretty-prints with that many
     * spaces per level.
     */
    std::string dump(int indent = -1) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Append `s` JSON-escaped (no surrounding quotes) onto `out`. */
void jsonEscape(const std::string &s, std::string &out);

/** Convenience form returning the escaped string. */
std::string jsonEscaped(const std::string &s);

/**
 * Parse one JSON document. Returns nullopt on malformed input and, when
 * `error` is non-null, stores a one-line description including the byte
 * offset. Rejects trailing non-whitespace and nesting deeper than 64
 * levels.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

/**
 * Write `doc` to `path` (pretty-printed, trailing newline). Returns
 * false on I/O failure. The one call every BENCH_*.json goes through.
 */
bool writeJsonFile(const std::string &path, const JsonValue &doc);

} // namespace mse

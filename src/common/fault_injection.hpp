/**
 * @file
 * Deterministic, seeded fault injection for robustness testing.
 *
 * A long-lived service's failure behavior is untestable if the only way
 * to provoke a failure is to actually fill the disk or yank a cable.
 * This subsystem lets tests and the chaos harness inject errno-level
 * failures at named *sites* — code locations that opted in by calling
 * faultCheck("site.name") before a syscall (the sys_io seam does this
 * for every wrapped call). Which sites fail, when, and with what errno
 * is configured by the MSE_FAULTS environment variable (or
 * programmatically from tests):
 *
 *   MSE_FAULTS="site:MODE:ARGS...:ERRNO[,site:MODE:...]"
 *
 * Modes (all deterministic — identical configs replay identical
 * failure sequences, which is what makes failure bugs debuggable):
 *
 *   every:N:ERR     fail calls N, 2N, 3N, ... at this site
 *   once:N:ERR      fail exactly the Nth call (1-based), then never
 *   p:PROB:SEED:ERR fail each call with probability PROB, drawn from
 *                   an mse::Rng seeded with SEED ^ fnv1a64(site) —
 *                   per-site streams, reproducible run-to-run
 *
 * ERR is an errno name (ENOSPC, EIO, EINTR, EAGAIN, EPIPE, ECONNRESET,
 * EBADF, EMFILE, ENOMEM, EACCES) or a plain decimal number. Example:
 *
 *   MSE_FAULTS="store.append:every:3:ENOSPC,net.recv:p:0.01:42:EIO"
 *
 * Zero overhead when disabled: faultCheck() is a single relaxed atomic
 * load when no faults are configured (the common production case).
 * Per-site call counters are kept under a mutex, so concurrent callers
 * of the *same* site serialize on injection bookkeeping only while
 * faults are armed.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace mse {

/** One parsed site fault specification. */
struct FaultSpec
{
    enum class Mode
    {
        EveryN,      ///< Fail calls N, 2N, 3N, ...
        Once,        ///< Fail exactly the Nth call.
        Probability, ///< Fail each call with seeded probability p.
    };
    Mode mode = Mode::EveryN;
    uint64_t n = 1;      ///< Period (EveryN) or call index (Once).
    double p = 0.0;      ///< Probability (Probability mode).
    uint64_t seed = 0;   ///< RNG seed (Probability mode).
    int error = 5;       ///< errno to inject (default EIO).
};

/**
 * Registry of fault sites. One process-global instance (global()) is
 * configured from MSE_FAULTS at first use; tests may reconfigure it or
 * use private instances.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** Process-global injector, configured once from MSE_FAULTS. */
    static FaultInjector &global();

    /**
     * Replace the configuration from an MSE_FAULTS-grammar string.
     * Empty string disarms. Returns false (and fills *err, config
     * unchanged) on a malformed spec.
     */
    bool configure(const std::string &config,
                   std::string *err = nullptr) EXCLUDES(mu_);

    /** Drop all sites and disarm. Counters reset. */
    void clear() EXCLUDES(mu_);

    /**
     * The injection point: returns 0 to proceed, or the errno to
     * inject at this call. Cheap when disarmed (one atomic load).
     */
    int check(const char *site) EXCLUDES(mu_);

    /** True when at least one site is configured. */
    bool armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Calls seen at a site (0 for unknown sites). */
    uint64_t calls(const std::string &site) const EXCLUDES(mu_);

    /** Faults injected at a site (0 for unknown sites). */
    uint64_t injected(const std::string &site) const EXCLUDES(mu_);

    /** Faults injected across all sites since configure/clear. */
    uint64_t totalInjected() const
    {
        return total_injected_.load(std::memory_order_relaxed);
    }

    /**
     * Parse one "MODE:ARGS...:ERRNO" spec (the part after "site:").
     * Exposed for tests. Returns nullopt and fills *err on failure.
     */
    static std::optional<FaultSpec> parseSpec(const std::string &spec,
                                              std::string *err);

    /** Map an errno name ("ENOSPC") or decimal string to a value;
     *  0 = unknown. */
    static int errnoFromName(const std::string &name);

  private:
    struct Site
    {
        FaultSpec spec;
        uint64_t calls = 0;
        uint64_t injected = 0;
        Rng rng; ///< Probability mode stream (seed ^ fnv1a64(site)).
    };

    mutable Mutex mu_;
    std::unordered_map<std::string, Site> sites_ GUARDED_BY(mu_);
    std::atomic<bool> armed_{false};
    std::atomic<uint64_t> total_injected_{0};
};

/**
 * The one-liner used at injection sites: 0 = proceed, else the errno
 * to inject. Compiles to an atomic load + branch when no faults are
 * configured.
 */
inline int
faultCheck(const char *site)
{
    FaultInjector &g = FaultInjector::global();
    if (!g.armed())
        return 0;
    return g.check(site);
}

} // namespace mse

#include "common/thread_pool.hpp"

#include <cstdlib>
#include <memory>

namespace mse {

namespace {

/** Set while the current thread is executing a task body; nested
 *  parallelFor calls check it and fall back to an inline loop. */
thread_local bool t_in_pool_task = false;

/** RAII flag guard so task bodies that throw still restore the flag. */
struct InTaskScope
{
    bool prev;
    InTaskScope() : prev(t_in_pool_task) { t_in_pool_task = true; }
    ~InTaskScope() { t_in_pool_task = prev; }
};

} // namespace

bool
ThreadPool::inTask()
{
    return t_in_pool_task;
}

ThreadPool::ScopedInline::ScopedInline() : prev_(t_in_pool_task)
{
    t_in_pool_task = true;
}

ThreadPool::ScopedInline::~ScopedInline()
{
    t_in_pool_task = prev_;
}

unsigned
ThreadPool::configuredThreads()
{
    // getenv is safe here despite concurrency-mt-unsafe: nothing in
    // this process calls setenv/putenv, so the environment is
    // effectively immutable after main() starts.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("MSE_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<unsigned>(v > 256 ? 256 : v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = configuredThreads();
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(mu_);
        stop_ = true;
    }
    job_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::runJob(const std::function<void(size_t)> *fn, size_t n)
{
    while (true) {
        const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        {
            InTaskScope scope;
            (*fn)(i);
        }
        if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            // Last item: wake the caller (lock pairs the predicate).
            MutexLock lk(mu_);
            done_cv_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    while (true) {
        const std::function<void(size_t)> *fn = nullptr;
        size_t n = 0;
        {
            MutexUniqueLock lk(mu_);
            // Wait predicate written as an explicit loop so the guarded
            // reads stay in this function's scope for the thread-safety
            // analysis (lock state does not propagate into lambdas).
            while (!stop_ && !(job_id_ != seen && job_fn_ != nullptr))
                job_cv_.wait(lk.native());
            if (stop_)
                return;
            seen = job_id_;
            fn = job_fn_;
            n = job_n_;
            ++active_workers_;
        }
        runJob(fn, n);
        {
            MutexLock lk(mu_);
            --active_workers_;
        }
        done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (t_in_pool_task || workers_.empty() || n == 1) {
        // Nested (or degenerate) invocation: the pool machinery is busy
        // with the enclosing job, so run inline. Still counts as task
        // context when nested, so deeper nesting stays inline too.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        MutexLock lk(mu_);
        job_fn_ = &fn;
        job_n_ = n;
        next_.store(0, std::memory_order_relaxed);
        completed_.store(0, std::memory_order_relaxed);
        ++job_id_;
    }
    job_cv_.notify_all();
    runJob(&fn, n);
    // Wait until every item completed AND every worker has left runJob,
    // so the next parallelFor cannot race a straggler's index fetch.
    MutexUniqueLock lk(mu_);
    while (!(completed_.load(std::memory_order_acquire) == job_n_ &&
             active_workers_ == 0))
        done_cv_.wait(lk.native());
    job_fn_ = nullptr;
    job_n_ = 0;
}

namespace {

/** The process-wide pool slot and the mutex guarding its pointer. */
struct GlobalPool
{
    static Mutex mu;
    static std::unique_ptr<ThreadPool> slot GUARDED_BY(mu);
};

Mutex GlobalPool::mu;
std::unique_ptr<ThreadPool> GlobalPool::slot;

} // namespace

ThreadPool &
ThreadPool::global()
{
    MutexLock lk(GlobalPool::mu);
    if (!GlobalPool::slot)
        GlobalPool::slot = std::make_unique<ThreadPool>(0);
    return *GlobalPool::slot;
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    MutexLock lk(GlobalPool::mu);
    GlobalPool::slot.reset();
    GlobalPool::slot = std::make_unique<ThreadPool>(threads);
}

} // namespace mse

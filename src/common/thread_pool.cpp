#include "common/thread_pool.hpp"

#include <cstdlib>
#include <memory>

namespace mse {

namespace {

/** Set while the current thread is executing a task body; nested
 *  parallelFor calls check it and fall back to an inline loop. */
thread_local bool t_in_pool_task = false;

/** RAII flag guard so task bodies that throw still restore the flag. */
struct InTaskScope
{
    bool prev;
    InTaskScope() : prev(t_in_pool_task) { t_in_pool_task = true; }
    ~InTaskScope() { t_in_pool_task = prev; }
};

} // namespace

bool
ThreadPool::inTask()
{
    return t_in_pool_task;
}

unsigned
ThreadPool::configuredThreads()
{
    if (const char *env = std::getenv("MSE_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<unsigned>(v > 256 ? 256 : v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = configuredThreads();
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    job_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::runJob(const std::function<void(size_t)> *fn, size_t n)
{
    while (true) {
        const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        {
            InTaskScope scope;
            (*fn)(i);
        }
        if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            // Last item: wake the caller (lock pairs the predicate).
            std::lock_guard<std::mutex> lk(mu_);
            done_cv_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    while (true) {
        const std::function<void(size_t)> *fn = nullptr;
        size_t n = 0;
        {
            std::unique_lock<std::mutex> lk(mu_);
            job_cv_.wait(lk, [&] {
                return stop_ || (job_id_ != seen && job_fn_ != nullptr);
            });
            if (stop_)
                return;
            seen = job_id_;
            fn = job_fn_;
            n = job_n_;
            ++active_workers_;
        }
        runJob(fn, n);
        {
            std::lock_guard<std::mutex> lk(mu_);
            --active_workers_;
        }
        done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (t_in_pool_task || workers_.empty() || n == 1) {
        // Nested (or degenerate) invocation: the pool machinery is busy
        // with the enclosing job, so run inline. Still counts as task
        // context when nested, so deeper nesting stays inline too.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_fn_ = &fn;
        job_n_ = n;
        next_.store(0, std::memory_order_relaxed);
        completed_.store(0, std::memory_order_relaxed);
        ++job_id_;
    }
    job_cv_.notify_all();
    runJob(&fn, n);
    // Wait until every item completed AND every worker has left runJob,
    // so the next parallelFor cannot race a straggler's index fetch.
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
        return completed_.load(std::memory_order_acquire) == job_n_ &&
               active_workers_ == 0;
    });
    job_fn_ = nullptr;
    job_n_ = 0;
}

namespace {

std::unique_ptr<ThreadPool> &
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

std::mutex &
globalPoolMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(globalPoolMutex());
    auto &slot = globalPoolSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(0);
    return *slot;
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    std::lock_guard<std::mutex> lk(globalPoolMutex());
    auto &slot = globalPoolSlot();
    slot.reset();
    slot = std::make_unique<ThreadPool>(threads);
}

} // namespace mse

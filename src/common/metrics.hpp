/**
 * @file
 * Service metrics: counters, gauges, and a latency histogram.
 *
 * The mapping-search service (src/service/) answers a `stats` request
 * and dumps a final report on shutdown; both read one ServiceMetrics
 * instance that every request handler updates. The histogram uses
 * fixed log-spaced buckets, so recording is O(1), memory is constant
 * regardless of traffic, and percentile queries are cheap — the shape
 * a long-lived daemon needs (an exact reservoir would grow without
 * bound under the "millions of users" target).
 */
#pragma once

#include <cstdint>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"

namespace mse {

/**
 * Log-bucketed latency histogram over (0, +inf) seconds.
 *
 * Bucket i spans [2^(i-20), 2^(i-19)) seconds, i in [0, kBuckets):
 * sub-microsecond latencies land in bucket 0 and the top bucket is
 * open-ended at ~36 hours. Percentiles interpolate linearly inside the
 * winning bucket, giving ~ +/-35% worst-case relative error — plenty
 * for p50/p95/p99 service dashboards.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 48;

    void record(double seconds);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return max_; }
    double mean() const
    {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** Latency at quantile q in [0, 1]; 0 when empty. */
    double percentile(double q) const;

    /** {count, mean_s, min_s, max_s, p50_s, p95_s, p99_s}. */
    JsonValue toJson() const;

  private:
    uint64_t buckets_[kBuckets] = {};
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** One snapshot-able metrics registry for the mapping-search service. */
class ServiceMetrics
{
  public:
    /** Request accounting. */
    void onRequest(const char *type)
        EXCLUDES(mu_); ///< "search", "stats", "ping", ...
    void onError(const char *code)
        EXCLUDES(mu_); ///< structured error sent back
    void onRejectQueueFull() EXCLUDES(mu_);

    /** Queue lifecycle (depth gauge). */
    void onEnqueue() EXCLUDES(mu_);
    void onDequeue() EXCLUDES(mu_);

    /** One completed search request. */
    struct SearchSample
    {
        double latency_seconds = 0.0;
        /** Store outcome: 0 = cold, 1 = near (scaled), 2 = exact. */
        int store_kind = 0;
        bool store_improved = false;
        bool timed_out = false;
        bool cancelled = false;
        uint64_t samples = 0;
        uint64_t eval_cache_hits = 0;
        uint64_t eval_cache_misses = 0;
    };
    void onSearchDone(const SearchSample &s) EXCLUDES(mu_);

    /** The mapping store entered degraded (read-only) mode. */
    void onStoreDegraded() EXCLUDES(mu_);

    /** One replicate request applied: records merged into the local
     *  store vs. ignored (worse-or-equal / invalid). */
    void onReplicate(uint64_t merged, uint64_t ignored) EXCLUDES(mu_);

    /** Current queue depth (enqueued - dequeued). */
    uint64_t queueDepth() const EXCLUDES(mu_);

    /** Full snapshot as a JSON object (the `stats` reply body). */
    JsonValue toJson() const EXCLUDES(mu_);

  private:
    mutable Mutex mu_;
    uint64_t requests_total_ GUARDED_BY(mu_) = 0;
    uint64_t requests_search_ GUARDED_BY(mu_) = 0;
    uint64_t requests_stats_ GUARDED_BY(mu_) = 0;
    uint64_t requests_ping_ GUARDED_BY(mu_) = 0;
    uint64_t requests_replicate_ GUARDED_BY(mu_) = 0;
    uint64_t requests_probe_ GUARDED_BY(mu_) = 0;
    uint64_t requests_sync_ GUARDED_BY(mu_) = 0;
    uint64_t requests_other_ GUARDED_BY(mu_) = 0;
    uint64_t errors_total_ GUARDED_BY(mu_) = 0;
    uint64_t rejected_queue_full_ GUARDED_BY(mu_) = 0;
    uint64_t enqueued_ GUARDED_BY(mu_) = 0;
    uint64_t dequeued_ GUARDED_BY(mu_) = 0;
    uint64_t store_cold_ GUARDED_BY(mu_) = 0;
    uint64_t store_near_ GUARDED_BY(mu_) = 0;
    uint64_t store_exact_ GUARDED_BY(mu_) = 0;
    uint64_t store_improved_ GUARDED_BY(mu_) = 0;
    uint64_t store_degraded_events_ GUARDED_BY(mu_) = 0;
    uint64_t replicated_in_merged_ GUARDED_BY(mu_) = 0;
    uint64_t replicated_in_ignored_ GUARDED_BY(mu_) = 0;
    uint64_t timed_out_ GUARDED_BY(mu_) = 0;
    uint64_t cancelled_ GUARDED_BY(mu_) = 0;
    uint64_t samples_total_ GUARDED_BY(mu_) = 0;
    uint64_t eval_cache_hits_ GUARDED_BY(mu_) = 0;
    uint64_t eval_cache_misses_ GUARDED_BY(mu_) = 0;
    LatencyHistogram search_latency_ GUARDED_BY(mu_);
};

} // namespace mse

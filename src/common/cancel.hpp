/**
 * @file
 * Cooperative cancellation for long-running searches.
 *
 * A CancelToken is a shared flag between the owner of a search (a
 * service request handler, a sweep driver) and the search itself. The
 * owner flips it when the result is no longer wanted — the client
 * disconnected, the request's deadline expired, the process is
 * draining — and the search observes it at its next budget check
 * (SearchTracker::exhausted(), i.e. between generations) and returns
 * its best-so-far result instead of running out its sample budget.
 *
 * Cancellation is strictly cooperative and monotonic: once requested it
 * never resets, and a search that was *not* cancelled is bit-identical
 * to one run without a token attached (the check reads one relaxed
 * atomic; it cannot perturb the candidate stream).
 */
#pragma once

#include <atomic>
#include <memory>

namespace mse {

/** Monotonic shared cancellation flag. */
class CancelToken
{
  public:
    /** Request cancellation; safe from any thread, idempotent. */
    void requestCancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

/** Owner-side handle (may cancel). */
using CancelTokenPtr = std::shared_ptr<CancelToken>;

/** Observer-side handle carried inside a SearchBudget. */
using CancelTokenView = std::shared_ptr<const CancelToken>;

} // namespace mse

#include "common/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mse {

std::vector<double>
PcaModel::project(const std::vector<double> &x) const
{
    std::vector<double> out(components.size(), 0.0);
    for (size_t c = 0; c < components.size(); ++c) {
        double s = 0.0;
        for (size_t j = 0; j < dim; ++j)
            s += (x[j] - mean[j]) * components[c][j];
        out[c] = s;
    }
    return out;
}

namespace {

/**
 * Cyclic Jacobi eigen-decomposition of a symmetric matrix a (modified in
 * place). Returns eigenvectors as columns of v.
 */
void
jacobiEigen(std::vector<std::vector<double>> &a,
            std::vector<std::vector<double>> &v)
{
    const size_t n = a.size();
    v.assign(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i)
        v[i][i] = 1.0;

    for (int sweep = 0; sweep < 64; ++sweep) {
        double off = 0.0;
        for (size_t p = 0; p < n; ++p)
            for (size_t q = p + 1; q < n; ++q)
                off += a[p][q] * a[p][q];
        if (off < 1e-18)
            break;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                if (std::fabs(a[p][q]) < 1e-15)
                    continue;
                const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (size_t k = 0; k < n; ++k) {
                    const double akp = a[k][p], akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double apk = a[p][k], aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double vkp = v[k][p], vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
}

} // namespace

PcaModel
fitPca(const std::vector<std::vector<double>> &data, size_t n_components)
{
    PcaModel model;
    if (data.empty())
        return model;
    const size_t n = data.size();
    const size_t d = data[0].size();
    model.dim = d;
    model.mean.assign(d, 0.0);
    for (const auto &row : data)
        for (size_t j = 0; j < d; ++j)
            model.mean[j] += row[j];
    for (size_t j = 0; j < d; ++j)
        model.mean[j] /= static_cast<double>(n);

    // Covariance matrix.
    std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
    for (const auto &row : data) {
        for (size_t i = 0; i < d; ++i) {
            const double xi = row[i] - model.mean[i];
            for (size_t j = i; j < d; ++j)
                cov[i][j] += xi * (row[j] - model.mean[j]);
        }
    }
    const double denom = static_cast<double>(n > 1 ? n - 1 : 1);
    for (size_t i = 0; i < d; ++i)
        for (size_t j = i; j < d; ++j) {
            cov[i][j] /= denom;
            cov[j][i] = cov[i][j];
        }

    std::vector<std::vector<double>> vecs;
    jacobiEigen(cov, vecs);

    // Sort eigenpairs by descending eigenvalue (diagonal of rotated cov).
    std::vector<size_t> order(d);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return cov[a][a] > cov[b][b]; });

    n_components = std::min(n_components, d);
    model.components.resize(n_components);
    model.explained_variance.resize(n_components);
    for (size_t c = 0; c < n_components; ++c) {
        const size_t e = order[c];
        model.explained_variance[c] = cov[e][e];
        model.components[c].resize(d);
        for (size_t j = 0; j < d; ++j)
            model.components[c][j] = vecs[j][e];
    }
    return model;
}

} // namespace mse

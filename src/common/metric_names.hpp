/**
 * @file
 * The metrics-name registry: every key path the service's `stats`
 * reply can carry, as dotted-path constants.
 *
 * The stats document is a cross-file contract: emitted by
 * `ServiceMetrics::toJson` / `MseService::statsJson` /
 * `ReplicationAgent::statsJson`, read back by tests, the benches, and
 * the smoke/chaos harnesses (`grep '"degraded":true'`), and watched by
 * dashboards in production. `tools/mse_analyze.py` extracts the
 * emitted key tree structurally from those functions and cross-checks
 * it against this header (rules `metrics-key-undeclared` /
 * `metrics-key-stale`) and against the consumer files (rule
 * `metrics-key-orphan`: an emitted key nothing reads is dead weight on
 * every stats reply).
 *
 * A `*` segment stands for a dynamic key (per-store-key counts,
 * per-peer replication state).
 *
 * Adding a key: emit it, declare it here, add it to the right kind
 * array, and read it somewhere (tests/test_service.cpp's schema test
 * pins the static portion) — the analyzer fails CI until all agree.
 */
#pragma once

namespace mse {
namespace metric_names {

// Request accounting (ServiceMetrics::toJson).
inline constexpr const char *kRequestsTotal = "requests.total";
inline constexpr const char *kRequestsSearch = "requests.search";
inline constexpr const char *kRequestsStats = "requests.stats";
inline constexpr const char *kRequestsPing = "requests.ping";
inline constexpr const char *kRequestsReplicate = "requests.replicate";
inline constexpr const char *kRequestsOther = "requests.other";
inline constexpr const char *kRequestsErrors = "requests.errors";
inline constexpr const char *kRequestsRejectedQueueFull =
    "requests.rejected_queue_full";
inline constexpr const char *kQueueDepthGauge = "queue_depth";

// Store outcomes (metrics half + statsJson half of the "store" block).
inline constexpr const char *kStoreExactHits = "store.exact_hits";
inline constexpr const char *kStoreNearHits = "store.near_hits";
inline constexpr const char *kStoreCold = "store.cold";
inline constexpr const char *kStoreImprovementsWritten =
    "store.improvements_written";
inline constexpr const char *kStoreDegradedEvents =
    "store.degraded_events";
inline constexpr const char *kStoreReplicatedInMerged =
    "store.replicated_in_merged";
inline constexpr const char *kStoreReplicatedInIgnored =
    "store.replicated_in_ignored";
inline constexpr const char *kStoreEntries = "store.entries";
inline constexpr const char *kStorePath = "store.path";
inline constexpr const char *kStoreMalformedLinesSkipped =
    "store.malformed_lines_skipped";
inline constexpr const char *kStoreSupersededLines =
    "store.superseded_lines";
inline constexpr const char *kStoreDegraded = "store.degraded";
inline constexpr const char *kStoreAppendFailures =
    "store.append_failures";
inline constexpr const char *kStorePerKey = "store.per_key.*";

// Search outcomes.
inline constexpr const char *kSearchTimedOut = "search.timed_out";
inline constexpr const char *kSearchCancelled = "search.cancelled";
inline constexpr const char *kSearchSamplesTotal =
    "search.samples_total";
inline constexpr const char *kSearchEvalCacheHits =
    "search.eval_cache_hits";
inline constexpr const char *kSearchEvalCacheMisses =
    "search.eval_cache_misses";
inline constexpr const char *kSearchEvalCacheHitRate =
    "search.eval_cache_hit_rate";

// Latency histogram (LatencyHistogram::toJson under "latency").
inline constexpr const char *kLatencyCount = "latency.count";
inline constexpr const char *kLatencyMeanS = "latency.mean_s";
inline constexpr const char *kLatencyMinS = "latency.min_s";
inline constexpr const char *kLatencyMaxS = "latency.max_s";
inline constexpr const char *kLatencyP50S = "latency.p50_s";
inline constexpr const char *kLatencyP95S = "latency.p95_s";
inline constexpr const char *kLatencyP99S = "latency.p99_s";

// Service-level extras (MseService::statsJson).
inline constexpr const char *kUptimeS = "uptime_s";
inline constexpr const char *kQueueDepth = "queue.depth";
inline constexpr const char *kQueueRunning = "queue.running";
inline constexpr const char *kConfigExecutors = "config.executors";
inline constexpr const char *kConfigQueueCapacity =
    "config.queue_capacity";
inline constexpr const char *kConfigDefaultDeadlineSeconds =
    "config.default_deadline_seconds";
inline constexpr const char *kConfigDefaultSamples =
    "config.default_samples";
inline constexpr const char *kConfigWarmMaxDistance =
    "config.warm_max_distance";
inline constexpr const char *kConfigStoreWriteback =
    "config.store_writeback";

// Present only while MSE_FAULTS is armed (self-identifying test runs).
inline constexpr const char *kFaultsArmed = "faults.armed";
inline constexpr const char *kFaultsInjectedTotal =
    "faults.injected_total";

// Present only in cluster mode.
inline constexpr const char *kSelf = "self";
inline constexpr const char *kReplicationFactor =
    "replication.replication_factor";
inline constexpr const char *kReplicationPeers = "replication.peers";
inline constexpr const char *kReplicationQueueDepth =
    "replication.queue_depth";
inline constexpr const char *kReplicationShipped =
    "replication.shipped";
inline constexpr const char *kReplicationAcked = "replication.acked";
inline constexpr const char *kReplicationMergedByPeers =
    "replication.merged_by_peers";
inline constexpr const char *kReplicationDropped =
    "replication.dropped";
inline constexpr const char *kReplicationShipFailures =
    "replication.ship_failures";
inline constexpr const char *kReplicationLagS = "replication.lag_s";
inline constexpr const char *kReplicationPerPeerQueueDepth =
    "replication.per_peer.*.queue_depth";
inline constexpr const char *kReplicationPerPeerShipped =
    "replication.per_peer.*.shipped";
inline constexpr const char *kReplicationPerPeerAcked =
    "replication.per_peer.*.acked";
inline constexpr const char *kReplicationPerPeerMergedByPeer =
    "replication.per_peer.*.merged_by_peer";
inline constexpr const char *kReplicationPerPeerDropped =
    "replication.per_peer.*.dropped";
inline constexpr const char *kReplicationPerPeerShipFailures =
    "replication.per_peer.*.ship_failures";
inline constexpr const char *kReplicationPerPeerLagS =
    "replication.per_peer.*.lag_s";

/** Keys every stats reply carries, cluster or not, faults or not —
 *  the static schema tests pin exactly this set. */
inline constexpr const char *kAlwaysKeys[] = {
    kRequestsTotal, kRequestsSearch, kRequestsStats, kRequestsPing,
    kRequestsReplicate, kRequestsOther, kRequestsErrors,
    kRequestsRejectedQueueFull, kQueueDepthGauge, kStoreExactHits,
    kStoreNearHits, kStoreCold, kStoreImprovementsWritten,
    kStoreDegradedEvents, kStoreReplicatedInMerged,
    kStoreReplicatedInIgnored, kStoreEntries, kStorePath,
    kStoreMalformedLinesSkipped, kStoreSupersededLines, kStoreDegraded,
    kStoreAppendFailures, kSearchTimedOut, kSearchCancelled,
    kSearchSamplesTotal, kSearchEvalCacheHits, kSearchEvalCacheMisses,
    kSearchEvalCacheHitRate, kLatencyCount, kLatencyMeanS,
    kLatencyMinS, kLatencyMaxS, kLatencyP50S, kLatencyP95S,
    kLatencyP99S, kUptimeS, kQueueDepth, kQueueRunning,
    kConfigExecutors, kConfigQueueCapacity,
    kConfigDefaultDeadlineSeconds, kConfigDefaultSamples,
    kConfigWarmMaxDistance, kConfigStoreWriteback,
};

/** Conditional keys: faults armed, cluster mode, replication agent. */
inline constexpr const char *kConditionalKeys[] = {
    kStorePerKey, kFaultsArmed, kFaultsInjectedTotal, kSelf,
    kReplicationFactor, kReplicationPeers, kReplicationQueueDepth,
    kReplicationShipped, kReplicationAcked, kReplicationMergedByPeers,
    kReplicationDropped, kReplicationShipFailures, kReplicationLagS,
    kReplicationPerPeerQueueDepth, kReplicationPerPeerShipped,
    kReplicationPerPeerAcked, kReplicationPerPeerMergedByPeer,
    kReplicationPerPeerDropped, kReplicationPerPeerShipFailures,
    kReplicationPerPeerLagS,
};

} // namespace metric_names
} // namespace mse

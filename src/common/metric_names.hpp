/**
 * @file
 * The metrics-name registry: every key path the service's `stats`
 * reply can carry, as dotted-path constants.
 *
 * The stats document is a cross-file contract: emitted by
 * `ServiceMetrics::toJson` / `MseService::statsJson` /
 * `ReplicationAgent::statsJson`, read back by tests, the benches, and
 * the smoke/chaos harnesses (`grep '"degraded":true'`), and watched by
 * dashboards in production. `tools/mse_analyze.py` extracts the
 * emitted key tree structurally from those functions and cross-checks
 * it against this header (rules `metrics-key-undeclared` /
 * `metrics-key-stale`) and against the consumer files (rule
 * `metrics-key-orphan`: an emitted key nothing reads is dead weight on
 * every stats reply).
 *
 * A `*` segment stands for a dynamic key (per-store-key counts,
 * per-peer replication state).
 *
 * Adding a key: emit it, declare it here, add it to the right kind
 * array, and read it somewhere (tests/test_service.cpp's schema test
 * pins the static portion) — the analyzer fails CI until all agree.
 */
#pragma once

namespace mse {
namespace metric_names {

// Request accounting (ServiceMetrics::toJson).
inline constexpr const char *kRequestsTotal = "requests.total";
inline constexpr const char *kRequestsSearch = "requests.search";
inline constexpr const char *kRequestsStats = "requests.stats";
inline constexpr const char *kRequestsPing = "requests.ping";
inline constexpr const char *kRequestsReplicate = "requests.replicate";
inline constexpr const char *kRequestsProbe = "requests.probe";
inline constexpr const char *kRequestsSync = "requests.sync";
inline constexpr const char *kRequestsOther = "requests.other";
inline constexpr const char *kRequestsErrors = "requests.errors";
inline constexpr const char *kRequestsRejectedQueueFull =
    "requests.rejected_queue_full";
inline constexpr const char *kQueueDepthGauge = "queue_depth";

// Store outcomes (metrics half + statsJson half of the "store" block).
inline constexpr const char *kStoreExactHits = "store.exact_hits";
inline constexpr const char *kStoreNearHits = "store.near_hits";
inline constexpr const char *kStoreCold = "store.cold";
inline constexpr const char *kStoreImprovementsWritten =
    "store.improvements_written";
inline constexpr const char *kStoreDegradedEvents =
    "store.degraded_events";
inline constexpr const char *kStoreReplicatedInMerged =
    "store.replicated_in_merged";
inline constexpr const char *kStoreReplicatedInIgnored =
    "store.replicated_in_ignored";
inline constexpr const char *kStoreEntries = "store.entries";
inline constexpr const char *kStorePath = "store.path";
inline constexpr const char *kStoreMalformedLinesSkipped =
    "store.malformed_lines_skipped";
inline constexpr const char *kStoreSupersededLines =
    "store.superseded_lines";
inline constexpr const char *kStoreDegraded = "store.degraded";
inline constexpr const char *kStoreAppendFailures =
    "store.append_failures";
inline constexpr const char *kStorePerKey = "store.per_key.*";

// Search outcomes.
inline constexpr const char *kSearchTimedOut = "search.timed_out";
inline constexpr const char *kSearchCancelled = "search.cancelled";
inline constexpr const char *kSearchSamplesTotal =
    "search.samples_total";
inline constexpr const char *kSearchEvalCacheHits =
    "search.eval_cache_hits";
inline constexpr const char *kSearchEvalCacheMisses =
    "search.eval_cache_misses";
inline constexpr const char *kSearchEvalCacheHitRate =
    "search.eval_cache_hit_rate";

// Latency histogram (LatencyHistogram::toJson under "latency").
inline constexpr const char *kLatencyCount = "latency.count";
inline constexpr const char *kLatencyMeanS = "latency.mean_s";
inline constexpr const char *kLatencyMinS = "latency.min_s";
inline constexpr const char *kLatencyMaxS = "latency.max_s";
inline constexpr const char *kLatencyP50S = "latency.p50_s";
inline constexpr const char *kLatencyP95S = "latency.p95_s";
inline constexpr const char *kLatencyP99S = "latency.p99_s";

// Service-level extras (MseService::statsJson).
inline constexpr const char *kUptimeS = "uptime_s";
inline constexpr const char *kQueueDepth = "queue.depth";
inline constexpr const char *kQueueRunning = "queue.running";
inline constexpr const char *kConfigExecutors = "config.executors";
inline constexpr const char *kConfigQueueCapacity =
    "config.queue_capacity";
inline constexpr const char *kConfigDefaultDeadlineSeconds =
    "config.default_deadline_seconds";
inline constexpr const char *kConfigDefaultSamples =
    "config.default_samples";
inline constexpr const char *kConfigWarmMaxDistance =
    "config.warm_max_distance";
inline constexpr const char *kConfigStoreWriteback =
    "config.store_writeback";

// Present only while MSE_FAULTS is armed (self-identifying test runs).
inline constexpr const char *kFaultsArmed = "faults.armed";
inline constexpr const char *kFaultsInjectedTotal =
    "faults.injected_total";

// Present only in cluster mode.
inline constexpr const char *kSelf = "self";
inline constexpr const char *kReplicationFactor =
    "replication.replication_factor";
inline constexpr const char *kReplicationNumPeers =
    "replication.num_peers";
inline constexpr const char *kReplicationQueueDepth =
    "replication.queue_depth";
inline constexpr const char *kReplicationShipped =
    "replication.shipped";
inline constexpr const char *kReplicationAcked = "replication.acked";
inline constexpr const char *kReplicationMergedByPeers =
    "replication.merged_by_peers";
inline constexpr const char *kReplicationDropped =
    "replication.dropped";
inline constexpr const char *kReplicationShipFailures =
    "replication.ship_failures";
inline constexpr const char *kReplicationLagS = "replication.lag_s";
inline constexpr const char *kReplicationHintsQueued =
    "replication.hints_queued";
inline constexpr const char *kReplicationHintsDropped =
    "replication.hints_dropped";
inline constexpr const char *kReplicationHintsShipped =
    "replication.hints_shipped";
inline constexpr const char *kReplicationSyncRounds =
    "replication.sync_rounds";
inline constexpr const char *kReplicationSyncPulled =
    "replication.sync_pulled";
inline constexpr const char *kReplicationPeersQueueDepth =
    "replication.peers.*.queue_depth";
inline constexpr const char *kReplicationPeersShipped =
    "replication.peers.*.shipped";
inline constexpr const char *kReplicationPeersAcked =
    "replication.peers.*.acked";
inline constexpr const char *kReplicationPeersMergedByPeer =
    "replication.peers.*.merged_by_peer";
inline constexpr const char *kReplicationPeersDropped =
    "replication.peers.*.dropped";
inline constexpr const char *kReplicationPeersShipFailures =
    "replication.peers.*.ship_failures";
inline constexpr const char *kReplicationPeersLagS =
    "replication.peers.*.lag_s";
inline constexpr const char *kReplicationPeersBackoffMs =
    "replication.peers.*.backoff_ms";
inline constexpr const char *kReplicationPeersHealth =
    "replication.peers.*.health";
inline constexpr const char *kReplicationPeersHintsQueued =
    "replication.peers.*.hints_queued";
inline constexpr const char *kReplicationPeersHintsDropped =
    "replication.peers.*.hints_dropped";
inline constexpr const char *kReplicationPeersHintsShipped =
    "replication.peers.*.hints_shipped";

// Peer health (HealthMonitor::statsJson, mounted at "health" in
// cluster mode).
inline constexpr const char *kHealthProbeIntervalMs =
    "health.probe_interval_ms";
inline constexpr const char *kHealthDownAfter = "health.down_after";
inline constexpr const char *kHealthPeersUp = "health.peers_up";
inline constexpr const char *kHealthPeersSuspect =
    "health.peers_suspect";
inline constexpr const char *kHealthPeersDown = "health.peers_down";
inline constexpr const char *kHealthProbesSent = "health.probes_sent";
inline constexpr const char *kHealthProbesFailed =
    "health.probes_failed";
inline constexpr const char *kHealthPeersState =
    "health.peers.*.state";
inline constexpr const char *kHealthPeersConsecutiveFailures =
    "health.peers.*.consecutive_failures";
inline constexpr const char *kHealthPeersProbesSent =
    "health.peers.*.probes_sent";
inline constexpr const char *kHealthPeersProbesFailed =
    "health.peers.*.probes_failed";
inline constexpr const char *kHealthPeersTransitions =
    "health.peers.*.transitions";

/** Keys every stats reply carries, cluster or not, faults or not —
 *  the static schema tests pin exactly this set. */
inline constexpr const char *kAlwaysKeys[] = {
    kRequestsTotal, kRequestsSearch, kRequestsStats, kRequestsPing,
    kRequestsReplicate, kRequestsProbe, kRequestsSync,
    kRequestsOther, kRequestsErrors,
    kRequestsRejectedQueueFull, kQueueDepthGauge, kStoreExactHits,
    kStoreNearHits, kStoreCold, kStoreImprovementsWritten,
    kStoreDegradedEvents, kStoreReplicatedInMerged,
    kStoreReplicatedInIgnored, kStoreEntries, kStorePath,
    kStoreMalformedLinesSkipped, kStoreSupersededLines, kStoreDegraded,
    kStoreAppendFailures, kSearchTimedOut, kSearchCancelled,
    kSearchSamplesTotal, kSearchEvalCacheHits, kSearchEvalCacheMisses,
    kSearchEvalCacheHitRate, kLatencyCount, kLatencyMeanS,
    kLatencyMinS, kLatencyMaxS, kLatencyP50S, kLatencyP95S,
    kLatencyP99S, kUptimeS, kQueueDepth, kQueueRunning,
    kConfigExecutors, kConfigQueueCapacity,
    kConfigDefaultDeadlineSeconds, kConfigDefaultSamples,
    kConfigWarmMaxDistance, kConfigStoreWriteback,
};

/** Conditional keys: faults armed, cluster mode, replication agent. */
inline constexpr const char *kConditionalKeys[] = {
    kStorePerKey, kFaultsArmed, kFaultsInjectedTotal, kSelf,
    kReplicationFactor, kReplicationNumPeers, kReplicationQueueDepth,
    kReplicationShipped, kReplicationAcked, kReplicationMergedByPeers,
    kReplicationDropped, kReplicationShipFailures, kReplicationLagS,
    kReplicationHintsQueued, kReplicationHintsDropped,
    kReplicationHintsShipped, kReplicationSyncRounds,
    kReplicationSyncPulled, kReplicationPeersQueueDepth,
    kReplicationPeersShipped, kReplicationPeersAcked,
    kReplicationPeersMergedByPeer, kReplicationPeersDropped,
    kReplicationPeersShipFailures, kReplicationPeersLagS,
    kReplicationPeersBackoffMs, kReplicationPeersHealth,
    kReplicationPeersHintsQueued, kReplicationPeersHintsDropped,
    kReplicationPeersHintsShipped, kHealthProbeIntervalMs,
    kHealthDownAfter, kHealthPeersUp, kHealthPeersSuspect,
    kHealthPeersDown, kHealthProbesSent, kHealthProbesFailed,
    kHealthPeersState, kHealthPeersConsecutiveFailures,
    kHealthPeersProbesSent, kHealthPeersProbesFailed,
    kHealthPeersTransitions,
};

} // namespace metric_names
} // namespace mse

#include "sparse/sparse_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mse {

double
reductionInnerness(const Workload &wl, const Mapping &m)
{
    // Per level: how much of the level's non-reduction loop weight sits
    // *outside* each reduction loop. A reduction loop placed innermost
    // (inner-product style) sees all non-reduction weight outside it
    // (score 1); placed outermost (outer-product style) it sees none
    // (score 0). Scores are aggregated across levels weighted by
    // log2(reduction factor); loops with factor 1 are invisible.
    const int out = wl.outputTensor();
    double red_weight = 0.0, red_score = 0.0;
    for (int l = 0; l < m.numLevels(); ++l) {
        const auto &lvl = m.level(l);
        // Spatially-mapped reduction accumulates immediately through an
        // adder tree — inner-product semantics (score 1), whatever the
        // temporal order says.
        for (int d = 0; d < static_cast<int>(lvl.spatial.size()); ++d) {
            if (lvl.spatial[d] > 1 && !wl.isRelevant(out, d)) {
                const double w =
                    std::log2(static_cast<double>(lvl.spatial[d]));
                red_weight += w;
                red_score += w;
            }
        }
        double nonred_total = 0.0;
        for (int d = 0; d < static_cast<int>(lvl.temporal.size()); ++d) {
            if (lvl.temporal[d] > 1 && wl.isRelevant(out, d)) {
                nonred_total +=
                    std::log2(static_cast<double>(lvl.temporal[d]));
            }
        }
        double nonred_outside = 0.0;
        for (int d : lvl.order) {
            const double w =
                std::log2(static_cast<double>(lvl.temporal[d]));
            if (lvl.temporal[d] <= 1)
                continue;
            if (wl.isRelevant(out, d)) {
                nonred_outside += w;
            } else {
                const double frac = nonred_total > 0.0
                    ? nonred_outside / nonred_total : 0.5;
                red_weight += w;
                red_score += w * frac;
            }
        }
    }
    if (red_weight <= 0.0)
        return 0.5;
    return red_score / red_weight;
}

void
applyDensities(Workload &wl, double weight_density,
               double activation_density)
{
    wl.setDensity("Weights", weight_density);
    wl.setDensity("Inputs", activation_density);
    double reduction = 1.0;
    for (int d : wl.reductionDims())
        reduction *= static_cast<double>(wl.bound(d));
    const double nonzero_p = weight_density * activation_density;
    double out_density = 1.0 - std::pow(1.0 - nonzero_p, reduction);
    out_density = std::clamp(out_density, 1e-4, 1.0);
    wl.setDensity("Outputs", out_density);
}

namespace {

void
fixOrder(const Workload &wl, Mapping &m, bool reduction_inner)
{
    const int out = wl.outputTensor();
    for (int l = 0; l < m.numLevels(); ++l) {
        std::vector<int> non_red, red;
        for (int d : m.level(l).order) {
            if (wl.isRelevant(out, d))
                non_red.push_back(d);
            else
                red.push_back(d);
        }
        std::vector<int> order;
        if (reduction_inner) {
            order = non_red;
            order.insert(order.end(), red.begin(), red.end());
        } else {
            order = red;
            order.insert(order.end(), non_red.begin(), non_red.end());
        }
        m.level(l).order = order;
    }
}

} // namespace

void
fixOrderInnerProduct(const Workload &wl, Mapping &m)
{
    fixOrder(wl, m, true);
}

void
fixOrderOuterProduct(const Workload &wl, Mapping &m)
{
    fixOrder(wl, m, false);
}

CostResult
SparseCostModel::evaluate(const Workload &wl, const ArchConfig &arch,
                          const Mapping &m) const
{
    // Structural errors reject the mapping outright. Capacity overflow,
    // however, is modeled as *spilling*: a mapping tuned for a sparse
    // workload may overflow its buffers when the workload is denser
    // than expected (the Table-2 cross-tests); the hardware would then
    // stream the oversized tile in multiple passes rather than fault.
    const MappingError err = validateMapping(wl, arch, m);
    if (err != MappingError::Ok && err != MappingError::CapacityExceeded) {
        CostResult res;
        res.valid = false;
        res.error = err;
        res.latency_cycles = std::numeric_limits<double>::infinity();
        res.energy_uj = std::numeric_limits<double>::infinity();
        res.edp = std::numeric_limits<double>::infinity();
        return res;
    }

    AccessCounts counts = computeAccessCounts(wl, arch, m);
    const int L = arch.numLevels();
    const int out = wl.outputTensor();
    const double dw = wl.density("Weights");
    const double da = wl.density("Inputs");

    // Traffic compression per tensor. Inputs and weights scale by their
    // density; the output (partial-sum) stream scales *per level* by the
    // partial density accumulated below that level: a partial tile that
    // has only seen R reduction iterations is nonzero with probability
    // 1 - (1 - dw*da)^R. This is what makes outer-product dataflows
    // cheap at high sparsity (their partial streams are nearly empty)
    // and expensive when dense (the same streams are huge).
    auto compressed = [&](int t) {
        const auto &spec = wl.tensor(t);
        if (spec.name == "Weights")
            return saf_.compress_weights;
        return saf_.compress_activations;
    };
    const double meta = 1.0 + saf_.metadata_overhead;
    const double p0 = dw * da;
    const double vol_out = wl.tensorVolume(out);
    const double d_final = wl.density("Outputs");
    double reduction_below = 1.0; // reduction iterations inside level l-1
    for (int l = 0; l < L; ++l) {
        // Density of a *partial* output tile entering level l: it has
        // only accumulated the reduction iterations of the levels below.
        const double p_partial = std::min(
            1.0, 1.0 - std::pow(1.0 - p0, std::max(reduction_below, 1.0)));
        for (int t = 0; t < wl.numTensors(); ++t) {
            if (!compressed(t))
                continue;
            if (t == out) {
                // Split deliveries into final ones (each output word
                // crosses each level once at full output density) and
                // partial ones (nearly empty early in the reduction).
                auto &a = counts.access[l][t];
                const double fin = std::min(a.writes, vol_out);
                const double part = a.writes - fin;
                a.writes = std::min(
                    a.writes,
                    (part * p_partial + fin * d_final) * meta);
                a.reads *= std::min(p_partial * meta, 1.0);
            } else {
                const double scale =
                    std::min(wl.tensor(t).density * meta, 1.0);
                counts.access[l][t].reads *= scale;
                counts.access[l][t].writes *= scale;
            }
        }
        for (int d : wl.reductionDims()) {
            reduction_below *= static_cast<double>(
                m.level(l).temporal[d] * m.level(l).spatial[d]);
        }
    }

    // Spill penalty: every level whose compressed resident set exceeds
    // its capacity streams tiles in ceil(resident/capacity) passes,
    // re-fetching from the parent each pass.
    for (int l = 0; l < L - 1; ++l) {
        const int64_t cap = arch.levels[l].capacity_words;
        if (cap <= 0)
            continue;
        double resident = 0.0;
        for (int t = 0; t < wl.numTensors(); ++t) {
            if (m.keeps(l, t)) {
                resident +=
                    tileFootprint(wl, m, t, l) * wl.tensor(t).density;
            }
        }
        const double ratio = resident / static_cast<double>(cap);
        if (ratio <= 1.0)
            continue;
        for (int t = 0; t < wl.numTensors(); ++t) {
            counts.access[l][t].reads *= ratio;
            counts.access[l][t].writes *= ratio;
            counts.access[l + 1][t].reads *= ratio;
            counts.access[l + 1][t].writes *= ratio;
        }
    }

    const double eff_frac = dw * da;
    const double eff_macs = counts.macs * eff_frac;
    const double innerness = reductionInnerness(wl, m);

    // Dataflow-style overheads. Outer-product partial outputs are
    // scattered and must be merged: extra psum words at L1.
    const double merge_words = (1.0 - innerness) * saf_.merge_gamma *
        eff_macs;
    counts.access[0][out].writes += merge_words;
    counts.access[0][out].reads += merge_words;

    // Compute cycles.
    const double alus = std::max(counts.active_alus, 1.0);
    double compute_cycles;
    double compute_energy_pj;
    if (saf_.skipping) {
        const double imbalance = 1.0 + saf_.imbalance_alpha *
            (1.0 - eff_frac);
        compute_cycles = eff_macs * imbalance / alus;
        compute_energy_pj = eff_macs * arch.mac_energy_pj;
    } else {
        compute_cycles = counts.macs / alus;
        compute_energy_pj = eff_macs * arch.mac_energy_pj;
        if (saf_.gating) {
            compute_energy_pj += (counts.macs - eff_macs) *
                saf_.gated_mac_fraction * arch.mac_energy_pj;
        } else {
            compute_energy_pj = counts.macs * arch.mac_energy_pj;
        }
    }
    // Coordinate intersection scans (inner-product side).
    const double scans = innerness * saf_.intersect_beta * counts.macs *
        (dw + da);
    compute_cycles += scans / alus;
    compute_energy_pj += scans * 0.1; // comparator energy per scan, pJ

    // Fold traffic into energy and latency.
    CostResult res;
    res.valid = true;
    res.error = MappingError::Ok;
    res.macs = eff_macs;
    res.compute_cycles = compute_cycles;
    res.utilization = counts.active_alus /
        static_cast<double>(arch.totalComputeUnits());
    res.level_energy_uj.assign(L, 0.0);
    res.level_cycles.assign(L, 0.0);

    std::vector<double> sp_prod(L), ai(L + 1, 1.0);
    for (int l = 0; l < L; ++l)
        sp_prod[l] = static_cast<double>(m.spatialProduct(l));
    for (int l = L - 1; l >= 0; --l)
        ai[l] = ai[l + 1] * (l + 1 < L ? sp_prod[l + 1] : 1.0);

    double energy_pj = compute_energy_pj;
    double bound_cycles = compute_cycles;
    for (int l = 0; l < L; ++l) {
        const auto &lvl = arch.levels[l];
        double reads = 0.0, writes = 0.0;
        for (int t = 0; t < wl.numTensors(); ++t) {
            reads += counts.access[l][t].reads;
            writes += counts.access[l][t].writes;
        }
        const double hops = nocHops(lvl.noc, m.spatialProduct(l));
        const double lvl_pj = reads * lvl.read_energy_pj +
            writes * lvl.write_energy_pj +
            reads * hops * lvl.noc_hop_energy_pj;
        res.level_energy_uj[l] = lvl_pj * 1e-6;
        energy_pj += lvl_pj;
        const double per_instance = (reads + writes) / std::max(ai[l], 1.0);
        res.level_cycles[l] = per_instance / lvl.bandwidth_words_per_cycle;
        bound_cycles = std::max(bound_cycles, res.level_cycles[l]);
    }

    res.energy_uj = energy_pj * 1e-6;
    res.latency_cycles = bound_cycles;
    res.edp = res.energy_uj * res.latency_cycles;
    return res;
}

} // namespace mse

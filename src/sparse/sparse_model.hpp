/**
 * @file
 * Sparseloop-style sparse cost model (Sec. 4.5 of the paper).
 *
 * Extends the dense analytical model with the effects of compressed-
 * sparse tensors on a *flexible* sparse accelerator:
 *
 *  - Traffic compression. Word traffic of a tensor with density d is
 *    scaled by d * (1 + metadata_overhead); capacity checks likewise
 *    (see validateMapping), which widens the legal map space as the
 *    workload gets sparser — the mechanism behind Table 2's finding that
 *    different densities want different mappings.
 *  - Effectual compute. Only d_W * d_A of the MACs are effectual. With
 *    zero-*skipping* hardware the compute time shrinks accordingly
 *    (modulo a load-imbalance penalty); with zero-*gating* only the
 *    energy shrinks.
 *  - Dataflow style (Sec. 4.5.3). Inner-product-style orders (reduction
 *    innermost) pay a coordinate-intersection scan proportional to
 *    d_W + d_A, which stops shrinking at high sparsity; outer-product-
 *    style orders (reduction outermost) multiply every nonzero pair
 *    without intersection but pay a partial-output merge proportional to
 *    the effectual MACs. We blend the two penalties by the *innerness*
 *    of the reduction loops in the mapping, so loop order smoothly
 *    selects the dataflow style, and reproduce the classical crossover:
 *    inner wins when dense, outer wins when very sparse.
 */
#pragma once

#include "arch/arch.hpp"
#include "mapping/mapping.hpp"
#include "model/cost_model.hpp"
#include "workload/workload.hpp"

namespace mse {

/** Sparse acceleration features (SAFs) of the modeled hardware. */
struct SparseAcceleratorFeatures
{
    /** True: skip ineffectual compute (saves cycles and energy). */
    bool skipping = true;

    /** True: gate ineffectual compute (saves energy only). Used when
     *  skipping is false. */
    bool gating = true;

    /** Store weights / activations compressed. */
    bool compress_weights = true;
    bool compress_activations = true;

    /** Extra metadata words per stored payload word (coords/bitmask). */
    double metadata_overhead = 0.06;

    /** Load-imbalance penalty coefficient on skipped compute. */
    double imbalance_alpha = 0.35;

    /** Coordinate-intersection scan cost (cycles per operand coord). */
    double intersect_beta = 0.35;

    /** Partial-output merge cost (cycles per effectual product). */
    double merge_gamma = 0.3;

    /** Energy of one gated (suppressed) MAC relative to a real MAC. */
    double gated_mac_fraction = 0.1;
};

/**
 * Fraction in [0, 1] describing how *inner* the reduction loops of a
 * mapping are: 1 = pure inner-product style (reduction innermost),
 * 0 = pure outer-product style (reduction outermost). Loop positions are
 * weighted by log2(factor); factor-1 loops are ignored. 0.5 when the
 * mapping has no temporal reduction loops.
 */
double reductionInnerness(const Workload &wl, const Mapping &m);

/**
 * Annotate a workload with weight and activation densities and derive
 * the output density 1 - (1 - dw*da)^reduction (clamped to [lo, 1]).
 */
void applyDensities(Workload &wl, double weight_density,
                    double activation_density);

/** Force reduction dims innermost (inner-product) at every level. */
void fixOrderInnerProduct(const Workload &wl, Mapping &m);

/** Force reduction dims outermost (outer-product) at every level. */
void fixOrderOuterProduct(const Workload &wl, Mapping &m);

/**
 * The sparse analytical cost model. Reads tensor densities off the
 * workload; a fully dense workload reduces to CostModel plus the
 * (configurable, style-dependent) dataflow overheads.
 */
class SparseCostModel
{
  public:
    explicit SparseCostModel(SparseAcceleratorFeatures saf = {})
        : saf_(saf)
    {}

    const SparseAcceleratorFeatures &features() const { return saf_; }

    /** Evaluate a mapping; invalid mappings get infinite EDP. */
    CostResult evaluate(const Workload &wl, const ArchConfig &arch,
                        const Mapping &m) const;

  private:
    SparseAcceleratorFeatures saf_;
};

} // namespace mse

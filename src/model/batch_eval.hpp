/**
 * @file
 * Structure-of-arrays batch evaluation and the pipelined batch evaluator.
 *
 * evaluateBatchSoA is the vectorizable core: it lays the candidates'
 * tile factors out as contiguous per-(level, dim) arrays so the
 * cumulative-factor, spatial-product, and footprint inner loops run
 * over candidates (plain auto-vectorizable loops, no intrinsics), then
 * funnels every structurally valid candidate through the same
 * finishPlanned tail as the scalar planned path — which is what makes
 * its CostResults bit-identical to CostModel::evaluate by construction.
 *
 * BatchCostEvaluator is the engine-facing pipeline built on top: one
 * EvalPlan per (workload, arch) pair, a sharded memoization store that
 * colocates each mapping's CostResult with its per-(level, tensor)
 * access rows, incremental re-evaluation of GA offspring against their
 * hinted parents, and the SoA kernel for everything left over. It plugs
 * into SearchTracker::evaluateBatch via BatchableEval so mappers need
 * no new wiring beyond the (optional) parent hints.
 *
 * Cache-counter determinism. Within one evaluateBatch call all store
 * probes happen before any insert (the probe and evaluate phases are
 * separated by a ThreadPool barrier), so hit/miss totals depend only on
 * the batch sequence, never on the thread count.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "model/eval_plan.hpp"

namespace mse {

/**
 * Per-candidate evaluation hint a mapper may pass alongside a batch:
 * the already-evaluated parent a GA child was derived from (mutation or
 * crossover). Null parent = no hint. Hints are best-effort — the
 * evaluator falls back to full evaluation whenever the parent's rows
 * are unavailable or the delta cannot provably reproduce them — so a
 * wrong-but-evaluated parent costs performance, never correctness.
 */
struct EvalHint
{
    const Mapping *parent = nullptr;
};

/**
 * Evaluate a batch of mappings through the SoA kernel. out must be at
 * least as long as batch; out[i] receives a CostResult bit-identical to
 * CostModel::evaluate on batch[i]. Stateless and thread-safe (scratch
 * is thread-local); processes the batch in cache-sized tiles.
 */
void evaluateBatchSoA(const EvalPlan &plan, std::span<const Mapping> batch,
                      std::span<CostResult> out);

/**
 * The batched evaluation pipeline: memoization store -> incremental
 * re-evaluation -> SoA kernel, in that order per candidate. One
 * instance serves one (workload, arch) pair for one run (the store key
 * encodes neither).
 *
 * Thread safety: evaluateBatch fans out over ThreadPool::global()
 * internally and must be called from one thread at a time (the search
 * thread); evaluateOne and the stats accessors are safe concurrently.
 */
class BatchCostEvaluator
{
  public:
    struct Options
    {
        /** Serve repeated mappings from the store (counted as hits). */
        bool use_cache = true;

        /** Re-evaluate hinted offspring incrementally when provable. */
        bool use_incremental = true;

        /** Lock shards (rounded up to a power of two, min 1). */
        size_t shards = 16;
    };

    /**
     * Applied to every result (cache hits included) after the raw cost
     * is known — objective re-targeting and Pareto capture live here.
     * May run concurrently from pool workers; synchronize internally.
     */
    using PostHook = std::function<void(const Mapping &, CostResult &)>;

    BatchCostEvaluator(const Workload &wl, const ArchConfig &arch,
                       Options opts);
    BatchCostEvaluator(const Workload &wl, const ArchConfig &arch)
        : BatchCostEvaluator(wl, arch, Options{})
    {}

    void setPostHook(PostHook post) { post_ = std::move(post); }

    /**
     * Evaluate batch[0..n) into out[0..n). hints may be null or point
     * at n entries parallel to the batch. Results (and the post hook)
     * are bit-identical at every thread count and with incremental
     * evaluation on or off.
     */
    void evaluateBatch(const Mapping *batch, const EvalHint *hints,
                       size_t n, CostResult *out);

    /** Scalar entry point (SearchTracker::evaluate goes through this). */
    CostResult evaluateOne(const Mapping &m);

    const EvalPlan &plan() const { return plan_; }

    /** Store accounting; zeros when use_cache is off. */
    size_t cacheHits() const;
    size_t cacheMisses() const;
    double cacheHitRate() const;

    /** Distinct mappings memoized. */
    size_t storeSize() const;

  private:
    /**
     * One store entry: the canonical mapping (collision guard), its raw
     * cost, and — for valid mappings under incremental evaluation — the
     * L*T level-major access rows offspring re-evaluation reuses.
     */
    struct Entry
    {
        Mapping key;
        CostResult cost;
        std::vector<TensorLevelAccess> rows;
    };

    struct IdentityHash
    {
        size_t operator()(uint64_t h) const
        {
            return static_cast<size_t>(h);
        }
    };

    struct Shard
    {
        mutable Mutex mu;
        std::unordered_map<uint64_t, Entry, IdentityHash> map
            GUARDED_BY(mu);
        // Per-shard counters (aggregated by cacheHits()/cacheMisses())
        // so the hot path never contends on one shared cache line.
        size_t hits GUARDED_BY(mu) = 0;
        size_t misses GUARDED_BY(mu) = 0;
    };

    Shard &
    shardFor(uint64_t hash) const
    {
        // The map buckets by the low bits, so shard by the high ones.
        return *shards_[(hash >> 48) & (shards_.size() - 1)];
    }

    bool lookupCost(uint64_t hash, const Mapping &m, CostResult &out);
    bool lookupRows(uint64_t hash, const Mapping &m,
                    std::vector<TensorLevelAccess> &rows_out) const;
    void insert(uint64_t hash, const Mapping &m, const CostResult &cost,
                std::vector<TensorLevelAccess> &&rows);

    /** Phase-2 worker: evaluate the not-yet-done items of [begin, end). */
    void evaluateRange(const Mapping *batch, const EvalHint *hints,
                       const uint64_t *hashes, const uint8_t *done,
                       CostResult *out, size_t begin, size_t end);

    EvalPlan plan_;
    Options opts_;
    PostHook post_;
    std::vector<std::unique_ptr<Shard>> shards_;

    // Per-batch work buffers of evaluateBatch (which runs on a single
    // caller thread at a time); reused so steady-state batches perform
    // no allocation. Inner chunk workers write disjoint index ranges.
    std::vector<uint64_t> hashes_;
    std::vector<uint8_t> done_;
};

/**
 * EvalFn-compatible callable advertising batch capability. Mappers keep
 * calling a plain EvalFn; SearchTracker::evaluateBatch introspects the
 * std::function target and routes whole batches (plus hints) to the
 * pipeline when the evaluator is one of these.
 */
struct BatchableEval
{
    BatchCostEvaluator *impl = nullptr;

    CostResult
    operator()(const Mapping &m) const
    {
        return impl->evaluateOne(m);
    }
};

} // namespace mse

/**
 * @file
 * Order-aware analytical cost model (the Timeloop role in Sec. 3.2).
 *
 * Given (workload, architecture, mapping) the model derives, per storage
 * level and tensor, how many words move between adjacent levels, then
 * folds the traffic into energy (per-access energies) and latency (a
 * roofline over compute and per-level bandwidth).
 *
 * Reuse analysis. At a storage level, the child's tile of tensor T must
 * be re-delivered once per iteration of the loop nest truncated at the
 * *innermost loop relevant to T* (loops with factor 1 are skipped):
 * irrelevant loops placed inside the innermost relevant loop reuse the
 * resident tile, irrelevant loops outside it re-deliver the same data.
 * This truncation is exactly why loop order matters, and why many orders
 * tie (Fig. 7): only the truncation point is observable.
 *
 * Spatial fanout. Spatial factors relevant to T spread distinct data
 * across child instances; irrelevant spatial factors multicast the same
 * words (charged once at the parent when the NoC multicasts).
 *
 * Outputs. Partial sums are accumulated in place while reduction loops
 * are inner; reduction iterations outside a tile's residence force a
 * writeback and a later re-read of the partial (read-modify-write),
 * counted as deliveries minus distinct tiles.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.hpp"
#include "mapping/mapping.hpp"
#include "workload/workload.hpp"

namespace mse {

/** Word traffic at one storage level for one tensor. */
struct TensorLevelAccess
{
    double reads = 0.0;  ///< Words read out of this level.
    double writes = 0.0; ///< Words written into this level.
};

/** Full traffic breakdown of a mapping. */
struct AccessCounts
{
    /** access[level][tensor]. */
    std::vector<std::vector<TensorLevelAccess>> access;

    /** Active compute lanes = product of all spatial products. */
    double active_alus = 1.0;

    /** Total multiply-accumulates. */
    double macs = 0.0;
};

/** Evaluated cost of one mapping. */
struct CostResult
{
    bool valid = false;
    MappingError error = MappingError::Ok;

    double latency_cycles = 0.0;
    double energy_uj = 0.0;
    double edp = 0.0; ///< latency_cycles * energy_uj (cycles * uJ).

    double compute_cycles = 0.0;
    double utilization = 0.0; ///< Active ALUs / total ALUs.
    double macs = 0.0;

    /** Per-level energy (uJ), innermost first. */
    std::vector<double> level_energy_uj;

    /** Per-level bandwidth-bound cycles, innermost first. */
    std::vector<double> level_cycles;
};

/**
 * Count the word traffic of a legal mapping. The caller is responsible
 * for validity; behavior on illegal mappings is unspecified.
 */
AccessCounts computeAccessCounts(const Workload &wl, const ArchConfig &arch,
                                 const Mapping &m);

/**
 * The dense analytical cost model. Stateless; evaluate() validates the
 * mapping first and returns an invalid CostResult (infinite EDP) for
 * illegal mappings so mappers can treat the map space as total.
 */
class CostModel
{
  public:
    /** Evaluate a mapping end to end. */
    static CostResult evaluate(const Workload &wl, const ArchConfig &arch,
                               const Mapping &m);

    /** Fold pre-computed traffic into energy/latency/EDP. */
    static CostResult fold(const Workload &wl, const ArchConfig &arch,
                           const Mapping &m, const AccessCounts &counts);
};

} // namespace mse

#include "model/eval_cache.hpp"

namespace mse {

namespace {

size_t
roundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n && p < (size_t(1) << 20))
        p <<= 1;
    return p;
}

} // namespace

EvalCache::EvalCache(size_t shard_count)
{
    const size_t n = roundUpPow2(shard_count == 0 ? 1 : shard_count);
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

CostResult
EvalCache::getOrCompute(const Mapping &m, const CostEvalFn &inner)
{
    return getOrComputeHashed(m.hash(), m, inner);
}

CostResult
EvalCache::getOrComputeHashed(uint64_t h, const Mapping &m,
                              const CostEvalFn &inner)
{
    Shard &shard = shardFor(h);
    {
        MutexLock lk(shard.mu);
        auto it = shard.map.find(h);
        if (it != shard.map.end() && it->second.key == m) {
            ++shard.hits;
            return it->second.cost;
        }
    }
    // Compute outside the lock so concurrent misses don't serialize on
    // the shard; a racing duplicate insert is benign (same value). A
    // 64-bit collision (different mapping, same hash) keeps the first
    // entry and recomputes the loser — a pure miss, never a wrong cost.
    CostResult result = inner(m);
    {
        MutexLock lk(shard.mu);
        ++shard.misses;
        shard.map.try_emplace(h, Entry{m, result});
    }
    return result;
}

CostEvalFn
EvalCache::wrap(CostEvalFn inner)
{
    return [this, inner = std::move(inner)](const Mapping &m) {
        return getOrCompute(m, inner);
    };
}

size_t
EvalCache::hits() const
{
    size_t n = 0;
    for (const auto &s : shards_) {
        MutexLock lk(s->mu);
        n += s->hits;
    }
    return n;
}

size_t
EvalCache::misses() const
{
    size_t n = 0;
    for (const auto &s : shards_) {
        MutexLock lk(s->mu);
        n += s->misses;
    }
    return n;
}

double
EvalCache::hitRate() const
{
    const double h = static_cast<double>(hits());
    const double m = static_cast<double>(misses());
    return (h + m) > 0.0 ? h / (h + m) : 0.0;
}

size_t
EvalCache::size() const
{
    size_t n = 0;
    for (const auto &s : shards_) {
        MutexLock lk(s->mu);
        n += s->map.size();
    }
    return n;
}

void
EvalCache::clear()
{
    for (const auto &s : shards_) {
        MutexLock lk(s->mu);
        s->map.clear();
        s->hits = 0;
        s->misses = 0;
    }
}

} // namespace mse

#include "model/eval_plan.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mse {

namespace {

/** Index of the innermost relevant iterating loop; -1 if none. */
int
innermostRelevant(const LevelMapping &lvl, uint32_t rel)
{
    const int D = static_cast<int>(lvl.order.size());
    for (int j = D - 1; j >= 0; --j) {
        const int d = lvl.order[j];
        if (lvl.temporal[d] > 1 &&
            ((rel >> static_cast<unsigned>(d)) & 1u)) {
            return j;
        }
    }
    return -1;
}

/** Restore `out` to a default-constructed CostResult, keeping vector
 *  capacity so recycled results stay allocation-free. */
void
resetResult(CostResult &out)
{
    out.valid = false;
    out.error = MappingError::Ok;
    out.latency_cycles = 0.0;
    out.energy_uj = 0.0;
    out.edp = 0.0;
    out.compute_cycles = 0.0;
    out.utilization = 0.0;
    out.macs = 0.0;
    out.level_energy_uj.clear();
    out.level_cycles.clear();
}

/**
 * Tile footprint of tensor t at level l from the cumulative-factor
 * table; mirrors tileFootprint's term order. Extents use wrap-defined
 * unsigned arithmetic (identical values on every legal mapping, where
 * they fit comfortably).
 */
double
footprintFromCum(const EvalPlan &p, const uint64_t *cum_l, int t)
{
    double prod = 1.0;
    for (int r = p.tensor_rank_begin[t]; r < p.tensor_rank_begin[t + 1];
         ++r) {
        uint64_t extent = 1;
        for (int k = p.rank_begin[r]; k < p.rank_begin[r + 1]; ++k) {
            const EvalPlan::RankTerm &term = p.terms[k];
            extent += static_cast<uint64_t>(term.coeff) *
                (cum_l[term.dim] - 1);
        }
        prod *= static_cast<double>(static_cast<int64_t>(extent));
    }
    return prod;
}

/**
 * Fused legality check; mirrors validateMapping's check order (and
 * therefore its error precedence) exactly. On the way it fills the
 * scratch cumulative-factor table, spatial products, and the kept-slot
 * footprints that access counting reuses — this fusion is where much
 * of the planned path's speedup over the scalar path comes from, since
 * the scalar path recomputes every footprint from cumulativeFactor
 * once during validation and again during access counting.
 */
MappingError
validatePlanned(const EvalPlan &p, const Mapping &m, EvalScratch &s)
{
    const int L = p.L, D = p.D, T = p.T;
    if (m.numLevels() != L)
        return MappingError::BadShape;
    for (int l = 0; l < L; ++l) {
        const LevelMapping &lvl = m.level(l);
        if (static_cast<int>(lvl.temporal.size()) != D ||
            static_cast<int>(lvl.spatial.size()) != D ||
            static_cast<int>(lvl.order.size()) != D) {
            return MappingError::BadShape;
        }
        // Dense views for every later pass (validation and the tail
        // both re-read these arrays several times; one pointer load
        // here replaces a vector deref per touch).
        s.tf_ptr[l] = lvl.temporal.data();
        s.sf_ptr[l] = lvl.spatial.data();
        s.ord_ptr[l] = lvl.order.data();
        // Permutation check via a bitmask (D <= 32): out-of-range
        // indices (including negatives, via the unsigned cast) and
        // duplicates both fail exactly as the seen-array original did.
        uint32_t seen = 0;
        for (const int v : lvl.order) {
            if (static_cast<unsigned>(v) >= static_cast<unsigned>(D) ||
                ((seen >> static_cast<unsigned>(v)) & 1u)) {
                return MappingError::BadOrder;
            }
            seen |= 1u << static_cast<unsigned>(v);
        }
        const int64_t *tf = lvl.temporal.data();
        const int64_t *sf = lvl.spatial.data();
        bool pos = true;
        for (int d = 0; d < D; ++d)
            pos &= (tf[d] >= 1) & (sf[d] >= 1);
        if (!pos)
            return MappingError::BadFactorProduct;
        if (!lvl.keep.empty() &&
            static_cast<int>(lvl.keep.size()) != T) {
            return MappingError::BadShape;
        }
    }
    for (int t = 0; t < T; ++t) {
        if (!m.keeps(L - 1, t))
            return MappingError::BadShape;
    }
    // Cumulative factor table + per-dimension factor-product check.
    // Products use wrap-defined unsigned arithmetic; on (pathological)
    // overflow the wrapped value still fails the bound check. Built
    // level-major off the dense views (unsigned multiplication is
    // associative and commutative mod 2^64, so the level-major
    // recurrence produces the same bits as the dim-major original).
    for (int l = 0; l < L; ++l) {
        const int64_t *tf = s.tf_ptr[l];
        const int64_t *sf = s.sf_ptr[l];
        const uint64_t *prev =
            l > 0 ? &s.cum[static_cast<size_t>(l - 1) * D] : nullptr;
        uint64_t *cur = &s.cum[static_cast<size_t>(l) * D];
        for (int d = 0; d < D; ++d) {
            const uint64_t f = static_cast<uint64_t>(tf[d]) *
                static_cast<uint64_t>(sf[d]);
            cur[d] = (prev ? prev[d] : uint64_t{1}) * f;
        }
    }
    for (int d = 0; d < D; ++d) {
        if (s.cum[static_cast<size_t>(L - 1) * D + d] !=
            static_cast<uint64_t>(p.bounds[d])) {
            return MappingError::BadFactorProduct;
        }
    }
    for (int l = 0; l < L; ++l) {
        const int64_t *sf = s.sf_ptr[l];
        uint64_t sp = 1;
        for (int d = 0; d < D; ++d)
            sp *= static_cast<uint64_t>(sf[d]);
        s.ssp[l] = sp;
        if (static_cast<int64_t>(sp) > p.fanout[l])
            return MappingError::FanoutExceeded;
    }
    // Footprints of every kept (tensor, level) slot: the capacity check
    // below and the access-count chain both read them (the chain via
    // the residency mask cached here).
    for (int t = 0; t < T; ++t) {
        for (int l = 0; l < L; ++l) {
            const bool kept = m.keeps(l, t);
            s.kept[static_cast<size_t>(t) * L + l] = kept ? 1 : 0;
            if (kept) {
                s.fp[static_cast<size_t>(t) * L + l] = l == L - 1
                    ? p.fp_full[t]
                    : footprintFromCum(
                          p, &s.cum[static_cast<size_t>(l) * D], t);
            }
        }
    }
    for (int l = 0; l < L; ++l) {
        if (p.cap_words[l] <= 0)
            continue; // unbounded (DRAM)
        double resident = 0.0;
        for (int t = 0; t < T; ++t) {
            if (s.kept[static_cast<size_t>(t) * L + l]) {
                resident +=
                    s.fp[static_cast<size_t>(t) * L + l] * p.density[t];
            }
        }
        if (resident > p.cap_f[l])
            return MappingError::CapacityExceeded;
    }
    return MappingError::Ok;
}

/** Per-level caches shared by access counting and the fold; mirrors the
 *  sp_prod/ai recurrences of computeAccessCounts / fold. */
void
computeLevelCaches(const EvalPlan &p, EvalScratch &s)
{
    const int L = p.L;
    s.active_alus = 1.0;
    for (int l = 0; l < L; ++l) {
        s.active_alus *=
            static_cast<double>(static_cast<int64_t>(s.ssp[l]));
    }
    for (int l = 0; l < L; ++l) {
        s.sp_prod[l] =
            static_cast<double>(static_cast<int64_t>(s.ssp[l]));
    }
    s.ai[L] = 1.0;
    for (int l = L - 1; l >= 0; --l)
        s.ai[l] = s.ai[l + 1] * (l + 1 < L ? s.sp_prod[l + 1] : 1.0);
}

/**
 * Per-tensor truncated-iteration and relevant-spatial products of every
 * (tensor, level) slot, computed in one shared walk over each level's
 * dense factor views (set up by validation or the SoA scatter).
 *
 * Bit-identity: for a fixed (t, l) the multiplication sequence is the
 * same ascending-j (resp. ascending-d) sequence the per-tensor
 * original used — sharing the walk only interleaves *different*
 * tensors' independent products. Unit factors are skipped: multiplying
 * by exactly 1.0 is an identity on every finite double, and most tile
 * factors in a realistic mapping are 1.
 */
void
computeTensorCaches(const EvalPlan &p, EvalScratch &s)
{
    const int L = p.L, D = p.D, T = p.T;
    for (int l = 0; l < L; ++l) {
        const int *ord = s.ord_ptr[l];
        const int64_t *tf = s.tf_ptr[l];
        const int64_t *sf = s.sf_ptr[l];

        // Innermost relevant iterating loop per tensor (mirror of
        // truncatedIterations' backward scan). The transposed relevance
        // mask lets the scan retire tensors as it finds them and stop
        // as soon as every tensor has its truncation point.
        int max_ia = -1;
        for (int t = 0; t < T; ++t)
            s.ia[t] = -1;
        uint32_t remaining = p.all_tensors;
        for (int j = D - 1; j >= 0 && remaining; --j) {
            const int d = ord[j];
            if (tf[d] > 1) {
                uint32_t hit = p.dim_tensors[d] & remaining;
                if (hit) {
                    if (max_ia < 0)
                        max_ia = j;
                    remaining &= ~hit;
                    do {
                        const int t = std::countr_zero(hit);
                        hit &= hit - 1;
                        s.ia[t] = j;
                    } while (hit);
                }
            }
        }
        // Prefix products over the non-unit iterating factors: each
        // tensor's truncated product is the prefix ending at the last
        // non-unit loop at or inside its truncation point, and the
        // prefix array is built by the same left-to-right multiply
        // sequence the per-tensor products used — same bits.
        int nn = 0;
        double pp = 1.0;
        for (int j = 0; j <= max_ia; ++j) {
            const int64_t f = tf[ord[j]];
            if (f == 1)
                continue;
            pp *= static_cast<double>(f);
            s.nf_j[nn] = j;
            s.nf_pp[nn] = pp;
            ++nn;
        }
        for (int t = 0; t < T; ++t) {
            double v = 1.0;
            const int iat = s.ia[t];
            for (int n = nn; n-- > 0;) {
                if (s.nf_j[n] <= iat) {
                    v = s.nf_pp[n];
                    break;
                }
            }
            s.trunc[static_cast<size_t>(t) * L + l] = v;
        }

        for (int t = 0; t < T; ++t)
            s.relsp[static_cast<size_t>(t) * L + l] = 1.0;
        for (int d = 0; d < D; ++d) {
            const int64_t f = sf[d];
            if (f == 1)
                continue;
            const double fd = static_cast<double>(f);
            uint32_t ts = p.dim_tensors[d];
            while (ts) {
                const int t = std::countr_zero(ts);
                ts &= ts - 1;
                s.relsp[static_cast<size_t>(t) * L + l] *= fd;
            }
        }
    }
}

/**
 * Access rows of one tensor, accumulated into s.rows (which must hold
 * zeros for this tensor's slots). Mirrors the per-tensor body of
 * computeAccessCounts operation for operation, reading the shared
 * per-tensor caches of computeTensorCaches.
 */
void
computeTensorRows(const EvalPlan &p, EvalScratch &s, int t)
{
    const int L = p.L, T = p.T;
    const double *trunc = &s.trunc[static_cast<size_t>(t) * L];
    const double *relsp = &s.relsp[static_cast<size_t>(t) * L];
    const uint8_t *kept = &s.kept[static_cast<size_t>(t) * L];

    s.tcnt[L] = 1.0;
    for (int l = L - 1; l >= 0; --l)
        s.tcnt[l] = s.tcnt[l + 1] * trunc[l];

    s.chain.clear();
    s.chain.push_back(-1);
    for (int l = 0; l < L; ++l) {
        if (kept[l])
            s.chain.push_back(l);
    }

    const auto footprint_at = [&](int l) {
        return l < 0 ? 1.0 : s.fp[static_cast<size_t>(t) * L + l];
    };
    const auto link_words = [&](int c, int pa) {
        double rel_prod = 1.0;
        for (int l = c + 1; l <= pa; ++l)
            rel_prod *= relsp[l];
        return s.tcnt[c + 1] * footprint_at(c) * rel_prod * s.ai[pa];
    };

    if (t != p.out) {
        for (size_t i = 0; i + 1 < s.chain.size(); ++i) {
            const int c = s.chain[i], pa = s.chain[i + 1];
            s.rows[static_cast<size_t>(pa) * T + t].reads +=
                link_words(c, pa);
            if (c >= 0) {
                s.rows[static_cast<size_t>(c) * T + t].writes +=
                    s.tcnt[c + 1] * footprint_at(c) * s.ai[c];
            }
        }
    } else {
        const double vol_out = p.out_volume;
        for (size_t i = 0; i + 1 < s.chain.size(); ++i) {
            const int c = s.chain[i], pa = s.chain[i + 1];
            const double w = link_words(c, pa);
            s.rows[static_cast<size_t>(pa) * T + t].writes += w;
            s.rows[static_cast<size_t>(pa) * T + t].reads +=
                std::max(0.0, w - vol_out);
            if (c >= 0)
                s.rows[static_cast<size_t>(c) * T + t].reads += w;
        }
    }
}

/** Fold s.rows into `out`; mirrors CostModel::fold. */
void
foldRows(const EvalPlan &p, EvalScratch &s, CostResult &out)
{
    const int L = p.L, T = p.T;
    out.valid = true;
    out.error = MappingError::Ok;
    out.macs = p.macs;
    out.compute_cycles = p.macs / std::max(s.active_alus, 1.0);
    out.utilization = s.active_alus / p.total_units;

    out.level_energy_uj.assign(static_cast<size_t>(L), 0.0);
    out.level_cycles.assign(static_cast<size_t>(L), 0.0);

    double energy_pj = p.macs * p.mac_energy_pj;
    double bound_cycles = out.compute_cycles;
    for (int l = 0; l < L; ++l) {
        double reads = 0.0, writes = 0.0;
        for (int t = 0; t < T; ++t) {
            reads += s.rows[static_cast<size_t>(l) * T + t].reads;
            writes += s.rows[static_cast<size_t>(l) * T + t].writes;
        }
        // Memoized nocHops: same (topology, spatial product) in, same
        // double out, so reusing the last value per level is exact.
        double hops;
        if (s.hops_key[l] == s.ssp[l] &&
            s.hops_noc[l] == static_cast<int8_t>(p.noc[l])) {
            hops = s.hops_val[l];
        } else {
            hops = nocHops(p.noc[l], static_cast<int64_t>(s.ssp[l]));
            s.hops_key[l] = s.ssp[l];
            s.hops_noc[l] = static_cast<int8_t>(p.noc[l]);
            s.hops_val[l] = hops;
        }
        const double lvl_pj = reads * p.read_e[l] +
            writes * p.write_e[l] + reads * hops * p.hop_e[l];
        out.level_energy_uj[l] = lvl_pj * 1e-6;
        energy_pj += lvl_pj;

        const double per_instance =
            (reads + writes) / std::max(s.ai[l], 1.0);
        out.level_cycles[l] = per_instance / p.bw[l];
        bound_cycles = std::max(bound_cycles, out.level_cycles[l]);
    }

    out.energy_uj = energy_pj * 1e-6;
    out.latency_cycles = bound_cycles;
    out.edp = out.energy_uj * out.latency_cycles;
}

/**
 * True when the truncated iteration factor *sequences* of a tensor at
 * one level are identical between two mappings — the provable
 * condition for the truncated-iteration product (and hence the
 * tensor's tile counts) to be bit-equal.
 */
bool
truncSeqEqual(const LevelMapping &a, const LevelMapping &b, uint32_t rel)
{
    const int ia = innermostRelevant(a, rel);
    const int ib = innermostRelevant(b, rel);
    if (ia != ib)
        return false;
    for (int j = 0; j <= ia; ++j) {
        if (a.temporal[a.order[j]] != b.temporal[b.order[j]])
            return false;
    }
    return true;
}

} // namespace

namespace detail {

void
ensureScratch(const EvalPlan &plan, EvalScratch &s)
{
    const size_t L = static_cast<size_t>(plan.L);
    const size_t D = static_cast<size_t>(plan.D);
    const size_t T = static_cast<size_t>(plan.T);
    if (s.cum.size() < L * D)
        s.cum.resize(L * D);
    if (s.ssp.size() < L)
        s.ssp.resize(L);
    if (s.fp.size() < T * L)
        s.fp.resize(T * L);
    if (s.sp_prod.size() < L)
        s.sp_prod.resize(L);
    if (s.ai.size() < L + 1)
        s.ai.resize(L + 1);
    if (s.tcnt.size() < L + 1)
        s.tcnt.resize(L + 1);
    if (s.tf_ptr.size() < L) {
        s.tf_ptr.resize(L);
        s.sf_ptr.resize(L);
        s.ord_ptr.resize(L);
    }
    if (s.kept.size() < T * L)
        s.kept.resize(T * L);
    if (s.ia.size() < T)
        s.ia.resize(T);
    if (s.nf_j.size() < D) {
        s.nf_j.resize(D);
        s.nf_pp.resize(D);
    }
    if (s.trunc.size() < T * L)
        s.trunc.resize(T * L);
    if (s.relsp.size() < T * L)
        s.relsp.resize(T * L);
    if (s.hops_key.size() < L) {
        s.hops_key.resize(L, 0);
        // -1 never matches a real topology, so fresh slots always
        // compute on first use regardless of the key contents.
        s.hops_noc.resize(L, int8_t{-1});
        s.hops_val.resize(L, 0.0);
    }
    s.chain.reserve(L + 1);
}

void
setErrorResult(CostResult &out, MappingError err)
{
    resetResult(out);
    out.valid = false;
    out.error = err;
    out.latency_cycles = std::numeric_limits<double>::infinity();
    out.energy_uj = std::numeric_limits<double>::infinity();
    out.edp = std::numeric_limits<double>::infinity();
}

void
finishPlanned(const EvalPlan &plan, const Mapping &m, EvalScratch &s,
              CostResult &out)
{
    (void)m; // shape already captured in the scratch's dense views
    resetResult(out);
    computeLevelCaches(plan, s);
    computeTensorCaches(plan, s);
    s.rows.assign(static_cast<size_t>(plan.L) * plan.T,
                  TensorLevelAccess{});
    for (int t = 0; t < plan.T; ++t)
        computeTensorRows(plan, s, t);
    foldRows(plan, s, out);
}

} // namespace detail

EvalPlan
EvalPlan::build(const Workload &wl, const ArchConfig &arch)
{
    if (arch.numLevels() > 32)
        throw std::invalid_argument("eval plan: more than 32 levels");
    if (wl.numTensors() > 32)
        throw std::invalid_argument("eval plan: more than 32 tensors");
    EvalPlan p;
    p.L = arch.numLevels();
    p.D = wl.numDims();
    p.T = wl.numTensors();
    p.out = wl.outputTensor();
    p.macs = wl.totalMacs();
    p.out_volume = wl.tensorVolume(p.out);
    p.total_units = static_cast<double>(arch.totalComputeUnits());
    p.mac_energy_pj = arch.mac_energy_pj;
    p.bounds = wl.bounds();

    p.relevance.resize(static_cast<size_t>(p.T));
    p.density.resize(static_cast<size_t>(p.T));
    p.tensor_rank_begin.resize(static_cast<size_t>(p.T) + 1);
    p.rank_begin.push_back(0);
    for (int t = 0; t < p.T; ++t) {
        p.relevance[t] = wl.relevanceMask(t);
        p.density[t] = wl.tensor(t).density;
        p.tensor_rank_begin[t] =
            static_cast<int>(p.rank_begin.size()) - 1;
        for (const auto &rank : wl.tensor(t).projection) {
            for (const auto &term : rank)
                p.terms.push_back({term.dim, term.coeff});
            p.rank_begin.push_back(static_cast<int>(p.terms.size()));
        }
    }
    p.tensor_rank_begin[p.T] = static_cast<int>(p.rank_begin.size()) - 1;

    p.dim_tensors.assign(static_cast<size_t>(p.D), 0u);
    for (int t = 0; t < p.T; ++t) {
        p.all_tensors |= 1u << static_cast<unsigned>(t);
        for (int d = 0; d < p.D; ++d) {
            if ((p.relevance[t] >> static_cast<unsigned>(d)) & 1u)
                p.dim_tensors[d] |= 1u << static_cast<unsigned>(t);
        }
    }

    // Whole-tensor footprints via the same routine the hot path uses on
    // a cum row equal to the bounds, so the cached values are the same
    // bits validation would have produced.
    {
        std::vector<uint64_t> full(static_cast<size_t>(p.D));
        for (int d = 0; d < p.D; ++d)
            full[d] = static_cast<uint64_t>(p.bounds[d]);
        p.fp_full.resize(static_cast<size_t>(p.T));
        for (int t = 0; t < p.T; ++t)
            p.fp_full[t] = footprintFromCum(p, full.data(), t);
    }

    p.fanout.resize(static_cast<size_t>(p.L));
    p.cap_words.resize(static_cast<size_t>(p.L));
    p.cap_f.resize(static_cast<size_t>(p.L));
    p.read_e.resize(static_cast<size_t>(p.L));
    p.write_e.resize(static_cast<size_t>(p.L));
    p.hop_e.resize(static_cast<size_t>(p.L));
    p.bw.resize(static_cast<size_t>(p.L));
    p.noc.resize(static_cast<size_t>(p.L));
    for (int l = 0; l < p.L; ++l) {
        const BufferLevel &lvl = arch.levels[l];
        p.fanout[l] = lvl.fanout;
        p.cap_words[l] = lvl.capacity_words;
        p.cap_f[l] = static_cast<double>(lvl.capacity_words);
        p.read_e[l] = lvl.read_energy_pj;
        p.write_e[l] = lvl.write_energy_pj;
        p.hop_e[l] = lvl.noc_hop_energy_pj;
        p.bw[l] = lvl.bandwidth_words_per_cycle;
        p.noc[l] = lvl.noc;
    }
    return p;
}

void
evaluatePlanned(const EvalPlan &plan, const Mapping &m, EvalScratch &s,
                CostResult &out, std::vector<TensorLevelAccess> *rows_out)
{
    detail::ensureScratch(plan, s);
    const MappingError err = validatePlanned(plan, m, s);
    if (err != MappingError::Ok) {
        detail::setErrorResult(out, err);
        return;
    }
    detail::finishPlanned(plan, m, s, out);
    if (rows_out)
        rows_out->assign(s.rows.begin(),
                         s.rows.begin() +
                             static_cast<size_t>(plan.L) * plan.T);
}

MappingDelta
diffMappings(const EvalPlan &plan, const Mapping &child,
             const Mapping &parent)
{
    MappingDelta delta;
    const int L = plan.L, D = plan.D, T = plan.T;
    if (child.numLevels() != L || parent.numLevels() != L)
        return delta;
    for (int l = 0; l < L; ++l) {
        const LevelMapping &a = child.level(l);
        const LevelMapping &b = parent.level(l);
        if (static_cast<int>(a.temporal.size()) != D ||
            static_cast<int>(a.spatial.size()) != D ||
            static_cast<int>(a.order.size()) != D ||
            static_cast<int>(b.temporal.size()) != D ||
            static_cast<int>(b.spatial.size()) != D ||
            static_cast<int>(b.order.size()) != D) {
            return delta;
        }
        // Spatial or bypass changes reshape every tensor's traffic —
        // not worth modeling incrementally.
        if (a.spatial != b.spatial)
            return delta;
        for (int t = 0; t < T; ++t) {
            if (child.keeps(l, t) != parent.keeps(l, t))
                return delta;
        }
        bool level_changed = (a.order != b.order);
        for (int d = 0; d < D; ++d) {
            if (a.temporal[d] != b.temporal[d]) {
                delta.changed_temporal_dims |=
                    1u << static_cast<unsigned>(d);
                level_changed = true;
            }
        }
        if (level_changed)
            delta.changed_levels |= 1u << static_cast<unsigned>(l);
    }
    delta.comparable = true;
    return delta;
}

bool
evaluateIncremental(const EvalPlan &plan, const Mapping &child,
                    const Mapping &parent,
                    const TensorLevelAccess *parent_rows, EvalScratch &s,
                    CostResult &out,
                    std::vector<TensorLevelAccess> *rows_out)
{
    const int L = plan.L, T = plan.T;
    if (T > 32)
        return false; // `affected` below is a 32-bit tensor mask
    const MappingDelta delta = diffMappings(plan, child, parent);
    if (!delta.comparable)
        return false;

    // A tensor's rows are reusable iff (a) no changed temporal dim is
    // relevant to it — its footprints and relevant-spatial products
    // are untouched — and (b) the truncated factor sequence is
    // unchanged at every touched level, so its tile counts are the
    // same product of the same doubles. Spatial factors and bypass
    // masks are unchanged whenever the delta is comparable.
    bool any_reusable = false;
    uint32_t affected = 0; // bit t = tensor t must be recomputed
    for (int t = 0; t < T; ++t) {
        bool reuse =
            (delta.changed_temporal_dims & plan.relevance[t]) == 0;
        for (int l = 0; reuse && l < L; ++l) {
            if ((delta.changed_levels >> static_cast<unsigned>(l)) & 1u) {
                reuse = truncSeqEqual(child.level(l), parent.level(l),
                                      plan.relevance[t]);
            }
        }
        if (reuse)
            any_reusable = true;
        else
            affected |= 1u << static_cast<unsigned>(t);
    }
    if (!any_reusable)
        return false; // nothing to save; run the full path instead

    // Validation runs in full either way: the child may independently
    // break a factor product or a capacity bound, and the scratch it
    // fills (cum/ssp/footprints) feeds the recomputed tensors.
    detail::ensureScratch(plan, s);
    const MappingError err = validatePlanned(plan, child, s);
    if (err != MappingError::Ok) {
        detail::setErrorResult(out, err);
        return true;
    }
    resetResult(out);
    computeLevelCaches(plan, s);
    computeTensorCaches(plan, s);
    s.rows.assign(static_cast<size_t>(L) * T, TensorLevelAccess{});
    for (int t = 0; t < T; ++t) {
        if ((affected >> static_cast<unsigned>(t)) & 1u) {
            computeTensorRows(plan, s, t);
        } else {
            for (int l = 0; l < L; ++l) {
                s.rows[static_cast<size_t>(l) * T + t] =
                    parent_rows[static_cast<size_t>(l) * T + t];
            }
        }
    }
    foldRows(plan, s, out);
    if (rows_out)
        rows_out->assign(s.rows.begin(),
                         s.rows.begin() + static_cast<size_t>(L) * T);
    return true;
}

} // namespace mse

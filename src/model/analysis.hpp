/**
 * @file
 * Mapping analysis utilities.
 *
 * Sec. 4.4.3 of the paper observes that loop orders collapse into large
 * "stationarity" buckets (weight-/input-/output-stationary). These
 * helpers make that taxonomy executable: classifyStationarity() names
 * the tensor that enjoys the most temporal reuse at the innermost
 * storage level, and reuseFactor() quantifies each tensor's reuse so
 * analyses (and users debugging a mapping) can see *why* an order is
 * good.
 */
#pragma once

#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "mapping/mapping.hpp"
#include "workload/workload.hpp"

namespace mse {

/** Classical dataflow buckets. */
enum class Stationarity
{
    Weight,
    Input,
    Output,
    None, ///< No tensor is meaningfully held still.
};

/** Printable name of a bucket. */
const char *stationarityName(Stationarity s);

/**
 * Temporal reuse factor of tensor t at storage level l: how many
 * consecutive innermost iterations at that level touch the same tile of
 * t (the product of the factors of irrelevant loops placed inside t's
 * innermost relevant loop). 1 = no reuse.
 */
double reuseFactor(const Workload &wl, const Mapping &m, int t, int l);

/**
 * The dataflow bucket of a mapping: the tensor with the largest
 * innermost-level reuse factor, by name ("Weights" -> Weight, "Inputs"
 * -> Input, output tensor -> Output). None when every factor is 1.
 */
Stationarity classifyStationarity(const Workload &wl, const Mapping &m);

/**
 * Arithmetic intensity of the mapping: MACs per word moved across the
 * DRAM boundary (higher = better data reuse overall).
 */
double arithmeticIntensity(const Workload &wl, const ArchConfig &arch,
                           const Mapping &m);

} // namespace mse

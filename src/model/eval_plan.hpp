/**
 * @file
 * Precomputed evaluation plans for the analytical cost model.
 *
 * CostModel::evaluate re-derives everything that is constant across a
 * search — tensor relevance, projection layouts, per-level arch
 * constants — on every call, and allocates a dozen small vectors per
 * evaluation. An EvalPlan hoists all of that out of the hot path: it is
 * built once per (Workload, ArchConfig) pair and threaded through the
 * batch evaluator, so a planned evaluation touches only flat
 * preallocated arrays (EvalScratch) and the Mapping under test.
 *
 * Bit-identity contract. evaluatePlanned and evaluateIncremental mirror
 * the floating-point operation order of validateMapping →
 * computeAccessCounts → CostModel::fold exactly; their CostResults are
 * bit-identical to CostModel::evaluate for every mapping, valid or not
 * (asserted field-by-field at %.17g by tests/test_eval_plan.cpp and
 * pinned by the golden-trace fixture). Anything that would reorder a
 * floating-point reduction belongs in a new model version, not here.
 *
 * Incremental re-evaluation. GA offspring differ from a parent in a
 * handful of factor slots or one loop order. evaluateIncremental diffs
 * child against parent, keeps the parent's per-(level, tensor) access
 * rows for tensors whose traffic provably cannot have changed — no
 * changed dimension is relevant to the tensor AND the truncated
 * iteration factor sequence is unchanged at every touched level — and
 * recomputes only the affected tensors before re-folding. Whenever the
 * delta cannot *prove* bit-equal reuse (shape, spatial, or bypass
 * changes; ambiguous truncation points) it reports failure and the
 * caller falls back to full evaluation.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.hpp"
#include "mapping/mapping.hpp"
#include "model/cost_model.hpp"
#include "workload/workload.hpp"

namespace mse {

/**
 * Everything the evaluator needs that is fixed for a whole search:
 * workload shape, flattened tensor projections, relevance bitmasks, and
 * per-level architecture constants in dense arrays.
 */
struct EvalPlan
{
    int L = 0; ///< Storage levels (innermost first).
    int D = 0; ///< Workload dimensions.
    int T = 0; ///< Tensors.
    int out = -1; ///< Output tensor index.

    double macs = 0.0;          ///< Workload::totalMacs().
    double out_volume = 0.0;    ///< tensorVolume(out) for RMW accounting.
    double total_units = 1.0;   ///< double(ArchConfig::totalComputeUnits()).
    double mac_energy_pj = 0.0;

    std::vector<int64_t> bounds; ///< [D] dimension bounds.

    /** Per-tensor dimension-relevance bitmasks (bit d = dim d). */
    std::vector<uint32_t> relevance; ///< [T]

    /** Transposed relevance: bit t of dim_tensors[d] = tensor t uses
     *  dim d. Lets per-dim walks visit only the affected tensors. */
    std::vector<uint32_t> dim_tensors; ///< [D]
    uint32_t all_tensors = 0; ///< Mask with one bit per tensor.

    /** One affine term of a flattened projection rank. */
    struct RankTerm
    {
        int dim = 0;
        int64_t coeff = 1;
    };
    /** All projection terms, rank-major then tensor-major. */
    std::vector<RankTerm> terms;
    /** terms index where each rank begins; size num_ranks + 1. */
    std::vector<int> rank_begin;
    /** rank_begin index where each tensor's ranks begin; size T + 1. */
    std::vector<int> tensor_rank_begin;
    std::vector<double> density; ///< [T] tensor densities.

    /**
     * Whole-tensor footprints, i.e. the footprint at any level whose
     * cumulative factor row equals the workload bounds. Validation has
     * already proven that for the outermost (DRAM) level by the time
     * footprints are needed, so its slots read this table instead of
     * re-deriving the same value from the cum row every evaluation.
     */
    std::vector<double> fp_full; ///< [T]

    // Per-level architecture constants, innermost first.
    std::vector<int64_t> fanout;    ///< [L]
    std::vector<int64_t> cap_words; ///< [L] (<= 0 means unbounded)
    std::vector<double> cap_f;      ///< [L] double(cap_words)
    std::vector<double> read_e;     ///< [L] pJ / word read
    std::vector<double> write_e;    ///< [L] pJ / word written
    std::vector<double> hop_e;      ///< [L] pJ / word / NoC hop
    std::vector<double> bw;         ///< [L] words / cycle
    std::vector<NocTopology> noc;   ///< [L]

    /**
     * Build a plan. Throws std::invalid_argument when the shape cannot
     * be planned (more than 32 levels; workloads are already capped at
     * 32 dims).
     */
    static EvalPlan build(const Workload &wl, const ArchConfig &arch);
};

/**
 * Reusable per-thread working memory for planned evaluation. All
 * buffers are grown on first use and reused; a steady-state evaluation
 * performs no allocation.
 */
struct EvalScratch
{
    std::vector<uint64_t> cum;  ///< [L*D] cumulative tile factors.
    std::vector<uint64_t> ssp;  ///< [L] per-level spatial products.
    std::vector<double> fp;     ///< [T*L] tile footprints (kept slots).
    std::vector<double> sp_prod; ///< [L]
    std::vector<double> ai;      ///< [L+1] active instances per level.
    std::vector<double> tcnt;    ///< [L+1] per-tensor tile counts.
    std::vector<int> chain;      ///< storage chain of the current tensor.
    std::vector<TensorLevelAccess> rows; ///< [L*T] access rows.
    double active_alus = 1.0;

    // Per-candidate caches refreshed by validation (or the SoA
    // scatter) before the access-count tail runs: dense views into the
    // mapping's per-level arrays, the residency mask, and the
    // per-tensor truncated-iteration / relevant-spatial products that
    // every tensor's row computation shares.
    std::vector<const int64_t *> tf_ptr; ///< [L] temporal factors.
    std::vector<const int64_t *> sf_ptr; ///< [L] spatial factors.
    std::vector<const int *> ord_ptr;    ///< [L] loop orders.
    std::vector<uint8_t> kept;           ///< [T*L] residency mask.
    std::vector<int> ia;    ///< [T] innermost-relevant scratch.
    std::vector<int> nf_j;  ///< [D] non-unit iterating loop positions.
    std::vector<double> nf_pp; ///< [D] their running prefix products.
    std::vector<double> trunc; ///< [T*L] truncated iteration products.
    std::vector<double> relsp; ///< [T*L] relevant spatial products.

    // One-entry per-level memo for nocHops(noc, spatial product):
    // populations mutate spatial factors rarely, so consecutive
    // candidates usually share each level's product and skip the
    // log2/sqrt. Keyed on (topology, product) because thread-local
    // scratch outlives any single plan.
    std::vector<uint64_t> hops_key;
    std::vector<int8_t> hops_noc;
    std::vector<double> hops_val;
};

/**
 * Full planned evaluation of one mapping; bit-identical to
 * CostModel::evaluate. `out` is overwritten in place (vector capacity
 * is reused, so a recycled CostResult costs no allocation). When
 * rows_out is non-null and the mapping is valid, the per-(level,
 * tensor) access rows are copied there (size L*T, level-major) — the
 * payload incremental re-evaluation keys on.
 */
void evaluatePlanned(const EvalPlan &plan, const Mapping &m, EvalScratch &s,
                     CostResult &out,
                     std::vector<TensorLevelAccess> *rows_out = nullptr);

/**
 * How a GA child differs from its parent, as far as the evaluator
 * cares. Produced by diffMappings; consumed by evaluateIncremental.
 */
struct MappingDelta
{
    /**
     * True when the two mappings have identical shape, spatial factors,
     * and bypass directives — the preconditions for reusing any
     * per-tensor row at all.
     */
    bool comparable = false;

    /** Dims whose temporal factors differ at any level (bitmask). */
    uint32_t changed_temporal_dims = 0;

    /** Levels whose temporal factors or loop order differ (bitmask). */
    uint32_t changed_levels = 0;
};

/** Structural diff of child vs. parent under plan's shape. */
MappingDelta diffMappings(const EvalPlan &plan, const Mapping &child,
                          const Mapping &parent);

/**
 * Incremental re-evaluation of `child` against an already-evaluated
 * valid `parent` whose access rows (L*T, level-major, as produced via
 * evaluatePlanned's rows_out) are supplied. Returns true when the
 * incremental path handled the child — `out` (and rows_out) then hold
 * results bit-identical to evaluatePlanned. Returns false when the
 * delta cannot provably reproduce the full evaluation (the caller must
 * fall back to evaluatePlanned; out is untouched).
 */
bool evaluateIncremental(const EvalPlan &plan, const Mapping &child,
                         const Mapping &parent,
                         const TensorLevelAccess *parent_rows,
                         EvalScratch &s, CostResult &out,
                         std::vector<TensorLevelAccess> *rows_out = nullptr);

namespace detail {

/** Grow scratch buffers to the plan's shape (no-op once sized). */
void ensureScratch(const EvalPlan &plan, EvalScratch &s);

/** Write the invalid-mapping result CostModel::evaluate produces. */
void setErrorResult(CostResult &out, MappingError err);

/**
 * Shared tail of the planned evaluators: given scratch whose cum / ssp
 * / kept-slot footprints describe a *valid* mapping, compute the access
 * rows (left in s.rows, level-major) and fold them into `out`. The SoA
 * batch kernel funnels through this so its per-candidate arithmetic is
 * the same code — and therefore the same bits — as evaluatePlanned.
 */
void finishPlanned(const EvalPlan &plan, const Mapping &m, EvalScratch &s,
                   CostResult &out);

} // namespace detail

} // namespace mse

#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mse {

namespace {

/**
 * Truncated iteration product at one storage level: the product of
 * temporal loop factors from the outermost loop down to (and including)
 * the innermost loop that is relevant to tensor t, skipping factor-1
 * loops. 1 if no relevant loop iterates at this level.
 */
double
truncatedIterations(const Workload &wl, const LevelMapping &lvl, int t)
{
    const int D = static_cast<int>(lvl.order.size());
    int innermost_relevant = -1;
    for (int j = D - 1; j >= 0; --j) {
        const int d = lvl.order[j];
        if (lvl.temporal[d] > 1 && wl.isRelevant(t, d)) {
            innermost_relevant = j;
            break;
        }
    }
    if (innermost_relevant < 0)
        return 1.0;
    double prod = 1.0;
    for (int j = 0; j <= innermost_relevant; ++j)
        prod *= static_cast<double>(lvl.temporal[lvl.order[j]]);
    return prod;
}

/** Product of spatial factors at level l over dims relevant to t. */
double
relevantSpatial(const Workload &wl, const LevelMapping &lvl, int t)
{
    double prod = 1.0;
    for (size_t d = 0; d < lvl.spatial.size(); ++d) {
        if (wl.isRelevant(t, static_cast<int>(d)))
            prod *= static_cast<double>(lvl.spatial[d]);
    }
    return prod;
}

} // namespace

AccessCounts
computeAccessCounts(const Workload &wl, const ArchConfig &arch,
                    const Mapping &m)
{
    const int L = arch.numLevels();
    const int T = wl.numTensors();
    const int out = wl.outputTensor();

    AccessCounts counts;
    counts.access.assign(L, std::vector<TensorLevelAccess>(T));
    counts.macs = wl.totalMacs();
    counts.active_alus = 1.0;
    for (int l = 0; l < L; ++l)
        counts.active_alus *= static_cast<double>(m.spatialProduct(l));

    // Per-level caches.
    std::vector<double> sp_prod(L), ai(L + 1, 1.0);
    for (int l = 0; l < L; ++l)
        sp_prod[l] = static_cast<double>(m.spatialProduct(l));
    for (int l = L - 1; l >= 0; --l)
        ai[l] = ai[l + 1] * (l + 1 < L ? sp_prod[l + 1] : 1.0);
    // ai[l] = active instances of level l (product of spatial products
    // strictly above l).

    for (int t = 0; t < T; ++t) {
        // Deliveries of one child-instance tile along a fixed instance
        // path, per level: tcnt[l] = prod_{l' >= l} C(l', t).
        std::vector<double> tcnt(L + 1, 1.0);
        for (int l = L - 1; l >= 0; --l)
            tcnt[l] = tcnt[l + 1] * truncatedIterations(wl, m.level(l), t);

        std::vector<double> rel_sp(L);
        for (int l = 0; l < L; ++l)
            rel_sp[l] = relevantSpatial(wl, m.level(l), t);

        // The storage chain of this tensor: the virtual compute node
        // (-1, footprint 1 word) followed by every level that keeps the
        // tensor. Bypassed levels are skipped: data streams directly
        // between the adjacent keeping levels, paying the combined
        // spatial fanout of everything in between.
        std::vector<int> chain = {-1};
        for (int l = 0; l < L; ++l) {
            if (m.keeps(l, t))
                chain.push_back(l);
        }

        auto footprint_at = [&](int l) {
            return l < 0 ? 1.0 : tileFootprint(wl, m, t, l);
        };
        // Deliveries (in words, machine-aggregate) from parent p into
        // child c across the chain link (c, p].
        auto link_words = [&](int c, int p) {
            double rel = 1.0;
            for (int l = c + 1; l <= p; ++l)
                rel *= rel_sp[l];
            return tcnt[c + 1] * footprint_at(c) * rel * ai[p];
        };

        if (t != out) {
            for (size_t i = 0; i + 1 < chain.size(); ++i) {
                const int c = chain[i], p = chain[i + 1];
                // Reads out of the parent (multicast: distinct words
                // only); fills into the child fan out to every active
                // receiving instance.
                counts.access[p][t].reads += link_words(c, p);
                if (c >= 0) {
                    counts.access[c][t].writes +=
                        tcnt[c + 1] * footprint_at(c) * ai[c];
                }
            }
        } else {
            const double vol_out = wl.tensorVolume(t);
            for (size_t i = 0; i + 1 < chain.size(); ++i) {
                const int c = chain[i], p = chain[i + 1];
                const double w = link_words(c, p);
                // Partial sums ascend into the parent...
                counts.access[p][t].writes += w;
                // ...non-final deliveries are read back down later
                // (read-modify-write), and ascending data is read out
                // of the child.
                counts.access[p][t].reads += std::max(0.0, w - vol_out);
                if (c >= 0)
                    counts.access[c][t].reads += w;
            }
        }
    }
    return counts;
}

CostResult
CostModel::fold(const Workload &wl, const ArchConfig &arch, const Mapping &m,
                const AccessCounts &counts)
{
    const int L = arch.numLevels();
    CostResult res;
    res.valid = true;
    res.error = MappingError::Ok;
    res.macs = counts.macs;
    res.compute_cycles = counts.macs / std::max(counts.active_alus, 1.0);
    res.utilization = counts.active_alus /
        static_cast<double>(arch.totalComputeUnits());

    res.level_energy_uj.assign(L, 0.0);
    res.level_cycles.assign(L, 0.0);

    std::vector<double> sp_prod(L), ai(L + 1, 1.0);
    for (int l = 0; l < L; ++l)
        sp_prod[l] = static_cast<double>(m.spatialProduct(l));
    for (int l = L - 1; l >= 0; --l)
        ai[l] = ai[l + 1] * (l + 1 < L ? sp_prod[l + 1] : 1.0);

    double energy_pj = counts.macs * arch.mac_energy_pj;
    double bound_cycles = res.compute_cycles;
    for (int l = 0; l < L; ++l) {
        const auto &lvl = arch.levels[l];
        double reads = 0.0, writes = 0.0;
        for (int t = 0; t < wl.numTensors(); ++t) {
            reads += counts.access[l][t].reads;
            writes += counts.access[l][t].writes;
        }
        // NoC distribution: every word read out of this level travels
        // the network below it to reach the active child instances.
        const double hops = nocHops(lvl.noc, m.spatialProduct(l));
        const double lvl_pj = reads * lvl.read_energy_pj +
            writes * lvl.write_energy_pj +
            reads * hops * lvl.noc_hop_energy_pj;
        res.level_energy_uj[l] = lvl_pj * 1e-6;
        energy_pj += lvl_pj;

        const double per_instance = (reads + writes) / std::max(ai[l], 1.0);
        res.level_cycles[l] = per_instance / lvl.bandwidth_words_per_cycle;
        bound_cycles = std::max(bound_cycles, res.level_cycles[l]);
    }

    res.energy_uj = energy_pj * 1e-6;
    res.latency_cycles = bound_cycles;
    res.edp = res.energy_uj * res.latency_cycles;
    return res;
}

CostResult
CostModel::evaluate(const Workload &wl, const ArchConfig &arch,
                    const Mapping &m)
{
    const MappingError err = validateMapping(wl, arch, m);
    if (err != MappingError::Ok) {
        CostResult res;
        res.valid = false;
        res.error = err;
        res.latency_cycles = std::numeric_limits<double>::infinity();
        res.energy_uj = std::numeric_limits<double>::infinity();
        res.edp = std::numeric_limits<double>::infinity();
        return res;
    }
    return fold(wl, arch, m, computeAccessCounts(wl, arch, m));
}

} // namespace mse

/**
 * @file
 * Sharded memoization cache for cost-model evaluations.
 *
 * GA populations re-evaluate duplicated genomes constantly: elites are
 * copied verbatim across generations, crossover reproduces parent
 * columns, and mutation is applied with probability < 1, so a large
 * fraction of cost-model queries in a search are repeats. EvalCache
 * memoizes (canonical mapping -> CostResult) so repeats cost one hash
 * lookup instead of a full analytical-model evaluation, and compounds
 * with the batch-parallel evaluation layer (multiple worker threads hit
 * disjoint shards concurrently).
 *
 * Keys are canonical: Mapping::hash()/operator== treat mappings that
 * differ only in permutations of unit-factor loops (or an explicit
 * keep-all mask) as identical, which is sound because the cost model is
 * invariant under exactly those rewrites.
 *
 * Scope: a cache instance is valid for ONE (workload, arch, evaluator)
 * triple — the key does not encode them. MseEngine::optimize creates a
 * fresh cache per run.
 *
 * Thread safety: getOrCompute is safe to call concurrently. On a miss
 * the inner evaluator runs outside the shard lock, so two threads may
 * compute the same mapping at the same time; the duplicate insert is
 * harmless because evaluation is deterministic.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "mapping/mapping.hpp"
#include "model/cost_model.hpp"

namespace mse {

/** Callable evaluating one mapping (same shape as mappers' EvalFn). */
using CostEvalFn = std::function<CostResult(const Mapping &)>;

/** Memoizing wrapper around a cost evaluator. */
class EvalCache
{
  public:
    /** shard_count is rounded up to a power of two (min 1). */
    explicit EvalCache(size_t shard_count = 16);

    /** Look up m; on a miss run inner(m) and memoize the result. */
    CostResult getOrCompute(const Mapping &m, const CostEvalFn &inner);

    /**
     * getOrCompute with a caller-supplied hash instead of m.hash().
     * Exists so tests can force two distinct mappings onto one 64-bit
     * key and exercise the collision path (stored-key mismatch must
     * degrade to a recomputed miss, never return the colliding
     * entry's cost). Production callers use getOrCompute.
     */
    CostResult getOrComputeHashed(uint64_t hash, const Mapping &m,
                                  const CostEvalFn &inner);

    /**
     * Convenience: a memoizing evaluator closing over this cache.
     * The cache must outlive the returned function.
     */
    CostEvalFn wrap(CostEvalFn inner);

    /** Total hits/misses, aggregated over the per-shard counters. */
    size_t hits() const;
    size_t misses() const;

    /** hits / (hits + misses); 0 when never queried. */
    double hitRate() const;

    /** Number of distinct mappings memoized. */
    size_t size() const;

    /** Drop all entries and reset the hit/miss counters. */
    void clear();

  private:
    /**
     * Entries are keyed by the precomputed canonical hash (computed
     * once per query instead of on every probe); the stored Mapping
     * guards against 64-bit collisions, which degrade to misses.
     */
    struct Entry
    {
        Mapping key;
        CostResult cost;
    };

    struct IdentityHash
    {
        size_t operator()(uint64_t h) const
        {
            return static_cast<size_t>(h);
        }
    };

    struct Shard
    {
        Mutex mu;
        std::unordered_map<uint64_t, Entry, IdentityHash> map
            GUARDED_BY(mu);
        /**
         * Hit/miss counters live per shard, bumped under the shard
         * lock the probe/insert already holds and aggregated only when
         * hits()/misses() is read. Shared atomics here would put every
         * worker's counter increment on one contended cache line — the
         * one false-sharing hotspot in an otherwise sharded structure.
         */
        size_t hits GUARDED_BY(mu) = 0;
        size_t misses GUARDED_BY(mu) = 0;
    };

    Shard &shardFor(uint64_t hash)
    {
        // The map buckets by the low bits, so shard by the high ones.
        return *shards_[(hash >> 48) & (shards_.size() - 1)];
    }

    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace mse

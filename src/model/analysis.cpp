#include "model/analysis.hpp"

#include "model/cost_model.hpp"

namespace mse {

const char *
stationarityName(Stationarity s)
{
    switch (s) {
      case Stationarity::Weight: return "weight-stationary";
      case Stationarity::Input: return "input-stationary";
      case Stationarity::Output: return "output-stationary";
      case Stationarity::None: return "no-stationarity";
    }
    return "unknown";
}

double
reuseFactor(const Workload &wl, const Mapping &m, int t, int l)
{
    // Product of the factors of irrelevant loops inside the innermost
    // relevant loop of level l's order.
    const auto &lvl = m.level(l);
    const int D = static_cast<int>(lvl.order.size());
    double reuse = 1.0;
    for (int j = D - 1; j >= 0; --j) {
        const int d = lvl.order[j];
        if (lvl.temporal[d] <= 1)
            continue;
        if (wl.isRelevant(t, d))
            break;
        reuse *= static_cast<double>(lvl.temporal[d]);
    }
    return reuse;
}

Stationarity
classifyStationarity(const Workload &wl, const Mapping &m)
{
    double best_reuse = 1.0;
    int best_tensor = -1;
    for (int t = 0; t < wl.numTensors(); ++t) {
        const double r = reuseFactor(wl, m, t, 0);
        if (r > best_reuse) {
            best_reuse = r;
            best_tensor = t;
        }
    }
    if (best_tensor < 0)
        return Stationarity::None;
    if (best_tensor == wl.outputTensor())
        return Stationarity::Output;
    if (wl.tensor(best_tensor).name == "Weights")
        return Stationarity::Weight;
    return Stationarity::Input;
}

double
arithmeticIntensity(const Workload &wl, const ArchConfig &arch,
                    const Mapping &m)
{
    const AccessCounts counts = computeAccessCounts(wl, arch, m);
    const int dram = arch.numLevels() - 1;
    double words = 0.0;
    for (int t = 0; t < wl.numTensors(); ++t) {
        words += counts.access[dram][t].reads +
            counts.access[dram][t].writes;
    }
    return counts.macs / std::max(words, 1.0);
}

} // namespace mse

#include "model/batch_eval.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace mse {

namespace {

/**
 * SoA tile width. Bounds the candidate-contiguous arrays to a few tens
 * of kilobytes (L1/L2 resident) while leaving the inner loops long
 * enough to vectorize.
 */
constexpr size_t kSoaTile = 64;

/** Candidate-contiguous working arrays for one SoA tile. */
struct SoaScratch
{
    std::vector<uint64_t> tf;  ///< [(L*D)*k] temporal factors.
    std::vector<uint64_t> sf;  ///< [(L*D)*k] spatial factors.
    std::vector<uint64_t> cum; ///< [(L*D)*k] cumulative products.
    std::vector<uint64_t> ssp; ///< [L*k] per-level spatial products.
    std::vector<uint64_t> ext; ///< [k] rank-extent accumulator.
    std::vector<double> fp;    ///< [(T*L)*k] tile footprints.
    std::vector<MappingError> err; ///< [k]
    EvalScratch es; ///< per-candidate scratch for the shared tail.
};

/**
 * Evaluate one tile of k candidates. When idx is non-null, candidate j
 * is batch[idx[j]] and its result goes to out[idx[j]]; otherwise
 * candidate j is batch[j] and its result goes to out[j]. rows_slab (may
 * be null) receives the access rows of valid candidates at slab slot
 * j*L*T — slab slots are tile-local.
 *
 * Stage order mirrors validateMapping's check order, and every stage
 * only assigns err[j] while it is still Ok, so each candidate reports
 * the same MappingError the scalar validator would. Within a stage the
 * loops run over candidates; per candidate the arithmetic sequence is
 * unchanged, and the valid tail funnels through detail::finishPlanned,
 * so every CostResult is bit-identical to the scalar path.
 */
void
soaTile(const EvalPlan &p, const Mapping *batch, const uint32_t *idx,
        size_t k, CostResult *out, TensorLevelAccess *rows_slab,
        SoaScratch &s)
{
    const int L = p.L, D = p.D, T = p.T;
    const size_t LD = static_cast<size_t>(L) * D;

    if (s.tf.size() < LD * k) {
        s.tf.resize(LD * k);
        s.sf.resize(LD * k);
        s.cum.resize(LD * k);
    }
    if (s.ssp.size() < static_cast<size_t>(L) * k)
        s.ssp.resize(static_cast<size_t>(L) * k);
    if (s.ext.size() < k)
        s.ext.resize(k);
    if (s.fp.size() < static_cast<size_t>(T) * L * k)
        s.fp.resize(static_cast<size_t>(T) * L * k);
    if (s.err.size() < k)
        s.err.resize(k);
    detail::ensureScratch(p, s.es);

    const auto cand = [&](size_t j) -> const Mapping & {
        return batch[idx ? idx[j] : j];
    };
    const auto result = [&](size_t j) -> CostResult & {
        return out[idx ? idx[j] : j];
    };

    // Candidates arrive as freshly heap-built Mappings whose per-level
    // arrays are scattered small allocations; a linear walk stalls on
    // ~10 dependent cache misses per candidate. Issuing the leaf-array
    // prefetches for the whole tile up front overlaps those misses
    // across candidates before Stage A starts consuming them.
    for (size_t j = 0; j < k; ++j) {
        const Mapping &m = cand(j);
        const int nl = m.numLevels();
        for (int l = 0; l < nl; ++l) {
            const LevelMapping &lvl = m.level(l);
            __builtin_prefetch(lvl.temporal.data());
            __builtin_prefetch(lvl.spatial.data());
            __builtin_prefetch(lvl.order.data());
            if (!lvl.keep.empty())
                __builtin_prefetch(lvl.keep.data());
        }
    }

    // Stage A — structural checks, per candidate (branchy by nature):
    // shape, loop-order permutation, factors >= 1, keep-mask size, and
    // DRAM keeping every tensor.
    for (size_t j = 0; j < k; ++j) {
        s.err[j] = MappingError::Ok;
        const Mapping &m = cand(j);
        if (m.numLevels() != L) {
            s.err[j] = MappingError::BadShape;
            continue;
        }
        for (int l = 0; l < L && s.err[j] == MappingError::Ok; ++l) {
            const LevelMapping &lvl = m.level(l);
            if (static_cast<int>(lvl.temporal.size()) != D ||
                static_cast<int>(lvl.spatial.size()) != D ||
                static_cast<int>(lvl.order.size()) != D) {
                s.err[j] = MappingError::BadShape;
                break;
            }
            uint32_t seen = 0;
            for (const int v : lvl.order) {
                if (static_cast<unsigned>(v) >=
                        static_cast<unsigned>(D) ||
                    ((seen >> static_cast<unsigned>(v)) & 1u)) {
                    s.err[j] = MappingError::BadOrder;
                    break;
                }
                seen |= 1u << static_cast<unsigned>(v);
            }
            if (s.err[j] != MappingError::Ok)
                break;
            for (int d = 0; d < D; ++d) {
                if (lvl.temporal[d] < 1 || lvl.spatial[d] < 1) {
                    s.err[j] = MappingError::BadFactorProduct;
                    break;
                }
            }
            if (s.err[j] != MappingError::Ok)
                break;
            if (!lvl.keep.empty() &&
                static_cast<int>(lvl.keep.size()) != T) {
                s.err[j] = MappingError::BadShape;
                break;
            }
        }
        if (s.err[j] != MappingError::Ok)
            continue;
        for (int t = 0; t < T; ++t) {
            if (!m.keeps(L - 1, t)) {
                s.err[j] = MappingError::BadShape;
                break;
            }
        }
    }

    // Stage B — gather factors candidate-contiguous. Dead lanes get 1s
    // so the branchless compute loops below stay on defined values.
    std::fill(s.tf.begin(), s.tf.begin() + LD * k, uint64_t{1});
    std::fill(s.sf.begin(), s.sf.begin() + LD * k, uint64_t{1});
    for (size_t j = 0; j < k; ++j) {
        if (s.err[j] != MappingError::Ok)
            continue;
        const Mapping &m = cand(j);
        for (int l = 0; l < L; ++l) {
            const LevelMapping &lvl = m.level(l);
            for (int d = 0; d < D; ++d) {
                const size_t base = (static_cast<size_t>(l) * D + d) * k;
                s.tf[base + j] = static_cast<uint64_t>(lvl.temporal[d]);
                s.sf[base + j] = static_cast<uint64_t>(lvl.spatial[d]);
            }
        }
    }

    // Cumulative factor products (wrap-defined u64, same bits as the
    // scalar path) and the per-dimension factor-product check.
    for (int d = 0; d < D; ++d) {
        for (int l = 0; l < L; ++l) {
            const size_t base = (static_cast<size_t>(l) * D + d) * k;
            if (l == 0) {
                for (size_t j = 0; j < k; ++j)
                    s.cum[base + j] = s.tf[base + j] * s.sf[base + j];
            } else {
                const size_t prev =
                    (static_cast<size_t>(l - 1) * D + d) * k;
                for (size_t j = 0; j < k; ++j) {
                    s.cum[base + j] = s.cum[prev + j] * s.tf[base + j] *
                        s.sf[base + j];
                }
            }
        }
    }
    for (int d = 0; d < D; ++d) {
        const size_t base = (static_cast<size_t>(L - 1) * D + d) * k;
        const uint64_t bound = static_cast<uint64_t>(p.bounds[d]);
        for (size_t j = 0; j < k; ++j) {
            if (s.err[j] == MappingError::Ok && s.cum[base + j] != bound)
                s.err[j] = MappingError::BadFactorProduct;
        }
    }

    // Stage C — per-level spatial products and the fanout check.
    std::fill(s.ssp.begin(), s.ssp.begin() + static_cast<size_t>(L) * k,
              uint64_t{1});
    for (int l = 0; l < L; ++l) {
        const size_t sbase = static_cast<size_t>(l) * k;
        for (int d = 0; d < D; ++d) {
            const size_t base = (static_cast<size_t>(l) * D + d) * k;
            for (size_t j = 0; j < k; ++j)
                s.ssp[sbase + j] *= s.sf[base + j];
        }
    }
    for (int l = 0; l < L; ++l) {
        const size_t sbase = static_cast<size_t>(l) * k;
        for (size_t j = 0; j < k; ++j) {
            if (s.err[j] == MappingError::Ok &&
                static_cast<int64_t>(s.ssp[sbase + j]) > p.fanout[l]) {
                s.err[j] = MappingError::FanoutExceeded;
            }
        }
    }

    // Stage D — tile footprints of every (tensor, level) slot across
    // candidates. The scalar path computes only kept slots; computing
    // all of them is uniform (vectorizable) work, and per candidate
    // each slot's rank/term arithmetic order is exactly
    // footprintFromCum's, so kept slots carry identical bits.
    std::fill(s.fp.begin(),
              s.fp.begin() + static_cast<size_t>(T) * L * k, 1.0);
    for (int t = 0; t < T; ++t) {
        for (int l = 0; l < L; ++l) {
            const size_t slot = (static_cast<size_t>(t) * L + l) * k;
            if (l == L - 1) {
                // Every lane whose footprint is ever read has passed
                // the factor-product check, so its outermost cum row
                // equals the bounds and its footprint is the plan's
                // precomputed whole-tensor value (same bits).
                for (size_t j = 0; j < k; ++j)
                    s.fp[slot + j] = p.fp_full[t];
                continue;
            }
            for (int r = p.tensor_rank_begin[t];
                 r < p.tensor_rank_begin[t + 1]; ++r) {
                for (size_t j = 0; j < k; ++j)
                    s.ext[j] = 1;
                for (int q = p.rank_begin[r]; q < p.rank_begin[r + 1];
                     ++q) {
                    const EvalPlan::RankTerm &term = p.terms[q];
                    const size_t base =
                        (static_cast<size_t>(l) * D + term.dim) * k;
                    const uint64_t coeff =
                        static_cast<uint64_t>(term.coeff);
                    for (size_t j = 0; j < k; ++j)
                        s.ext[j] += coeff * (s.cum[base + j] - 1);
                }
                for (size_t j = 0; j < k; ++j) {
                    s.fp[slot + j] *= static_cast<double>(
                        static_cast<int64_t>(s.ext[j]));
                }
            }
        }
    }

    // Stage E — capacity check (keep masks vary per candidate, so this
    // stays scalar; the adds run in the scalar path's tensor order).
    for (int l = 0; l < L; ++l) {
        if (p.cap_words[l] <= 0)
            continue; // unbounded (DRAM)
        for (size_t j = 0; j < k; ++j) {
            if (s.err[j] != MappingError::Ok)
                continue;
            const Mapping &m = cand(j);
            double resident = 0.0;
            for (int t = 0; t < T; ++t) {
                if (m.keeps(l, t)) {
                    resident +=
                        s.fp[(static_cast<size_t>(t) * L + l) * k + j] *
                        p.density[t];
                }
            }
            if (resident > p.cap_f[l])
                s.err[j] = MappingError::CapacityExceeded;
        }
    }

    // Stage F — scatter each live candidate's state into the scalar
    // scratch and run the shared tail (identical code, identical bits).
    for (size_t j = 0; j < k; ++j) {
        CostResult &o = result(j);
        if (s.err[j] != MappingError::Ok) {
            detail::setErrorResult(o, s.err[j]);
            continue;
        }
        // (The cum table is not scattered: nothing after validation
        // reads it — footprints, the only consumer, are already here.)
        for (int l = 0; l < L; ++l)
            s.es.ssp[l] = s.ssp[static_cast<size_t>(l) * k + j];
        for (size_t tl = 0; tl < static_cast<size_t>(T) * L; ++tl)
            s.es.fp[tl] = s.fp[tl * k + j];
        const Mapping &m = cand(j);
        for (int l = 0; l < L; ++l) {
            const LevelMapping &lvl = m.level(l);
            s.es.tf_ptr[l] = lvl.temporal.data();
            s.es.sf_ptr[l] = lvl.spatial.data();
            s.es.ord_ptr[l] = lvl.order.data();
        }
        for (int t = 0; t < T; ++t) {
            for (int l = 0; l < L; ++l) {
                s.es.kept[static_cast<size_t>(t) * L + l] =
                    m.keeps(l, t) ? 1 : 0;
            }
        }
        detail::finishPlanned(p, m, s.es, o);
        if (rows_slab) {
            std::copy(s.es.rows.begin(),
                      s.es.rows.begin() + static_cast<size_t>(L) * T,
                      rows_slab + j * static_cast<size_t>(L) * T);
        }
    }
}

/** Tile driver: run idx[0..k) (or identity when idx is null) through
 *  soaTile in kSoaTile-sized pieces. rows_slab spans all k candidates. */
void
soaEvaluate(const EvalPlan &p, const Mapping *batch, const uint32_t *idx,
            size_t k, CostResult *out, TensorLevelAccess *rows_slab,
            SoaScratch &s)
{
    const size_t lt = static_cast<size_t>(p.L) * p.T;
    for (size_t off = 0; off < k; off += kSoaTile) {
        const size_t tk = std::min(kSoaTile, k - off);
        soaTile(p, idx ? batch : batch + off, idx ? idx + off : nullptr,
                tk, idx ? out : out + off,
                rows_slab ? rows_slab + off * lt : nullptr, s);
    }
}

/** Per-thread pipeline scratch (pool workers persist across batches). */
struct PipelineTls
{
    SoaScratch soa;
    std::vector<uint32_t> pend;
    std::vector<TensorLevelAccess> parent_rows;
    std::vector<TensorLevelAccess> rows_tmp;
    std::vector<TensorLevelAccess> rows_slab;
};

PipelineTls &
pipelineTls()
{
    static thread_local PipelineTls tls;
    return tls;
}

size_t
roundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

void
evaluateBatchSoA(const EvalPlan &plan, std::span<const Mapping> batch,
                 std::span<CostResult> out)
{
    const size_t n = std::min(batch.size(), out.size());
    soaEvaluate(plan, batch.data(), nullptr, n, out.data(), nullptr,
                pipelineTls().soa);
}

BatchCostEvaluator::BatchCostEvaluator(const Workload &wl,
                                       const ArchConfig &arch,
                                       Options opts)
    : plan_(EvalPlan::build(wl, arch)), opts_(opts)
{
    const size_t n = roundUpPow2(std::max<size_t>(opts_.shards, 1));
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

bool
BatchCostEvaluator::lookupCost(uint64_t hash, const Mapping &m,
                               CostResult &out)
{
    Shard &sh = shardFor(hash);
    MutexLock lk(sh.mu);
    const auto it = sh.map.find(hash);
    if (it != sh.map.end() && it->second.key == m) {
        out = it->second.cost;
        ++sh.hits;
        return true;
    }
    ++sh.misses;
    return false;
}

bool
BatchCostEvaluator::lookupRows(
    uint64_t hash, const Mapping &m,
    std::vector<TensorLevelAccess> &rows_out) const
{
    const size_t lt = static_cast<size_t>(plan_.L) * plan_.T;
    const Shard &sh = shardFor(hash);
    MutexLock lk(sh.mu);
    const auto it = sh.map.find(hash);
    if (it == sh.map.end() || !(it->second.key == m) ||
        it->second.rows.size() != lt) {
        return false;
    }
    rows_out.assign(it->second.rows.begin(), it->second.rows.end());
    return true;
}

void
BatchCostEvaluator::insert(uint64_t hash, const Mapping &m,
                           const CostResult &cost,
                           std::vector<TensorLevelAccess> &&rows)
{
    Shard &sh = shardFor(hash);
    MutexLock lk(sh.mu);
    // Duplicates in flight compute identical results; keep the first.
    // A 64-bit collision keeps the first entry too and the loser just
    // stays uncached (probes degrade to misses via the key check).
    sh.map.try_emplace(hash, Entry{m, cost, std::move(rows)});
}

void
BatchCostEvaluator::evaluateRange(const Mapping *batch,
                                  const EvalHint *hints,
                                  const uint64_t *hashes,
                                  const uint8_t *done, CostResult *out,
                                  size_t begin, size_t end)
{
    PipelineTls &tls = pipelineTls();
    const size_t lt = static_cast<size_t>(plan_.L) * plan_.T;
    const bool store = opts_.use_cache || opts_.use_incremental;
    const bool keep_rows = opts_.use_incremental;

    tls.pend.clear();
    for (size_t i = begin; i < end; ++i) {
        if (done[i])
            continue;
        if (keep_rows && hints && hints[i].parent) {
            const Mapping &parent = *hints[i].parent;
            if (lookupRows(parent.hash(), parent, tls.parent_rows) &&
                evaluateIncremental(plan_, batch[i], parent,
                                    tls.parent_rows.data(), tls.soa.es,
                                    out[i],
                                    keep_rows ? &tls.rows_tmp
                                              : nullptr)) {
                if (store) {
                    insert(hashes[i], batch[i], out[i],
                           out[i].valid
                               ? std::move(tls.rows_tmp)
                               : std::vector<TensorLevelAccess>{});
                    tls.rows_tmp = {};
                }
                continue;
            }
        }
        tls.pend.push_back(static_cast<uint32_t>(i));
    }

    if (!tls.pend.empty()) {
        TensorLevelAccess *slab = nullptr;
        if (keep_rows) {
            tls.rows_slab.assign(tls.pend.size() * lt,
                                 TensorLevelAccess{});
            slab = tls.rows_slab.data();
        }
        soaEvaluate(plan_, batch, tls.pend.data(), tls.pend.size(), out,
                    slab, tls.soa);
        if (store) {
            for (size_t j = 0; j < tls.pend.size(); ++j) {
                const size_t i = tls.pend[j];
                std::vector<TensorLevelAccess> rows;
                if (keep_rows && out[i].valid) {
                    rows.assign(slab + j * lt, slab + (j + 1) * lt);
                }
                insert(hashes[i], batch[i], out[i], std::move(rows));
            }
        }
    }

    if (post_) {
        for (size_t i = begin; i < end; ++i)
            post_(batch[i], out[i]);
    }
}

void
BatchCostEvaluator::evaluateBatch(const Mapping *batch,
                                  const EvalHint *hints, size_t n,
                                  CostResult *out)
{
    if (n == 0)
        return;

    // Per-batch work buffers; members so steady-state batches allocate
    // nothing. evaluateBatch itself runs on one caller thread (the
    // inner chunks write disjoint index ranges, exactly as the former
    // stack locals were written).
    hashes_.resize(n);
    done_.assign(n, 0);
    std::vector<uint64_t> &hashes = hashes_;
    std::vector<uint8_t> &done = done_;

    ThreadPool &pool = ThreadPool::global();
    const size_t lanes = std::max<size_t>(pool.threads(), 1);
    const size_t chunk = (n + lanes - 1) / lanes;
    const size_t nchunks = (n + chunk - 1) / chunk;
    const auto forChunks = [&](const std::function<void(size_t, size_t)>
                                   &body) {
        if (nchunks > 1) {
            pool.parallelFor(nchunks, [&](size_t c) {
                body(c * chunk, std::min(n, (c + 1) * chunk));
            });
        } else {
            body(0, n);
        }
    };

    // Phase 1 — hash + store probe. No inserts happen until phase 2,
    // so probe outcomes (and the hit/miss totals) depend only on the
    // store state left by prior batches, not on the thread count. With
    // the store fully disabled, hashes are never consumed — skip them.
    const bool store = opts_.use_cache || opts_.use_incremental;
    if (store) {
        forChunks([&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                hashes[i] = batch[i].hash();
                if (opts_.use_cache &&
                    lookupCost(hashes[i], batch[i], out[i])) {
                    done[i] = 1;
                }
            }
        });
    }

    // Phase 2 — incremental / SoA evaluation, inserts, post hooks.
    forChunks([&](size_t begin, size_t end) {
        evaluateRange(batch, hints, hashes.data(), done.data(), out,
                      begin, end);
    });
}

CostResult
BatchCostEvaluator::evaluateOne(const Mapping &m)
{
    PipelineTls &tls = pipelineTls();
    CostResult res;
    const uint64_t h = m.hash();
    if (!opts_.use_cache || !lookupCost(h, m, res)) {
        const bool keep_rows = opts_.use_incremental;
        evaluatePlanned(plan_, m, tls.soa.es, res,
                        keep_rows ? &tls.rows_tmp : nullptr);
        if (opts_.use_cache || keep_rows) {
            insert(h, m, res,
                   keep_rows && res.valid
                       ? std::move(tls.rows_tmp)
                       : std::vector<TensorLevelAccess>{});
            tls.rows_tmp = {};
        }
    }
    if (post_)
        post_(m, res);
    return res;
}

size_t
BatchCostEvaluator::cacheHits() const
{
    size_t n = 0;
    for (const auto &sh : shards_) {
        MutexLock lk(sh->mu);
        n += sh->hits;
    }
    return n;
}

size_t
BatchCostEvaluator::cacheMisses() const
{
    size_t n = 0;
    for (const auto &sh : shards_) {
        MutexLock lk(sh->mu);
        n += sh->misses;
    }
    return n;
}

double
BatchCostEvaluator::cacheHitRate() const
{
    size_t h = 0, m = 0;
    for (const auto &sh : shards_) {
        MutexLock lk(sh->mu);
        h += sh->hits;
        m += sh->misses;
    }
    const size_t total = h + m;
    return total > 0
        ? static_cast<double>(h) / static_cast<double>(total)
        : 0.0;
}

size_t
BatchCostEvaluator::storeSize() const
{
    size_t n = 0;
    for (const auto &sh : shards_) {
        MutexLock lk(sh->mu);
        n += sh->map.size();
    }
    return n;
}

} // namespace mse

/**
 * @file
 * Textual serialization of workloads, companion to mapping_io.
 *
 * Format (one line):
 *   wl1;name;dims B=16,K=256,...;tensor Name:kind:density:rank|rank;...
 * where each rank is a '+'-joined list of coeff*dimIndex terms, e.g.
 * the CONV input row rank "1*3+1*5" (Y + R).
 */
#pragma once

#include <optional>
#include <string>

#include "workload/workload.hpp"

namespace mse {

/** Serialize a workload to the one-line wl1 format. */
std::string serializeWorkload(const Workload &wl);

/** Parse a serialized workload; nullopt on malformed input. */
std::optional<Workload> parseWorkload(const std::string &text);

} // namespace mse

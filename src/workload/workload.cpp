#include "workload/workload.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mse {

Workload::Workload(std::string name, std::vector<std::string> dim_names,
                   std::vector<int64_t> bounds,
                   std::vector<TensorSpec> tensors)
    : name_(std::move(name)), dim_names_(std::move(dim_names)),
      bounds_(std::move(bounds)), tensors_(std::move(tensors))
{
    if (dim_names_.size() != bounds_.size())
        throw std::invalid_argument("workload: dim name/bound mismatch");
    for (int64_t b : bounds_) {
        if (b < 1)
            throw std::invalid_argument("workload: bounds must be >= 1");
    }
    if (bounds_.size() > 32) {
        // Relevance is a per-tensor uint32_t bitmask; every real DNN
        // operator here has <= 7 loop dimensions.
        throw std::invalid_argument("workload: more than 32 dimensions");
    }
    buildCaches();
}

void
Workload::buildCaches()
{
    relevance_.assign(tensors_.size(), 0u);
    output_tensor_ = -1;
    for (size_t t = 0; t < tensors_.size(); ++t) {
        for (const auto &rank : tensors_[t].projection) {
            for (const auto &term : rank) {
                if (term.dim < 0 || term.dim >= numDims())
                    throw std::invalid_argument(
                        "workload: projection references bad dim");
                relevance_[t] |= 1u << static_cast<unsigned>(term.dim);
            }
        }
        if (tensors_[t].kind == TensorKind::Output) {
            if (output_tensor_ != -1)
                throw std::invalid_argument(
                    "workload: multiple output tensors");
            output_tensor_ = static_cast<int>(t);
        }
    }
    if (output_tensor_ == -1)
        throw std::invalid_argument("workload: no output tensor");

    reduction_dims_.clear();
    for (int d = 0; d < numDims(); ++d) {
        if (!isRelevant(output_tensor_, d))
            reduction_dims_.push_back(d);
    }
}

double
Workload::totalMacs() const
{
    double p = 1.0;
    for (int64_t b : bounds_)
        p *= static_cast<double>(b);
    return p;
}

double
Workload::tensorVolume(int t) const
{
    double p = 1.0;
    for (const auto &rank : tensors_[t].projection) {
        int64_t extent = 1;
        for (const auto &term : rank)
            extent += term.coeff * (bounds_[term.dim] - 1);
        p *= static_cast<double>(extent);
    }
    return p;
}

void
Workload::setDensity(const std::string &tensor_name, double density)
{
    for (auto &t : tensors_) {
        if (t.name == tensor_name) {
            t.density = density;
            return;
        }
    }
    throw std::invalid_argument("workload: unknown tensor " + tensor_name);
}

double
Workload::density(const std::string &tensor_name) const
{
    for (const auto &t : tensors_) {
        if (t.name == tensor_name)
            return t.density;
    }
    return 1.0;
}

int
Workload::dimIndex(const std::string &dim_name) const
{
    for (int d = 0; d < numDims(); ++d) {
        if (dim_names_[d] == dim_name)
            return d;
    }
    return -1;
}

std::string
Workload::toString() const
{
    std::ostringstream os;
    os << name_ << " (";
    for (int d = 0; d < numDims(); ++d) {
        if (d)
            os << ",";
        os << dim_names_[d] << "=" << bounds_[d];
    }
    os << ")";
    return os.str();
}

std::string
Workload::signature() const
{
    std::ostringstream os;
    for (int d = 0; d < numDims(); ++d)
        os << dim_names_[d] << "=" << bounds_[d] << ";";
    for (const auto &t : tensors_) {
        os << "|" << t.name
           << (t.kind == TensorKind::Output ? ":out" : ":in") << ":d="
           << t.density << ":";
        for (const auto &rank : t.projection) {
            for (const auto &term : rank)
                os << term.coeff << "*" << term.dim << "+";
            os << ",";
        }
    }
    return os.str();
}

Workload
makeConv2d(const std::string &name, int64_t b, int64_t k, int64_t c,
           int64_t y, int64_t x, int64_t r, int64_t s)
{
    // Dim indices: B=0, K=1, C=2, Y=3, X=4, R=5, S=6.
    std::vector<std::string> dims = {"B", "K", "C", "Y", "X", "R", "S"};
    std::vector<int64_t> bounds = {b, k, c, y, x, r, s};
    TensorSpec weights{"Weights", TensorKind::Input,
                       {{{1, 1}}, {{2, 1}}, {{5, 1}}, {{6, 1}}}, 1.0};
    TensorSpec inputs{"Inputs", TensorKind::Input,
                      {{{0, 1}}, {{2, 1}},
                       {{3, 1}, {5, 1}},   // Y + R - 1 sliding window
                       {{4, 1}, {6, 1}}},  // X + S - 1 sliding window
                      1.0};
    TensorSpec outputs{"Outputs", TensorKind::Output,
                       {{{0, 1}}, {{1, 1}}, {{3, 1}}, {{4, 1}}}, 1.0};
    return Workload(name, dims, bounds, {weights, inputs, outputs});
}

Workload
makeDepthwiseConv2d(const std::string &name, int64_t b, int64_t c, int64_t y,
                    int64_t x, int64_t r, int64_t s)
{
    // Dim indices: B=0, C=1, Y=2, X=3, R=4, S=5.
    std::vector<std::string> dims = {"B", "C", "Y", "X", "R", "S"};
    std::vector<int64_t> bounds = {b, c, y, x, r, s};
    TensorSpec weights{"Weights", TensorKind::Input,
                       {{{1, 1}}, {{4, 1}}, {{5, 1}}}, 1.0};
    TensorSpec inputs{"Inputs", TensorKind::Input,
                      {{{0, 1}}, {{1, 1}},
                       {{2, 1}, {4, 1}},
                       {{3, 1}, {5, 1}}},
                      1.0};
    TensorSpec outputs{"Outputs", TensorKind::Output,
                       {{{0, 1}}, {{1, 1}}, {{2, 1}}, {{3, 1}}}, 1.0};
    return Workload(name, dims, bounds, {weights, inputs, outputs});
}

Workload
makeGemm(const std::string &name, int64_t b, int64_t m, int64_t k, int64_t n)
{
    // Dim indices: B=0, M=1, K=2, N=3.
    std::vector<std::string> dims = {"B", "M", "K", "N"};
    std::vector<int64_t> bounds = {b, m, k, n};
    TensorSpec a{"Inputs", TensorKind::Input,
                 {{{0, 1}}, {{1, 1}}, {{2, 1}}}, 1.0};
    TensorSpec w{"Weights", TensorKind::Input, {{{2, 1}}, {{3, 1}}}, 1.0};
    TensorSpec out{"Outputs", TensorKind::Output,
                   {{{0, 1}}, {{1, 1}}, {{3, 1}}}, 1.0};
    return Workload(name, dims, bounds, {a, w, out});
}

int
editDistance(const Workload &a, const Workload &b)
{
    if (a.numDims() != b.numDims())
        return std::max(a.numDims(), b.numDims()) + 1;
    int dist = 0;
    for (int d = 0; d < a.numDims(); ++d) {
        if (a.bound(d) != b.bound(d))
            ++dist;
    }
    return dist;
}

} // namespace mse

#include "workload/model_zoo.hpp"

#include <string>

namespace mse {

namespace {

/** Shorthand for a square stride-folded CONV2D layer. */
Workload
conv(const std::string &name, int64_t batch, int64_t k, int64_t c,
     int64_t hw, int64_t rs)
{
    return makeConv2d(name, batch, k, c, hw, hw, rs, rs);
}

} // namespace

std::vector<Workload>
vgg16Layers(int64_t batch)
{
    return {
        conv("vgg_conv1_1", batch, 64, 3, 224, 3),
        conv("vgg_conv1_2", batch, 64, 64, 224, 3),
        conv("vgg_conv2_1", batch, 128, 64, 112, 3),
        conv("vgg_conv2_2", batch, 128, 128, 112, 3),
        conv("vgg_conv3_1", batch, 256, 128, 56, 3),
        conv("vgg_conv3_2", batch, 256, 256, 56, 3),
        conv("vgg_conv3_3", batch, 256, 256, 56, 3),
        conv("vgg_conv4_1", batch, 512, 256, 28, 3),
        conv("vgg_conv4_2", batch, 512, 512, 28, 3),
        conv("vgg_conv4_3", batch, 512, 512, 28, 3),
        conv("vgg_conv5_1", batch, 512, 512, 14, 3),
        conv("vgg_conv5_2", batch, 512, 512, 14, 3),
        conv("vgg_conv5_3", batch, 512, 512, 14, 3),
    };
}

std::vector<Workload>
resnet18Layers(int64_t batch)
{
    std::vector<Workload> layers;
    layers.push_back(conv("resnet_conv1", batch, 64, 3, 112, 7));
    for (int i = 1; i <= 4; ++i)
        layers.push_back(conv("resnet_conv2_" + std::to_string(i), batch,
                              64, 64, 56, 3));
    layers.push_back(conv("resnet_conv3_1", batch, 128, 64, 28, 3));
    for (int i = 2; i <= 4; ++i)
        layers.push_back(conv("resnet_conv3_" + std::to_string(i), batch,
                              128, 128, 28, 3));
    layers.push_back(conv("resnet_conv4_1", batch, 256, 128, 14, 3));
    for (int i = 2; i <= 4; ++i)
        layers.push_back(conv("resnet_conv4_" + std::to_string(i), batch,
                              256, 256, 14, 3));
    layers.push_back(conv("resnet_conv5_1", batch, 512, 256, 7, 3));
    for (int i = 2; i <= 4; ++i)
        layers.push_back(conv("resnet_conv5_" + std::to_string(i), batch,
                              512, 512, 7, 3));
    return layers;
}

std::vector<Workload>
mobilenetV2Layers(int64_t batch)
{
    // Stages of MobileNetV2 (t = expansion, c = output channels,
    // hw = spatial extent after the stage's stride).
    struct Stage { int64_t cin, cout, hw; int64_t t; };
    const std::vector<Stage> stages = {
        {32, 16, 112, 1},  {16, 24, 56, 6},  {24, 32, 28, 6},
        {32, 64, 14, 6},   {64, 96, 14, 6},  {96, 160, 7, 6},
        {160, 320, 7, 6},
    };
    std::vector<Workload> layers;
    layers.push_back(conv("mbv2_conv_stem", batch, 32, 3, 112, 3));
    int idx = 1;
    for (const auto &st : stages) {
        const int64_t mid = st.cin * st.t;
        const std::string base = "mbv2_block" + std::to_string(idx++) + "_";
        if (st.t > 1)
            layers.push_back(conv(base + "expand", batch, mid, st.cin,
                                  st.hw, 1));
        layers.push_back(makeDepthwiseConv2d(base + "dw", batch, mid,
                                             st.hw, st.hw, 3, 3));
        layers.push_back(conv(base + "project", batch, st.cout, mid,
                              st.hw, 1));
    }
    layers.push_back(conv("mbv2_conv_head", batch, 1280, 320, 7, 1));
    return layers;
}

std::vector<Workload>
mnasnetLayers(int64_t batch)
{
    // MnasNet-A1-style stack: NAS-chosen irregular channels and mixed
    // 3x3 / 5x5 kernels.
    struct Stage { int64_t cin, cout, hw, rs, t; };
    const std::vector<Stage> stages = {
        {32, 16, 112, 3, 1},  {16, 24, 56, 3, 6},   {24, 40, 28, 5, 3},
        {40, 80, 14, 3, 6},   {80, 112, 14, 3, 6},  {112, 160, 7, 5, 6},
        {160, 320, 7, 3, 6},
    };
    std::vector<Workload> layers;
    layers.push_back(conv("mnas_conv_stem", batch, 32, 3, 112, 3));
    int idx = 1;
    for (const auto &st : stages) {
        const int64_t mid = st.cin * st.t;
        const std::string base = "mnas_block" + std::to_string(idx++) + "_";
        if (st.t > 1)
            layers.push_back(conv(base + "expand", batch, mid, st.cin,
                                  st.hw, 1));
        layers.push_back(makeDepthwiseConv2d(base + "dw", batch, mid,
                                             st.hw, st.hw, st.rs, st.rs));
        layers.push_back(conv(base + "project", batch, st.cout, mid,
                              st.hw, 1));
    }
    return layers;
}

std::vector<Workload>
bertLargeLayers(int64_t batch)
{
    // One BERT-large encoder block's GEMMs (hidden 1024, seq 512,
    // 16 heads x 64, FFN 4096).
    return {
        makeGemm("bert_kqv", batch, 1024, 1024, 512),
        makeGemm("bert_attn_qk", batch, 512, 64, 512),
        makeGemm("bert_attn_v", batch, 512, 512, 64),
        makeGemm("bert_attn_out", batch, 1024, 1024, 512),
        makeGemm("bert_ffn1", batch, 4096, 1024, 512),
        makeGemm("bert_ffn2", batch, 1024, 4096, 512),
    };
}

Workload
resnetConv3()
{
    return makeConv2d("resnet_conv3", 16, 128, 128, 28, 28, 3, 3);
}

Workload
resnetConv4()
{
    return makeConv2d("resnet_conv4", 16, 256, 256, 14, 14, 3, 3);
}

Workload
inceptionConv2()
{
    return makeConv2d("inception_conv2", 16, 192, 192, 27, 27, 5, 5);
}

Workload
bertKqv()
{
    return makeGemm("bert_kqv", 16, 1024, 1024, 512);
}

Workload
bertAttn()
{
    return makeGemm("bert_attn", 16, 512, 64, 512);
}

Workload
bertFc()
{
    return makeGemm("bert_fc", 16, 4096, 1024, 512);
}

} // namespace mse

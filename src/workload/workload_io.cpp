#include "workload/workload_io.hpp"

#include <sstream>

namespace mse {

std::string
serializeWorkload(const Workload &wl)
{
    std::ostringstream os;
    os << "wl1;" << wl.name() << ";dims ";
    for (int d = 0; d < wl.numDims(); ++d) {
        os << (d ? "," : "") << wl.dimNames()[d] << "="
           << wl.bound(d);
    }
    for (const auto &t : wl.tensors()) {
        os << ";tensor " << t.name << ":"
           << (t.kind == TensorKind::Output ? "out" : "in") << ":"
           << t.density << ":";
        for (size_t r = 0; r < t.projection.size(); ++r) {
            if (r)
                os << "|";
            for (size_t i = 0; i < t.projection[r].size(); ++i) {
                if (i)
                    os << "+";
                os << t.projection[r][i].coeff << "*"
                   << t.projection[r][i].dim;
            }
        }
    }
    return os.str();
}

namespace {

bool
splitOn(const std::string &s, char sep, std::vector<std::string> &out)
{
    out.clear();
    std::istringstream is(s);
    std::string cell;
    while (std::getline(is, cell, sep))
        out.push_back(cell);
    return !out.empty();
}

} // namespace

std::optional<Workload>
parseWorkload(const std::string &text)
{
    std::vector<std::string> sections;
    splitOn(text, ';', sections);
    if (sections.size() < 4 || sections[0] != "wl1")
        return std::nullopt;
    const std::string name = sections[1];

    if (sections[2].rfind("dims ", 0) != 0)
        return std::nullopt;
    std::vector<std::string> dim_cells;
    splitOn(sections[2].substr(5), ',', dim_cells);
    std::vector<std::string> dim_names;
    std::vector<int64_t> bounds;
    for (const auto &cell : dim_cells) {
        const size_t eq = cell.find('=');
        if (eq == std::string::npos)
            return std::nullopt;
        dim_names.push_back(cell.substr(0, eq));
        try {
            bounds.push_back(std::stoll(cell.substr(eq + 1)));
        } catch (...) {
            return std::nullopt;
        }
        if (bounds.back() < 1)
            return std::nullopt;
    }

    std::vector<TensorSpec> tensors;
    for (size_t s = 3; s < sections.size(); ++s) {
        if (sections[s].rfind("tensor ", 0) != 0)
            return std::nullopt;
        std::vector<std::string> fields;
        splitOn(sections[s].substr(7), ':', fields);
        if (fields.size() != 4)
            return std::nullopt;
        TensorSpec spec;
        spec.name = fields[0];
        if (fields[1] == "out")
            spec.kind = TensorKind::Output;
        else if (fields[1] == "in")
            spec.kind = TensorKind::Input;
        else
            return std::nullopt;
        try {
            spec.density = std::stod(fields[2]);
        } catch (...) {
            return std::nullopt;
        }
        if (spec.density <= 0.0 || spec.density > 1.0)
            return std::nullopt;
        std::vector<std::string> ranks;
        splitOn(fields[3], '|', ranks);
        for (const auto &rank : ranks) {
            std::vector<std::string> terms;
            splitOn(rank, '+', terms);
            CompositeDim comp;
            for (const auto &term : terms) {
                const size_t star = term.find('*');
                if (star == std::string::npos)
                    return std::nullopt;
                try {
                    DimTerm t;
                    t.coeff = std::stoi(term.substr(0, star));
                    t.dim = std::stoi(term.substr(star + 1));
                    if (t.dim < 0 ||
                        t.dim >= static_cast<int>(bounds.size())) {
                        return std::nullopt;
                    }
                    comp.push_back(t);
                } catch (...) {
                    return std::nullopt;
                }
            }
            spec.projection.push_back(comp);
        }
        tensors.push_back(std::move(spec));
    }

    try {
        return Workload(name, dim_names, bounds, tensors);
    } catch (...) {
        return std::nullopt;
    }
}

} // namespace mse

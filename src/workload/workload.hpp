/**
 * @file
 * Loop-nest workload representation (Sec. 2.1 of the paper).
 *
 * A workload is a perfectly nested loop computation over a set of named
 * dimensions (e.g. CONV2D's B,K,C,Y,X,R,S or GEMM's B,M,K,N) together
 * with the tensors it reads and writes. Each tensor declares a
 * *projection*: for every rank of the tensor, an affine combination of
 * workload dimensions (sliding-window ranks such as a CONV input's
 * Y+R-1 extent use two terms). The projection determines which loop
 * dimensions carry reuse for the tensor, which is what the cost model and
 * the mappers' pruning heuristics key on.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mse {

/** One affine term of a tensor-rank projection: coeff * dim. */
struct DimTerm
{
    int dim = 0;     ///< Index into Workload::bounds.
    int coeff = 1;   ///< Stride coefficient (1 for all workloads here).
};

/** A tensor rank indexed by the sum of one or more dimension terms. */
using CompositeDim = std::vector<DimTerm>;

/** Role of a tensor in the computation. */
enum class TensorKind
{
    Input,   ///< Read-only operand (weights, input activations).
    Output,  ///< Read-modify-write accumulation target.
};

/** Declaration of one tensor touched by the workload. */
struct TensorSpec
{
    std::string name;
    TensorKind kind = TensorKind::Input;
    std::vector<CompositeDim> projection;
    /**
     * Fraction of non-zero values in (0, 1]. 1.0 models a dense tensor;
     * smaller values model compressed-sparse tensors (Sec. 4.5).
     */
    double density = 1.0;
};

/**
 * A single DNN layer/operator expressed as a loop nest.
 *
 * Workloads are value types: the model zoo hands out copies that callers
 * may re-annotate (e.g. overriding tensor densities per experiment).
 */
class Workload
{
  public:
    Workload() = default;
    Workload(std::string name, std::vector<std::string> dim_names,
             std::vector<int64_t> bounds, std::vector<TensorSpec> tensors);

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    int numDims() const { return static_cast<int>(bounds_.size()); }
    int numTensors() const { return static_cast<int>(tensors_.size()); }

    const std::vector<std::string> &dimNames() const { return dim_names_; }
    const std::vector<int64_t> &bounds() const { return bounds_; }
    int64_t bound(int dim) const { return bounds_[dim]; }

    const std::vector<TensorSpec> &tensors() const { return tensors_; }
    const TensorSpec &tensor(int t) const { return tensors_[t]; }

    /** Index of the (unique) output tensor. */
    int outputTensor() const { return output_tensor_; }

    /** True iff dimension dim appears in tensor t's projection. */
    bool
    isRelevant(int t, int dim) const
    {
        return (relevance_[t] >> static_cast<unsigned>(dim)) & 1u;
    }

    /**
     * Relevance of all dimensions to tensor t as a bitmask: bit d set
     * iff dimension d appears in t's projection. Hot-path form of
     * isRelevant (the cost model tests one register against a shifted
     * bit instead of chasing a nested vector). Workloads are capped at
     * 32 dimensions so the mask always fits.
     */
    uint32_t relevanceMask(int t) const { return relevance_[t]; }

    /**
     * Dimensions not relevant to the output tensor: iterating them
     * accumulates partial sums (CONV2D: C, R, S; GEMM: K).
     */
    const std::vector<int> &reductionDims() const { return reduction_dims_; }

    /** Total multiply-accumulate count: the product of all bounds. */
    double totalMacs() const;

    /** Dense element count of tensor t (full problem footprint). */
    double tensorVolume(int t) const;

    /** Set the density annotation of the tensor named tensor_name. */
    void setDensity(const std::string &tensor_name, double density);

    /** Density of the tensor named tensor_name (1.0 if absent). */
    double density(const std::string &tensor_name) const;

    /** Lookup a dimension index by name; -1 if absent. */
    int dimIndex(const std::string &dim_name) const;

    /** Human-readable one-line summary, e.g. "conv3 (16,128,128,...)". */
    std::string toString() const;

    /**
     * Canonical structural signature: dimension names and bounds plus
     * every tensor's kind, projection, and density — everything the
     * cost model reads, and nothing it ignores (the layer *name* is
     * deliberately excluded). Two workloads with equal signatures span
     * identical map spaces and evaluate identically under every
     * (arch, mapping) pair, which is what lets a full-model sweep
     * search each unique layer shape once and reuse the result for
     * its duplicates.
     */
    std::string signature() const;

  private:
    void buildCaches();

    std::string name_;
    std::vector<std::string> dim_names_;
    std::vector<int64_t> bounds_;
    std::vector<TensorSpec> tensors_;
    int output_tensor_ = -1;
    /** Per-tensor dimension-relevance bitmasks (see relevanceMask). */
    std::vector<uint32_t> relevance_;
    std::vector<int> reduction_dims_;
};

/**
 * CONV2D as a 7-dim loop nest (B,K,C,Y,X,R,S), stride 1, with tensors
 * Weights[K,C,R,S], Inputs[B,C,Y+R-1,X+S-1], Outputs[B,K,Y,X].
 */
Workload makeConv2d(const std::string &name, int64_t b, int64_t k, int64_t c,
                    int64_t y, int64_t x, int64_t r, int64_t s);

/**
 * Depthwise CONV2D over dims (B,C,Y,X,R,S): Weights[C,R,S],
 * Inputs[B,C,Y+R-1,X+S-1], Outputs[B,C,Y,X].
 */
Workload makeDepthwiseConv2d(const std::string &name, int64_t b, int64_t c,
                             int64_t y, int64_t x, int64_t r, int64_t s);

/**
 * Batched GEMM C[B,M,N] += A[B,M,K] * W[K,N] over dims (B,M,K,N);
 * matches the paper's (B,M,K,N) BERT workloads.
 */
Workload makeGemm(const std::string &name, int64_t b, int64_t m, int64_t k,
                  int64_t n);

/**
 * Workload similarity as used by warm-start (Sec. 5.1): the edit distance
 * is the number of dimensions whose bounds differ. Workloads with
 * different dimensionality (e.g. CONV vs GEMM) are maximally distant.
 */
int editDistance(const Workload &a, const Workload &b);

} // namespace mse

/**
 * @file
 * DNN model zoo: per-layer workload tables for the networks the paper
 * evaluates (Sec. 4.1): ResNet, VGG16, MobileNetV2, MnasNet and
 * BERT-large, plus the individual Table-1 workloads.
 *
 * Layer shapes follow the published architectures; strides are folded
 * into output extents (our workloads are stride-1 loop nests), and the
 * NAS-derived MnasNet table intentionally carries irregular channel
 * counts and 5x5 depthwise kernels — the property warm-start-by-
 * similarity exploits in Figs. 9-11.
 */
#pragma once

#include <vector>

#include "workload/workload.hpp"

namespace mse {

/** The 13 convolution layers of VGG16 (224x224 input). */
std::vector<Workload> vgg16Layers(int64_t batch = 16);

/** The 17 convolution layers of ResNet-18 (224x224 input). */
std::vector<Workload> resnet18Layers(int64_t batch = 16);

/**
 * Representative MobileNetV2 inverted-bottleneck stack: for each stage,
 * expansion pointwise, depthwise, and projection pointwise layers.
 */
std::vector<Workload> mobilenetV2Layers(int64_t batch = 16);

/**
 * Representative MnasNet-A1 stack. NAS-found: channel counts (40, 112,
 * 160, ...) and mixed 3x3/5x5 kernels make consecutive layers less
 * similar than in hand-designed networks.
 */
std::vector<Workload> mnasnetLayers(int64_t batch = 16);

/** BERT-large encoder GEMMs: KQV projections, attention, FFN layers. */
std::vector<Workload> bertLargeLayers(int64_t batch = 16);

/** Table 1: ResNet Conv_3 = CONV2D(16,128,128,28,28,3,3). */
Workload resnetConv3();

/** Table 1: ResNet Conv_4 = CONV2D(16,256,256,14,14,3,3). */
Workload resnetConv4();

/** Table 1: Inception Conv_2 = CONV2D(16,192,192,27,27,5,5). */
Workload inceptionConv2();

/** Table 1: BERT-large KQV projection GEMM (16,1024,1024,512). */
Workload bertKqv();

/** BERT-large attention score GEMM (16,512,64,512). */
Workload bertAttn();

/** BERT-large FFN GEMM (16,4096,1024,512). */
Workload bertFc();

} // namespace mse

#include "mapping/map_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "common/permutation.hpp"

namespace mse {

namespace {

/** Smallest prime factor of n (n >= 2). */
int64_t
smallestPrimeFactor(int64_t n)
{
    for (int64_t p = 2; p * p <= n; ++p) {
        if (n % p == 0)
            return p;
    }
    return n;
}

/** Total resident words at level l, compressed per tensor density. */
double
residentWords(const Workload &wl, const Mapping &m, int l)
{
    double sum = 0.0;
    for (int t = 0; t < wl.numTensors(); ++t) {
        if (m.keeps(l, t))
            sum += tileFootprint(wl, m, t, l) * wl.tensor(t).density;
    }
    return sum;
}

} // namespace

MapSpace::MapSpace(Workload wl, ArchConfig arch)
    : wl_(std::move(wl)), arch_(std::move(arch))
{
    if (arch_.levels.empty())
        throw std::invalid_argument("map space: empty architecture");
    // Divisor closure: any factor value a mapper can produce is a
    // divisor of some bound, and divisors of divisors are divisors.
    for (int64_t b : wl_.bounds()) {
        for (int64_t d : divisorsOf(b)) {
            if (!divisor_cache_.count(d))
                divisor_cache_.emplace(d, divisorsOf(d));
        }
    }
}

const std::vector<int64_t> &
MapSpace::divisors(int64_t n) const
{
    const auto it = divisor_cache_.find(n);
    if (it != divisor_cache_.end())
        return it->second;
    // Rare fallback (values outside the closure): compute and memoize.
    return divisor_cache_.emplace(n, divisorsOf(n)).first->second;
}

void
MapSpace::repairFanout(Mapping &m) const
{
    for (int l = 0; l < numLevels(); ++l) {
        const int64_t fanout = arch_.levels[l].fanout;
        while (m.spatialProduct(l) > fanout) {
            // Fold the largest spatial factor's smallest prime back into
            // this level's temporal loop.
            int best = -1;
            for (int d = 0; d < numDims(); ++d) {
                if (m.level(l).spatial[d] > 1 &&
                    (best < 0 ||
                     m.level(l).spatial[d] > m.level(l).spatial[best])) {
                    best = d;
                }
            }
            const int64_t p = smallestPrimeFactor(m.level(l).spatial[best]);
            m.level(l).spatial[best] /= p;
            m.level(l).temporal[best] *= p;
        }
    }
}

void
MapSpace::repairCapacity(Mapping &m) const
{
    for (int l = 0; l < numLevels() - 1; ++l) {
        const int64_t cap = arch_.levels[l].capacity_words;
        if (cap <= 0)
            continue;
        while (residentWords(wl_, m, l) > static_cast<double>(cap)) {
            // Pick the dimension with the largest extent inside this tile
            // and migrate one prime factor of it up to the parent level.
            int best_dim = -1;
            int64_t best_cum = 1;
            for (int d = 0; d < numDims(); ++d) {
                const int64_t cum = m.cumulativeFactor(l, d);
                if (cum > best_cum) {
                    best_cum = cum;
                    best_dim = d;
                }
            }
            if (best_dim < 0)
                break; // minimal tile already; capacity is simply too small
            // Prefer shrinking the outermost available slot at or below l:
            // temporal at l, then spatial at l, then inner levels.
            int64_t *slot = nullptr;
            for (int ll = l; ll >= 0 && !slot; --ll) {
                if (m.level(ll).temporal[best_dim] > 1)
                    slot = &m.level(ll).temporal[best_dim];
                else if (m.level(ll).spatial[best_dim] > 1)
                    slot = &m.level(ll).spatial[best_dim];
            }
            const int64_t p = smallestPrimeFactor(*slot);
            *slot /= p;
            m.level(l + 1).temporal[best_dim] *= p;
        }
    }
}

MappingError
MapSpace::repair(Mapping &m) const
{
    repairFanout(m);
    repairCapacity(m);
    return validateMapping(wl_, arch_, m);
}

Mapping
MapSpace::randomMapping(Rng &rng) const
{
    const int L = numLevels();
    const int D = numDims();
    Mapping m(L, D);

    // Per-dimension factorization over temporal slots plus the spatial
    // slots of levels that actually have fanout.
    std::vector<int> spatial_levels;
    for (int l = 0; l < L; ++l) {
        if (arch_.levels[l].fanout > 1)
            spatial_levels.push_back(l);
    }
    const int slots = L + static_cast<int>(spatial_levels.size());
    for (int d = 0; d < D; ++d) {
        // Cached equivalent of sampleFactorization().
        std::vector<int64_t> factors;
        factors.reserve(slots);
        int64_t rem = wl_.bound(d);
        for (int i = 0; i < slots - 1; ++i) {
            const auto &divs = divisors(rem);
            const int64_t f = divs[rng.index(divs.size())];
            factors.push_back(f);
            rem /= f;
        }
        factors.push_back(rem);
        int idx = 0;
        for (int l = 0; l < L; ++l)
            m.level(l).temporal[d] = factors[idx++];
        for (int l : spatial_levels)
            m.level(l).spatial[d] = factors[idx++];
    }

    for (int l = 0; l < L; ++l)
        m.level(l).order = randomPermutation(D, rng);

    repairFanout(m);
    repairCapacity(m);
    return m;
}

bool
MapSpace::canScaleFrom(const Workload &source) const
{
    if (source.numDims() != wl_.numDims())
        return false;
    for (int d = 0; d < wl_.numDims(); ++d) {
        if (source.dimNames()[d] != wl_.dimNames()[d])
            return false;
    }
    return true;
}

Mapping
MapSpace::scaleFrom(const Mapping &m, const Workload &source, Rng &rng) const
{
    if (source.numDims() != wl_.numDims() || m.numDims() != wl_.numDims())
        return randomMapping(rng);

    const int L = numLevels();
    const int D = numDims();
    Mapping scaled(L, D);
    for (int l = 0; l < L; ++l) {
        scaled.level(l).order = m.level(l).order; // inherit order
        scaled.level(l).keep = m.level(l).keep;   // inherit bypass
    }

    for (int d = 0; d < D; ++d) {
        // Keep inner factors where they divide the new bound; push the
        // remainder into the outermost temporal level (the paper's
        // "scale the tile sizes" step).
        int64_t rem = wl_.bound(d);
        for (int l = 0; l < L; ++l) {
            const int64_t s = gcd64(m.level(l).spatial[d], rem);
            scaled.level(l).spatial[d] = s;
            rem /= s;
            if (l == L - 1)
                break; // outermost temporal absorbs the remainder
            const int64_t t = gcd64(m.level(l).temporal[d], rem);
            scaled.level(l).temporal[d] = t;
            rem /= t;
        }
        scaled.level(L - 1).temporal[d] = rem;
    }

    repairFanout(scaled);
    repairCapacity(scaled);
    return scaled;
}

MapSpaceSize
MapSpace::size() const
{
    MapSpaceSize sz;
    const int L = numLevels();
    const int D = numDims();
    for (int d = 0; d < D; ++d) {
        sz.log10_tile +=
            std::log10(countOrderedFactorizations(wl_.bound(d), L));
    }
    sz.log10_order = L * std::log10(static_cast<double>(factorial(D)));
    int spatial_levels = 0;
    for (const auto &lvl : arch_.levels) {
        if (lvl.fanout > 1)
            ++spatial_levels;
    }
    sz.log10_parallel = spatial_levels * D * std::log10(2.0);
    sz.log10_total = sz.log10_tile + sz.log10_order + sz.log10_parallel;
    return sz;
}

} // namespace mse

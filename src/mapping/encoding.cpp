#include "mapping/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_util.hpp"

namespace mse {

namespace {

double
normLog(int64_t factor, int64_t bound)
{
    if (bound <= 1)
        return 0.0;
    return std::log2(static_cast<double>(factor)) /
        std::log2(static_cast<double>(bound));
}

} // namespace

size_t
encodingWidth(const MapSpace &space)
{
    return static_cast<size_t>(3 * space.numLevels() * space.numDims());
}

std::vector<double>
encodeMapping(const MapSpace &space, const Mapping &m)
{
    const int L = space.numLevels();
    const int D = space.numDims();
    const auto &wl = space.workload();
    std::vector<double> x;
    x.reserve(encodingWidth(space));
    for (int l = 0; l < L; ++l) {
        for (int d = 0; d < D; ++d)
            x.push_back(normLog(m.level(l).temporal[d], wl.bound(d)));
        for (int d = 0; d < D; ++d)
            x.push_back(normLog(m.level(l).spatial[d], wl.bound(d)));
        std::vector<int> pos(D, 0);
        for (int i = 0; i < D; ++i)
            pos[m.level(l).order[i]] = i;
        for (int d = 0; d < D; ++d)
            x.push_back(D > 1 ? static_cast<double>(pos[d]) / (D - 1) : 0.0);
    }
    return x;
}

Mapping
decodeContinuous(const MapSpace &space, const std::vector<double> &x)
{
    const int L = space.numLevels();
    const int D = space.numDims();
    const auto &wl = space.workload();
    const auto &arch = space.arch();
    Mapping m(L, D);

    auto at = [&](int l, int block, int d) {
        // block 0 = temporal, 1 = spatial, 2 = order score.
        return x[static_cast<size_t>(l) * 3 * D +
                 static_cast<size_t>(block) * D + static_cast<size_t>(d)];
    };

    for (int d = 0; d < D; ++d) {
        const int64_t bound = wl.bound(d);
        // Gather slot scores: temporal at every level, spatial only where
        // the architecture has fanout.
        struct Slot { int level; bool spatial; double score; };
        std::vector<Slot> slots;
        for (int l = 0; l < L; ++l) {
            slots.push_back({l, false, at(l, 0, d)});
            if (arch.levels[l].fanout > 1)
                slots.push_back({l, true, at(l, 1, d)});
        }
        // Softmax shares of log(bound).
        double mx = slots[0].score;
        for (const auto &s : slots)
            mx = std::max(mx, s.score);
        double z = 0.0;
        std::vector<double> e(slots.size());
        for (size_t i = 0; i < slots.size(); ++i) {
            e[i] = std::exp(4.0 * (slots[i].score - mx));
            z += e[i];
        }
        const double logb = std::log2(static_cast<double>(bound));
        // Greedy divisor rounding, last slot absorbs the remainder.
        int64_t rem = bound;
        for (size_t i = 0; i + 1 < slots.size(); ++i) {
            const double target = std::exp2(logb * e[i] / z);
            const int64_t f = nearestDivisor(
                rem, static_cast<int64_t>(std::llround(target)));
            if (slots[i].spatial)
                m.level(slots[i].level).spatial[d] = f;
            else
                m.level(slots[i].level).temporal[d] = f;
            rem /= f;
        }
        const auto &last = slots.back();
        if (last.spatial)
            m.level(last.level).spatial[d] = rem;
        else
            m.level(last.level).temporal[d] = rem;
    }

    for (int l = 0; l < L; ++l) {
        std::vector<int> order(D);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return at(l, 2, a) < at(l, 2, b);
        });
        m.level(l).order = order;
    }

    space.repairFanout(m);
    space.repairCapacity(m);
    return m;
}

std::vector<double>
workloadFeatures(const Workload &wl, size_t width)
{
    std::vector<double> f;
    f.reserve(width + wl.numTensors());
    for (size_t i = 0; i < width; ++i) {
        if (i < static_cast<size_t>(wl.numDims())) {
            f.push_back(std::log2(static_cast<double>(wl.bound(
                            static_cast<int>(i))) ) / 16.0);
        } else {
            f.push_back(0.0);
        }
    }
    for (const auto &t : wl.tensors())
        f.push_back(t.density);
    return f;
}

} // namespace mse

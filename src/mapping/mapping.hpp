/**
 * @file
 * Timeloop-style mapping representation (Sec. 2.3 of the paper).
 *
 * A mapping binds a workload's loop nest onto the accelerator hierarchy.
 * For every storage level it specifies, per workload dimension:
 *   - a *temporal* tile factor (how many sub-tiles this level iterates),
 *   - a *spatial* factor (how the level partitions data across the
 *     spatial instances of the hierarchy below it), and
 *   - a loop *order* (a permutation of the dimensions, outermost first)
 *     governing reuse of the child level's tiles.
 * The per-dimension product of all temporal and spatial factors must
 * equal the dimension bound, and per-level spatial products must fit the
 * level's fanout. These three choices are the paper's three mapping axes:
 * tile sizes, loop order, and parallelism.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "workload/workload.hpp"

namespace mse {

/** Mapping directives for one storage level. */
struct LevelMapping
{
    /** Temporal tile factor per workload dimension (>= 1). */
    std::vector<int64_t> temporal;

    /** Spatial partitioning factor per dimension (>= 1). */
    std::vector<int64_t> spatial;

    /** Loop order: permutation of dim indices, outermost first. */
    std::vector<int> order;

    /**
     * Per-tensor bypass directives: keep[t] == false means tensor t is
     * not resident at this level and streams directly between the
     * nearest keeping levels above and below (Timeloop's bypass).
     * An empty vector means "keep every tensor" (the default); the
     * outermost level (DRAM) must keep everything.
     */
    std::vector<uint8_t> keep;
};

/** A complete mapping: one LevelMapping per storage level (L1 first). */
class Mapping
{
  public:
    Mapping() = default;

    /** An all-ones mapping skeleton with identity orders. */
    Mapping(int num_levels, int num_dims);

    int numLevels() const { return static_cast<int>(levels_.size()); }
    int numDims() const
    {
        return levels_.empty() ? 0
                               : static_cast<int>(levels_[0].temporal.size());
    }

    LevelMapping &level(int l) { return levels_[l]; }
    const LevelMapping &level(int l) const { return levels_[l]; }

    /**
     * Product of temporal and spatial factors of dimension d across
     * levels [0, l] — the extent of d inside the tile held at level l.
     */
    int64_t cumulativeFactor(int l, int d) const;

    /** Product of temporal*spatial factors of dim d across all levels. */
    int64_t totalFactor(int d) const;

    /** Product of spatial factors at level l across all dims. */
    int64_t spatialProduct(int l) const;

    /** The per-dimension factor column (t0,s0,t1,s1,...) for dim d. */
    std::vector<int64_t> factorColumn(int d) const;

    /** Install a factor column produced by factorColumn(). */
    void setFactorColumn(int d, const std::vector<int64_t> &column);

    /** True iff tensor t is resident at level l (empty mask = keep). */
    bool
    keeps(int l, int t) const
    {
        const auto &mask = levels_[l].keep;
        return mask.empty() || mask[static_cast<size_t>(t)] != 0;
    }

    /** Set the bypass directive for tensor t at level l. */
    void setKeep(int l, int t, bool keep, int num_tensors);

    /**
     * Canonical dedupe key. Loops with temporal factor 1 are order-
     * insensitive, so the key sorts runs of unit loops; this implements
     * the Random-Pruned redundancy rule (Sec. 4.3).
     */
    std::string canonicalKey() const;

    /**
     * Canonical 64-bit hash, consistent with operator==: two mappings
     * that are equal up to (a) permutations within runs of unit-factor
     * loops and (b) an explicit keep-everything mask vs. an empty one
     * hash identically. Built for the eval-cache key, where canonical
     * equivalence implies identical cost.
     */
    uint64_t hash() const;

    /**
     * Canonical equality (same equivalence classes as hash()); the
     * eval cache relies on equal mappings having equal cost.
     */
    bool operator==(const Mapping &other) const;
    bool operator!=(const Mapping &other) const
    {
        return !(*this == other);
    }

    /** Multi-line human-readable loop nest rendering. */
    std::string toString(const Workload &wl) const;

  private:
    std::vector<LevelMapping> levels_;
};

/** Hasher for unordered containers keyed by canonical Mapping. */
struct MappingHash
{
    size_t operator()(const Mapping &m) const
    {
        return static_cast<size_t>(m.hash());
    }
};

/** Why a mapping failed validation. */
enum class MappingError
{
    Ok,
    BadShape,         ///< Level/dim counts disagree with workload/arch.
    BadFactorProduct, ///< Factors of some dim don't multiply to its bound.
    BadOrder,         ///< Some level's order is not a permutation.
    FanoutExceeded,   ///< Spatial product exceeds a level's fanout.
    CapacityExceeded, ///< Resident tiles overflow a buffer.
};

/** Printable name of a MappingError. */
const char *mappingErrorName(MappingError e);

/**
 * Dense tile footprint (in words) of tensor t resident in the buffer at
 * level l, honoring sliding-window projections.
 */
double tileFootprint(const Workload &wl, const Mapping &m, int t, int l);

/** Full legality check of m against workload and architecture. */
MappingError validateMapping(const Workload &wl, const ArchConfig &arch,
                             const Mapping &m);

} // namespace mse

/**
 * @file
 * The map space of a (workload, accelerator) pair (Sec. 4.2).
 *
 * MapSpace owns everything mappers need that is independent of the search
 * strategy: sampling random legal mappings, repairing fanout/capacity
 * violations by migrating tile factors outward, computing the analytic
 * size of the space, and re-scaling a mapping from one workload to a
 * similar one (the warm-start primitive of Sec. 5.1).
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/arch.hpp"
#include "common/rng.hpp"
#include "mapping/mapping.hpp"
#include "workload/workload.hpp"

namespace mse {

/** Analytic size of the map space, decomposed as in Sec. 4.2. */
struct MapSpaceSize
{
    double log10_tile = 0.0;     ///< Tile-size subspace.
    double log10_order = 0.0;    ///< Loop-order subspace, (d!)^levels.
    double log10_parallel = 0.0; ///< Parallelization subspace, 2^(d*spatial).
    double log10_total = 0.0;    ///< Sum of the above (Cartesian product).
};

/**
 * Sampling and repair operations over all legal mappings of a workload
 * onto an accelerator.
 */
class MapSpace
{
  public:
    MapSpace(Workload wl, ArchConfig arch);

    const Workload &workload() const { return wl_; }
    const ArchConfig &arch() const { return arch_; }

    int numDims() const { return wl_.numDims(); }
    int numLevels() const { return arch_.numLevels(); }

    /**
     * Draw a uniformly-flavored random legal mapping: random per-dim
     * factorizations over temporal and spatial slots, random orders,
     * followed by fanout and capacity repair.
     */
    Mapping randomMapping(Rng &rng) const;

    /**
     * Shrink spatial products that exceed a level's fanout by folding
     * factors back into the same level's temporal loop.
     */
    void repairFanout(Mapping &m) const;

    /**
     * Migrate tile factors outward (toward DRAM) until every buffer's
     * resident tiles fit. Preserves per-dimension factor products, so a
     * factor-legal mapping stays factor-legal.
     */
    void repairCapacity(Mapping &m) const;

    /** Both repairs, innermost first. Returns the final validation. */
    MappingError repair(Mapping &m) const;

    /**
     * Warm-start re-scaling (Sec. 5.1.2): inherit order and parallelism
     * from `m` (a mapping of `source`), and adjust per-dimension tile
     * factors to this map space's workload, pushing any mismatch into the
     * outermost temporal level; then repair. Requires equal dim counts.
     */
    Mapping scaleFrom(const Mapping &m, const Workload &source,
                      Rng &rng) const;

    /**
     * True iff scaleFrom can actually inherit structure from a mapping
     * of `source` (equal dimensionality with matching dim names, e.g.
     * CONV from CONV but never CONV from GEMM). When false, scaleFrom
     * falls back to a random mapping, so callers that care — like a
     * model sweep deciding warm vs. cold start — check this first.
     */
    bool canScaleFrom(const Workload &source) const;

    /** Analytic size of this map space (Sec. 4.2 decomposition). */
    MapSpaceSize size() const;

    /**
     * Divisors of n, served from a cache precomputed over every divisor
     * of every workload bound (the closure of all factor values mappers
     * ever handle). Falls back to direct computation for other values.
     */
    const std::vector<int64_t> &divisors(int64_t n) const;

  private:
    Workload wl_;
    ArchConfig arch_;
    mutable std::unordered_map<int64_t, std::vector<int64_t>>
        divisor_cache_;
};

} // namespace mse

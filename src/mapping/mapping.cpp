#include "mapping/mapping.hpp"

#include <algorithm>
#include <sstream>

#include "common/permutation.hpp"

namespace mse {

Mapping::Mapping(int num_levels, int num_dims)
{
    levels_.resize(num_levels);
    for (auto &lvl : levels_) {
        lvl.temporal.assign(num_dims, 1);
        lvl.spatial.assign(num_dims, 1);
        lvl.order = identityPermutation(num_dims);
    }
}

int64_t
Mapping::cumulativeFactor(int l, int d) const
{
    int64_t p = 1;
    for (int i = 0; i <= l; ++i)
        p *= levels_[i].temporal[d] * levels_[i].spatial[d];
    return p;
}

int64_t
Mapping::totalFactor(int d) const
{
    return cumulativeFactor(numLevels() - 1, d);
}

int64_t
Mapping::spatialProduct(int l) const
{
    int64_t p = 1;
    for (int64_t s : levels_[l].spatial)
        p *= s;
    return p;
}

std::vector<int64_t>
Mapping::factorColumn(int d) const
{
    std::vector<int64_t> col;
    col.reserve(2 * levels_.size());
    for (const auto &lvl : levels_) {
        col.push_back(lvl.temporal[d]);
        col.push_back(lvl.spatial[d]);
    }
    return col;
}

void
Mapping::setFactorColumn(int d, const std::vector<int64_t> &column)
{
    for (size_t l = 0; l < levels_.size(); ++l) {
        levels_[l].temporal[d] = column[2 * l];
        levels_[l].spatial[d] = column[2 * l + 1];
    }
}

void
Mapping::setKeep(int l, int t, bool keep, int num_tensors)
{
    auto &mask = levels_[l].keep;
    if (mask.empty())
        mask.assign(static_cast<size_t>(num_tensors), 1);
    mask[static_cast<size_t>(t)] = keep ? 1 : 0;
}

std::string
Mapping::canonicalKey() const
{
    std::ostringstream os;
    for (const auto &lvl : levels_) {
        for (size_t d = 0; d < lvl.temporal.size(); ++d)
            os << lvl.temporal[d] << "." << lvl.spatial[d] << ",";
        // Canonical order: runs of adjacent unit loops are sorted so that
        // permutations among them collapse to one key.
        std::vector<int> canon = lvl.order;
        size_t i = 0;
        while (i < canon.size()) {
            size_t j = i;
            while (j < canon.size() && lvl.temporal[canon[j]] == 1)
                ++j;
            if (j > i)
                std::sort(canon.begin() + i, canon.begin() + j);
            i = std::max(j, i + 1);
        }
        for (int o : canon)
            os << o << ";";
        if (!lvl.keep.empty()) {
            os << "k";
            for (uint8_t k : lvl.keep)
                os << static_cast<int>(k);
        }
        os << "|";
    }
    return os.str();
}

namespace {

/**
 * Order with runs of unit-temporal loops sorted (see canonicalKey).
 * Writes into a caller-provided buffer to keep the hot hash/equality
 * path allocation-free (the buffers below are thread_local because
 * hashing runs on eval-pool workers).
 */
void
canonicalOrderInto(const LevelMapping &lvl, std::vector<int> &canon)
{
    canon.assign(lvl.order.begin(), lvl.order.end());
    size_t i = 0;
    while (i < canon.size()) {
        size_t j = i;
        while (j < canon.size() && lvl.temporal[canon[j]] == 1)
            ++j;
        if (j > i)
            std::sort(canon.begin() + i, canon.begin() + j);
        i = std::max(j, i + 1);
    }
}

/** True iff the keep mask actually bypasses something. */
bool
maskBypasses(const std::vector<uint8_t> &mask)
{
    for (uint8_t k : mask) {
        if (k == 0)
            return true;
    }
    return false;
}

/** splitmix64 finalizer: strong mixing applied once at the end. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * FNV-1a step: cheap per-element combine on the hot eval-cache path.
 * Collisions are safe (the cache verifies keys with operator==), so a
 * fast sequential hash beats a cryptographic-strength one here.
 */
uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    return (h ^ v) * 0x100000001b3ULL;
}

} // namespace

uint64_t
Mapping::hash() const
{
    static thread_local std::vector<int> canon;
    uint64_t h = 0x6d61707370616365ULL; // "mapspace"
    for (const auto &lvl : levels_) {
        for (size_t d = 0; d < lvl.temporal.size(); ++d) {
            h = hashCombine(h, static_cast<uint64_t>(lvl.temporal[d]));
            h = hashCombine(h, static_cast<uint64_t>(lvl.spatial[d]));
        }
        canonicalOrderInto(lvl, canon);
        for (int o : canon)
            h = hashCombine(h, static_cast<uint64_t>(o) + 0x100);
        // An all-keep mask is canonically identical to an empty one.
        if (maskBypasses(lvl.keep)) {
            for (uint8_t k : lvl.keep)
                h = hashCombine(h, k ? 0x2ULL : 0x3ULL);
        }
        h = hashCombine(h, 0xabULL); // level separator
    }
    return mix64(h);
}

bool
Mapping::operator==(const Mapping &other) const
{
    static thread_local std::vector<int> canon_a, canon_b;
    if (levels_.size() != other.levels_.size())
        return false;
    for (size_t l = 0; l < levels_.size(); ++l) {
        const auto &a = levels_[l];
        const auto &b = other.levels_[l];
        if (a.temporal != b.temporal || a.spatial != b.spatial)
            return false;
        // Exact order match (the common case: GA elites and un-mutated
        // clones are verbatim copies) short-circuits canonicalization.
        if (a.order != b.order) {
            canonicalOrderInto(a, canon_a);
            canonicalOrderInto(b, canon_b);
            if (canon_a != canon_b)
                return false;
        }
        const bool ab = maskBypasses(a.keep);
        if (ab != maskBypasses(b.keep))
            return false;
        if (ab && a.keep != b.keep)
            return false;
    }
    return true;
}

std::string
Mapping::toString(const Workload &wl) const
{
    std::ostringstream os;
    for (int l = numLevels() - 1; l >= 0; --l) {
        os << "Level " << l << ":";
        os << " order=[";
        for (size_t i = 0; i < levels_[l].order.size(); ++i) {
            if (i)
                os << " ";
            os << wl.dimNames()[levels_[l].order[i]];
        }
        os << "] temporal=(";
        for (int d = 0; d < numDims(); ++d) {
            if (d)
                os << ",";
            os << levels_[l].temporal[d];
        }
        os << ") spatial=(";
        for (int d = 0; d < numDims(); ++d) {
            if (d)
                os << ",";
            os << levels_[l].spatial[d];
        }
        os << ")";
        if (!levels_[l].keep.empty()) {
            os << " bypass=[";
            bool first = true;
            for (size_t t = 0; t < levels_[l].keep.size(); ++t) {
                if (!levels_[l].keep[t]) {
                    if (!first)
                        os << " ";
                    os << wl.tensor(static_cast<int>(t)).name;
                    first = false;
                }
            }
            os << "]";
        }
        os << "\n";
    }
    return os.str();
}

const char *
mappingErrorName(MappingError e)
{
    switch (e) {
      case MappingError::Ok: return "Ok";
      case MappingError::BadShape: return "BadShape";
      case MappingError::BadFactorProduct: return "BadFactorProduct";
      case MappingError::BadOrder: return "BadOrder";
      case MappingError::FanoutExceeded: return "FanoutExceeded";
      case MappingError::CapacityExceeded: return "CapacityExceeded";
    }
    return "Unknown";
}

double
tileFootprint(const Workload &wl, const Mapping &m, int t, int l)
{
    const auto &spec = wl.tensor(t);
    double p = 1.0;
    for (const auto &rank : spec.projection) {
        int64_t extent = 1;
        for (const auto &term : rank)
            extent += term.coeff * (m.cumulativeFactor(l, term.dim) - 1);
        p *= static_cast<double>(extent);
    }
    return p;
}

MappingError
validateMapping(const Workload &wl, const ArchConfig &arch, const Mapping &m)
{
    const int num_dims = wl.numDims();
    const int num_levels = arch.numLevels();
    if (m.numLevels() != num_levels)
        return MappingError::BadShape;
    for (int l = 0; l < num_levels; ++l) {
        const auto &lvl = m.level(l);
        if (static_cast<int>(lvl.temporal.size()) != num_dims ||
            static_cast<int>(lvl.spatial.size()) != num_dims ||
            static_cast<int>(lvl.order.size()) != num_dims) {
            return MappingError::BadShape;
        }
        if (!isPermutation(lvl.order))
            return MappingError::BadOrder;
        for (int d = 0; d < num_dims; ++d) {
            if (lvl.temporal[d] < 1 || lvl.spatial[d] < 1)
                return MappingError::BadFactorProduct;
        }
        if (!lvl.keep.empty() &&
            static_cast<int>(lvl.keep.size()) != wl.numTensors()) {
            return MappingError::BadShape;
        }
    }
    // The outermost level (DRAM) is the backing store: no bypass there.
    for (int t = 0; t < wl.numTensors(); ++t) {
        if (!m.keeps(num_levels - 1, t))
            return MappingError::BadShape;
    }
    for (int d = 0; d < num_dims; ++d) {
        if (m.totalFactor(d) != wl.bound(d))
            return MappingError::BadFactorProduct;
    }
    for (int l = 0; l < num_levels; ++l) {
        if (m.spatialProduct(l) > arch.levels[l].fanout)
            return MappingError::FanoutExceeded;
    }
    // Buffer capacity: every non-DRAM level must hold one tile of each
    // tensor simultaneously (double-buffering is folded into the
    // configured capacities). Tiles of tensors annotated with density
    // < 1 are stored compressed and occupy density-scaled space, which
    // is what widens the legal map space as workloads get sparser
    // (Sec. 4.5).
    for (int l = 0; l < num_levels; ++l) {
        const int64_t cap = arch.levels[l].capacity_words;
        if (cap <= 0)
            continue; // unbounded (DRAM)
        double resident = 0.0;
        for (int t = 0; t < wl.numTensors(); ++t) {
            if (m.keeps(l, t)) {
                resident +=
                    tileFootprint(wl, m, t, l) * wl.tensor(t).density;
            }
        }
        if (resident > static_cast<double>(cap))
            return MappingError::CapacityExceeded;
    }
    return MappingError::Ok;
}

} // namespace mse

/**
 * @file
 * Numeric encodings of mappings.
 *
 * Two consumers need a fixed-width vector view of a mapping:
 *  - the Fig. 4 map-space visualization (PCA over sampled mappings), and
 *  - the Mind-Mappings-style gradient mapper, which trains a surrogate
 *    on (workload features, mapping encoding) -> performance and then
 *    gradient-descends on the mapping encoding.
 *
 * The encoding is, per storage level and dimension: normalized log tile
 * factor, normalized log spatial factor, and normalized loop-order
 * position; i.e. 3 * levels * dims features. decodeContinuous() maps an
 * arbitrary real vector of that shape back to a legal mapping (softmax
 * factor shares + greedy divisor rounding + repair), which is how
 * gradient steps in the relaxed space are realized as concrete mappings.
 */
#pragma once

#include <vector>

#include "mapping/map_space.hpp"
#include "mapping/mapping.hpp"

namespace mse {

/** Number of features encodeMapping() produces for this space. */
size_t encodingWidth(const MapSpace &space);

/** Encode a legal mapping as a fixed-width feature vector in [0, 1]. */
std::vector<double> encodeMapping(const MapSpace &space, const Mapping &m);

/**
 * Decode an arbitrary real vector (same layout as encodeMapping) into a
 * legal mapping of the space. Total ordering of magnitudes is respected;
 * illegal intermediate results are repaired.
 */
Mapping decodeContinuous(const MapSpace &space, const std::vector<double> &x);

/**
 * Workload descriptor for surrogate inputs: normalized log bounds padded
 * or truncated to `width` entries, followed by tensor densities.
 */
std::vector<double> workloadFeatures(const Workload &wl, size_t width = 8);

} // namespace mse

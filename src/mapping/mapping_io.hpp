/**
 * @file
 * Textual serialization of mappings.
 *
 * A deployment flow runs MSE once and caches the optimized mapping per
 * (layer, accelerator); these helpers give that cache a stable,
 * human-auditable format. One mapping serializes to a single line:
 *
 *   v1;L=3;D=7;lvl t1,2,... s1,1,... o0,3,... k1,1,1;lvl ...
 *
 * Levels are listed innermost first. The keep block is omitted for
 * all-keep levels. parseMapping() validates structure (counts,
 * permutations) but not workload legality — run validateMapping() after
 * loading against the target workload/architecture.
 */
#pragma once

#include <optional>
#include <string>

#include "mapping/mapping.hpp"

namespace mse {

/** Serialize a mapping to the one-line v1 format. */
std::string serializeMapping(const Mapping &m);

/**
 * Parse a serialized mapping; nullopt on malformed input (wrong header,
 * inconsistent counts, non-permutation orders, non-positive factors).
 */
std::optional<Mapping> parseMapping(const std::string &text);

} // namespace mse

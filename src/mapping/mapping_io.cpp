#include "mapping/mapping_io.hpp"

#include <sstream>

#include "common/permutation.hpp"

namespace mse {

std::string
serializeMapping(const Mapping &m)
{
    std::ostringstream os;
    os << "v1;L=" << m.numLevels() << ";D=" << m.numDims();
    for (int l = 0; l < m.numLevels(); ++l) {
        const auto &lvl = m.level(l);
        os << ";lvl t";
        for (int d = 0; d < m.numDims(); ++d)
            os << (d ? "," : "") << lvl.temporal[d];
        os << " s";
        for (int d = 0; d < m.numDims(); ++d)
            os << (d ? "," : "") << lvl.spatial[d];
        os << " o";
        for (int d = 0; d < m.numDims(); ++d)
            os << (d ? "," : "") << lvl.order[d];
        if (!lvl.keep.empty()) {
            os << " k";
            for (size_t t = 0; t < lvl.keep.size(); ++t)
                os << (t ? "," : "") << static_cast<int>(lvl.keep[t]);
        }
    }
    return os.str();
}

namespace {

/** Parse a comma-separated int64 list; false on malformed input. */
bool
parseList(const std::string &body, std::vector<int64_t> &out)
{
    out.clear();
    std::istringstream is(body);
    std::string cell;
    while (std::getline(is, cell, ',')) {
        try {
            size_t pos = 0;
            const int64_t v = std::stoll(cell, &pos);
            if (pos != cell.size())
                return false;
            out.push_back(v);
        } catch (...) {
            return false;
        }
    }
    return !out.empty();
}

} // namespace

std::optional<Mapping>
parseMapping(const std::string &text)
{
    std::istringstream is(text);
    std::string token;
    if (!std::getline(is, token, ';') || token != "v1")
        return std::nullopt;

    int num_levels = -1, num_dims = -1;
    if (!std::getline(is, token, ';') || token.rfind("L=", 0) != 0)
        return std::nullopt;
    num_levels = std::atoi(token.c_str() + 2);
    if (!std::getline(is, token, ';') || token.rfind("D=", 0) != 0)
        return std::nullopt;
    num_dims = std::atoi(token.c_str() + 2);
    if (num_levels < 1 || num_dims < 1)
        return std::nullopt;

    Mapping m(num_levels, num_dims);
    int level = 0;
    while (std::getline(is, token, ';')) {
        if (token.rfind("lvl ", 0) != 0 || level >= num_levels)
            return std::nullopt;
        std::istringstream fields(token.substr(4));
        std::string field;
        bool saw_t = false, saw_s = false, saw_o = false;
        while (fields >> field) {
            if (field.size() < 2)
                return std::nullopt;
            std::vector<int64_t> values;
            if (!parseList(field.substr(1), values))
                return std::nullopt;
            switch (field[0]) {
              case 't':
                if (static_cast<int>(values.size()) != num_dims)
                    return std::nullopt;
                m.level(level).temporal.assign(values.begin(),
                                               values.end());
                saw_t = true;
                break;
              case 's':
                if (static_cast<int>(values.size()) != num_dims)
                    return std::nullopt;
                m.level(level).spatial.assign(values.begin(),
                                              values.end());
                saw_s = true;
                break;
              case 'o': {
                if (static_cast<int>(values.size()) != num_dims)
                    return std::nullopt;
                std::vector<int> order(values.begin(), values.end());
                if (!isPermutation(order))
                    return std::nullopt;
                m.level(level).order = order;
                saw_o = true;
                break;
              }
              case 'k': {
                std::vector<uint8_t> keep;
                for (int64_t v : values) {
                    if (v != 0 && v != 1)
                        return std::nullopt;
                    keep.push_back(static_cast<uint8_t>(v));
                }
                m.level(level).keep = keep;
                break;
              }
              default:
                return std::nullopt;
            }
        }
        if (!saw_t || !saw_s || !saw_o)
            return std::nullopt;
        for (int d = 0; d < num_dims; ++d) {
            if (m.level(level).temporal[d] < 1 ||
                m.level(level).spatial[d] < 1) {
                return std::nullopt;
            }
        }
        ++level;
    }
    if (level != num_levels)
        return std::nullopt;
    return m;
}

} // namespace mse

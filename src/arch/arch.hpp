/**
 * @file
 * NPU hardware configuration (Sec. 2.2 of the paper).
 *
 * A canonical NPU is a spatial array of PEs, each with ALUs and a private
 * L1 scratchpad, fed by a shared L2 buffer which in turn is filled from
 * DRAM. We describe this as an ordered list of storage levels from
 * innermost (L1) to outermost (DRAM). Each storage level owns a *fanout*:
 * the number of spatial instances of the hierarchy below it (L1's fanout
 * is the ALUs per PE; L2's fanout is the PE count).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mse {

/** On-chip network topology distributing data below a storage level. */
enum class NocTopology
{
    Bus,  ///< Single shared medium: one hop regardless of fanout.
    Tree, ///< Fat-tree/H-tree: ~log2(fanout) hops.
    Mesh, ///< 2-D mesh: ~sqrt(fanout) hops average.
};

/** Printable name of a topology. */
const char *nocTopologyName(NocTopology t);

/**
 * Average hops a word travels to reach one of `fanout` children under a
 * topology (>= 1).
 */
double nocHops(NocTopology t, int64_t fanout);

/** One storage level of the accelerator hierarchy. */
struct BufferLevel
{
    std::string name;

    /**
     * Capacity in words per instance of this buffer; 0 means unbounded
     * (DRAM). A mapping is illegal if the tiles it keeps resident at this
     * level exceed the capacity.
     */
    int64_t capacity_words = 0;

    /** Read bandwidth toward the child level, words/cycle per instance. */
    double bandwidth_words_per_cycle = 1e30;

    /** Energy per word read / written, picojoules. */
    double read_energy_pj = 0.0;
    double write_energy_pj = 0.0;

    /**
     * Spatial instances of the child hierarchy fed by one instance of
     * this buffer. Mapping spatial factors at this level must multiply to
     * at most this fanout.
     */
    int64_t fanout = 1;

    /**
     * True if the network below this level can multicast one word to
     * many child instances (so spatially-shared data is read only once).
     */
    bool multicast = true;

    /** Topology of the network distributing data below this level. */
    NocTopology noc = NocTopology::Tree;

    /**
     * Energy per word per hop on that network, picojoules. 0 (default)
     * models free interconnect; set it to study NoC topology trade-offs
     * (see bench_ext_noc_topologies).
     */
    double noc_hop_energy_pj = 0.0;
};

/** A complete accelerator configuration. */
struct ArchConfig
{
    std::string name;

    /** Storage levels, index 0 = innermost (L1), back() = DRAM. */
    std::vector<BufferLevel> levels;

    /** Energy of one multiply-accumulate, picojoules. */
    double mac_energy_pj = 1.0;

    int numLevels() const { return static_cast<int>(levels.size()); }

    /** Total parallel ALUs = product of all fanouts. */
    int64_t
    totalComputeUnits() const
    {
        int64_t p = 1;
        for (const auto &l : levels)
            p *= l.fanout;
        return p;
    }

    /**
     * Canonical structural signature: every level parameter the cost
     * model and legality checks read, plus the MAC energy. The config
     * *name* is excluded so two identically-parameterized presets
     * compare equal. Combined with Workload::signature() it identifies
     * a layer-search job for sweep-level deduplication.
     */
    std::string signature() const;

    /**
     * Number of instances of level `lvl` in the whole machine: the
     * product of the fanouts of all levels above it.
     */
    int64_t
    instancesOfLevel(int lvl) const
    {
        int64_t p = 1;
        for (int l = lvl + 1; l < numLevels(); ++l)
            p *= levels[l].fanout;
        return p;
    }
};

/**
 * Table 1 Accel-A: 512 KB shared L2, 64 KB private L1 per PE, 256 PEs,
 * 1 ALU per PE (2-byte words).
 */
ArchConfig accelA();

/**
 * Table 1 Accel-B: 64 KB shared L2, 256 B private L1 per PE, 256 PEs,
 * 4 ALUs per PE (2-byte words).
 */
ArchConfig accelB();

/**
 * A parameterized three-level NPU, used by tests and design sweeps.
 * Buffer sizes are in bytes with 2-byte words.
 */
ArchConfig makeNpu(const std::string &name, int64_t l2_bytes,
                   int64_t l1_bytes, int64_t num_pes, int64_t alus_per_pe);

/**
 * A four-level NPU (DRAM / L2 / L1 / per-ALU register file) exercising
 * deeper hierarchies: each PE's ALUs get a small private register file
 * of reg_bytes. The cost model is level-count-agnostic; this preset
 * demonstrates it.
 */
ArchConfig makeDeepNpu(const std::string &name, int64_t l2_bytes,
                       int64_t l1_bytes, int64_t reg_bytes,
                       int64_t num_pes, int64_t alus_per_pe);

} // namespace mse

#include "arch/arch.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mse {

const char *
nocTopologyName(NocTopology t)
{
    switch (t) {
      case NocTopology::Bus: return "bus";
      case NocTopology::Tree: return "tree";
      case NocTopology::Mesh: return "mesh";
    }
    return "unknown";
}

double
nocHops(NocTopology t, int64_t fanout)
{
    const double f = static_cast<double>(std::max<int64_t>(fanout, 1));
    switch (t) {
      case NocTopology::Bus:
        return 1.0;
      case NocTopology::Tree:
        return 1.0 + std::log2(f);
      case NocTopology::Mesh:
        return std::max(1.0, std::sqrt(f));
    }
    return 1.0;
}

std::string
ArchConfig::signature() const
{
    std::ostringstream os;
    os << "mac=" << mac_energy_pj << ";";
    for (const auto &l : levels) {
        os << l.name << ":c=" << l.capacity_words << ":bw="
           << l.bandwidth_words_per_cycle << ":r=" << l.read_energy_pj
           << ":w=" << l.write_energy_pj << ":f=" << l.fanout
           << ":m=" << (l.multicast ? 1 : 0) << ":n="
           << nocTopologyName(l.noc) << ":h=" << l.noc_hop_energy_pj
           << ";";
    }
    return os.str();
}

namespace {

constexpr int64_t kBytesPerWord = 2;

/**
 * SRAM access energy heuristic (pJ/word): grows roughly with the square
 * root of capacity, anchored at Eyeriss/Timeloop-class numbers
 * (256 B -> ~0.6 pJ, 64 KB -> ~6 pJ, 512 KB -> ~12 pJ).
 */
double
sramEnergyPj(int64_t bytes)
{
    return 0.04 * std::sqrt(static_cast<double>(bytes)) + 0.35;
}

} // namespace

ArchConfig
makeNpu(const std::string &name, int64_t l2_bytes, int64_t l1_bytes,
        int64_t num_pes, int64_t alus_per_pe)
{
    ArchConfig cfg;
    cfg.name = name;
    cfg.mac_energy_pj = 1.0;

    BufferLevel l1;
    l1.name = "L1";
    l1.capacity_words = l1_bytes / kBytesPerWord;
    l1.bandwidth_words_per_cycle = 4.0; // per PE
    l1.read_energy_pj = sramEnergyPj(l1_bytes);
    l1.write_energy_pj = l1.read_energy_pj * 1.2;
    l1.fanout = alus_per_pe;
    l1.multicast = true;

    BufferLevel l2;
    l2.name = "L2";
    l2.capacity_words = l2_bytes / kBytesPerWord;
    l2.bandwidth_words_per_cycle = 32.0;
    l2.read_energy_pj = sramEnergyPj(l2_bytes);
    l2.write_energy_pj = l2.read_energy_pj * 1.2;
    l2.fanout = num_pes;
    l2.multicast = true;

    BufferLevel dram;
    dram.name = "DRAM";
    dram.capacity_words = 0; // unbounded
    dram.bandwidth_words_per_cycle = 16.0;
    dram.read_energy_pj = 200.0;
    dram.write_energy_pj = 200.0;
    dram.fanout = 1;
    dram.multicast = true;

    cfg.levels = {l1, l2, dram};
    return cfg;
}

ArchConfig
makeDeepNpu(const std::string &name, int64_t l2_bytes, int64_t l1_bytes,
            int64_t reg_bytes, int64_t num_pes, int64_t alus_per_pe)
{
    ArchConfig cfg = makeNpu(name, l2_bytes, l1_bytes, num_pes, 1);
    // Insert a register level below L1; the ALU fanout moves onto it.
    BufferLevel regs;
    regs.name = "Regs";
    regs.capacity_words = std::max<int64_t>(reg_bytes / kBytesPerWord, 1);
    regs.bandwidth_words_per_cycle = 8.0;
    regs.read_energy_pj = 0.15;
    regs.write_energy_pj = 0.2;
    regs.fanout = alus_per_pe;
    regs.multicast = true;
    cfg.levels.insert(cfg.levels.begin(), regs);
    cfg.levels[1].fanout = 1; // L1 now feeds one register file group
    return cfg;
}

ArchConfig
accelA()
{
    return makeNpu("Accel-A", 512 * 1024, 64 * 1024, 256, 1);
}

ArchConfig
accelB()
{
    return makeNpu("Accel-B", 64 * 1024, 256, 256, 4);
}

} // namespace mse

/**
 * @file
 * Minimal fully-connected neural network with Adam, written from scratch
 * to implement the Mind-Mappings surrogate (Sec. 4.3, gradient-based
 * mapper). The surrogate maps (workload features, mapping encoding) to
 * predicted log-performance; MSE then gradient-descends on the *input*
 * encoding, so the network exposes input gradients as a first-class
 * operation.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace mse {

/** One dense layer y = W x + b with Adam state. */
class DenseLayer
{
  public:
    DenseLayer(int in, int out, Rng &rng);

    int inSize() const { return in_; }
    int outSize() const { return out_; }

    /** y = W x + b. */
    void forward(const std::vector<double> &x, std::vector<double> &y) const;

    /**
     * Backprop: given dL/dy and the cached input x, accumulate weight
     * gradients and produce dL/dx.
     */
    void backward(const std::vector<double> &x,
                  const std::vector<double> &dy, std::vector<double> &dx);

    /** Backprop to inputs only (no gradient accumulation). */
    void backwardInput(const std::vector<double> &dy,
                       std::vector<double> &dx) const;

    /** Apply one Adam update and clear accumulated gradients. */
    void adamStep(double lr, double beta1, double beta2, double eps,
                  int64_t t);

    void zeroGrad();

  private:
    int in_, out_;
    std::vector<double> w_, b_;     // parameters
    std::vector<double> gw_, gb_;   // accumulated gradients
    std::vector<double> mw_, vw_, mb_, vb_; // Adam moments
};

/**
 * A multi-layer perceptron with ReLU hidden activations and a linear
 * output layer.
 */
class Mlp
{
  public:
    /** sizes = {in, hidden..., out}; weights are He-initialized. */
    Mlp(const std::vector<int> &sizes, Rng &rng);

    int inputSize() const { return sizes_.front(); }
    int outputSize() const { return sizes_.back(); }

    /** Inference. */
    std::vector<double> forward(const std::vector<double> &x) const;

    /**
     * One Adam minibatch step on squared error; returns the mean loss
     * over the batch before the update.
     */
    double trainBatch(const std::vector<std::vector<double>> &xs,
                      const std::vector<std::vector<double>> &ys,
                      double lr);

    /**
     * Gradient of the scalar output[output_index] with respect to the
     * input vector (for gradient descent on mapping encodings).
     */
    std::vector<double> inputGradient(const std::vector<double> &x,
                                      int output_index = 0) const;

  private:
    std::vector<int> sizes_;
    std::vector<DenseLayer> layers_;
    int64_t adam_t_ = 0;
};

} // namespace mse

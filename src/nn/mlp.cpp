#include "nn/mlp.hpp"

#include <cmath>

namespace mse {

DenseLayer::DenseLayer(int in, int out, Rng &rng) : in_(in), out_(out)
{
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    w_.resize(static_cast<size_t>(in) * out);
    for (auto &v : w_)
        v = rng.gaussian(0.0, scale);
    b_.assign(out, 0.0);
    gw_.assign(w_.size(), 0.0);
    gb_.assign(out, 0.0);
    mw_.assign(w_.size(), 0.0);
    vw_.assign(w_.size(), 0.0);
    mb_.assign(out, 0.0);
    vb_.assign(out, 0.0);
}

void
DenseLayer::forward(const std::vector<double> &x,
                    std::vector<double> &y) const
{
    y.assign(out_, 0.0);
    for (int o = 0; o < out_; ++o) {
        double s = b_[o];
        const double *row = &w_[static_cast<size_t>(o) * in_];
        for (int i = 0; i < in_; ++i)
            s += row[i] * x[i];
        y[o] = s;
    }
}

void
DenseLayer::backward(const std::vector<double> &x,
                     const std::vector<double> &dy, std::vector<double> &dx)
{
    dx.assign(in_, 0.0);
    for (int o = 0; o < out_; ++o) {
        const double g = dy[o];
        gb_[o] += g;
        double *grow = &gw_[static_cast<size_t>(o) * in_];
        const double *row = &w_[static_cast<size_t>(o) * in_];
        for (int i = 0; i < in_; ++i) {
            grow[i] += g * x[i];
            dx[i] += g * row[i];
        }
    }
}

void
DenseLayer::backwardInput(const std::vector<double> &dy,
                          std::vector<double> &dx) const
{
    dx.assign(in_, 0.0);
    for (int o = 0; o < out_; ++o) {
        const double g = dy[o];
        const double *row = &w_[static_cast<size_t>(o) * in_];
        for (int i = 0; i < in_; ++i)
            dx[i] += g * row[i];
    }
}

void
DenseLayer::adamStep(double lr, double beta1, double beta2, double eps,
                     int64_t t)
{
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
    for (size_t i = 0; i < w_.size(); ++i) {
        mw_[i] = beta1 * mw_[i] + (1 - beta1) * gw_[i];
        vw_[i] = beta2 * vw_[i] + (1 - beta2) * gw_[i] * gw_[i];
        w_[i] -= lr * (mw_[i] / bc1) / (std::sqrt(vw_[i] / bc2) + eps);
    }
    for (size_t i = 0; i < b_.size(); ++i) {
        mb_[i] = beta1 * mb_[i] + (1 - beta1) * gb_[i];
        vb_[i] = beta2 * vb_[i] + (1 - beta2) * gb_[i] * gb_[i];
        b_[i] -= lr * (mb_[i] / bc1) / (std::sqrt(vb_[i] / bc2) + eps);
    }
    zeroGrad();
}

void
DenseLayer::zeroGrad()
{
    std::fill(gw_.begin(), gw_.end(), 0.0);
    std::fill(gb_.begin(), gb_.end(), 0.0);
}

Mlp::Mlp(const std::vector<int> &sizes, Rng &rng) : sizes_(sizes)
{
    for (size_t i = 0; i + 1 < sizes.size(); ++i)
        layers_.emplace_back(sizes[i], sizes[i + 1], rng);
}

std::vector<double>
Mlp::forward(const std::vector<double> &x) const
{
    std::vector<double> a = x, y;
    for (size_t i = 0; i < layers_.size(); ++i) {
        layers_[i].forward(a, y);
        if (i + 1 < layers_.size()) {
            for (auto &v : y)
                v = v > 0 ? v : 0.0; // ReLU
        }
        a.swap(y);
    }
    return a;
}

double
Mlp::trainBatch(const std::vector<std::vector<double>> &xs,
                const std::vector<std::vector<double>> &ys, double lr)
{
    const size_t n = xs.size();
    double loss = 0.0;
    for (size_t s = 0; s < n; ++s) {
        // Forward pass caching pre-activation inputs per layer.
        std::vector<std::vector<double>> acts; // input to each layer
        std::vector<double> a = xs[s], y;
        for (size_t i = 0; i < layers_.size(); ++i) {
            acts.push_back(a);
            layers_[i].forward(a, y);
            if (i + 1 < layers_.size()) {
                for (auto &v : y)
                    v = v > 0 ? v : 0.0;
            }
            a.swap(y);
        }
        // Squared-error loss gradient.
        std::vector<double> dy(a.size());
        for (size_t k = 0; k < a.size(); ++k) {
            const double e = a[k] - ys[s][k];
            loss += e * e;
            dy[k] = 2.0 * e / static_cast<double>(n);
        }
        // Backward pass.
        std::vector<double> dx;
        for (size_t i = layers_.size(); i-- > 0;) {
            if (i + 1 < layers_.size()) {
                // Gradient through the ReLU applied to this layer's
                // output: recompute the activation mask.
                std::vector<double> z;
                layers_[i].forward(acts[i], z);
                for (size_t k = 0; k < dy.size(); ++k) {
                    if (z[k] <= 0)
                        dy[k] = 0.0;
                }
            }
            layers_[i].backward(acts[i], dy, dx);
            dy.swap(dx);
        }
    }
    ++adam_t_;
    for (auto &layer : layers_)
        layer.adamStep(lr, 0.9, 0.999, 1e-8, adam_t_);
    return loss / static_cast<double>(n);
}

std::vector<double>
Mlp::inputGradient(const std::vector<double> &x, int output_index) const
{
    // Forward pass caching pre-ReLU outputs.
    std::vector<std::vector<double>> zs;
    std::vector<double> a = x, y;
    for (size_t i = 0; i < layers_.size(); ++i) {
        layers_[i].forward(a, y);
        zs.push_back(y);
        if (i + 1 < layers_.size()) {
            for (auto &v : y)
                v = v > 0 ? v : 0.0;
        }
        a.swap(y);
    }
    std::vector<double> dy(layers_.back().outSize(), 0.0);
    dy[output_index] = 1.0;
    std::vector<double> dx;
    for (size_t i = layers_.size(); i-- > 0;) {
        if (i + 1 < layers_.size()) {
            for (size_t k = 0; k < dy.size(); ++k) {
                if (zs[i][k] <= 0)
                    dy[k] = 0.0;
            }
        }
        layers_[i].backwardInput(dy, dx);
        dy.swap(dx);
    }
    return dy;
}

} // namespace mse

/**
 * @file
 * Gamma: genetic-algorithm mapper with domain-specific operators
 * (Kao & Krishna, ICCAD 2020; the feedback-based mapper of Sec. 4.3).
 *
 * Gamma keeps a population of candidate mappings and evolves it with
 * operators tuned to the map space's three axes:
 *   - mutate-tile: migrate a divisor of one dimension between two
 *     temporal tiling levels;
 *   - mutate-order: swap two loop positions at one level;
 *   - mutate-parallel: move a factor between a level's temporal loop and
 *     its spatial partitioning (changing which dims are parallelized);
 *   - crossover: blend two parents by taking whole per-dimension factor
 *     columns and per-level orders from either parent — children are
 *     factor-legal by construction.
 * Selection is multi-objective: nondominated rank on (energy, latency),
 * ties broken by EDP, as in the paper's methodology (Sec. 4.1).
 *
 * Every operator can be masked, which is how the Fig. 5 (single-axis
 * sensitivity) and Fig. 6 (crossover sensitivity) studies are run.
 */
#pragma once

#include "mappers/mapper.hpp"

namespace mse {

/** Tunables and operator masks for Gamma. */
struct GammaConfig
{
    size_t population = 24;       ///< Individuals per generation.
    double elite_fraction = 0.25; ///< Fraction surviving unchanged.
    double crossover_prob = 0.8;  ///< Per-child crossover probability.
    double mutate_tile_prob = 0.6;
    double mutate_order_prob = 0.35;
    double mutate_parallel_prob = 0.35;

    /**
     * Fraction of offspring slots filled with fresh random mappings
     * ("random immigrants") to keep diversity when the population is
     * seeded or converges early.
     */
    double random_immigrant_prob = 0.05;

    /** Probability of flipping one per-level tensor bypass bit. */
    double mutate_bypass_prob = 0.15;

    /** Operator masks for the sensitivity studies (Figs. 5-6). */
    bool enable_tile = true;
    bool enable_order = true;
    bool enable_parallel = true;
    bool enable_crossover = true;

    /** Explore Timeloop-style per-level tensor bypass directives. */
    bool enable_bypass = true;

    /**
     * If false, initial random individuals keep their random order and
     * parallelism but single-axis studies still explore only the enabled
     * axes (the paper's Fig. 5 protocol: random init on all axes, then
     * explore one).
     */
    bool multi_objective = true; ///< NSGA-style rank + EDP tiebreak.
};

/** The Gamma mapper. */
class GammaMapper : public Mapper
{
  public:
    explicit GammaMapper(GammaConfig cfg = {}) : cfg_(cfg) {}

    std::string name() const override { return "gamma"; }

    SearchResult search(const MapSpace &space, const EvalFn &eval,
                        const SearchBudget &budget, Rng &rng) override;

    void setInitialMappings(std::vector<Mapping> seeds) override
    {
        seeds_ = std::move(seeds);
    }

    const GammaConfig &config() const { return cfg_; }

    /** @name Genetic operators (exposed for unit tests)
     *  Operators mutate in place; callers repair afterwards. @{ */
    static void mutateTile(const MapSpace &space, Mapping &m, Rng &rng);
    static void mutateOrder(Mapping &m, Rng &rng);
    static void mutateParallel(const MapSpace &space, Mapping &m, Rng &rng);
    static void mutateBypass(const MapSpace &space, Mapping &m, Rng &rng);
    static Mapping crossover(const Mapping &a, const Mapping &b, Rng &rng);
    /** @} */

  private:
    GammaConfig cfg_;
    std::vector<Mapping> seeds_;
};

} // namespace mse

/**
 * @file
 * Exhaustive loop-order sweep (the Fig. 7 study).
 *
 * Holds a base mapping's tile sizes and parallelization fixed, applies
 * the same order permutation at every buffer level (the paper's
 * complexity-relaxation constraint), and evaluates all d! permutations.
 * Reports the EDP of each permutation so callers can count distinct EDP
 * groups and the best/worst ratio.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "mappers/mapper.hpp"

namespace mse {

/** Result of sweeping one permutation. */
struct OrderSweepPoint
{
    uint64_t rank;       ///< Lexicographic rank of the permutation.
    std::vector<int> order;
    double edp;
};

/**
 * Evaluate every permutation of the workload dims applied uniformly at
 * all levels of `base`. Illegal variants (there should be none, since
 * order does not affect legality) are skipped.
 */
std::vector<OrderSweepPoint> sweepUniformOrders(const MapSpace &space,
                                                const Mapping &base,
                                                const EvalFn &eval);

/**
 * Distinct EDP values in a sweep, using a relative tolerance to merge
 * floating-point twins. Returned ascending.
 */
std::vector<double> distinctEdps(const std::vector<OrderSweepPoint> &pts,
                                 double rel_tol = 1e-9);

} // namespace mse

#include "mappers/gamma.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/pareto.hpp"
#include "model/batch_eval.hpp"

namespace mse {

void
GammaMapper::mutateTile(const MapSpace &space, Mapping &m, Rng &rng)
{
    const int D = m.numDims();
    const int L = m.numLevels();
    // Pick a dimension with something to move; a handful of tries keeps
    // the operator cheap for workloads with many unit bounds.
    for (int attempt = 0; attempt < 8; ++attempt) {
        const int d = static_cast<int>(rng.index(D));
        if (space.workload().bound(d) <= 1)
            continue;
        const int src = static_cast<int>(rng.index(L));
        if (m.level(src).temporal[d] <= 1)
            continue;
        int dst = static_cast<int>(rng.index(L));
        if (dst == src)
            dst = (dst + 1) % L;
        const auto &divs = space.divisors(m.level(src).temporal[d]);
        // Skip the trivial divisor 1 (divs[0]).
        const int64_t g = divs[1 + rng.index(divs.size() - 1)];
        m.level(src).temporal[d] /= g;
        m.level(dst).temporal[d] *= g;
        return;
    }
}

void
GammaMapper::mutateOrder(Mapping &m, Rng &rng)
{
    const int D = m.numDims();
    if (D < 2)
        return;
    const int l = static_cast<int>(rng.index(m.numLevels()));
    const size_t i = rng.index(D);
    size_t j = rng.index(D);
    if (i == j)
        j = (j + 1) % D;
    std::swap(m.level(l).order[i], m.level(l).order[j]);
}

void
GammaMapper::mutateParallel(const MapSpace &space, Mapping &m, Rng &rng)
{
    // Candidate spatial levels.
    std::vector<int> levels;
    for (int l = 0; l < m.numLevels(); ++l) {
        if (space.arch().levels[l].fanout > 1)
            levels.push_back(l);
    }
    if (levels.empty())
        return;
    const int l = levels[rng.index(levels.size())];
    const int D = m.numDims();
    const int64_t fanout = space.arch().levels[l].fanout;

    for (int attempt = 0; attempt < 8; ++attempt) {
        const int d = static_cast<int>(rng.index(D));
        if (rng.chance(0.5)) {
            // Grow parallelism of d out of its temporal loop.
            if (m.level(l).temporal[d] <= 1)
                continue;
            const auto &divs = space.divisors(m.level(l).temporal[d]);
            const int64_t g = divs[1 + rng.index(divs.size() - 1)];
            if (m.spatialProduct(l) * g > fanout)
                continue;
            m.level(l).temporal[d] /= g;
            m.level(l).spatial[d] *= g;
        } else {
            // Shrink parallelism of d back into its temporal loop.
            if (m.level(l).spatial[d] <= 1)
                continue;
            const auto &divs = space.divisors(m.level(l).spatial[d]);
            const int64_t g = divs[1 + rng.index(divs.size() - 1)];
            m.level(l).spatial[d] /= g;
            m.level(l).temporal[d] *= g;
        }
        return;
    }
}

void
GammaMapper::mutateBypass(const MapSpace &space, Mapping &m, Rng &rng)
{
    // Flip one tensor's residency at one non-DRAM level. DRAM must keep
    // everything (validateMapping enforces it), so it is never touched.
    const int L = m.numLevels();
    if (L < 2)
        return;
    const int num_tensors = space.workload().numTensors();
    const int l = static_cast<int>(rng.index(L - 1));
    const int t = static_cast<int>(rng.index(num_tensors));
    m.setKeep(l, t, !m.keeps(l, t), num_tensors);
}

Mapping
GammaMapper::crossover(const Mapping &a, const Mapping &b, Rng &rng)
{
    Mapping child = a;
    // Whole per-dimension factor columns from either parent keep each
    // dimension's factor product intact.
    for (int d = 0; d < child.numDims(); ++d) {
        if (rng.chance(0.5))
            child.setFactorColumn(d, b.factorColumn(d));
    }
    // Orders and bypass directives travel together per level.
    for (int l = 0; l < child.numLevels(); ++l) {
        if (rng.chance(0.5)) {
            child.level(l).order = b.level(l).order;
            child.level(l).keep = b.level(l).keep;
        }
    }
    return child;
}

SearchResult
GammaMapper::search(const MapSpace &space, const EvalFn &eval,
                    const SearchBudget &budget, Rng &rng)
{
    SearchTracker tracker(eval, budget);
    const size_t pop_size = std::max<size_t>(cfg_.population, 4);

    struct Individual
    {
        Mapping mapping;
        CostResult cost;
    };
    std::vector<Individual> pop;
    pop.reserve(pop_size);

    // Initial population: warm-start seeds first, random fill. The whole
    // generation is built up front and evaluated as one batch; candidate
    // construction stays on this thread so the RNG stream is identical
    // at any thread count.
    std::vector<Mapping> initial;
    initial.reserve(pop_size);
    for (const auto &seed : seeds_) {
        if (initial.size() >= pop_size)
            break;
        Mapping m = seed;
        space.repair(m);
        initial.push_back(std::move(m));
    }
    while (initial.size() < pop_size)
        initial.push_back(space.randomMapping(rng));
    {
        const auto &costs = tracker.evaluateBatch(initial);
        for (size_t i = 0; i < costs.size(); ++i)
            pop.push_back(Individual{initial[i], costs[i]});
    }
    tracker.endGeneration();
    if (pop.empty())
        return tracker.takeResult();

    const size_t elites =
        std::max<size_t>(1, static_cast<size_t>(
                                cfg_.elite_fraction *
                                static_cast<double>(pop.size())));

    while (!tracker.exhausted()) {
        // Rank the population: nondominated rank, EDP tiebreak.
        std::vector<size_t> idx(pop.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::vector<int> ranks(pop.size(), 0);
        if (cfg_.multi_objective) {
            std::vector<ObjectivePoint> pts;
            pts.reserve(pop.size());
            for (const auto &ind : pop) {
                pts.push_back({ind.cost.energy_uj,
                               ind.cost.latency_cycles});
            }
            ranks = paretoRanks(pts);
        }
        std::sort(idx.begin(), idx.end(), [&](size_t x, size_t y) {
            if (ranks[x] != ranks[y])
                return ranks[x] < ranks[y];
            return pop[x].cost.edp < pop[y].cost.edp;
        });

        // Elites survive; the rest are replaced by offspring.
        std::vector<Individual> next;
        next.reserve(pop.size());
        for (size_t i = 0; i < elites; ++i)
            next.push_back(pop[idx[i]]);

        auto tournament = [&]() -> const Individual & {
            const size_t a = idx[rng.index(std::max<size_t>(
                pop.size() / 2, 1))];
            const size_t b = idx[rng.index(pop.size())];
            return pop[a].cost.edp <= pop[b].cost.edp ? pop[a] : pop[b];
        };

        // Build the whole offspring generation, then evaluate it as one
        // parallel batch (reduced in submission order by the tracker).
        // Each derived child carries its primary parent as an eval hint
        // (parents belong to the surviving previous generation, so
        // their access rows are already memoized); random immigrants
        // have no parent. Hints only unlock incremental re-evaluation —
        // results are bit-identical with or without them.
        std::vector<Mapping> offspring;
        std::vector<EvalHint> hints;
        offspring.reserve(pop.size() - next.size());
        hints.reserve(pop.size() - next.size());
        while (next.size() + offspring.size() < pop.size()) {
            if (rng.chance(cfg_.random_immigrant_prob)) {
                offspring.push_back(space.randomMapping(rng));
                hints.push_back({});
                continue;
            }
            const Individual &pa = tournament();
            Mapping child;
            if (cfg_.enable_crossover && rng.chance(cfg_.crossover_prob)) {
                const Individual &pb = tournament();
                child = crossover(pa.mapping, pb.mapping, rng);
            } else {
                child = pa.mapping;
            }
            if (cfg_.enable_tile && rng.chance(cfg_.mutate_tile_prob))
                mutateTile(space, child, rng);
            if (cfg_.enable_order && rng.chance(cfg_.mutate_order_prob))
                mutateOrder(child, rng);
            if (cfg_.enable_parallel &&
                rng.chance(cfg_.mutate_parallel_prob)) {
                mutateParallel(space, child, rng);
            }
            if (cfg_.enable_bypass &&
                rng.chance(cfg_.mutate_bypass_prob)) {
                mutateBypass(space, child, rng);
            }
            space.repair(child);
            offspring.push_back(std::move(child));
            hints.push_back({&pa.mapping});
        }
        const auto &costs = tracker.evaluateBatch(offspring, &hints);
        for (size_t i = 0; i < costs.size(); ++i)
            next.push_back(Individual{offspring[i], costs[i]});
        pop.swap(next);
        tracker.endGeneration();
    }
    return tracker.takeResult();
}

} // namespace mse

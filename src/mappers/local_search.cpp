#include "mappers/local_search.hpp"

#include <cmath>

#include "mappers/gamma.hpp"

namespace mse {

Mapping
randomNeighbor(const MapSpace &space, const Mapping &m, Rng &rng)
{
    Mapping n = m;
    switch (rng.index(4)) {
      case 0:
        GammaMapper::mutateTile(space, n, rng);
        break;
      case 1:
        GammaMapper::mutateOrder(n, rng);
        break;
      case 2:
        GammaMapper::mutateParallel(space, n, rng);
        break;
      default:
        GammaMapper::mutateBypass(space, n, rng);
        break;
    }
    space.repair(n);
    return n;
}

SearchResult
SimulatedAnnealingMapper::search(const MapSpace &space, const EvalFn &eval,
                                 const SearchBudget &budget, Rng &rng)
{
    SearchTracker tracker(eval, budget);

    Mapping current =
        seeds_.empty() ? space.randomMapping(rng) : seeds_.front();
    space.repair(current);
    CostResult current_cost = tracker.evaluate(current);
    double temperature = cfg_.initial_temperature;
    size_t rejects = 0;

    while (!tracker.exhausted()) {
        const Mapping neighbor = randomNeighbor(space, current, rng);
        const CostResult cost = tracker.evaluate(neighbor);
        bool accept = false;
        if (cost.valid &&
            (!current_cost.valid || cost.edp <= current_cost.edp)) {
            accept = true;
        } else if (cost.valid && current_cost.valid) {
            // Metropolis on log10(EDP): scale-free across workloads.
            const double delta =
                std::log10(cost.edp) - std::log10(current_cost.edp);
            accept = rng.chance(std::exp(-delta / temperature));
        }
        if (accept) {
            current = neighbor;
            current_cost = cost;
            rejects = 0;
        } else if (++rejects >= cfg_.restart_after_rejects) {
            current = space.randomMapping(rng);
            current_cost = tracker.evaluate(current);
            rejects = 0;
        }
        temperature =
            std::max(temperature * cfg_.cooling, cfg_.min_temperature);
    }
    tracker.endGeneration();
    return tracker.takeResult();
}

SearchResult
HillClimbMapper::search(const MapSpace &space, const EvalFn &eval,
                        const SearchBudget &budget, Rng &rng)
{
    SearchTracker tracker(eval, budget);

    Mapping current =
        seeds_.empty() ? space.randomMapping(rng) : seeds_.front();
    space.repair(current);
    CostResult current_cost = tracker.evaluate(current);
    size_t stale = 0;

    while (!tracker.exhausted()) {
        const Mapping neighbor = randomNeighbor(space, current, rng);
        const CostResult cost = tracker.evaluate(neighbor);
        if (cost.valid &&
            (!current_cost.valid || cost.edp < current_cost.edp)) {
            current = neighbor;
            current_cost = cost;
            stale = 0;
        } else if (++stale >= cfg_.restart_after_stale) {
            current = space.randomMapping(rng);
            current_cost = tracker.evaluate(current);
            stale = 0;
        }
    }
    tracker.endGeneration();
    return tracker.takeResult();
}

} // namespace mse

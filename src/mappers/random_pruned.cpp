#include "mappers/random_pruned.hpp"

namespace mse {

SearchResult
RandomPrunedMapper::search(const MapSpace &space, const EvalFn &eval,
                           const SearchBudget &budget, Rng &rng)
{
    SearchTracker tracker(eval, budget);
    std::unordered_set<std::string> seen;
    // Bound the number of consecutive duplicate draws so tiny map spaces
    // cannot spin forever.
    const int max_consecutive_dupes = 256;
    int dupes = 0;
    while (!tracker.exhausted()) {
        Mapping m = space.randomMapping(rng);
        if (dedupe_) {
            auto [it, inserted] = seen.insert(m.canonicalKey());
            (void)it;
            if (!inserted) {
                if (++dupes >= max_consecutive_dupes)
                    break;
                continue;
            }
            dupes = 0;
        }
        tracker.evaluate(m);
    }
    tracker.endGeneration();
    return tracker.takeResult();
}

} // namespace mse

#include "mappers/random_pruned.hpp"

namespace mse {

SearchResult
RandomPrunedMapper::search(const MapSpace &space, const EvalFn &eval,
                           const SearchBudget &budget, Rng &rng)
{
    SearchTracker tracker(eval, budget);
    std::unordered_set<std::string> seen;
    // Bound the number of consecutive duplicate draws so tiny map spaces
    // cannot spin forever.
    const int max_consecutive_dupes = 256;
    int dupes = 0;
    // Draw candidates serially (dedupe and the RNG stream stay on this
    // thread), evaluate them in parallel chunks. The chunk size bounds
    // how far sampling can run ahead of the sample budget.
    const size_t chunk = 64;
    bool space_drained = false;
    while (!tracker.exhausted() && !space_drained) {
        std::vector<Mapping> batch;
        batch.reserve(chunk);
        while (batch.size() < chunk) {
            Mapping m = space.randomMapping(rng);
            if (dedupe_) {
                auto [it, inserted] = seen.insert(m.canonicalKey());
                (void)it;
                if (!inserted) {
                    if (++dupes >= max_consecutive_dupes) {
                        space_drained = true;
                        break;
                    }
                    continue;
                }
                dupes = 0;
            }
            batch.push_back(std::move(m));
        }
        // Random samples have no parents: explicitly no eval hints (the
        // batch still flows through the pipelined SoA evaluator).
        tracker.evaluateBatch(batch, nullptr);
    }
    tracker.endGeneration();
    return tracker.takeResult();
}

} // namespace mse

/**
 * @file
 * Random-Pruned mapper: Timeloop-mapper's default search (Sec. 4.3).
 *
 * Samples the map space uniformly at random but prunes redundant
 * candidates before spending cost-model evaluations on them: mappings
 * whose loop orders differ only in the placement of factor-1 loops are
 * canonically identical (Mapping::canonicalKey), and previously-seen
 * canonical keys are skipped. There is no learning: each sample is
 * independent, which makes every sample cheap — the property that lets
 * random search win under very tight wall-clock budgets (Fig. 3, bottom).
 */
#pragma once

#include <unordered_set>

#include "mappers/mapper.hpp"

namespace mse {

/** Pruned random search over the map space. */
class RandomPrunedMapper : public Mapper
{
  public:
    /**
     * @param dedupe  Skip canonically-duplicate mappings (the "pruned"
     *                part); disable to get plain random search.
     */
    explicit RandomPrunedMapper(bool dedupe = true) : dedupe_(dedupe) {}

    std::string name() const override { return "random-pruned"; }

    SearchResult search(const MapSpace &space, const EvalFn &eval,
                        const SearchBudget &budget, Rng &rng) override;

  private:
    bool dedupe_;
};

} // namespace mse

#include "mappers/order_sweep.hpp"

#include <algorithm>
#include <cmath>

#include "common/permutation.hpp"

namespace mse {

std::vector<OrderSweepPoint>
sweepUniformOrders(const MapSpace &space, const Mapping &base,
                   const EvalFn &eval)
{
    const int D = space.numDims();
    const uint64_t total = factorial(D);
    std::vector<OrderSweepPoint> pts;
    pts.reserve(total);
    for (uint64_t rank = 0; rank < total; ++rank) {
        const auto perm = permutationFromRank(D, rank);
        Mapping m = base;
        for (int l = 0; l < m.numLevels(); ++l)
            m.level(l).order = perm;
        const CostResult cost = eval(m);
        if (!cost.valid)
            continue;
        pts.push_back({rank, perm, cost.edp});
    }
    return pts;
}

std::vector<double>
distinctEdps(const std::vector<OrderSweepPoint> &pts, double rel_tol)
{
    std::vector<double> edps;
    edps.reserve(pts.size());
    for (const auto &p : pts)
        edps.push_back(p.edp);
    std::sort(edps.begin(), edps.end());
    std::vector<double> distinct;
    for (double e : edps) {
        if (distinct.empty() ||
            std::fabs(e - distinct.back()) >
                rel_tol * std::max(std::fabs(e), 1.0)) {
            distinct.push_back(e);
        }
    }
    return distinct;
}

} // namespace mse

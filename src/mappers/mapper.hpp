/**
 * @file
 * Common mapper interface (the "Exploration method" of Sec. 3.3).
 *
 * A mapper searches a MapSpace for mappings minimizing EDP, querying an
 * opaque evaluation function (the cost model — dense, sparse, or the
 * sparsity-aware multi-density wrapper of Sec. 5.2). Mappers honor a
 * sample budget and an optional wall-clock budget, and record a
 * convergence log (best-so-far EDP per evaluated sample and per
 * generation) that the Fig. 3/5/6/10 benches plot directly.
 */
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "mapping/map_space.hpp"
#include "model/cost_model.hpp"

namespace mse {

struct EvalHint; // model/batch_eval.hpp

/**
 * Evaluation callback: mapping -> cost (infinite EDP when illegal).
 *
 * Re-entrancy contract: SearchTracker::evaluateBatch may invoke the
 * callback from multiple worker threads concurrently (one call per
 * candidate, never two calls on the same Mapping object). An EvalFn
 * must therefore be re-entrant: it may read shared immutable state
 * (workload, arch, a const cost model) but must not write shared state
 * without internal synchronization. Every built-in evaluator satisfies
 * this: CostModel::evaluate is stateless, SparseCostModel::evaluate is
 * const over value-captured inputs, the sparsity-aware scorers capture
 * by value, EvalCache::getOrCompute locks internally, and MseEngine's
 * Pareto-tracking wrapper serializes its archive behind a mutex.
 */
using EvalFn = std::function<CostResult(const Mapping &)>;

/** Search termination criteria. */
struct SearchBudget
{
    /** Maximum cost-model queries. */
    size_t max_samples = 5000;

    /** Wall-clock limit in seconds (infinity = samples only). */
    double max_seconds = std::numeric_limits<double>::infinity();

    /**
     * Optional cooperative cancellation (dropped client, expired
     * deadline). Checked wherever the sample/time budgets are — between
     * generations — so a cancelled search stops promptly and returns
     * best-so-far. Null = never cancelled.
     */
    CancelTokenView cancel;

    /** True once cancellation has been requested (false without token). */
    bool cancelRequested() const { return cancel && cancel->cancelled(); }
};

/** Convergence trace of one search run. */
struct SearchLog
{
    /** Best-so-far EDP after each evaluated sample. */
    std::vector<double> best_edp_per_sample;

    /** Wall-clock seconds elapsed at each evaluated sample. */
    std::vector<double> seconds_per_sample;

    /** Best-so-far EDP at the end of each generation/iteration. */
    std::vector<double> best_edp_per_generation;

    /** Total cost-model queries issued. */
    size_t samples = 0;
};

/** Outcome of a search. */
struct SearchResult
{
    Mapping best_mapping;
    CostResult best_cost;
    SearchLog log;

    bool found() const { return best_cost.valid; }
};

/** Abstract search algorithm over a map space. */
class Mapper
{
  public:
    virtual ~Mapper() = default;

    /** Short identifier used in bench output (e.g. "gamma"). */
    virtual std::string name() const = 0;

    /** Run the search. */
    virtual SearchResult search(const MapSpace &space, const EvalFn &eval,
                                const SearchBudget &budget, Rng &rng) = 0;

    /**
     * Seed the search with initial candidate mappings (the warm-start
     * hook of Sec. 5.1). Mappers that cannot exploit seeds ignore them.
     */
    virtual void setInitialMappings(std::vector<Mapping> seeds)
    {
        (void)seeds;
    }
};

/**
 * Factory producing a fresh mapper instance per call. Mappers carry
 * per-search state (warm-start seeds), so orchestrators that run many
 * searches — possibly concurrently, as ModelSweep does — construct one
 * instance per job instead of sharing one.
 */
using MapperFactory = std::function<std::unique_ptr<Mapper>()>;

/**
 * Factory for a mapper by its name() string: "gamma", "standard-ga",
 * "random-pruned", "annealing", or "hill-climb" (mind-mappings is
 * excluded — its surrogate training makes it unsuitable for unattended
 * sweeps). Returns an empty factory for unknown names.
 */
MapperFactory makeMapperFactory(const std::string &name);

/**
 * Bookkeeping shared by all mappers: evaluates a mapping, appends to the
 * log, and tracks the incumbent. Returns the cost.
 */
class SearchTracker
{
  public:
    SearchTracker(const EvalFn &eval, const SearchBudget &budget);

    /** True once the sample or time budget is exhausted. */
    bool exhausted() const;

    /** Evaluate and record one candidate. */
    const CostResult &evaluate(const Mapping &m);

    /**
     * Evaluate a batch of candidates, fanning the cost-model queries
     * out to ThreadPool::global() and reducing the results **in
     * submission order**, so the incumbent, best_edp_per_sample, and
     * every other log are bit-identical to a fully serial run
     * (MSE_THREADS=1) for the same candidate sequence. Evaluates only
     * the prefix of the batch that fits the remaining sample budget;
     * the returned vector (valid until the next evaluate/evaluateBatch
     * call) may thus be shorter than the batch. The wall-clock budget
     * is checked at batch granularity, never mid-batch, to keep the
     * candidate sequence deterministic.
     *
     * When the evaluator is a BatchableEval (the engine's pipelined
     * batch evaluator), the whole batch — plus the optional per-
     * candidate hints, parallel to the batch — is handed to the
     * pipeline in one call; otherwise candidates are fanned out to the
     * callback one at a time and hints are ignored. Results are
     * bit-identical either way, so mappers pass hints unconditionally.
     */
    const std::vector<CostResult> &
    evaluateBatch(const std::vector<Mapping> &batch,
                  const std::vector<EvalHint> *hints = nullptr);

    /** Seconds since construction. */
    double elapsedSeconds() const;

    /** Close out a generation (records best-so-far). */
    void endGeneration();

    SearchResult takeResult();

    double bestEdp() const { return best_edp_; }
    size_t samples() const { return log_.samples; }

  private:
    /** Ordered reduce: fold one evaluated candidate into the logs. */
    void record(const Mapping &m, const CostResult &cost);

    /**
     * Same, with the timestamp supplied by the caller — evaluateBatch
     * reads the clock once per batch (the whole batch was evaluated by
     * the time the reduce loop runs, so per-sample reads would differ
     * only by the reduce loop's own microseconds) and hands the shared
     * value here.
     */
    void record(const Mapping &m, const CostResult &cost, double secs);

    const EvalFn &eval_;
    SearchBudget budget_;
    double t0_;
    double best_edp_ = std::numeric_limits<double>::infinity();
    Mapping best_mapping_;
    CostResult best_cost_;
    CostResult last_cost_;
    std::vector<CostResult> batch_results_;
    SearchLog log_;
};

} // namespace mse

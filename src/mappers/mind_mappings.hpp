/**
 * @file
 * Mind-Mappings-style gradient mapper (Hegde et al., ASPLOS 2021; the
 * gradient-based mapper of Sec. 4.3).
 *
 * A neural surrogate is trained *offline* on (workload features, mapping
 * encoding) -> (log energy, log latency) pairs sampled from the cost
 * model on a specific accelerator configuration. At search time the
 * mapper never queries the cost model for guidance: it follows the
 * surrogate's input gradient in the relaxed encoding space, decoding
 * each step into a legal mapping whose true cost is recorded.
 *
 * Because the surrogate bakes in the training accelerator, it converges
 * quickly on that configuration (Fig. 3a/b) but does not transfer to an
 * unseen one (Fig. 3c/d) — reproduce by passing an Accel-A-trained
 * surrogate to a search over Accel-B.
 */
#pragma once

#include <memory>

#include "mappers/mapper.hpp"
#include "nn/mlp.hpp"

namespace mse {

/** Offline-training hyperparameters for the surrogate. */
struct SurrogateConfig
{
    size_t train_samples = 3000; ///< Random mappings sampled per run.
    int epochs = 30;
    size_t batch = 32;
    double lr = 3e-3;
    std::vector<int> hidden = {128, 64};
    size_t max_dims = 8; ///< Encoding is padded to this many dims.
};

/**
 * The trained surrogate: an MLP over padded mapping encodings plus
 * workload features, predicting normalized (log10 energy, log10
 * latency).
 */
class MindMappingsSurrogate
{
  public:
    /**
     * Sample random legal mappings of the given workloads on train_arch,
     * label them with the dense cost model, and fit the MLP.
     */
    MindMappingsSurrogate(const ArchConfig &train_arch,
                          const std::vector<Workload> &train_workloads,
                          SurrogateConfig cfg, Rng &rng);

    const ArchConfig &trainArch() const { return train_arch_; }

    /** Final training loss (normalized squared error). */
    double trainingLoss() const { return training_loss_; }

    /** Predicted (log10 energy, log10 latency), denormalized. */
    std::vector<double> predict(const Workload &wl,
                                const std::vector<double> &encoding) const;

    /**
     * Gradient of predicted normalized log-EDP (sum of both outputs)
     * with respect to the *unpadded* mapping encoding.
     */
    std::vector<double>
    encodingGradient(const Workload &wl,
                     const std::vector<double> &encoding) const;

  private:
    std::vector<double> buildInput(const Workload &wl,
                                   const std::vector<double> &enc) const;

    ArchConfig train_arch_;
    SurrogateConfig cfg_;
    int levels_;
    Mlp net_;
    double y_mean_[2] = {0, 0};
    double y_std_[2] = {1, 1};
    double training_loss_ = 0.0;
};

/** Search hyperparameters for the gradient descent phase. */
struct MindMappingsConfig
{
    int restarts = 6;      ///< Independent random starting encodings.
    double lr = 0.08;      ///< Gradient step size in encoding space.
    double noise = 0.01;   ///< Exploration noise per step.
};

/** The gradient-based mapper driving a shared surrogate. */
class MindMappingsMapper : public Mapper
{
  public:
    MindMappingsMapper(std::shared_ptr<const MindMappingsSurrogate> sur,
                       MindMappingsConfig cfg = {})
        : surrogate_(std::move(sur)), cfg_(cfg)
    {}

    std::string name() const override { return "mind-mappings"; }

    SearchResult search(const MapSpace &space, const EvalFn &eval,
                        const SearchBudget &budget, Rng &rng) override;

  private:
    std::shared_ptr<const MindMappingsSurrogate> surrogate_;
    MindMappingsConfig cfg_;
};

} // namespace mse

#include "mappers/standard_ga.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/permutation.hpp"
#include "model/batch_eval.hpp"

namespace mse {

SearchResult
StandardGaMapper::search(const MapSpace &space, const EvalFn &eval,
                         const SearchBudget &budget, Rng &rng)
{
    SearchTracker tracker(eval, budget);
    const size_t pop_size = std::max<size_t>(cfg_.population, 4);
    const int D = space.numDims();
    const int L = space.numLevels();

    struct Individual
    {
        Mapping mapping;
        double edp;
    };
    std::vector<Individual> pop;
    // Batched initialization: candidates are drawn serially (fixed RNG
    // stream), evaluated in parallel, reduced in submission order.
    std::vector<Mapping> initial;
    initial.reserve(pop_size);
    while (initial.size() < pop_size)
        initial.push_back(space.randomMapping(rng));
    {
        const auto &costs = tracker.evaluateBatch(initial);
        for (size_t i = 0; i < costs.size(); ++i)
            pop.push_back({initial[i], costs[i].edp});
    }
    tracker.endGeneration();
    if (pop.empty())
        return tracker.takeResult();

    const size_t elites = std::max<size_t>(
        1, static_cast<size_t>(cfg_.elite_fraction *
                               static_cast<double>(pop.size())));
    const size_t genes = static_cast<size_t>(D) * 2 * L; // factor slots

    while (!tracker.exhausted()) {
        std::vector<size_t> idx(pop.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
            return pop[a].edp < pop[b].edp;
        });

        std::vector<Individual> next;
        for (size_t i = 0; i < elites; ++i)
            next.push_back(pop[idx[i]]);

        auto parent = [&]() -> const Individual & {
            const size_t a = rng.index(pop.size());
            const size_t b = rng.index(pop.size());
            return pop[a].edp <= pop[b].edp ? pop[a] : pop[b];
        };

        // Build the offspring generation, then evaluate as one batch.
        // Children hint their primary parent (alive in the previous
        // generation) so un- or lightly-mutated genomes re-evaluate
        // incrementally; results are identical with or without hints.
        std::vector<Mapping> offspring;
        std::vector<EvalHint> hints;
        offspring.reserve(pop_size - next.size());
        hints.reserve(pop_size - next.size());
        while (next.size() + offspring.size() < pop_size) {
            const Individual &pa = parent();
            Mapping child = pa.mapping;
            if (rng.chance(cfg_.crossover_prob)) {
                // One-point crossover over the flattened factor slots;
                // all slots after the cut come from parent B. This can
                // split a dimension's tuple (repaired below).
                const Individual &pb = parent();
                const size_t cut = rng.index(genes);
                for (size_t g = cut; g < genes; ++g) {
                    const int d = static_cast<int>(g / (2 * L));
                    const int slot = static_cast<int>(g % (2 * L));
                    const int l = slot / 2;
                    if (slot % 2 == 0) {
                        child.level(l).temporal[d] =
                            pb.mapping.level(l).temporal[d];
                    } else {
                        child.level(l).spatial[d] =
                            pb.mapping.level(l).spatial[d];
                    }
                }
                // Orders after the (scaled) cut come from B too.
                for (int l = static_cast<int>(
                         (cut * L) / std::max<size_t>(genes, 1));
                     l < L; ++l) {
                    child.level(l).order = pb.mapping.level(l).order;
                }
            }
            // Uniform gene-reset mutation.
            for (size_t g = 0; g < genes; ++g) {
                if (!rng.chance(cfg_.mutation_prob))
                    continue;
                const int d = static_cast<int>(g / (2 * L));
                const int slot = static_cast<int>(g % (2 * L));
                const int l = slot / 2;
                const auto divs = divisorsOf(space.workload().bound(d));
                const int64_t v = divs[rng.index(divs.size())];
                if (slot % 2 == 0)
                    child.level(l).temporal[d] = v;
                else
                    child.level(l).spatial[d] = v;
            }
            for (int l = 0; l < L; ++l) {
                if (rng.chance(cfg_.mutation_prob))
                    child.level(l).order = randomPermutation(D, rng);
            }
            // No domain repair: a standard GA decodes the genome as-is
            // and lets illegal offspring (broken factor products,
            // blown capacities) die with infinite fitness. This is the
            // handicap Gamma's per-axis operators avoid.
            offspring.push_back(std::move(child));
            hints.push_back({&pa.mapping});
        }
        const auto &costs = tracker.evaluateBatch(offspring, &hints);
        for (size_t i = 0; i < costs.size(); ++i)
            next.push_back({offspring[i], costs[i].edp});
        pop.swap(next);
        tracker.endGeneration();
    }
    return tracker.takeResult();
}

} // namespace mse

/**
 * @file
 * Local-search mappers from the paper's "others" category (Sec. 3.3).
 *
 * The paper analyzes one representative of each of the random-based,
 * feedback-based and gradient-based families and leaves "porting
 * representative mappers from the others category to a common cost
 * model" as future work. These two mappers do exactly that for the
 * local-search sub-family, reusing Gamma's domain-aware move operators
 * as the neighborhood function so the comparison is apples-to-apples:
 *
 *  - SimulatedAnnealingMapper: Metropolis acceptance over log-EDP with
 *    a geometric temperature schedule and periodic random restarts
 *    (the MCMC flavor of FlexFlow's search).
 *  - HillClimbMapper: steepest-accept first-improvement climbing with
 *    restart on stagnation.
 */
#pragma once

#include "mappers/mapper.hpp"

namespace mse {

/** Tunables for simulated annealing. */
struct AnnealingConfig
{
    /** Initial acceptance temperature in log10(EDP) units. */
    double initial_temperature = 1.0;

    /** Multiplicative cooling per step. */
    double cooling = 0.999;

    /** Temperature floor. */
    double min_temperature = 1e-3;

    /** Restart from a fresh random mapping after this many consecutive
     *  rejected moves. */
    size_t restart_after_rejects = 400;
};

/** Metropolis search over the map space. */
class SimulatedAnnealingMapper : public Mapper
{
  public:
    explicit SimulatedAnnealingMapper(AnnealingConfig cfg = {})
        : cfg_(cfg)
    {}

    std::string name() const override { return "annealing"; }

    SearchResult search(const MapSpace &space, const EvalFn &eval,
                        const SearchBudget &budget, Rng &rng) override;

    void setInitialMappings(std::vector<Mapping> seeds) override
    {
        seeds_ = std::move(seeds);
    }

  private:
    AnnealingConfig cfg_;
    std::vector<Mapping> seeds_;
};

/** Tunables for hill climbing. */
struct HillClimbConfig
{
    /** Restart from a fresh random mapping after this many consecutive
     *  non-improving neighbors. */
    size_t restart_after_stale = 200;
};

/** First-improvement hill climbing with random restarts. */
class HillClimbMapper : public Mapper
{
  public:
    explicit HillClimbMapper(HillClimbConfig cfg = {}) : cfg_(cfg) {}

    std::string name() const override { return "hill-climb"; }

    SearchResult search(const MapSpace &space, const EvalFn &eval,
                        const SearchBudget &budget, Rng &rng) override;

    void setInitialMappings(std::vector<Mapping> seeds) override
    {
        seeds_ = std::move(seeds);
    }

  private:
    HillClimbConfig cfg_;
    std::vector<Mapping> seeds_;
};

/**
 * Shared neighborhood function: apply one random Gamma move operator
 * (tile / order / parallel / bypass) and repair.
 */
Mapping randomNeighbor(const MapSpace &space, const Mapping &m, Rng &rng);

} // namespace mse

#include "mappers/mind_mappings.hpp"

#include <algorithm>
#include <cmath>

#include "mapping/encoding.hpp"

namespace mse {

namespace {

constexpr size_t kWorkloadFeatureWidth = 8;

} // namespace

std::vector<double>
MindMappingsSurrogate::buildInput(const Workload &wl,
                                  const std::vector<double> &enc) const
{
    // Workload descriptor followed by the mapping encoding padded from
    // D dims to cfg_.max_dims per (level, block).
    std::vector<double> in = workloadFeatures(wl, kWorkloadFeatureWidth);
    in.resize(kWorkloadFeatureWidth + 3); // exactly 3 tensor densities
    const int D = wl.numDims();
    for (int l = 0; l < levels_; ++l) {
        for (int block = 0; block < 3; ++block) {
            for (size_t d = 0; d < cfg_.max_dims; ++d) {
                if (d < static_cast<size_t>(D)) {
                    in.push_back(enc[static_cast<size_t>(l) * 3 * D +
                                     static_cast<size_t>(block) * D + d]);
                } else {
                    in.push_back(0.0);
                }
            }
        }
    }
    return in;
}

MindMappingsSurrogate::MindMappingsSurrogate(
    const ArchConfig &train_arch,
    const std::vector<Workload> &train_workloads, SurrogateConfig cfg,
    Rng &rng)
    : train_arch_(train_arch), cfg_(cfg),
      levels_(train_arch.numLevels()),
      net_([&] {
          std::vector<int> sizes;
          sizes.push_back(static_cast<int>(
              kWorkloadFeatureWidth + 3 +
              3 * static_cast<size_t>(train_arch.numLevels()) *
                  cfg.max_dims));
          for (int h : cfg.hidden)
              sizes.push_back(h);
          sizes.push_back(2);
          return sizes;
      }(), rng)
{
    // Offline dataset: random legal mappings labeled by the dense model.
    std::vector<std::vector<double>> xs, ys;
    xs.reserve(cfg_.train_samples);
    ys.reserve(cfg_.train_samples);
    std::vector<MapSpace> spaces;
    spaces.reserve(train_workloads.size());
    for (const auto &wl : train_workloads)
        spaces.emplace_back(wl, train_arch_);

    while (xs.size() < cfg_.train_samples) {
        const auto &space = spaces[rng.index(spaces.size())];
        const Mapping m = space.randomMapping(rng);
        const CostResult cost =
            CostModel::evaluate(space.workload(), train_arch_, m);
        if (!cost.valid)
            continue;
        xs.push_back(buildInput(space.workload(), encodeMapping(space, m)));
        ys.push_back({std::log10(cost.energy_uj),
                      std::log10(cost.latency_cycles)});
    }

    // Normalize targets.
    for (int k = 0; k < 2; ++k) {
        double s = 0.0, s2 = 0.0;
        for (const auto &y : ys) {
            s += y[k];
            s2 += y[k] * y[k];
        }
        const double n = static_cast<double>(ys.size());
        y_mean_[k] = s / n;
        y_std_[k] = std::sqrt(std::max(s2 / n - y_mean_[k] * y_mean_[k],
                                       1e-12));
        for (auto &y : ys)
            y[k] = (y[k] - y_mean_[k]) / y_std_[k];
    }

    // Minibatch Adam training.
    std::vector<size_t> perm(xs.size());
    for (size_t i = 0; i < perm.size(); ++i)
        perm[i] = i;
    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
        rng.shuffle(perm);
        double loss = 0.0;
        size_t batches = 0;
        for (size_t start = 0; start + cfg_.batch <= perm.size();
             start += cfg_.batch) {
            std::vector<std::vector<double>> bx, by;
            bx.reserve(cfg_.batch);
            by.reserve(cfg_.batch);
            for (size_t i = 0; i < cfg_.batch; ++i) {
                bx.push_back(xs[perm[start + i]]);
                by.push_back(ys[perm[start + i]]);
            }
            loss += net_.trainBatch(bx, by, cfg_.lr);
            ++batches;
        }
        training_loss_ = batches ? loss / static_cast<double>(batches)
                                 : 0.0;
    }
}

std::vector<double>
MindMappingsSurrogate::predict(const Workload &wl,
                               const std::vector<double> &encoding) const
{
    auto y = net_.forward(buildInput(wl, encoding));
    y[0] = y[0] * y_std_[0] + y_mean_[0];
    y[1] = y[1] * y_std_[1] + y_mean_[1];
    return y;
}

std::vector<double>
MindMappingsSurrogate::encodingGradient(
    const Workload &wl, const std::vector<double> &encoding) const
{
    const auto in = buildInput(wl, encoding);
    const auto g0 = net_.inputGradient(in, 0);
    const auto g1 = net_.inputGradient(in, 1);
    // Slice the padded encoding gradient back to the unpadded layout.
    const int D = wl.numDims();
    std::vector<double> g(encoding.size(), 0.0);
    const size_t base = kWorkloadFeatureWidth + 3;
    for (int l = 0; l < levels_; ++l) {
        for (int block = 0; block < 3; ++block) {
            for (int d = 0; d < D; ++d) {
                const size_t padded = base +
                    (static_cast<size_t>(l) * 3 +
                     static_cast<size_t>(block)) * cfg_.max_dims +
                    static_cast<size_t>(d);
                g[static_cast<size_t>(l) * 3 * D +
                  static_cast<size_t>(block) * D +
                  static_cast<size_t>(d)] = g0[padded] + g1[padded];
            }
        }
    }
    return g;
}

SearchResult
MindMappingsMapper::search(const MapSpace &space, const EvalFn &eval,
                           const SearchBudget &budget, Rng &rng)
{
    SearchTracker tracker(eval, budget);
    const int restarts = std::max(cfg_.restarts, 1);
    const size_t steps_per_restart =
        std::max<size_t>(budget.max_samples / restarts, 1);

    for (int r = 0; r < restarts && !tracker.exhausted(); ++r) {
        std::vector<double> x =
            encodeMapping(space, space.randomMapping(rng));
        for (size_t step = 0;
             step < steps_per_restart && !tracker.exhausted(); ++step) {
            // Gradient descent in the relaxed encoding space.
            const auto g = surrogate_->encodingGradient(space.workload(),
                                                        x);
            double norm = 0.0;
            for (double v : g)
                norm += v * v;
            norm = std::sqrt(std::max(norm, 1e-12));
            for (size_t i = 0; i < x.size(); ++i) {
                x[i] -= cfg_.lr * g[i] / norm +
                    rng.gaussian(0.0, cfg_.noise);
                x[i] = std::clamp(x[i], 0.0, 1.0);
            }
            // Decode and record the true cost of the step.
            const Mapping m = decodeContinuous(space, x);
            tracker.evaluate(m);
        }
        tracker.endGeneration();
    }
    return tracker.takeResult();
}

} // namespace mse

/**
 * @file
 * Standard genetic algorithm baseline (the "Standard-GA" of Fig. 6).
 *
 * Uses textbook operators with no knowledge of the map-space structure:
 * one-point crossover over the flattened genome (per-dimension factor
 * slots followed by per-level orders) and uniform gene-reset mutation.
 * Crossover points can split a dimension's factor tuple, breaking its
 * product; such offspring are not repaired — they are evaluated as-is
 * and die with infinite fitness, wasting budget. This is exactly the
 * disruption Gamma's per-axis operators avoid, and the reason
 * Standard-GA trails Gamma by an order of magnitude (Fig. 6).
 */
#pragma once

#include "mappers/mapper.hpp"

namespace mse {

/** Tunables for the standard GA. */
struct StandardGaConfig
{
    size_t population = 24;
    double elite_fraction = 0.25;
    double crossover_prob = 0.8;
    double mutation_prob = 0.15; ///< Per-gene reset probability.
};

/** Textbook GA over the raw mapping genome. */
class StandardGaMapper : public Mapper
{
  public:
    explicit StandardGaMapper(StandardGaConfig cfg = {}) : cfg_(cfg) {}

    std::string name() const override { return "standard-ga"; }

    SearchResult search(const MapSpace &space, const EvalFn &eval,
                        const SearchBudget &budget, Rng &rng) override;

  private:
    StandardGaConfig cfg_;
};

} // namespace mse
